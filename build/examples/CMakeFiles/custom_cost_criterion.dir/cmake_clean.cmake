file(REMOVE_RECURSE
  "CMakeFiles/custom_cost_criterion.dir/custom_cost_criterion.cpp.o"
  "CMakeFiles/custom_cost_criterion.dir/custom_cost_criterion.cpp.o.d"
  "custom_cost_criterion"
  "custom_cost_criterion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_cost_criterion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
