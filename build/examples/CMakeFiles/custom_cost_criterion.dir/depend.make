# Empty dependencies file for custom_cost_criterion.
# This may be replaced when dependencies are built.
