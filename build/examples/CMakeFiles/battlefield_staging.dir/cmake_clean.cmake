file(REMOVE_RECURSE
  "CMakeFiles/battlefield_staging.dir/battlefield_staging.cpp.o"
  "CMakeFiles/battlefield_staging.dir/battlefield_staging.cpp.o.d"
  "battlefield_staging"
  "battlefield_staging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/battlefield_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
