# Empty compiler generated dependencies file for battlefield_staging.
# This may be replaced when dependencies are built.
