# Empty dependencies file for link_outage_study.
# This may be replaced when dependencies are built.
