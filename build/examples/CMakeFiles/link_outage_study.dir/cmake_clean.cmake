file(REMOVE_RECURSE
  "CMakeFiles/link_outage_study.dir/link_outage_study.cpp.o"
  "CMakeFiles/link_outage_study.dir/link_outage_study.cpp.o.d"
  "link_outage_study"
  "link_outage_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/link_outage_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
