file(REMOVE_RECURSE
  "CMakeFiles/replay_and_inspect.dir/replay_and_inspect.cpp.o"
  "CMakeFiles/replay_and_inspect.dir/replay_and_inspect.cpp.o.d"
  "replay_and_inspect"
  "replay_and_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_and_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
