# Empty compiler generated dependencies file for replay_and_inspect.
# This may be replaced when dependencies are built.
