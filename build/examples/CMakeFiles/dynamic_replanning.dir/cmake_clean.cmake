file(REMOVE_RECURSE
  "CMakeFiles/dynamic_replanning.dir/dynamic_replanning.cpp.o"
  "CMakeFiles/dynamic_replanning.dir/dynamic_replanning.cpp.o.d"
  "dynamic_replanning"
  "dynamic_replanning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_replanning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
