# Empty compiler generated dependencies file for dynamic_replanning.
# This may be replaced when dependencies are built.
