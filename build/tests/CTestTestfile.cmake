# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/datastage_tests[1]_include.cmake")
add_test(tools_smoke "sh" "/root/repo/tests/tools_smoke.sh" "/root/repo/build/tools")
set_tests_properties(tools_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;61;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(bench_smoke "sh" "/root/repo/tests/bench_smoke.sh" "/root/repo/build/bench")
set_tests_properties(bench_smoke PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;66;add_test;/root/repo/tests/CMakeLists.txt;0;")
