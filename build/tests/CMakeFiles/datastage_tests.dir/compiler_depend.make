# Empty compiler generated dependencies file for datastage_tests.
# This may be replaced when dependencies are built.
