
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/bounds_test.cpp" "tests/CMakeFiles/datastage_tests.dir/core/bounds_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/core/bounds_test.cpp.o.d"
  "/root/repo/tests/core/cost_property_test.cpp" "tests/CMakeFiles/datastage_tests.dir/core/cost_property_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/core/cost_property_test.cpp.o.d"
  "/root/repo/tests/core/cost_test.cpp" "tests/CMakeFiles/datastage_tests.dir/core/cost_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/core/cost_test.cpp.o.d"
  "/root/repo/tests/core/engine_invalidation_test.cpp" "tests/CMakeFiles/datastage_tests.dir/core/engine_invalidation_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/core/engine_invalidation_test.cpp.o.d"
  "/root/repo/tests/core/engine_test.cpp" "tests/CMakeFiles/datastage_tests.dir/core/engine_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/core/engine_test.cpp.o.d"
  "/root/repo/tests/core/exact_test.cpp" "tests/CMakeFiles/datastage_tests.dir/core/exact_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/core/exact_test.cpp.o.d"
  "/root/repo/tests/core/heuristics_test.cpp" "tests/CMakeFiles/datastage_tests.dir/core/heuristics_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/core/heuristics_test.cpp.o.d"
  "/root/repo/tests/core/metrics_test.cpp" "tests/CMakeFiles/datastage_tests.dir/core/metrics_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/core/metrics_test.cpp.o.d"
  "/root/repo/tests/core/registry_test.cpp" "tests/CMakeFiles/datastage_tests.dir/core/registry_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/core/registry_test.cpp.o.d"
  "/root/repo/tests/core/satisfaction_test.cpp" "tests/CMakeFiles/datastage_tests.dir/core/satisfaction_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/core/satisfaction_test.cpp.o.d"
  "/root/repo/tests/core/schedule_io_test.cpp" "tests/CMakeFiles/datastage_tests.dir/core/schedule_io_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/core/schedule_io_test.cpp.o.d"
  "/root/repo/tests/core/schedule_test.cpp" "tests/CMakeFiles/datastage_tests.dir/core/schedule_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/core/schedule_test.cpp.o.d"
  "/root/repo/tests/dynamic/stager_more_test.cpp" "tests/CMakeFiles/datastage_tests.dir/dynamic/stager_more_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/dynamic/stager_more_test.cpp.o.d"
  "/root/repo/tests/dynamic/stager_param_test.cpp" "tests/CMakeFiles/datastage_tests.dir/dynamic/stager_param_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/dynamic/stager_param_test.cpp.o.d"
  "/root/repo/tests/dynamic/stager_test.cpp" "tests/CMakeFiles/datastage_tests.dir/dynamic/stager_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/dynamic/stager_test.cpp.o.d"
  "/root/repo/tests/gen/generator_config_test.cpp" "tests/CMakeFiles/datastage_tests.dir/gen/generator_config_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/gen/generator_config_test.cpp.o.d"
  "/root/repo/tests/gen/generator_test.cpp" "tests/CMakeFiles/datastage_tests.dir/gen/generator_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/gen/generator_test.cpp.o.d"
  "/root/repo/tests/harness/harness_more_test.cpp" "tests/CMakeFiles/datastage_tests.dir/harness/harness_more_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/harness/harness_more_test.cpp.o.d"
  "/root/repo/tests/harness/harness_test.cpp" "tests/CMakeFiles/datastage_tests.dir/harness/harness_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/harness/harness_test.cpp.o.d"
  "/root/repo/tests/integration/end_to_end_test.cpp" "tests/CMakeFiles/datastage_tests.dir/integration/end_to_end_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/integration/end_to_end_test.cpp.o.d"
  "/root/repo/tests/integration/fuzz_test.cpp" "tests/CMakeFiles/datastage_tests.dir/integration/fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/integration/fuzz_test.cpp.o.d"
  "/root/repo/tests/integration/invariants_test.cpp" "tests/CMakeFiles/datastage_tests.dir/integration/invariants_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/integration/invariants_test.cpp.o.d"
  "/root/repo/tests/integration/property_test.cpp" "tests/CMakeFiles/datastage_tests.dir/integration/property_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/integration/property_test.cpp.o.d"
  "/root/repo/tests/integration/search_hierarchy_test.cpp" "tests/CMakeFiles/datastage_tests.dir/integration/search_hierarchy_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/integration/search_hierarchy_test.cpp.o.d"
  "/root/repo/tests/model/describe_test.cpp" "tests/CMakeFiles/datastage_tests.dir/model/describe_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/model/describe_test.cpp.o.d"
  "/root/repo/tests/model/priority_test.cpp" "tests/CMakeFiles/datastage_tests.dir/model/priority_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/model/priority_test.cpp.o.d"
  "/root/repo/tests/model/scenario_io_test.cpp" "tests/CMakeFiles/datastage_tests.dir/model/scenario_io_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/model/scenario_io_test.cpp.o.d"
  "/root/repo/tests/model/scenario_test.cpp" "tests/CMakeFiles/datastage_tests.dir/model/scenario_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/model/scenario_test.cpp.o.d"
  "/root/repo/tests/model/transforms_test.cpp" "tests/CMakeFiles/datastage_tests.dir/model/transforms_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/model/transforms_test.cpp.o.d"
  "/root/repo/tests/net/link_schedule_test.cpp" "tests/CMakeFiles/datastage_tests.dir/net/link_schedule_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/net/link_schedule_test.cpp.o.d"
  "/root/repo/tests/net/network_state_test.cpp" "tests/CMakeFiles/datastage_tests.dir/net/network_state_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/net/network_state_test.cpp.o.d"
  "/root/repo/tests/net/storage_timeline_test.cpp" "tests/CMakeFiles/datastage_tests.dir/net/storage_timeline_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/net/storage_timeline_test.cpp.o.d"
  "/root/repo/tests/net/topology_test.cpp" "tests/CMakeFiles/datastage_tests.dir/net/topology_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/net/topology_test.cpp.o.d"
  "/root/repo/tests/routing/dijkstra_property_test.cpp" "tests/CMakeFiles/datastage_tests.dir/routing/dijkstra_property_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/routing/dijkstra_property_test.cpp.o.d"
  "/root/repo/tests/routing/dijkstra_test.cpp" "tests/CMakeFiles/datastage_tests.dir/routing/dijkstra_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/routing/dijkstra_test.cpp.o.d"
  "/root/repo/tests/sim/event_queue_test.cpp" "tests/CMakeFiles/datastage_tests.dir/sim/event_queue_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/sim/event_queue_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_more_test.cpp" "tests/CMakeFiles/datastage_tests.dir/sim/simulator_more_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/sim/simulator_more_test.cpp.o.d"
  "/root/repo/tests/sim/simulator_test.cpp" "tests/CMakeFiles/datastage_tests.dir/sim/simulator_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/sim/simulator_test.cpp.o.d"
  "/root/repo/tests/sim/trace_test.cpp" "tests/CMakeFiles/datastage_tests.dir/sim/trace_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/sim/trace_test.cpp.o.d"
  "/root/repo/tests/testing/builders.cpp" "tests/CMakeFiles/datastage_tests.dir/testing/builders.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/testing/builders.cpp.o.d"
  "/root/repo/tests/util/cli_test.cpp" "tests/CMakeFiles/datastage_tests.dir/util/cli_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/util/cli_test.cpp.o.d"
  "/root/repo/tests/util/ids_test.cpp" "tests/CMakeFiles/datastage_tests.dir/util/ids_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/util/ids_test.cpp.o.d"
  "/root/repo/tests/util/interval_more_test.cpp" "tests/CMakeFiles/datastage_tests.dir/util/interval_more_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/util/interval_more_test.cpp.o.d"
  "/root/repo/tests/util/interval_test.cpp" "tests/CMakeFiles/datastage_tests.dir/util/interval_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/util/interval_test.cpp.o.d"
  "/root/repo/tests/util/log_test.cpp" "tests/CMakeFiles/datastage_tests.dir/util/log_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/util/log_test.cpp.o.d"
  "/root/repo/tests/util/rng_test.cpp" "tests/CMakeFiles/datastage_tests.dir/util/rng_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/util/rng_test.cpp.o.d"
  "/root/repo/tests/util/stats_test.cpp" "tests/CMakeFiles/datastage_tests.dir/util/stats_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/util/stats_test.cpp.o.d"
  "/root/repo/tests/util/table_test.cpp" "tests/CMakeFiles/datastage_tests.dir/util/table_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/util/table_test.cpp.o.d"
  "/root/repo/tests/util/time_test.cpp" "tests/CMakeFiles/datastage_tests.dir/util/time_test.cpp.o" "gcc" "tests/CMakeFiles/datastage_tests.dir/util/time_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/datastage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
