file(REMOVE_RECURSE
  "CMakeFiles/datastage_verify.dir/datastage_verify.cpp.o"
  "CMakeFiles/datastage_verify.dir/datastage_verify.cpp.o.d"
  "datastage_verify"
  "datastage_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datastage_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
