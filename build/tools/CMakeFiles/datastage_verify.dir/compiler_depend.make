# Empty compiler generated dependencies file for datastage_verify.
# This may be replaced when dependencies are built.
