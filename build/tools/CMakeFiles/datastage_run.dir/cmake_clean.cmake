file(REMOVE_RECURSE
  "CMakeFiles/datastage_run.dir/datastage_run.cpp.o"
  "CMakeFiles/datastage_run.dir/datastage_run.cpp.o.d"
  "datastage_run"
  "datastage_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datastage_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
