# Empty compiler generated dependencies file for datastage_run.
# This may be replaced when dependencies are built.
