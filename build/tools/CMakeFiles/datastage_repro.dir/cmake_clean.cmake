file(REMOVE_RECURSE
  "CMakeFiles/datastage_repro.dir/datastage_repro.cpp.o"
  "CMakeFiles/datastage_repro.dir/datastage_repro.cpp.o.d"
  "datastage_repro"
  "datastage_repro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datastage_repro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
