# Empty dependencies file for datastage_repro.
# This may be replaced when dependencies are built.
