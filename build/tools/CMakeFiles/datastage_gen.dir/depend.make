# Empty dependencies file for datastage_gen.
# This may be replaced when dependencies are built.
