file(REMOVE_RECURSE
  "CMakeFiles/datastage_gen.dir/datastage_gen.cpp.o"
  "CMakeFiles/datastage_gen.dir/datastage_gen.cpp.o.d"
  "datastage_gen"
  "datastage_gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/datastage_gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
