# Empty dependencies file for datastage.
# This may be replaced when dependencies are built.
