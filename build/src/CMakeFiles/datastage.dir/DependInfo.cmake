
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bounds.cpp" "src/CMakeFiles/datastage.dir/core/bounds.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/core/bounds.cpp.o.d"
  "/root/repo/src/core/cost.cpp" "src/CMakeFiles/datastage.dir/core/cost.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/core/cost.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/datastage.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/exact.cpp" "src/CMakeFiles/datastage.dir/core/exact.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/core/exact.cpp.o.d"
  "/root/repo/src/core/full_path_all.cpp" "src/CMakeFiles/datastage.dir/core/full_path_all.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/core/full_path_all.cpp.o.d"
  "/root/repo/src/core/full_path_one.cpp" "src/CMakeFiles/datastage.dir/core/full_path_one.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/core/full_path_one.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/datastage.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/partial_path.cpp" "src/CMakeFiles/datastage.dir/core/partial_path.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/core/partial_path.cpp.o.d"
  "/root/repo/src/core/priority_first.cpp" "src/CMakeFiles/datastage.dir/core/priority_first.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/core/priority_first.cpp.o.d"
  "/root/repo/src/core/random_baselines.cpp" "src/CMakeFiles/datastage.dir/core/random_baselines.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/core/random_baselines.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/datastage.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/core/registry.cpp.o.d"
  "/root/repo/src/core/satisfaction.cpp" "src/CMakeFiles/datastage.dir/core/satisfaction.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/core/satisfaction.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/CMakeFiles/datastage.dir/core/schedule.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/core/schedule.cpp.o.d"
  "/root/repo/src/core/schedule_io.cpp" "src/CMakeFiles/datastage.dir/core/schedule_io.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/core/schedule_io.cpp.o.d"
  "/root/repo/src/dynamic/stager.cpp" "src/CMakeFiles/datastage.dir/dynamic/stager.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/dynamic/stager.cpp.o.d"
  "/root/repo/src/gen/generator.cpp" "src/CMakeFiles/datastage.dir/gen/generator.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/gen/generator.cpp.o.d"
  "/root/repo/src/harness/experiment.cpp" "src/CMakeFiles/datastage.dir/harness/experiment.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/harness/experiment.cpp.o.d"
  "/root/repo/src/harness/report.cpp" "src/CMakeFiles/datastage.dir/harness/report.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/harness/report.cpp.o.d"
  "/root/repo/src/harness/sweep.cpp" "src/CMakeFiles/datastage.dir/harness/sweep.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/harness/sweep.cpp.o.d"
  "/root/repo/src/model/describe.cpp" "src/CMakeFiles/datastage.dir/model/describe.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/model/describe.cpp.o.d"
  "/root/repo/src/model/priority.cpp" "src/CMakeFiles/datastage.dir/model/priority.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/model/priority.cpp.o.d"
  "/root/repo/src/model/scenario.cpp" "src/CMakeFiles/datastage.dir/model/scenario.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/model/scenario.cpp.o.d"
  "/root/repo/src/model/scenario_io.cpp" "src/CMakeFiles/datastage.dir/model/scenario_io.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/model/scenario_io.cpp.o.d"
  "/root/repo/src/model/transforms.cpp" "src/CMakeFiles/datastage.dir/model/transforms.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/model/transforms.cpp.o.d"
  "/root/repo/src/net/link_schedule.cpp" "src/CMakeFiles/datastage.dir/net/link_schedule.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/net/link_schedule.cpp.o.d"
  "/root/repo/src/net/network_state.cpp" "src/CMakeFiles/datastage.dir/net/network_state.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/net/network_state.cpp.o.d"
  "/root/repo/src/net/storage_timeline.cpp" "src/CMakeFiles/datastage.dir/net/storage_timeline.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/net/storage_timeline.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/datastage.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/net/topology.cpp.o.d"
  "/root/repo/src/routing/dijkstra.cpp" "src/CMakeFiles/datastage.dir/routing/dijkstra.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/routing/dijkstra.cpp.o.d"
  "/root/repo/src/routing/path.cpp" "src/CMakeFiles/datastage.dir/routing/path.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/routing/path.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/datastage.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/datastage.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/datastage.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/sim/trace.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/datastage.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/interval.cpp" "src/CMakeFiles/datastage.dir/util/interval.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/util/interval.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/datastage.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/util/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/datastage.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/datastage.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/datastage.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/util/table.cpp.o.d"
  "/root/repo/src/util/time.cpp" "src/CMakeFiles/datastage.dir/util/time.cpp.o" "gcc" "src/CMakeFiles/datastage.dir/util/time.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
