# Empty compiler generated dependencies file for datastage.
# This may be replaced when dependencies are built.
