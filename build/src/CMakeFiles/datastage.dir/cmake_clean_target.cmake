file(REMOVE_RECURSE
  "libdatastage.a"
)
