file(REMOVE_RECURSE
  "../bench/tbl_optimality_gap"
  "../bench/tbl_optimality_gap.pdb"
  "CMakeFiles/tbl_optimality_gap.dir/tbl_optimality_gap.cpp.o"
  "CMakeFiles/tbl_optimality_gap.dir/tbl_optimality_gap.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_optimality_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
