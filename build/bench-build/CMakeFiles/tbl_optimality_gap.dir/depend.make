# Empty dependencies file for tbl_optimality_gap.
# This may be replaced when dependencies are built.
