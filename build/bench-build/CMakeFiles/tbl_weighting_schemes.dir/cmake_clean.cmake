file(REMOVE_RECURSE
  "../bench/tbl_weighting_schemes"
  "../bench/tbl_weighting_schemes.pdb"
  "CMakeFiles/tbl_weighting_schemes.dir/tbl_weighting_schemes.cpp.o"
  "CMakeFiles/tbl_weighting_schemes.dir/tbl_weighting_schemes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_weighting_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
