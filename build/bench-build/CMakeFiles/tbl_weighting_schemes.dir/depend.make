# Empty dependencies file for tbl_weighting_schemes.
# This may be replaced when dependencies are built.
