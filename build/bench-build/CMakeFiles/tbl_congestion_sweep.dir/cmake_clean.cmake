file(REMOVE_RECURSE
  "../bench/tbl_congestion_sweep"
  "../bench/tbl_congestion_sweep.pdb"
  "CMakeFiles/tbl_congestion_sweep.dir/tbl_congestion_sweep.cpp.o"
  "CMakeFiles/tbl_congestion_sweep.dir/tbl_congestion_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_congestion_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
