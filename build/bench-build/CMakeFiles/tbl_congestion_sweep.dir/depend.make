# Empty dependencies file for tbl_congestion_sweep.
# This may be replaced when dependencies are built.
