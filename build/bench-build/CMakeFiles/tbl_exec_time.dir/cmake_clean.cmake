file(REMOVE_RECURSE
  "../bench/tbl_exec_time"
  "../bench/tbl_exec_time.pdb"
  "CMakeFiles/tbl_exec_time.dir/tbl_exec_time.cpp.o"
  "CMakeFiles/tbl_exec_time.dir/tbl_exec_time.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_exec_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
