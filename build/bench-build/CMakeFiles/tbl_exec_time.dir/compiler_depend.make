# Empty compiler generated dependencies file for tbl_exec_time.
# This may be replaced when dependencies are built.
