file(REMOVE_RECURSE
  "../bench/fig4_full_one"
  "../bench/fig4_full_one.pdb"
  "CMakeFiles/fig4_full_one.dir/fig4_full_one.cpp.o"
  "CMakeFiles/fig4_full_one.dir/fig4_full_one.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_full_one.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
