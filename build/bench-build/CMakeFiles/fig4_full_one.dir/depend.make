# Empty dependencies file for fig4_full_one.
# This may be replaced when dependencies are built.
