# Empty compiler generated dependencies file for fig3_partial_path.
# This may be replaced when dependencies are built.
