# Empty compiler generated dependencies file for fig5_full_all.
# This may be replaced when dependencies are built.
