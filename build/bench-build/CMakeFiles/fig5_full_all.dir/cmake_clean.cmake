file(REMOVE_RECURSE
  "../bench/fig5_full_all"
  "../bench/fig5_full_all.pdb"
  "CMakeFiles/fig5_full_all.dir/fig5_full_all.cpp.o"
  "CMakeFiles/fig5_full_all.dir/fig5_full_all.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_full_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
