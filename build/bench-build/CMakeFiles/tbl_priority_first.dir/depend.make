# Empty dependencies file for tbl_priority_first.
# This may be replaced when dependencies are built.
