file(REMOVE_RECURSE
  "../bench/tbl_priority_first"
  "../bench/tbl_priority_first.pdb"
  "CMakeFiles/tbl_priority_first.dir/tbl_priority_first.cpp.o"
  "CMakeFiles/tbl_priority_first.dir/tbl_priority_first.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_priority_first.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
