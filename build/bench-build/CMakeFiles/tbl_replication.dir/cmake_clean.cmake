file(REMOVE_RECURSE
  "../bench/tbl_replication"
  "../bench/tbl_replication.pdb"
  "CMakeFiles/tbl_replication.dir/tbl_replication.cpp.o"
  "CMakeFiles/tbl_replication.dir/tbl_replication.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
