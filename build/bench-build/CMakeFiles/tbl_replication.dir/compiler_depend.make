# Empty compiler generated dependencies file for tbl_replication.
# This may be replaced when dependencies are built.
