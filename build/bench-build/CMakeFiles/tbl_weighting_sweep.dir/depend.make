# Empty dependencies file for tbl_weighting_sweep.
# This may be replaced when dependencies are built.
