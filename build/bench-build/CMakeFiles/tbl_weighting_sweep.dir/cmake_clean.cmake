file(REMOVE_RECURSE
  "../bench/tbl_weighting_sweep"
  "../bench/tbl_weighting_sweep.pdb"
  "CMakeFiles/tbl_weighting_sweep.dir/tbl_weighting_sweep.cpp.o"
  "CMakeFiles/tbl_weighting_sweep.dir/tbl_weighting_sweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_weighting_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
