# Empty dependencies file for tbl_links_traversed.
# This may be replaced when dependencies are built.
