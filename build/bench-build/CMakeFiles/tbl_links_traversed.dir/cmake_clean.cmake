file(REMOVE_RECURSE
  "../bench/tbl_links_traversed"
  "../bench/tbl_links_traversed.pdb"
  "CMakeFiles/tbl_links_traversed.dir/tbl_links_traversed.cpp.o"
  "CMakeFiles/tbl_links_traversed.dir/tbl_links_traversed.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_links_traversed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
