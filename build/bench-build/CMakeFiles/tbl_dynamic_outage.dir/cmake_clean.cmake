file(REMOVE_RECURSE
  "../bench/tbl_dynamic_outage"
  "../bench/tbl_dynamic_outage.pdb"
  "CMakeFiles/tbl_dynamic_outage.dir/tbl_dynamic_outage.cpp.o"
  "CMakeFiles/tbl_dynamic_outage.dir/tbl_dynamic_outage.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_dynamic_outage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
