# Empty dependencies file for tbl_dynamic_outage.
# This may be replaced when dependencies are built.
