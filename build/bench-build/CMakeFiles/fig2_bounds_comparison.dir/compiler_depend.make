# Empty compiler generated dependencies file for fig2_bounds_comparison.
# This may be replaced when dependencies are built.
