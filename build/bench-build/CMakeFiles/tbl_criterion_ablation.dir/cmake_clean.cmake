file(REMOVE_RECURSE
  "../bench/tbl_criterion_ablation"
  "../bench/tbl_criterion_ablation.pdb"
  "CMakeFiles/tbl_criterion_ablation.dir/tbl_criterion_ablation.cpp.o"
  "CMakeFiles/tbl_criterion_ablation.dir/tbl_criterion_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_criterion_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
