# Empty dependencies file for tbl_criterion_ablation.
# This may be replaced when dependencies are built.
