file(REMOVE_RECURSE
  "../bench/tbl_sensitivity_grid"
  "../bench/tbl_sensitivity_grid.pdb"
  "CMakeFiles/tbl_sensitivity_grid.dir/tbl_sensitivity_grid.cpp.o"
  "CMakeFiles/tbl_sensitivity_grid.dir/tbl_sensitivity_grid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tbl_sensitivity_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
