# Empty dependencies file for tbl_sensitivity_grid.
# This may be replaced when dependencies are built.
