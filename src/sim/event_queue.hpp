// Discrete-event queue for the schedule-replay simulator.
//
// Ordering rules: earlier time first; at equal times, arrivals before starts
// (a transfer may depart the instant its input copy lands); insertion order
// breaks remaining ties so replay is deterministic.
#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace datastage {

enum class SimEventKind : std::uint8_t {
  kArrival = 0,        // processed first at equal timestamps
  kTransferStart = 1,
};

struct SimEvent {
  SimTime time;
  SimEventKind kind = SimEventKind::kTransferStart;
  std::size_t step = 0;  ///< index into the schedule's step list

  friend bool operator==(const SimEvent&, const SimEvent&) = default;
};

class EventQueue {
 public:
  void push(const SimEvent& event);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Removes and returns the next event in (time, kind, insertion) order.
  SimEvent pop();

 private:
  struct Entry {
    SimEvent event;
    std::uint64_t seq;
  };
  static bool later(const Entry& a, const Entry& b);

  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace datastage
