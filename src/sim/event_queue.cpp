#include "sim/event_queue.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {

bool EventQueue::later(const Entry& a, const Entry& b) {
  // std::push_heap builds a max-heap; "later" means lower priority.
  if (a.event.time != b.event.time) return a.event.time > b.event.time;
  if (a.event.kind != b.event.kind) return a.event.kind > b.event.kind;
  return a.seq > b.seq;
}

void EventQueue::push(const SimEvent& event) {
  heap_.push_back(Entry{event, next_seq_++});
  std::push_heap(heap_.begin(), heap_.end(), later);
}

SimEvent EventQueue::pop() {
  DS_ASSERT(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const SimEvent event = heap_.back().event;
  heap_.pop_back();
  return event;
}

}  // namespace datastage
