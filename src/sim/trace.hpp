// Human-readable traces and utilization summaries of schedules.
//
// Used by the example binaries to show what the scheduler decided: the
// time-ordered transfer log, per-link utilization within the horizon, and
// per-machine peak storage. Pure reporting — no scheduling logic.
#pragma once

#include <string>

#include "core/satisfaction.hpp"
#include "core/schedule.hpp"
#include "model/scenario.hpp"
#include "util/table.hpp"

namespace datastage {

/// Time-ordered, named transfer log.
std::string schedule_trace(const Scenario& scenario, const Schedule& schedule);

/// Per-machine table: capacity, peak usage, items staged there.
Table storage_summary(const Scenario& scenario, const Schedule& schedule);

/// Per-physical-link table: window time, busy time, utilization percent.
Table link_utilization(const Scenario& scenario, const Schedule& schedule);

/// Per-request table: item, destination, priority, deadline, arrival, status.
Table request_report(const Scenario& scenario, const OutcomeMatrix& outcomes);

/// ASCII Gantt chart: one row per physical link across [0, horizon).
///   '.'  link unavailable     '-'  window open, idle     '#'  transferring
/// `width` is the number of time buckets (columns).
std::string link_gantt(const Scenario& scenario, const Schedule& schedule,
                       std::size_t width = 72);

}  // namespace datastage
