#include "sim/chrome_trace.hpp"

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "obs/json.hpp"

namespace datastage::sim {

namespace {

constexpr int kSimPid = 1;
constexpr int kWallPid = 2;

void append_event(std::string& out, const std::string& body) {
  if (out.back() != '[') out += ',';
  out += '{' + body + '}';
}

std::string field(std::string_view key, const std::string& raw) {
  return '"' + std::string(key) + "\":" + raw;
}

std::string str_field(std::string_view key, std::string_view value) {
  return '"' + std::string(key) + "\":\"" + obs::json_escape(value) + '"';
}

void append_metadata(std::string& out, std::string_view name, int pid,
                     std::int64_t tid, std::string_view value) {
  append_event(out, str_field("name", name) + ",\"ph\":\"M\"," +
                        field("pid", std::to_string(pid)) + ',' +
                        field("tid", std::to_string(tid)) + ",\"args\":{" +
                        str_field("name", value) + '}');
}

}  // namespace

std::string chrome_trace_json(const Scenario& scenario, const Schedule& schedule,
                              const ChromeTraceOptions& options) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";

  // --- pid 1: simulation time, one thread per physical link ---------------
  append_metadata(out, "process_name", kSimPid, 0, "simulation (sim time, us)");
  for (std::size_t i = 0; i < scenario.phys_links.size(); ++i) {
    const PhysicalLink& link = scenario.phys_links[i];
    const std::string label = "link " + std::to_string(i) + ": " +
                              scenario.machine(link.from).name + " -> " +
                              scenario.machine(link.to).name;
    append_metadata(out, "thread_name", kSimPid, link_track_id(i), label);
  }
  const std::int64_t miss_tid = miss_track_id(scenario.phys_links.size());
  if (options.outcomes != nullptr) {
    append_metadata(out, "thread_name", kSimPid, miss_tid, "deadline misses");
  }

  // Canonical slice order: physical link ascending, then start time, then the
  // remaining fields — independent of the order the scheduler emitted steps.
  std::vector<const CommStep*> steps;
  steps.reserve(schedule.size());
  for (const CommStep& step : schedule.steps()) steps.push_back(&step);
  std::sort(steps.begin(), steps.end(), [&](const CommStep* a, const CommStep* b) {
    const auto key = [&](const CommStep* s) {
      return std::tuple(scenario.vlink(s->link).phys.index(), s->start.usec(),
                        s->arrival.usec(), s->item.index(), s->link.index());
    };
    return key(a) < key(b);
  });
  for (const CommStep* step : steps) {
    const std::size_t phys = scenario.vlink(step->link).phys.index();
    const std::int64_t dur = (step->arrival - step->start).usec();
    append_event(
        out,
        str_field("name", scenario.item(step->item).name) + ",\"ph\":\"X\"," +
            field("pid", std::to_string(kSimPid)) + ',' +
            field("tid", std::to_string(link_track_id(phys))) + ',' +
            field("ts", std::to_string(step->start.usec())) + ',' +
            field("dur", std::to_string(dur)) + ",\"args\":{" +
            str_field("from", scenario.machine(step->from).name) + ',' +
            str_field("to", scenario.machine(step->to).name) + ',' +
            field("vlink", std::to_string(step->link.index())) + '}');
  }

  if (options.outcomes != nullptr) {
    for (std::size_t i = 0; i < scenario.items.size(); ++i) {
      const DataItem& item = scenario.items[i];
      for (std::size_t k = 0; k < item.requests.size(); ++k) {
        if ((*options.outcomes)[i][k].satisfied) continue;
        const Request& request = item.requests[k];
        append_event(
            out,
            str_field("name", "miss " + item.name + " @" +
                                  scenario.machine(request.destination).name) +
                ",\"ph\":\"i\",\"s\":\"t\"," +
                field("pid", std::to_string(kSimPid)) + ',' +
                field("tid", std::to_string(miss_tid)) + ',' +
                field("ts", std::to_string(request.deadline.usec())) +
                ",\"args\":{" + field("item", std::to_string(i)) + ',' +
                field("k", std::to_string(k)) + '}');
      }
    }
  }

  // --- pid 2: wall-clock engine phases, laid end to end -------------------
  if (options.phases != nullptr && !options.phases->phases().empty()) {
    append_metadata(out, "process_name", kWallPid, 0, "engine (wall clock)");
    append_metadata(out, "thread_name", kWallPid, 1, "phases");
    std::vector<std::string> order;
    for (const char* canonical : {"load", "schedule", "replay"}) {
      if (options.phases->nanos(canonical) > 0) order.emplace_back(canonical);
    }
    for (const auto& [phase, nanos] : options.phases->phases()) {
      if (std::find(order.begin(), order.end(), phase) == order.end()) {
        order.push_back(phase);
      }
    }
    double cursor_us = 0.0;
    for (const std::string& phase : order) {
      const double dur_us = static_cast<double>(options.phases->nanos(phase)) / 1e3;
      append_event(out, str_field("name", phase) + ",\"ph\":\"X\"," +
                            field("pid", std::to_string(kWallPid)) +
                            ",\"tid\":1," + field("ts", obs::json_number(cursor_us)) +
                            ',' + field("dur", obs::json_number(dur_us)) + ",\"args\":{}");
      cursor_us += dur_us;
    }
  }

  out += "]}";
  return out;
}

}  // namespace datastage::sim
