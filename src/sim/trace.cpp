#include "sim/trace.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace datastage {

std::string schedule_trace(const Scenario& scenario, const Schedule& schedule) {
  return schedule.to_string(scenario);
}

Table storage_summary(const Scenario& scenario, const Schedule& schedule) {
  const SimReport report = simulate(scenario, schedule);
  Table table({"machine", "capacity (MB)", "peak usage (MB)", "staged items"});

  std::vector<std::set<std::int32_t>> staged(scenario.machine_count());
  for (const CommStep& step : schedule.steps()) {
    staged[step.to.index()].insert(step.item.value());
  }
  constexpr double kMB = 1024.0 * 1024.0;
  for (std::size_t m = 0; m < scenario.machine_count(); ++m) {
    const std::int64_t peak =
        m < report.peak_usage.size() ? report.peak_usage[m] : 0;
    table.add_row({scenario.machines[m].name,
                   format_double(static_cast<double>(scenario.machines[m].capacity_bytes) / kMB, 1),
                   format_double(static_cast<double>(peak) / kMB, 1),
                   std::to_string(staged[m].size())});
  }
  return table;
}

Table link_utilization(const Scenario& scenario, const Schedule& schedule) {
  // Busy and window time per physical link, restricted to the horizon.
  std::vector<SimDuration> busy(scenario.phys_links.size(), SimDuration::zero());
  std::vector<SimDuration> window(scenario.phys_links.size(), SimDuration::zero());
  const Interval horizon{SimTime::zero(), scenario.horizon};

  for (const VirtualLink& vl : scenario.virt_links) {
    const SimTime lo = max(vl.window.begin, horizon.begin);
    const SimTime hi = min(vl.window.end, horizon.end);
    if (lo < hi) window[vl.phys.index()] = window[vl.phys.index()] + (hi - lo);
  }
  for (const CommStep& step : schedule.steps()) {
    const VirtualLink& vl = scenario.vlink(step.link);
    const SimTime lo = max(step.start, horizon.begin);
    const SimTime hi = min(step.arrival, horizon.end);
    if (lo < hi) busy[vl.phys.index()] = busy[vl.phys.index()] + (hi - lo);
  }

  Table table({"link", "route", "window (min)", "busy (min)", "utilization %"});
  for (std::size_t p = 0; p < scenario.phys_links.size(); ++p) {
    const PhysicalLink& pl = scenario.phys_links[p];
    const double window_min = window[p].as_seconds() / 60.0;
    const double busy_min = busy[p].as_seconds() / 60.0;
    const double util = window_min > 0.0 ? 100.0 * busy_min / window_min : 0.0;
    table.add_row({std::to_string(p),
                   scenario.machine(pl.from).name + "->" + scenario.machine(pl.to).name,
                   format_double(window_min, 1), format_double(busy_min, 1),
                   format_double(util, 1)});
  }
  return table;
}

Table request_report(const Scenario& scenario, const OutcomeMatrix& outcomes) {
  Table table({"item", "destination", "priority", "deadline", "arrival", "status"});
  for (std::size_t i = 0; i < scenario.item_count(); ++i) {
    const DataItem& item = scenario.items[i];
    for (std::size_t k = 0; k < item.requests.size(); ++k) {
      const Request& request = item.requests[k];
      const RequestOutcome& outcome = outcomes[i][k];
      table.add_row({item.name, scenario.machine(request.destination).name,
                     priority_name(request.priority), request.deadline.to_string(),
                     outcome.arrival.is_infinite() ? "-" : outcome.arrival.to_string(),
                     outcome.satisfied ? "satisfied"
                                       : (outcome.arrival.is_infinite() ? "unserved"
                                                                        : "late")});
    }
  }
  return table;
}

std::string link_gantt(const Scenario& scenario, const Schedule& schedule,
                       std::size_t width) {
  DS_ASSERT(width > 0);
  const std::int64_t horizon = scenario.horizon.usec();
  DS_ASSERT(horizon > 0);
  const auto bucket_of = [&](SimTime t) {
    const std::int64_t clamped = std::clamp<std::int64_t>(t.usec(), 0, horizon);
    // End-exclusive mapping; the last instant maps into the final bucket.
    return std::min(width - 1, static_cast<std::size_t>(
                                   static_cast<unsigned long long>(clamped) * width /
                                   static_cast<unsigned long long>(horizon)));
  };

  std::vector<std::string> rows(scenario.phys_links.size(),
                                std::string(width, '.'));
  auto paint = [&](std::size_t p, const Interval& iv, char mark) {
    if (iv.end <= SimTime::zero() || iv.begin >= scenario.horizon) return;
    const std::size_t from = bucket_of(max(iv.begin, SimTime::zero()));
    const std::size_t to = bucket_of(min(iv.end, scenario.horizon) -
                                     SimDuration::from_usec(1));
    for (std::size_t c = from; c <= to && c < width; ++c) {
      rows[p][c] = mark;
    }
  };

  for (const VirtualLink& vl : scenario.virt_links) {
    paint(vl.phys.index(), vl.window, '-');
  }
  for (const CommStep& step : schedule.steps()) {
    if (!step.link.valid() || step.link.index() >= scenario.virt_links.size()) continue;
    paint(scenario.vlink(step.link).phys.index(), Interval{step.start, step.arrival},
          '#');
  }

  std::size_t label_width = 0;
  std::vector<std::string> labels;
  labels.reserve(scenario.phys_links.size());
  for (const PhysicalLink& pl : scenario.phys_links) {
    labels.push_back(scenario.machine(pl.from).name + "->" +
                     scenario.machine(pl.to).name);
    label_width = std::max(label_width, labels.back().size());
  }

  std::ostringstream os;
  for (std::size_t p = 0; p < rows.size(); ++p) {
    os << labels[p] << std::string(label_width - labels[p].size(), ' ') << " |"
       << rows[p] << "|\n";
  }
  os << std::string(label_width, ' ') << "  0" << std::string(width > 10 ? width - 9 : 0, ' ')
     << scenario.horizon.to_string() << "\n";
  return os.str();
}

}  // namespace datastage
