#include "sim/fault_replay.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {
namespace {

// ceil(a * b / c) for non-negative operands without int64 overflow.
std::int64_t ceil_mul_div(std::int64_t a, std::int64_t b, std::int64_t c) {
  DS_ASSERT(a >= 0 && b >= 0 && c > 0);
  using Wide = unsigned __int128;
  const Wide num = static_cast<Wide>(a) * static_cast<Wide>(b);
  const Wide q = (num + static_cast<Wide>(c) - 1) / static_cast<Wide>(c);
  return static_cast<std::int64_t>(q);
}

// floor(a * b / c) for non-negative operands without int64 overflow.
std::int64_t floor_mul_div(std::int64_t a, std::int64_t b, std::int64_t c) {
  DS_ASSERT(a >= 0 && b >= 0 && c > 0);
  using Wide = unsigned __int128;
  return static_cast<std::int64_t>(static_cast<Wide>(a) * static_cast<Wide>(b) /
                                   static_cast<Wide>(c));
}

class FaultReplay {
 public:
  FaultReplay(const Scenario& scenario, const Schedule& schedule,
              const FaultSpec& faults)
      : scenario_(scenario), schedule_(schedule), faults_(faults) {
    const std::size_t n = scenario.item_count();
    const std::size_t m = scenario.machine_count();
    avail_.assign(n, std::vector<SimTime>(m, SimTime::infinity()));
    outcomes_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      outcomes_[i].resize(scenario.items[i].requests.size());
      for (const SourceLocation& src : scenario.items[i].sources) {
        if (src.hold_window().empty()) continue;
        avail_[i][src.machine.index()] = src.available_at;
      }
    }
    for (std::size_t p = 0; p < scenario.phys_links.size(); ++p) {
      outage_by_link_.emplace_back();
    }
    for (const LinkOutage& outage : faults.outages) {
      outage_by_link_[outage.link.index()].insert_merge(outage.window);
    }
  }

  FaultReplayReport run() {
    // Steps ordered by start; at equal instants arrivals are applied before
    // losses and losses before starts (a copy arriving at t can be destroyed
    // by a loss at t; a sender hit by a loss at t cannot depart at t).
    std::vector<std::size_t> order(schedule_.size());
    for (std::size_t s = 0; s < order.size(); ++s) order[s] = s;
    const auto steps = schedule_.steps();
    std::sort(order.begin(), order.end(), [&steps](std::size_t a, std::size_t b) {
      if (steps[a].start != steps[b].start) return steps[a].start < steps[b].start;
      if (steps[a].arrival != steps[b].arrival) {
        return steps[a].arrival < steps[b].arrival;
      }
      return a < b;
    });

    std::vector<std::size_t> losses(faults_.copy_losses.size());
    for (std::size_t l = 0; l < losses.size(); ++l) losses[l] = l;
    std::sort(losses.begin(), losses.end(), [this](std::size_t a, std::size_t b) {
      if (faults_.copy_losses[a].at != faults_.copy_losses[b].at) {
        return faults_.copy_losses[a].at < faults_.copy_losses[b].at;
      }
      return a < b;
    });

    std::size_t next_loss = 0;
    for (const std::size_t s : order) {
      const CommStep& step = steps[s];
      drain_until(step.start, losses, next_loss);
      on_step(step);
    }
    drain_until(SimTime::infinity(), losses, next_loss);

    report_.outcomes = std::move(outcomes_);
    return std::move(report_);
  }

 private:
  struct PendingArrival {
    SimTime at;
    ItemId item;
    MachineId machine;
  };

  // Applies every realized arrival with time <= now and every copy loss with
  // time <= now, interleaved chronologically (arrivals first at equal times).
  void drain_until(SimTime now, const std::vector<std::size_t>& losses,
                   std::size_t& next_loss) {
    for (;;) {
      const PendingArrival* arrival = next_arrival();
      const CopyLoss* loss = next_loss < losses.size()
                                 ? &faults_.copy_losses[losses[next_loss]]
                                 : nullptr;
      const bool take_arrival =
          arrival != nullptr && arrival->at <= now &&
          (loss == nullptr || loss->at > now || arrival->at <= loss->at);
      if (take_arrival) {
        apply_arrival(*arrival);
        pop_arrival();
        continue;
      }
      if (loss != nullptr && loss->at <= now) {
        apply_loss(*loss);
        ++next_loss;
        continue;
      }
      return;
    }
  }

  const PendingArrival* next_arrival() {
    // Arrivals are produced in step-start order but realized out of order
    // (stretching); a sorted drain keeps the timeline chronological.
    if (arrival_cursor_ >= arrivals_.size()) return nullptr;
    auto best = arrivals_.begin() + static_cast<std::ptrdiff_t>(arrival_cursor_);
    for (auto it = best + 1; it != arrivals_.end(); ++it) {
      if (it->at < best->at) best = it;
    }
    std::iter_swap(arrivals_.begin() + static_cast<std::ptrdiff_t>(arrival_cursor_),
                   best);
    return &arrivals_[arrival_cursor_];
  }
  void pop_arrival() { ++arrival_cursor_; }

  void apply_arrival(const PendingArrival& arrival) {
    const std::size_t i = arrival.item.index();
    SimTime& avail = avail_[i][arrival.machine.index()];
    avail = min(avail, arrival.at);
    const DataItem& item = scenario_.item(arrival.item);
    for (std::size_t k = 0; k < item.requests.size(); ++k) {
      const Request& request = item.requests[k];
      if (request.destination != arrival.machine) continue;
      RequestOutcome& outcome = outcomes_[i][k];
      outcome.arrival = min(outcome.arrival, arrival.at);
      if (arrival.at <= request.deadline) outcome.satisfied = true;
    }
  }

  void apply_loss(const CopyLoss& loss) {
    const DataItem* item = nullptr;
    std::size_t i = 0;
    for (; i < scenario_.item_count(); ++i) {
      if (scenario_.items[i].name == loss.item_name) {
        item = &scenario_.items[i];
        break;
      }
    }
    DS_ASSERT_MSG(item != nullptr, "copy loss for unknown item");
    SimTime& avail = avail_[i][loss.machine.index()];
    if (avail > loss.at) return;  // nothing was there (or it arrives later)
    avail = SimTime::infinity();
    ++report_.copy_losses_applied;
    // The destination lost the data inside the delivery window: the request
    // is only satisfied if a later arrival re-delivers it by the deadline.
    for (std::size_t k = 0; k < item->requests.size(); ++k) {
      const Request& request = item->requests[k];
      if (request.destination != loss.machine) continue;
      if (request.deadline < loss.at) continue;  // window already closed
      outcomes_[i][k].satisfied = false;
    }
  }

  void on_step(const CommStep& step) {
    DS_ASSERT_MSG(step.item.valid() && step.item.index() < scenario_.item_count() &&
                      step.link.valid() &&
                      step.link.index() < scenario_.virt_links.size() &&
                      step.from.valid() &&
                      step.from.index() < scenario_.machine_count() &&
                      step.to.valid() && step.to.index() < scenario_.machine_count(),
                  "fault replay requires a structurally valid schedule");
    const std::size_t i = step.item.index();
    if (avail_[i][step.from.index()] > step.start) {
      ++report_.dropped_missing_copy;
      return;
    }
    const VirtualLink& vl = scenario_.vlink(step.link);

    // Realized transmission: walk the degraded fragments of the remaining
    // link window, spending the nominal transmission budget at each
    // fragment's reduced rate. The trailing latency is rate-independent.
    const std::int64_t bytes = scenario_.item(step.item).size_bytes;
    std::int64_t remaining = transfer_duration(bytes, vl.bandwidth_bps).usec();
    SimTime finish = step.start;
    bool fits = remaining == 0;
    for (const auto& [frag, bps] :
         degraded_fragments(Interval{step.start, vl.window.end}, vl.bandwidth_bps,
                            vl.phys, faults_.degradations)) {
      if (fits) break;
      const std::int64_t len = frag.length().usec();
      const std::int64_t needed =
          bps == vl.bandwidth_bps ? remaining
                                  : ceil_mul_div(remaining, vl.bandwidth_bps, bps);
      if (needed <= len) {
        finish = frag.begin + SimDuration::from_usec(needed);
        fits = true;
        break;
      }
      remaining -= bps == vl.bandwidth_bps
                       ? len
                       : floor_mul_div(len, bps, vl.bandwidth_bps);
    }
    const SimTime arrival = finish + vl.latency;
    const Interval realized{step.start, arrival};
    if (!fits || !vl.window.contains(realized)) {
      ++report_.dropped_window;
      return;
    }
    if (outage_by_link_[vl.phys.index()].overlaps(realized)) {
      ++report_.dropped_outage;
      return;
    }
    if (arrival != step.arrival) ++report_.stretched;
    ++report_.transfers;
    report_.completion = max(report_.completion, arrival);
    arrivals_.push_back(PendingArrival{arrival, step.item, step.to});
  }

  const Scenario& scenario_;
  const Schedule& schedule_;
  const FaultSpec& faults_;
  FaultReplayReport report_;
  OutcomeMatrix outcomes_;
  std::vector<std::vector<SimTime>> avail_;  // [item][machine]
  std::vector<IntervalSet> outage_by_link_;  // [phys link]
  std::vector<PendingArrival> arrivals_;
  std::size_t arrival_cursor_ = 0;
};

}  // namespace

FaultReplayReport replay_under_faults(const Scenario& scenario,
                                      const Schedule& schedule,
                                      const FaultSpec& faults) {
  return FaultReplay(scenario, schedule, faults).run();
}

}  // namespace datastage
