// Schedule-replay simulator and validator.
//
// Replays a Schedule against a pristine copy of the scenario as a discrete-
// event simulation and independently re-derives everything the schedulers
// claim: that every transfer respects link windows and link exclusivity, that
// senders actually hold the data they send, that no machine ever exceeds its
// storage capacity (with the same hold/garbage-collection rules the
// schedulers use), and which requests are satisfied. Any disagreement with a
// scheduler is a bug in one of them — the property test suite replays every
// heuristic's schedule through this simulator.
#pragma once

#include <string>
#include <vector>

#include "core/satisfaction.hpp"
#include "core/schedule.hpp"
#include "model/scenario.hpp"

namespace datastage {

struct SimReport {
  bool ok = true;
  std::vector<std::string> issues;  ///< empty iff ok

  /// Independently derived request outcomes.
  OutcomeMatrix outcomes;

  /// When the last transfer completes; zero for an empty schedule.
  SimTime completion = SimTime::zero();
  std::size_t transfers = 0;

  /// Peak storage usage per machine across the run (observability).
  std::vector<std::int64_t> peak_usage;
};

/// Replays `schedule` against `scenario`.
SimReport simulate(const Scenario& scenario, const Schedule& schedule);

}  // namespace datastage
