// Chrome Trace Event (Perfetto) export of a scheduling run.
//
// Renders a scenario + schedule (+ optionally the request outcomes and the
// wall-clock phase timers) as a Chrome Trace Event JSON document that loads
// directly in ui.perfetto.dev or chrome://tracing. Two process tracks:
//
//   * pid 1 "simulation": one thread per *physical* link, with a complete
//     ("X") slice per scheduled transfer occupying [start, arrival) in
//     simulation microseconds, plus a "deadline misses" thread carrying an
//     instant ("i") event per unsatisfied request at its deadline.
//   * pid 2 "wall clock": one thread of engine phase slices (load, schedule,
//     replay, ...) laid end to end, so the relative cost of each phase is
//     visible next to the simulated timeline.
//
// Chrome trace timestamps are microseconds, which matches SimTime exactly —
// simulation slices need no unit conversion and stay bit-deterministic.
// Emission order is canonical (links ascending, steps by start time), so the
// document is byte-identical across `--jobs` for the same schedule.
#pragma once

#include <cstdint>
#include <string>

#include "core/satisfaction.hpp"
#include "core/schedule.hpp"
#include "model/scenario.hpp"
#include "obs/metrics.hpp"

namespace datastage::sim {

struct ChromeTraceOptions {
  /// Unsatisfied requests to render as deadline-miss instants; may be null.
  const OutcomeMatrix* outcomes = nullptr;
  /// Wall-clock phase totals for the pid-2 track; may be null.
  const obs::PhaseTimer* phases = nullptr;
};

/// Track (tid) of physical link `phys_index` on the simulation process.
/// 64-bit: a `static_cast<int>` of the link count overflowed (and could
/// collide with the deadline-miss track) on huge topologies.
constexpr std::int64_t link_track_id(std::size_t phys_index) {
  return static_cast<std::int64_t>(phys_index) + 1;
}

/// Track (tid) of the deadline-miss instants: one past the last link track,
/// so it can never collide with a link for any representable link count.
constexpr std::int64_t miss_track_id(std::size_t phys_link_count) {
  return static_cast<std::int64_t>(phys_link_count) + 1;
}

/// Renders the run as `{"displayTimeUnit":"ms","traceEvents":[...]}`.
std::string chrome_trace_json(const Scenario& scenario, const Schedule& schedule,
                              const ChromeTraceOptions& options = {});

}  // namespace datastage::sim
