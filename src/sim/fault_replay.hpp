// Replays a committed schedule under a FaultSpec and scores the realized
// outcome — what actually happens when a plan built against the nominal
// scenario meets outages, brownouts and copy losses it did not anticipate.
//
// Semantics (shared with the dynamic stager's recovery path):
//  - A transfer whose realized busy interval overlaps an outage window of its
//    physical link never completes (in-flight data on a dead link is lost).
//  - A degradation window stretches the transmission: inside a degraded
//    fragment the link moves bits at factor * nominal rate, so the realized
//    arrival is later than planned. A transfer stretched past the end of its
//    virtual-link window is dropped (the link is unavailable after it).
//  - A copy loss destroys the copy present at the machine at the loss time;
//    arrivals after the loss re-create the copy. A transfer whose sender no
//    longer holds the item at start is dropped (cascading failure).
//  - A request satisfied by an arrival is *un*-satisfied by a destination
//    copy loss at or before its deadline (the consumer lost the data inside
//    its delivery window) unless a later arrival at or before the deadline
//    re-delivers it. The deadline itself stays closed: arriving exactly at
//    the deadline counts, and a loss exactly at the deadline still voids it.
//
// With an empty FaultSpec the realized outcomes equal simulate()'s outcomes
// for any schedule that passes the clean replay. Storage is not re-audited
// here — the clean replay already audits it, and faults only remove capacity
// from links and copies.
#pragma once

#include <cstddef>

#include "core/satisfaction.hpp"
#include "core/schedule.hpp"
#include "model/fault.hpp"
#include "model/scenario.hpp"

namespace datastage {

/// What a schedule realized under faults.
struct FaultReplayReport {
  OutcomeMatrix outcomes;

  std::size_t transfers = 0;             ///< steps that completed
  std::size_t dropped_outage = 0;        ///< steps killed by an outage window
  std::size_t dropped_missing_copy = 0;  ///< sender lost the copy (cascade)
  std::size_t dropped_window = 0;        ///< stretched past the link window
  std::size_t stretched = 0;             ///< completed later than planned
  std::size_t copy_losses_applied = 0;   ///< losses that destroyed a copy
  SimTime completion = SimTime::zero();  ///< last realized arrival

  std::size_t dropped() const {
    return dropped_outage + dropped_missing_copy + dropped_window;
  }
};

/// Deterministically replays `schedule` (planned against `scenario`) under
/// `faults`. The schedule must be structurally valid for the scenario (id
/// ranges are asserted, not reported).
FaultReplayReport replay_under_faults(const Scenario& scenario,
                                      const Schedule& schedule,
                                      const FaultSpec& faults);

}  // namespace datastage
