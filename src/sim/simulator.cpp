#include "sim/simulator.hpp"

#include <sstream>

#include "net/storage_timeline.hpp"
#include "sim/event_queue.hpp"
#include "util/interval.hpp"

namespace datastage {
namespace {

class Simulator {
 public:
  Simulator(const Scenario& scenario, const Schedule& schedule)
      : scenario_(scenario),
        schedule_(schedule),
        tracker_(scenario),
        link_busy_(scenario.virt_links.size()),
        copy_available_(scenario.item_count(),
                        std::vector<SimTime>(scenario.machine_count(),
                                             SimTime::infinity())),
        hold_begin_(scenario.item_count(),
                    std::vector<SimTime>(scenario.machine_count(),
                                         SimTime::infinity())) {
    storage_.reserve(scenario.machine_count());
    for (const Machine& m : scenario.machines) storage_.emplace_back(m.capacity_bytes);
  }

  SimReport run() {
    charge_initial_copies();
    static_checks();
    replay_events();
    finalize();
    return std::move(report_);
  }

 private:
  void issue(const std::string& msg) {
    report_.ok = false;
    report_.issues.push_back(msg);
  }

  std::string step_tag(std::size_t index, const CommStep& step) const {
    std::ostringstream os;
    os << "step " << index << " (item " << step.item.value() << ", "
       << step.from.value() << "->" << step.to.value() << " @ "
       << step.start.to_string() << ")";
    return os.str();
  }

  bool is_destination(ItemId item, MachineId machine) const {
    for (const Request& r : scenario_.item(item).requests) {
      if (r.destination == machine) return true;
    }
    return false;
  }

  SimTime hold_end(ItemId item, MachineId machine) const {
    return copy_hold_end(scenario_, item, machine, is_destination(item, machine));
  }

  void charge_initial_copies() {
    for (std::size_t i = 0; i < scenario_.item_count(); ++i) {
      const DataItem& item = scenario_.items[i];
      for (const SourceLocation& src : item.sources) {
        // Empty hold window: the copy never exists (shared rule with
        // NetworkState and the dynamic stager) — charge and register nothing.
        const Interval hold = src.hold_window();
        if (hold.empty()) continue;
        StorageTimeline& st = storage_[src.machine.index()];
        if (!st.fits(item.size_bytes, hold)) {
          issue("initial copy of item " + std::to_string(i) + " does not fit on machine " +
                std::to_string(src.machine.value()));
          continue;
        }
        st.allocate(item.size_bytes, hold);
        copy_available_[i][src.machine.index()] = src.available_at;
        hold_begin_[i][src.machine.index()] = src.available_at;
      }
    }
  }

  // Per-step structural checks that need no global event ordering. Steps
  // failing the id-range check are excluded from event replay entirely.
  void static_checks() {
    const auto steps = schedule_.steps();
    step_valid_.assign(steps.size(), true);
    for (std::size_t s = 0; s < steps.size(); ++s) {
      const CommStep& step = steps[s];
      if (!step.item.valid() || step.item.index() >= scenario_.item_count() ||
          !step.link.valid() || step.link.index() >= scenario_.virt_links.size() ||
          !step.from.valid() || step.from.index() >= scenario_.machine_count() ||
          !step.to.valid() || step.to.index() >= scenario_.machine_count()) {
        issue("step " + std::to_string(s) + ": id out of range");
        step_valid_[s] = false;
        continue;
      }
      const VirtualLink& vl = scenario_.vlink(step.link);
      const CommStep tag_step = step;
      if (vl.from != step.from || vl.to != step.to) {
        issue(step_tag(s, tag_step) + ": endpoints disagree with the virtual link");
      }
      const SimDuration expected =
          transfer_duration(scenario_.item(step.item).size_bytes, vl.bandwidth_bps) +
          vl.latency;
      if (step.arrival - step.start != expected) {
        issue(step_tag(s, tag_step) + ": duration mismatch (expected " +
              expected.to_string() + ", got " + (step.arrival - step.start).to_string() +
              ")");
      }
      const Interval busy{step.start, step.arrival};
      if (!vl.window.contains(busy)) {
        issue(step_tag(s, tag_step) + ": outside the link availability window " +
              vl.window.to_string());
      }
      IntervalSet& reservations = link_busy_[step.link.index()];
      if (reservations.overlaps(busy)) {
        issue(step_tag(s, tag_step) + ": overlaps another transfer on the same link");
      } else if (!busy.empty()) {
        reservations.insert_disjoint(busy);
      }
    }
  }

  void replay_events() {
    EventQueue queue;
    const auto steps = schedule_.steps();
    for (std::size_t s = 0; s < steps.size(); ++s) {
      if (!step_valid_[s]) continue;
      queue.push(SimEvent{steps[s].start, SimEventKind::kTransferStart, s});
      queue.push(SimEvent{steps[s].arrival, SimEventKind::kArrival, s});
    }

    while (!queue.empty()) {
      const SimEvent event = queue.pop();
      const CommStep& step = steps[event.step];
      if (event.kind == SimEventKind::kTransferStart) {
        on_transfer_start(event.step, step);
      } else {
        on_arrival(step);
        report_.completion = max(report_.completion, step.arrival);
        ++report_.transfers;
      }
    }
  }

  void on_transfer_start(std::size_t index, const CommStep& step) {
    const std::size_t i = step.item.index();
    const SimTime sender_avail = copy_available_[i][step.from.index()];
    if (sender_avail > step.start) {
      issue(step_tag(index, step) + ": sender does not hold the item at start (" +
            (sender_avail.is_infinite() ? std::string("never arrives")
                                        : "available " + sender_avail.to_string()) +
            ")");
      return;
    }
    if (step.start >= hold_end(step.item, step.from)) {
      issue(step_tag(index, step) + ": sender copy garbage-collected before start");
      return;
    }

    // Receiver storage, mirroring the schedulers' hold rules: charge from
    // transfer start to the role-aware hold end; an existing hold only needs
    // the extension.
    const std::int64_t bytes = scenario_.item(step.item).size_bytes;
    StorageTimeline& st = storage_[step.to.index()];
    SimTime& hb = hold_begin_[i][step.to.index()];
    Interval charge;
    if (!hb.is_infinite()) {
      if (step.start >= hb) return;  // already held over the whole window
      charge = Interval{step.start, hb};
    } else {
      charge = Interval{step.start, hold_end(step.item, step.to)};
    }
    if (!st.fits(bytes, charge)) {
      issue(step_tag(index, step) + ": receiver storage capacity exceeded");
      return;
    }
    st.allocate(bytes, charge);
    hb = min(hb, step.start);
  }

  void on_arrival(const CommStep& step) {
    const std::size_t i = step.item.index();
    SimTime& avail = copy_available_[i][step.to.index()];
    avail = min(avail, step.arrival);
    tracker_.note_arrival(step.item, step.to, step.arrival);
  }

  void finalize() {
    report_.outcomes = tracker_.take_outcomes();
    report_.peak_usage.reserve(scenario_.machine_count());
    for (std::size_t m = 0; m < scenario_.machine_count(); ++m) {
      report_.peak_usage.push_back(
          storage_[m].max_usage(Interval{SimTime::zero(), SimTime::infinity()}));
    }
  }

  const Scenario& scenario_;
  const Schedule& schedule_;
  OutcomeTracker tracker_;
  SimReport report_;
  std::vector<StorageTimeline> storage_;
  std::vector<bool> step_valid_;
  std::vector<IntervalSet> link_busy_;
  std::vector<std::vector<SimTime>> copy_available_;  // [item][machine]
  std::vector<std::vector<SimTime>> hold_begin_;      // [item][machine]
};

}  // namespace

SimReport simulate(const Scenario& scenario, const Schedule& schedule) {
  return Simulator(scenario, schedule).run();
}

}  // namespace datastage
