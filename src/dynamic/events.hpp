// Events for the dynamic data-staging extension (paper §1/§6 future work:
// "dynamic changes to the network configuration, ad-hoc data requests,
// sensor-triggered data transfers").
//
// The static model's parameters "represent the best known information
// collected at the given point in time" (§3); each event changes that
// information and triggers a replan of everything not yet committed.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "model/scenario.hpp"
#include "util/ids.hpp"
#include "util/interval.hpp"
#include "util/time.hpp"

namespace datastage {

/// A brand-new data item (with sources and initial requests) becomes known.
struct NewItemEvent {
  DataItem item;
};

/// An ad-hoc request for an existing item arrives.
struct NewRequestEvent {
  std::string item_name;
  Request request;
};

/// A physical link fails: all of its remaining availability disappears until
/// a LinkRestoreEvent (if any).
struct LinkOutageEvent {
  PhysLinkId link;
};

/// A failed physical link comes back: its original windows resume from now.
struct LinkRestoreEvent {
  PhysLinkId link;
};

/// A physical link runs at `factor` of its nominal bandwidth during
/// `window`. Announced at window.begin (the stager learns of a brownout when
/// it starts, like an outage); transfers in flight on the link are dropped
/// and replanned at the degraded rate. Overlapping degradations compound by
/// taking the minimum factor.
struct LinkDegradeEvent {
  PhysLinkId link;
  Interval window;
  double factor = 1.0;
};

/// The copy of `item_name` held by `machine` is destroyed now. Requests the
/// copy had satisfied whose deadline has not passed are re-opened; the stager
/// re-stages from surviving copies with the usual deadline feasibility.
struct CopyLossEvent {
  std::string item_name;
  MachineId machine;
};

/// An outstanding request (`item_name`, `destination`) is withdrawn: its
/// transfers-to-come are abandoned at the next replan and the request is
/// closed as cancelled (never satisfied). Cancelling an already-resolved or
/// unknown request is a no-op.
struct CancelRequestEvent {
  std::string item_name;
  MachineId destination;
};

using StagingEventBody =
    std::variant<NewItemEvent, NewRequestEvent, LinkOutageEvent, LinkRestoreEvent,
                 LinkDegradeEvent, CopyLossEvent, CancelRequestEvent>;

struct StagingEvent {
  SimTime at;
  StagingEventBody body;
};

/// Total tie order for events at equal timestamps. Fault events sort before
/// arrival events: a restore must precede a new outage so a link is never
/// "down twice", losses destroy copies delivered at the same instant (the
/// stager's own convention) — and a submit at time t must see the post-fault
/// world, so NewItem/NewRequest rank after every fault and cancels come last
/// (a same-instant submit+cancel pair nets out to a cancelled request).
/// Ranks: restore=0 < outage=1 < degrade=2 < copy_loss=3 < new_item=4 <
/// new_request=5 < cancel=6.
int staging_event_rank(const StagingEventBody& body);

/// Secondary tie key after rank: (numeric id, name) — link id for link
/// events, machine id + item name for copy losses and request events, item
/// name alone for new items. Events fully tied on (time, rank, key) keep
/// their input order under sort_staging_events (stable sort).
std::pair<std::int32_t, std::string> staging_event_tie_key(
    const StagingEventBody& body);

/// The comparator behind every deterministic event stream: orders by time,
/// then staging_event_rank, then staging_event_tie_key.
bool staging_event_before(const StagingEvent& a, const StagingEvent& b);

/// Stable-sorts `events` with staging_event_before.
void sort_staging_events(std::vector<StagingEvent>& events);

}  // namespace datastage
