// Events for the dynamic data-staging extension (paper §1/§6 future work:
// "dynamic changes to the network configuration, ad-hoc data requests,
// sensor-triggered data transfers").
//
// The static model's parameters "represent the best known information
// collected at the given point in time" (§3); each event changes that
// information and triggers a replan of everything not yet committed.
#pragma once

#include <string>
#include <variant>

#include "model/scenario.hpp"
#include "util/ids.hpp"
#include "util/interval.hpp"
#include "util/time.hpp"

namespace datastage {

/// A brand-new data item (with sources and initial requests) becomes known.
struct NewItemEvent {
  DataItem item;
};

/// An ad-hoc request for an existing item arrives.
struct NewRequestEvent {
  std::string item_name;
  Request request;
};

/// A physical link fails: all of its remaining availability disappears until
/// a LinkRestoreEvent (if any).
struct LinkOutageEvent {
  PhysLinkId link;
};

/// A failed physical link comes back: its original windows resume from now.
struct LinkRestoreEvent {
  PhysLinkId link;
};

/// A physical link runs at `factor` of its nominal bandwidth during
/// `window`. Announced at window.begin (the stager learns of a brownout when
/// it starts, like an outage); transfers in flight on the link are dropped
/// and replanned at the degraded rate. Overlapping degradations compound by
/// taking the minimum factor.
struct LinkDegradeEvent {
  PhysLinkId link;
  Interval window;
  double factor = 1.0;
};

/// The copy of `item_name` held by `machine` is destroyed now. Requests the
/// copy had satisfied whose deadline has not passed are re-opened; the stager
/// re-stages from surviving copies with the usual deadline feasibility.
struct CopyLossEvent {
  std::string item_name;
  MachineId machine;
};

using StagingEventBody =
    std::variant<NewItemEvent, NewRequestEvent, LinkOutageEvent, LinkRestoreEvent,
                 LinkDegradeEvent, CopyLossEvent>;

struct StagingEvent {
  SimTime at;
  StagingEventBody body;
};

}  // namespace datastage
