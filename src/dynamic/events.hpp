// Events for the dynamic data-staging extension (paper §1/§6 future work:
// "dynamic changes to the network configuration, ad-hoc data requests,
// sensor-triggered data transfers").
//
// The static model's parameters "represent the best known information
// collected at the given point in time" (§3); each event changes that
// information and triggers a replan of everything not yet committed.
#pragma once

#include <string>
#include <variant>

#include "model/scenario.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace datastage {

/// A brand-new data item (with sources and initial requests) becomes known.
struct NewItemEvent {
  DataItem item;
};

/// An ad-hoc request for an existing item arrives.
struct NewRequestEvent {
  std::string item_name;
  Request request;
};

/// A physical link fails: all of its remaining availability disappears until
/// a LinkRestoreEvent (if any).
struct LinkOutageEvent {
  PhysLinkId link;
};

/// A failed physical link comes back: its original windows resume from now.
struct LinkRestoreEvent {
  PhysLinkId link;
};

using StagingEventBody =
    std::variant<NewItemEvent, NewRequestEvent, LinkOutageEvent, LinkRestoreEvent>;

struct StagingEvent {
  SimTime at;
  StagingEventBody body;
};

}  // namespace datastage
