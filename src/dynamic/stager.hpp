// Dynamic data staging by event-driven replanning.
//
// DynamicStager maintains an evolving view of the world (link availability,
// item copies, outstanding requests) and a communication schedule. Between
// events the current plan stands; at every event the stager
//   1. commits every planned transfer that has already started (in-flight
//      transfers finish; their receivers become future copy holders),
//   2. cancels every transfer that has not started,
//   3. updates the world (new item / new request / link outage / restore),
//   4. re-runs the configured static heuristic on the residual problem.
//
// Semantics choices (documented deviations from the static model):
//   * Garbage collection keeps the static rule — intermediate copies are
//     removed at (latest known deadline + γ) — where "known" includes ad-hoc
//     requests that arrived before the copy expired; expired copies cannot
//     be revived by later requests.
//   * A request whose destination already holds a (late) copy is closed as
//     unsatisfied rather than kept pending.
//
// Validation: effective_scenario() reconstructs the availability that
// actually existed over the whole run (original windows minus outage
// periods, plus added items/requests), so the merged schedule can be
// replayed through sim/simulator like any static schedule.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "core/schedule.hpp"
#include "dynamic/events.hpp"
#include "model/fault.hpp"
#include "model/scenario.hpp"
#include "util/interval.hpp"

namespace datastage {

class ThreadPool;

namespace obs {
class RunTrace;
}  // namespace obs

/// Final state of one (possibly ad-hoc) request across the dynamic run.
struct DynamicRequestRecord {
  std::string item_name;
  MachineId destination;
  SimTime deadline;
  Priority priority = kPriorityLow;
  bool satisfied = false;
  /// Withdrawn by a CancelRequestEvent before it was resolved; never counts
  /// as satisfied.
  bool cancelled = false;
  SimTime arrival = SimTime::infinity();
};

/// Lifecycle state of one (item, destination) request as seen by queries
/// while the run is still in progress.
enum class DynamicRequestStatus {
  kUnknown,      ///< no such request was ever tracked
  kPending,      ///< outstanding: the stager is still trying to deliver it
  kSatisfied,    ///< closed with an on-time arrival
  kUnsatisfied,  ///< closed without an on-time arrival
  kCancelled,    ///< withdrawn via CancelRequestEvent
};

struct DynamicResult {
  Schedule schedule;  ///< committed + currently planned transfers
  std::vector<DynamicRequestRecord> requests;
  std::size_t replans = 0;

  double weighted_value(const PriorityWeighting& weighting) const;
  std::size_t satisfied_count() const;
};

class DynamicStager {
 public:
  /// Starts at time zero with `initial` (validated) and plans immediately.
  DynamicStager(Scenario initial, SchedulerSpec spec, EngineOptions options);
  ~DynamicStager();

  /// Processes one event; events must arrive in nondecreasing time order.
  void on_event(const StagingEvent& event);

  /// Advances the clock with no world change (commits started transfers);
  /// does not replan.
  void advance_to(SimTime now);

  /// Finishes the run: commits the remaining plan and returns the merged
  /// schedule plus per-request records.
  DynamicResult finish();

  /// The scenario describing what was *actually* available over the whole
  /// run: original windows minus outage periods, plus every added item and
  /// request. The merged schedule replays cleanly against it.
  Scenario effective_scenario() const;

  /// The open residual problem at `now()`: remaining link availability
  /// (outages and announced degradations applied), surviving copies as
  /// sources, outstanding requests only. This is the world an admission
  /// estimate must reason about — a request infeasible here is infeasible,
  /// full stop (core::quick_admission_estimate builds on it).
  Scenario residual_scenario() const;

  /// True when the stager tracks an item of this name (injecting a
  /// NewRequestEvent for an unknown item is a contract violation).
  bool has_item(const std::string& item_name) const {
    return find_item(item_name) != nullptr;
  }

  /// Status of the most recently added request for (item, destination);
  /// kUnknown when no such request was ever tracked.
  DynamicRequestStatus request_status(const std::string& item_name,
                                      MachineId destination) const;

  /// Earliest arrival at which the committed + currently planned schedule
  /// delivers `item_name` to `destination` (the resolved arrival for closed
  /// requests); infinity when nothing is scheduled to arrive there.
  SimTime planned_arrival(const std::string& item_name,
                          MachineId destination) const;

  SimTime now() const { return now_; }
  std::size_t replans() const { return replans_; }
  std::size_t committed_step_count() const { return committed_.size(); }
  std::size_t planned_step_count() const { return plan_.size(); }

 private:
  struct TrackedRequest {
    Request request;
    bool resolved = false;  ///< satisfied, or closed as hopeless
    bool satisfied = false;
    SimTime arrival = SimTime::infinity();
    /// A fault un-resolved this request at least once (in-flight failure or
    /// copy loss). Requeued-then-satisfied requests emit request_recovered.
    bool requeued = false;
    /// Withdrawn via CancelRequestEvent (implies resolved, never satisfied);
    /// cancellation is final — faults cannot re-open a cancelled request.
    bool cancelled = false;
  };

  /// A copy-loss fault that destroyed a copy at `machine` at time `at`.
  /// Copies materialized after `at` (re-staged deliveries) are unaffected.
  struct LossMark {
    MachineId machine;
    SimTime at;
  };

  struct TrackedItem {
    std::string name;
    std::int64_t size_bytes = 0;
    std::vector<SourceLocation> original_sources;
    std::vector<Copy> copies;  ///< current copies incl. staged/in-flight ones
    std::vector<TrackedRequest> requests;
    std::vector<LossMark> losses;  ///< applied copy-loss faults

    bool machine_holds(MachineId machine) const;
    bool is_original_source(MachineId machine) const;
    bool is_destination(MachineId machine) const;
    bool any_outstanding() const;
    SimTime latest_outstanding_deadline() const;
    /// Latest deadline among every request known so far (resolved or not);
    /// drives garbage collection exactly as the static model's rule does.
    SimTime latest_known_deadline() const;
    /// Latest copy-loss time at `machine` (survival cutoff for re-derived
    /// copies); nullopt when no loss ever hit the machine.
    std::optional<SimTime> last_loss_at(MachineId machine) const;
    /// Earliest copy-loss time at `machine` — the loss that destroyed the
    /// original source copy, ending its effective hold window.
    std::optional<SimTime> first_loss_at(MachineId machine) const;
  };

  /// A transfer with its physical link resolved. Virtual-link ids in planned
  /// steps refer to the *residual* scenario of the replan that produced
  /// them; the physical id is the stable cross-replan identity. finish()
  /// remaps steps onto the effective scenario's virtual links.
  struct PlannedStep {
    CommStep step;
    PhysLinkId phys;
  };

  void commit_started(SimTime now);
  void note_arrival(TrackedItem& item, MachineId machine, SimTime arrival);
  /// Applies a copy-loss fault: destroys the copy present at `machine` (if
  /// any), records the loss mark, and re-opens requests the lost copy had
  /// satisfied whose deadline still admits a re-delivery.
  void apply_copy_loss(TrackedItem& item, MachineId machine);
  void bump(const char* counter) const;
  /// The attached trace, or nullptr when tracing is off.
  obs::RunTrace* trace() const;
  /// Emits a `requeue` trace event: a fault re-opened request (`item`,
  /// destination) for reason "link_outage" / "link_degrade" / "copy_loss".
  void trace_requeue(const TrackedItem& item, const Request& request,
                     const char* reason) const;
  /// True for copies that persist to the end of the run: original sources
  /// and destinations that received the item.
  bool copy_is_permanent(const TrackedItem& item, const Copy& copy) const;
  void run_garbage_collection();
  void replan();
  /// `reason` labels the requeue trace events ("link_outage"/"link_degrade").
  void fail_in_flight(PhysLinkId link, const char* reason);
  void rebuild_availability(PhysLinkId link);
  /// Re-derives an item's copy set from its original sources and the
  /// surviving committed transfers (gc-filtered), then re-resolves any
  /// unresolved request whose destination turns out to hold a copy. Used
  /// after in-flight failures, which can invalidate incremental bookkeeping.
  void rebuild_copies(ItemId item);
  TrackedItem* find_item(const std::string& name);
  const TrackedItem* find_item(const std::string& name) const;

  // --- immutable world structure ---
  Scenario base_;  ///< machines, phys links, ORIGINAL windows, gamma, horizon

  // --- evolving world state ---
  SimTime now_ = SimTime::zero();
  /// Remaining availability per physical link (original windows minus
  /// committed busy time minus outage periods).
  std::vector<IntervalSet> available_;  // per plink: available windows
  std::vector<bool> link_up_;
  /// Completed outage periods per plink, for effective_scenario and
  /// availability reconstruction.
  std::vector<IntervalSet> outages_;
  std::vector<SimTime> outage_since_;  // valid while !link_up_
  /// Busy time consumed by committed transfers, per plink.
  std::vector<IntervalSet> consumed_;
  /// Bandwidth degradation windows announced so far (all links, appended in
  /// event order). residual_scenario and effective_scenario split link
  /// windows into fragments carrying the degraded rate.
  std::vector<LinkDegradation> degradations_;
  std::vector<TrackedItem> items_;

  // --- schedule state ---
  std::vector<PlannedStep> committed_;
  std::vector<PlannedStep> plan_;  ///< not yet started, replaced on replan

  SchedulerSpec spec_;
  EngineOptions options_;
  /// Shared across replans when options ask for engine parallelism but the
  /// caller did not inject a pool: each replan builds a fresh engine, and
  /// re-spawning worker threads per replan would dwarf the refresh work.
  std::unique_ptr<ThreadPool> engine_pool_;
  std::size_t replans_ = 0;
  bool finished_ = false;
};

}  // namespace datastage
