#include "dynamic/stager.hpp"

#include <algorithm>

#include "obs/observer.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace datastage {

double DynamicResult::weighted_value(const PriorityWeighting& weighting) const {
  double total = 0.0;
  for (const DynamicRequestRecord& record : requests) {
    if (record.satisfied) total += weighting.weight(record.priority);
  }
  return total;
}

std::size_t DynamicResult::satisfied_count() const {
  std::size_t n = 0;
  for (const DynamicRequestRecord& record : requests) {
    if (record.satisfied) ++n;
  }
  return n;
}

bool DynamicStager::TrackedItem::machine_holds(MachineId machine) const {
  return std::any_of(copies.begin(), copies.end(),
                     [machine](const Copy& c) { return c.machine == machine; });
}

bool DynamicStager::TrackedItem::is_original_source(MachineId machine) const {
  return std::any_of(
      original_sources.begin(), original_sources.end(),
      [machine](const SourceLocation& s) { return s.machine == machine; });
}

bool DynamicStager::TrackedItem::is_destination(MachineId machine) const {
  return std::any_of(
      requests.begin(), requests.end(),
      [machine](const TrackedRequest& r) { return r.request.destination == machine; });
}

bool DynamicStager::TrackedItem::any_outstanding() const {
  return std::any_of(requests.begin(), requests.end(),
                     [](const TrackedRequest& r) { return !r.resolved; });
}

SimTime DynamicStager::TrackedItem::latest_outstanding_deadline() const {
  SimTime latest = SimTime::zero();
  for (const TrackedRequest& r : requests) {
    if (!r.resolved) latest = max(latest, r.request.deadline);
  }
  return latest;
}

SimTime DynamicStager::TrackedItem::latest_known_deadline() const {
  SimTime latest = SimTime::zero();
  for (const TrackedRequest& r : requests) {
    latest = max(latest, r.request.deadline);
  }
  return latest;
}

std::optional<SimTime> DynamicStager::TrackedItem::last_loss_at(
    MachineId machine) const {
  std::optional<SimTime> latest;
  for (const LossMark& loss : losses) {
    if (loss.machine != machine) continue;
    if (!latest.has_value() || loss.at > *latest) latest = loss.at;
  }
  return latest;
}

std::optional<SimTime> DynamicStager::TrackedItem::first_loss_at(
    MachineId machine) const {
  std::optional<SimTime> earliest;
  for (const LossMark& loss : losses) {
    if (loss.machine != machine) continue;
    if (!earliest.has_value() || loss.at < *earliest) earliest = loss.at;
  }
  return earliest;
}

void DynamicStager::bump(const char* counter) const {
  if (options_.observer != nullptr && options_.observer->metrics != nullptr) {
    options_.observer->metrics->counter(counter).inc();
  }
}

obs::RunTrace* DynamicStager::trace() const {
  return options_.observer != nullptr ? options_.observer->trace : nullptr;
}

void DynamicStager::trace_requeue(const TrackedItem& item, const Request& request,
                                  const char* reason) const {
  if (trace() == nullptr) return;
  trace()->event("requeue")
      .field("t_usec", now_.usec())
      .field("item", item.name)
      .field("dest", request.destination.value())
      .field("deadline_usec", request.deadline.usec())
      .field("reason", reason);
}

DynamicStager::DynamicStager(Scenario initial, SchedulerSpec spec,
                             EngineOptions options)
    : base_(std::move(initial)), spec_(spec), options_(std::move(options)) {
  base_.check_valid();

  const std::size_t engine_jobs = options_.engine_jobs == 0
                                      ? ThreadPool::hardware_jobs()
                                      : options_.engine_jobs;
  if (options_.engine_pool == nullptr && engine_jobs > 1) {
    engine_pool_ = std::make_unique<ThreadPool>(engine_jobs);
    options_.engine_pool = engine_pool_.get();
  }

  available_.resize(base_.phys_links.size());
  outages_.resize(base_.phys_links.size());
  link_up_.assign(base_.phys_links.size(), true);
  outage_since_.assign(base_.phys_links.size(), SimTime::zero());
  consumed_.resize(base_.phys_links.size());
  for (const VirtualLink& vl : base_.virt_links) {
    available_[vl.phys.index()].insert_disjoint(vl.window);
  }

  items_.reserve(base_.items.size());
  for (const DataItem& item : base_.items) {
    TrackedItem tracked;
    tracked.name = item.name;
    tracked.size_bytes = item.size_bytes;
    tracked.original_sources = item.sources;
    for (const SourceLocation& src : item.sources) {
      tracked.copies.push_back(Copy{src.machine, src.available_at});
    }
    for (const Request& request : item.requests) {
      tracked.requests.push_back(TrackedRequest{request, false, false,
                                                SimTime::infinity()});
    }
    items_.push_back(std::move(tracked));
  }

  replan();
}

DynamicStager::~DynamicStager() = default;  // engine_pool_ needs the full type

void DynamicStager::note_arrival(TrackedItem& item, MachineId machine,
                                 SimTime arrival) {
  for (TrackedRequest& tracked : item.requests) {
    if (tracked.request.destination != machine || tracked.resolved) continue;
    tracked.arrival = min(tracked.arrival, arrival);
    tracked.resolved = true;  // the destination now holds a copy: closed
    tracked.satisfied = arrival <= tracked.request.deadline;
  }
}

void DynamicStager::commit_started(SimTime now) {
  std::vector<PlannedStep> remaining;
  for (const PlannedStep& planned : plan_) {
    const CommStep& step = planned.step;
    if (step.start >= now) {
      remaining.push_back(planned);
      continue;
    }
    committed_.push_back(planned);
    const Interval busy{step.start, step.arrival};
    available_[planned.phys.index()].subtract(busy);
    consumed_[planned.phys.index()].insert_merge(busy);

    TrackedItem& item = items_[step.item.index()];
    bool updated = false;
    for (Copy& copy : item.copies) {
      if (copy.machine == step.to) {
        copy.available_at = min(copy.available_at, step.arrival);
        updated = true;
        break;
      }
    }
    if (!updated) item.copies.push_back(Copy{step.to, step.arrival});
    note_arrival(item, step.to, step.arrival);
  }
  plan_ = std::move(remaining);
}

bool DynamicStager::copy_is_permanent(const TrackedItem& item,
                                      const Copy& copy) const {
  if (item.is_original_source(copy.machine)) return true;
  for (const TrackedRequest& r : item.requests) {
    if (r.request.destination == copy.machine && !r.arrival.is_infinite()) {
      return true;  // a destination that received the item keeps it
    }
  }
  return false;
}

void DynamicStager::run_garbage_collection() {
  // The static model's rule (§4.4): intermediate copies are removed γ after
  // the latest deadline of the item's requests — here, the latest deadline
  // known at this point in time. Original sources and destinations that
  // received the item keep their copies.
  for (TrackedItem& item : items_) {
    const SimTime gc = item.latest_known_deadline() + base_.gc_gamma;
    if (now_ < gc) continue;
    std::vector<Copy> kept;
    for (const Copy& copy : item.copies) {
      if (copy_is_permanent(item, copy)) kept.push_back(copy);
    }
    item.copies = std::move(kept);
  }
}

Scenario DynamicStager::residual_scenario() const {
  Scenario residual;
  residual.machines = base_.machines;
  residual.phys_links = base_.phys_links;
  residual.horizon = base_.horizon;
  residual.gc_gamma = base_.gc_gamma;

  for (std::size_t p = 0; p < base_.phys_links.size(); ++p) {
    const PhysicalLink& pl = base_.phys_links[p];
    const PhysLinkId link(static_cast<std::int32_t>(p));
    for (const Interval& window : available_[p].intervals()) {
      if (window.end <= now_) continue;
      const Interval clipped{max(window.begin, now_), window.end};
      if (clipped.empty()) continue;
      // Announced brownouts split the window into fragments carrying the
      // degraded rate, so the replan prices transfers at what the link will
      // actually move.
      for (const auto& [frag, bps] :
           degraded_fragments(clipped, pl.bandwidth_bps, link, degradations_)) {
        residual.virt_links.push_back(
            VirtualLink{link, pl.from, pl.to, bps, pl.latency, frag});
      }
    }
  }

  // Every tracked item appears (copies charge storage even with nothing
  // outstanding); only outstanding requests are carried over. Permanent
  // copies (original sources, served destinations) hold forever;
  // intermediate copies hold until the item's gc time (latest known deadline
  // + γ). A feasibility pre-pass drops intermediate copies that no longer
  // fit — an ad-hoc request can extend gc windows beyond what was
  // capacity-checked when the copy was staged.
  std::vector<StorageTimeline> charge;
  charge.reserve(base_.machine_count());
  for (const Machine& machine : base_.machines) {
    charge.emplace_back(machine.capacity_bytes);
  }

  // Pass 1: permanent copies across all items. Every one was capacity-checked
  // with an infinite hold when it was created, so they always fit together.
  for (const TrackedItem& item : items_) {
    for (const Copy& copy : item.copies) {
      if (!copy_is_permanent(item, copy)) continue;
      const Interval hold{copy.available_at, SimTime::infinity()};
      StorageTimeline& st = charge[copy.machine.index()];
      DS_ASSERT_MSG(st.fits(item.size_bytes, hold),
                    "permanent copies must always fit");
      st.allocate(item.size_bytes, hold);
    }
  }

  // Pass 2: intermediate copies, dropped if they no longer fit.
  for (const TrackedItem& item : items_) {
    DataItem d;
    d.name = item.name;
    d.size_bytes = item.size_bytes;
    const SimTime gc = item.latest_known_deadline() + base_.gc_gamma;
    for (const Copy& copy : item.copies) {
      SourceLocation src{copy.machine, copy.available_at, SimTime::infinity()};
      if (copy_is_permanent(item, copy)) {
        d.sources.push_back(src);
        continue;
      }
      src.hold_until = gc;
      const Interval hold = src.hold_window();
      if (hold.empty()) continue;  // gc already due: the copy is gone
      StorageTimeline& st = charge[copy.machine.index()];
      if (!st.fits(item.size_bytes, hold)) {
        log_debug("dynamic: dropping staged copy of " + item.name +
                  " (gc window grew past capacity)");
        continue;
      }
      st.allocate(item.size_bytes, hold);
      d.sources.push_back(src);
    }
    for (const TrackedRequest& tracked : item.requests) {
      if (!tracked.resolved) d.requests.push_back(tracked.request);
    }
    residual.items.push_back(std::move(d));
  }
  return residual;
}

void DynamicStager::replan() {
  ++replans_;
  run_garbage_collection();
  const Scenario residual = residual_scenario();
  if (options_.observer != nullptr && options_.observer->metrics != nullptr) {
    options_.observer->metrics->counter("dynamic.replans").inc();
  }

  // The residual intentionally relaxes two validation rules (items with no
  // requests; destinations holding copies never coexist with outstanding
  // requests by construction), so it is fed to the engine without
  // check_valid(). The engine only requires structural sanity.
  const StagingResult result = run_spec(spec_, residual, options_);

  plan_.clear();
  for (const CommStep& step : result.schedule.steps()) {
    DS_ASSERT_MSG(step.start >= now_, "replanned transfer in the past");
    // The step's virtual-link id indexes the residual scenario; resolve the
    // stable physical id now (residual physical links mirror the base ones).
    plan_.push_back(PlannedStep{step, residual.vlink(step.link).phys});
  }
  if (options_.observer != nullptr && options_.observer->trace != nullptr) {
    std::size_t residual_requests = 0;
    for (const DataItem& item : residual.items) residual_requests += item.requests.size();
    options_.observer->trace->event("replan")
        .field("replan", replans_)
        .field("t_usec", now_.usec())
        .field("residual_items", residual.items.size())
        .field("residual_requests", residual_requests)
        .field("planned_steps", plan_.size())
        .field("committed_steps", committed_.size());
  }
}

void DynamicStager::advance_to(SimTime now) {
  DS_ASSERT(!finished_);
  DS_ASSERT_MSG(now >= now_, "time must be nondecreasing");
  commit_started(now);
  now_ = now;
}

void DynamicStager::on_event(const StagingEvent& event) {
  DS_ASSERT(!finished_);
  DS_ASSERT_MSG(event.at >= now_, "events must arrive in time order");
  commit_started(event.at);
  now_ = event.at;
  // Apply physical garbage collection *before* the event body: an ad-hoc
  // request must not see (or revive) a copy that expired earlier.
  run_garbage_collection();

  if (const auto* new_item = std::get_if<NewItemEvent>(&event.body)) {
    DS_ASSERT_MSG(find_item(new_item->item.name) == nullptr,
                  "duplicate item name");
    TrackedItem tracked;
    tracked.name = new_item->item.name;
    tracked.size_bytes = new_item->item.size_bytes;
    tracked.original_sources = new_item->item.sources;
    for (const SourceLocation& src : new_item->item.sources) {
      tracked.copies.push_back(
          Copy{src.machine, max(src.available_at, now_)});
    }
    for (const Request& request : new_item->item.requests) {
      tracked.requests.push_back(
          TrackedRequest{request, false, false, SimTime::infinity()});
    }
    items_.push_back(std::move(tracked));
  } else if (const auto* new_request = std::get_if<NewRequestEvent>(&event.body)) {
    TrackedItem* item = find_item(new_request->item_name);
    DS_ASSERT_MSG(item != nullptr, "ad-hoc request for unknown item");
    TrackedRequest tracked{new_request->request, false, false, SimTime::infinity()};
    // If the destination already holds a copy, the request resolves on the
    // spot (the data is there; on time iff it is already usable).
    for (const Copy& copy : item->copies) {
      if (copy.machine == tracked.request.destination) {
        tracked.resolved = true;
        tracked.arrival = copy.available_at;
        tracked.satisfied = copy.available_at <= tracked.request.deadline;
      }
    }
    item->requests.push_back(tracked);
  } else if (const auto* outage = std::get_if<LinkOutageEvent>(&event.body)) {
    const std::size_t p = outage->link.index();
    DS_ASSERT_MSG(link_up_[p], "outage on a link that is already down");
    link_up_[p] = false;
    outage_since_[p] = now_;
    available_[p].subtract(Interval{now_, SimTime::infinity()});
    fail_in_flight(outage->link, "link_outage");
    bump("faults.outages");
    if (trace() != nullptr) {
      trace()->event("fault")
          .field("kind", "outage")
          .field("t_usec", now_.usec())
          .field("link", outage->link.value());
    }
  } else if (const auto* restore = std::get_if<LinkRestoreEvent>(&event.body)) {
    const std::size_t p = restore->link.index();
    DS_ASSERT_MSG(!link_up_[p], "restore on a link that is up");
    link_up_[p] = true;
    outages_[p].insert_merge(Interval{outage_since_[p], now_});
    rebuild_availability(restore->link);
    bump("faults.restores");
    if (trace() != nullptr) {
      trace()->event("fault")
          .field("kind", "restore")
          .field("t_usec", now_.usec())
          .field("link", restore->link.value())
          .field("down_since_usec", outage_since_[p].usec());
    }
  } else if (const auto* degrade = std::get_if<LinkDegradeEvent>(&event.body)) {
    const std::size_t p = degrade->link.index();
    DS_ASSERT_MSG(p < base_.phys_links.size(), "degrade on unknown link");
    DS_ASSERT_MSG(!degrade->window.empty() && degrade->window.begin == now_,
                  "degradations are announced at their window begin");
    DS_ASSERT_MSG(degrade->factor > 0.0 && degrade->factor < 1.0,
                  "degradation factor must lie in (0, 1)");
    degradations_.push_back(
        LinkDegradation{degrade->link, degrade->window, degrade->factor});
    // In-flight transfers on the link were planned at the nominal rate and
    // no longer complete on time: drop and let the replan re-stage them at
    // the degraded rate. With the link down the availability is already
    // gone and nothing is in flight.
    if (link_up_[p]) {
      fail_in_flight(degrade->link, "link_degrade");
      rebuild_availability(degrade->link);
    }
    bump("faults.degrades");
    if (options_.observer != nullptr && options_.observer->trace != nullptr) {
      options_.observer->trace->event("fault")
          .field("kind", "degrade")
          .field("t_usec", now_.usec())
          .field("link", degrade->link.value())
          .field("until_usec", degrade->window.end.usec());
    }
  } else if (const auto* loss = std::get_if<CopyLossEvent>(&event.body)) {
    TrackedItem* item = find_item(loss->item_name);
    DS_ASSERT_MSG(item != nullptr, "copy loss for unknown item");
    apply_copy_loss(*item, loss->machine);
    bump("faults.copy_losses");
    if (options_.observer != nullptr && options_.observer->trace != nullptr) {
      options_.observer->trace->event("fault")
          .field("kind", "copy_loss")
          .field("t_usec", now_.usec())
          .field("item", loss->item_name)
          .field("machine", loss->machine.value());
    }
  } else if (const auto* cancel = std::get_if<CancelRequestEvent>(&event.body)) {
    // Withdraw the most recently added outstanding request for this (item,
    // destination). Cancelling an unknown or already-resolved request is a
    // no-op — the caller raced a delivery, and the delivered outcome stands.
    TrackedRequest* target = nullptr;
    if (TrackedItem* item = find_item(cancel->item_name)) {
      for (TrackedRequest& tracked : item->requests) {
        if (tracked.request.destination == cancel->destination &&
            !tracked.resolved) {
          target = &tracked;
        }
      }
    }
    if (target != nullptr) {
      target->resolved = true;
      target->satisfied = false;
      target->cancelled = true;
      target->arrival = SimTime::infinity();
      bump("dynamic.cancels");
    } else {
      bump("dynamic.cancel_noops");
    }
    if (trace() != nullptr) {
      trace()->event("cancel")
          .field("t_usec", now_.usec())
          .field("item", cancel->item_name)
          .field("dest", cancel->destination.value())
          .field("outstanding", target != nullptr);
    }
  }

  replan();
}

void DynamicStager::apply_copy_loss(TrackedItem& item, MachineId machine) {
  // Destroy the copy present now; a copy still in flight (available_at in
  // the future) lands after the loss and survives.
  bool destroyed = false;
  std::vector<Copy> kept;
  for (const Copy& copy : item.copies) {
    if (copy.machine == machine && copy.available_at <= now_) {
      destroyed = true;
      continue;
    }
    kept.push_back(copy);
  }
  item.copies = std::move(kept);
  if (!destroyed) {
    bump("faults.copy_losses_noop");
    return;
  }
  item.losses.push_back(LossMark{machine, now_});

  // Re-open requests the lost copy had satisfied, if their delivery window
  // [start, deadline] still admits a re-delivery; a request whose deadline
  // already passed keeps its outcome (the consumer had the data for the
  // whole window). The replan then re-stages with the usual deadline
  // feasibility — an infeasible re-delivery simply stays unsatisfied.
  for (TrackedRequest& tracked : item.requests) {
    if (tracked.request.destination != machine || !tracked.resolved) continue;
    if (tracked.cancelled) continue;  // cancellation is final
    if (tracked.request.deadline < now_) continue;
    tracked.resolved = false;
    tracked.satisfied = false;
    tracked.arrival = SimTime::infinity();
    tracked.requeued = true;
    bump("faults.requeued_requests");
    trace_requeue(item, tracked.request, "copy_loss");
  }
}

void DynamicStager::fail_in_flight(PhysLinkId link, const char* reason) {
  // A transfer in flight on a failing link never completes: drop its step,
  // undo its request resolution, then rebuild the affected items' copy sets
  // from the surviving committed transfers (a destination may still be
  // served by an earlier arrival over a different link).
  std::vector<PlannedStep> kept;
  std::vector<ItemId> affected;
  for (const PlannedStep& planned : committed_) {
    const CommStep& step = planned.step;
    if (planned.phys != link || step.arrival <= now_) {
      kept.push_back(planned);
      continue;
    }
    consumed_[link.index()].subtract(Interval{step.start, step.arrival});
    bump("faults.inflight_dropped");
    TrackedItem& item = items_[step.item.index()];
    for (TrackedRequest& tracked : item.requests) {
      if (tracked.request.destination == step.to &&
          tracked.arrival == step.arrival) {
        tracked.resolved = false;
        tracked.satisfied = false;
        tracked.arrival = SimTime::infinity();
        tracked.requeued = true;
        trace_requeue(item, tracked.request, reason);
      }
    }
    affected.push_back(step.item);
  }
  committed_ = std::move(kept);
  for (const ItemId item : affected) rebuild_copies(item);
}

void DynamicStager::rebuild_copies(ItemId id) {
  TrackedItem& item = items_[id.index()];
  // A candidate copy destroyed by a copy-loss fault must not be resurrected:
  // anything that materialized at or before the machine's latest loss is
  // gone; only later (re-staged) arrivals count.
  const auto survives = [&item](MachineId machine, SimTime available_at) {
    const std::optional<SimTime> lost = item.last_loss_at(machine);
    return !lost.has_value() || available_at > *lost;
  };
  item.copies.clear();
  for (const SourceLocation& src : item.original_sources) {
    if (!survives(src.machine, src.available_at)) continue;
    item.copies.push_back(Copy{src.machine, src.available_at});
  }
  for (const PlannedStep& planned : committed_) {
    if (planned.step.item != id) continue;
    if (!survives(planned.step.to, planned.step.arrival)) continue;
    bool merged = false;
    for (Copy& copy : item.copies) {
      if (copy.machine == planned.step.to) {
        copy.available_at = min(copy.available_at, planned.step.arrival);
        merged = true;
        break;
      }
    }
    if (!merged) item.copies.push_back(Copy{planned.step.to, planned.step.arrival});
  }

  // Re-resolve requests a surviving copy still serves (an earlier delivery
  // over another link may have been shadowed by the failed one).
  for (TrackedRequest& tracked : item.requests) {
    if (tracked.resolved) continue;
    for (const Copy& copy : item.copies) {
      if (copy.machine != tracked.request.destination) continue;
      tracked.resolved = true;
      tracked.arrival = copy.available_at;
      tracked.satisfied = copy.available_at <= tracked.request.deadline;
      break;
    }
  }

  // Apply the gc rule the incremental path would have applied.
  const SimTime gc = item.latest_known_deadline() + base_.gc_gamma;
  if (now_ >= gc) {
    std::vector<Copy> permanent;
    for (const Copy& copy : item.copies) {
      if (copy_is_permanent(item, copy)) permanent.push_back(copy);
    }
    item.copies = std::move(permanent);
  }
}

void DynamicStager::rebuild_availability(PhysLinkId link) {
  // available = original windows − outage periods − consumed busy time.
  IntervalSet rebuilt;
  for (const VirtualLink& vl : base_.virt_links) {
    if (vl.phys != link) continue;
    rebuilt.insert_disjoint(vl.window);
  }
  for (const Interval& outage : outages_[link.index()].intervals()) {
    rebuilt.subtract(outage);
  }
  for (const Interval& busy : consumed_[link.index()].intervals()) {
    rebuilt.subtract(busy);
  }
  available_[link.index()] = std::move(rebuilt);
}

DynamicStager::TrackedItem* DynamicStager::find_item(const std::string& name) {
  for (TrackedItem& item : items_) {
    if (item.name == name) return &item;
  }
  return nullptr;
}

const DynamicStager::TrackedItem* DynamicStager::find_item(
    const std::string& name) const {
  for (const TrackedItem& item : items_) {
    if (item.name == name) return &item;
  }
  return nullptr;
}

DynamicRequestStatus DynamicStager::request_status(
    const std::string& item_name, MachineId destination) const {
  const TrackedItem* item = find_item(item_name);
  if (item == nullptr) return DynamicRequestStatus::kUnknown;
  // The most recently added request for this destination wins: re-submitting
  // after a cancel or an unsatisfied close starts a fresh lifecycle.
  const TrackedRequest* latest = nullptr;
  for (const TrackedRequest& tracked : item->requests) {
    if (tracked.request.destination == destination) latest = &tracked;
  }
  if (latest == nullptr) return DynamicRequestStatus::kUnknown;
  if (latest->cancelled) return DynamicRequestStatus::kCancelled;
  if (!latest->resolved) return DynamicRequestStatus::kPending;
  return latest->satisfied ? DynamicRequestStatus::kSatisfied
                           : DynamicRequestStatus::kUnsatisfied;
}

SimTime DynamicStager::planned_arrival(const std::string& item_name,
                                       MachineId destination) const {
  const TrackedItem* item = find_item(item_name);
  if (item == nullptr) return SimTime::infinity();
  SimTime earliest = SimTime::infinity();
  // A closed request already knows its arrival; an outstanding one is served
  // by the earliest committed or planned step landing at the destination.
  for (const TrackedRequest& tracked : item->requests) {
    if (tracked.request.destination == destination) {
      earliest = min(earliest, tracked.arrival);
    }
  }
  const ItemId id(static_cast<std::int32_t>(item - items_.data()));
  for (const PlannedStep& planned : committed_) {
    if (planned.step.item == id && planned.step.to == destination) {
      earliest = min(earliest, planned.step.arrival);
    }
  }
  for (const PlannedStep& planned : plan_) {
    if (planned.step.item == id && planned.step.to == destination) {
      earliest = min(earliest, planned.step.arrival);
    }
  }
  return earliest;
}

DynamicResult DynamicStager::finish() {
  DS_ASSERT(!finished_);
  finished_ = true;
  commit_started(SimTime::infinity());  // commit the whole remaining plan

  DynamicResult result;
  result.replans = replans_;

  // Remap every committed step onto the effective scenario's virtual links
  // (the same physical link, the surviving window containing the busy
  // interval), so the merged schedule replays against effective_scenario().
  const Scenario effective = effective_scenario();
  for (const PlannedStep& planned : committed_) {
    CommStep step = planned.step;
    const Interval busy{step.start, step.arrival};
    VirtLinkId remapped = VirtLinkId::invalid();
    for (std::size_t v = 0; v < effective.virt_links.size(); ++v) {
      const VirtualLink& vl = effective.virt_links[v];
      if (vl.phys == planned.phys && vl.window.contains(busy)) {
        remapped = VirtLinkId(static_cast<std::int32_t>(v));
        break;
      }
    }
    DS_ASSERT_MSG(remapped.valid(),
                  "committed transfer has no surviving effective window");
    step.link = remapped;
    result.schedule.add(step);
  }
  for (const TrackedItem& item : items_) {
    for (const TrackedRequest& tracked : item.requests) {
      DynamicRequestRecord record;
      record.item_name = item.name;
      record.destination = tracked.request.destination;
      record.deadline = tracked.request.deadline;
      record.priority = tracked.request.priority;
      record.satisfied = tracked.satisfied;
      record.cancelled = tracked.cancelled;
      record.arrival = tracked.arrival;
      result.requests.push_back(std::move(record));
      if (tracked.requeued && tracked.satisfied && trace() != nullptr) {
        // The request survived a fault: it was requeued at least once and a
        // re-staged delivery still met the deadline.
        trace()->event("request_recovered")
            .field("item", item.name)
            .field("dest", tracked.request.destination.value())
            .field("deadline_usec", tracked.request.deadline.usec())
            .field("arrival_usec", tracked.arrival.usec());
      }
      if (tracked.requeued && tracked.satisfied) {
        bump("faults.recovered_requests");
      }
    }
  }
  return result;
}

Scenario DynamicStager::effective_scenario() const {
  Scenario effective;
  effective.machines = base_.machines;
  effective.phys_links = base_.phys_links;
  effective.horizon = base_.horizon;
  effective.gc_gamma = base_.gc_gamma;

  for (const VirtualLink& vl : base_.virt_links) {
    IntervalSet windows;
    windows.insert_disjoint(vl.window);
    for (const Interval& outage : outages_[vl.phys.index()].intervals()) {
      windows.subtract(outage);
    }
    if (!link_up_[vl.phys.index()]) {
      windows.subtract(Interval{outage_since_[vl.phys.index()], SimTime::infinity()});
    }
    for (const Interval& window : windows.intervals()) {
      for (const auto& [frag, bps] : degraded_fragments(
               window, vl.bandwidth_bps, vl.phys, degradations_)) {
        effective.virt_links.push_back(
            VirtualLink{vl.phys, vl.from, vl.to, bps, vl.latency, frag});
      }
    }
  }

  for (const TrackedItem& item : items_) {
    DataItem d;
    d.name = item.name;
    d.size_bytes = item.size_bytes;
    // A copy-loss fault ends the source's hold window at the loss time; a
    // source that never materialized a copy before the loss is dropped.
    for (SourceLocation src : item.original_sources) {
      const std::optional<SimTime> lost = item.first_loss_at(src.machine);
      if (lost.has_value()) src.hold_until = min(src.hold_until, *lost);
      if (src.hold_window().empty()) continue;
      d.sources.push_back(src);
    }
    for (const TrackedRequest& tracked : item.requests) {
      d.requests.push_back(tracked.request);
    }
    effective.items.push_back(std::move(d));
  }
  return effective;
}

}  // namespace datastage
