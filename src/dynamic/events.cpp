#include "dynamic/events.hpp"

#include <algorithm>

namespace datastage {

int staging_event_rank(const StagingEventBody& body) {
  if (std::holds_alternative<LinkRestoreEvent>(body)) return 0;
  if (std::holds_alternative<LinkOutageEvent>(body)) return 1;
  if (std::holds_alternative<LinkDegradeEvent>(body)) return 2;
  if (std::holds_alternative<CopyLossEvent>(body)) return 3;
  if (std::holds_alternative<NewItemEvent>(body)) return 4;
  if (std::holds_alternative<NewRequestEvent>(body)) return 5;
  return 6;  // CancelRequestEvent
}

std::pair<std::int32_t, std::string> staging_event_tie_key(
    const StagingEventBody& body) {
  if (const auto* restore = std::get_if<LinkRestoreEvent>(&body)) {
    return {restore->link.value(), {}};
  }
  if (const auto* outage = std::get_if<LinkOutageEvent>(&body)) {
    return {outage->link.value(), {}};
  }
  if (const auto* degrade = std::get_if<LinkDegradeEvent>(&body)) {
    return {degrade->link.value(), {}};
  }
  if (const auto* loss = std::get_if<CopyLossEvent>(&body)) {
    return {loss->machine.value(), loss->item_name};
  }
  if (const auto* item = std::get_if<NewItemEvent>(&body)) {
    return {0, item->item.name};
  }
  if (const auto* request = std::get_if<NewRequestEvent>(&body)) {
    return {request->request.destination.value(), request->item_name};
  }
  const auto& cancel = std::get<CancelRequestEvent>(body);
  return {cancel.destination.value(), cancel.item_name};
}

bool staging_event_before(const StagingEvent& a, const StagingEvent& b) {
  if (a.at != b.at) return a.at < b.at;
  const int ra = staging_event_rank(a.body);
  const int rb = staging_event_rank(b.body);
  if (ra != rb) return ra < rb;
  return staging_event_tie_key(a.body) < staging_event_tie_key(b.body);
}

void sort_staging_events(std::vector<StagingEvent>& events) {
  // stable_sort: events fully tied on (time, rank, key) keep their input
  // order, so the stream is deterministic on every platform.
  std::stable_sort(events.begin(), events.end(), staging_event_before);
}

}  // namespace datastage
