// Converts a declarative FaultSpec into the time-ordered event stream the
// DynamicStager consumes, so the same fault scenario that scores a committed
// schedule a posteriori (sim/fault_replay) can drive online recovery.
//
// Outage windows of one link are merged (overlapping or adjacent windows
// become one outage period) and emitted as LinkOutage/LinkRestore pairs; a
// window reaching infinity emits no restore. Degradations are announced at
// their window begin; copy losses at their loss time. The resulting stream
// is sorted by time with a deterministic tie order (restores, outages,
// degrades, copy losses; then by link id / item name), so feeding it to a
// DynamicStager is a pure function of (Scenario, FaultSpec).
#pragma once

#include <vector>

#include "dynamic/events.hpp"
#include "model/fault.hpp"

namespace datastage {

/// `faults` must be valid for the scenario it will be replayed against
/// (FaultSpec::validate) — empty windows or out-of-range links abort in the
/// stager, not here.
std::vector<StagingEvent> fault_events(const FaultSpec& faults);

}  // namespace datastage
