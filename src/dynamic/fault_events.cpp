#include "dynamic/fault_events.hpp"

#include <algorithm>

#include "util/interval.hpp"

namespace datastage {

std::vector<StagingEvent> fault_events(const FaultSpec& faults) {
  std::vector<StagingEvent> events;

  // Merged outage periods per link -> outage/restore pairs.
  std::int32_t max_link = -1;
  for (const LinkOutage& outage : faults.outages) {
    max_link = std::max(max_link, outage.link.value());
  }
  std::vector<IntervalSet> merged(static_cast<std::size_t>(max_link + 1));
  for (const LinkOutage& outage : faults.outages) {
    if (outage.window.empty()) continue;
    merged[outage.link.index()].insert_merge(outage.window);
  }
  for (std::size_t p = 0; p < merged.size(); ++p) {
    const PhysLinkId link(static_cast<std::int32_t>(p));
    for (const Interval& window : merged[p].intervals()) {
      events.push_back(StagingEvent{window.begin, LinkOutageEvent{link}});
      if (!window.end.is_infinite()) {
        events.push_back(StagingEvent{window.end, LinkRestoreEvent{link}});
      }
    }
  }

  for (const LinkDegradation& d : faults.degradations) {
    events.push_back(StagingEvent{
        d.window.begin, LinkDegradeEvent{d.link, d.window, d.factor}});
  }
  for (const CopyLoss& loss : faults.copy_losses) {
    events.push_back(
        StagingEvent{loss.at, CopyLossEvent{loss.item_name, loss.machine}});
  }

  // The shared total order (dynamic/events.hpp): restores before outages
  // before degrades before losses, then link id / (machine, item) key;
  // fully-tied events keep the spec's order.
  sort_staging_events(events);
  return events;
}

}  // namespace datastage
