#include "dynamic/fault_events.hpp"

#include <algorithm>
#include <string>

#include "util/interval.hpp"

namespace datastage {
namespace {

// Tie rank at equal timestamps: a restore must precede a new outage so a
// link is never "down twice"; losses come last so a copy delivered at t is
// destroyed by a loss at t (the stager's own convention).
int rank(const StagingEventBody& body) {
  if (std::holds_alternative<LinkRestoreEvent>(body)) return 0;
  if (std::holds_alternative<LinkOutageEvent>(body)) return 1;
  if (std::holds_alternative<LinkDegradeEvent>(body)) return 2;
  return 3;  // CopyLossEvent
}

std::pair<std::int32_t, std::string> key(const StagingEventBody& body) {
  if (const auto* restore = std::get_if<LinkRestoreEvent>(&body)) {
    return {restore->link.value(), {}};
  }
  if (const auto* outage = std::get_if<LinkOutageEvent>(&body)) {
    return {outage->link.value(), {}};
  }
  if (const auto* degrade = std::get_if<LinkDegradeEvent>(&body)) {
    return {degrade->link.value(), {}};
  }
  const auto& loss = std::get<CopyLossEvent>(body);
  return {loss.machine.value(), loss.item_name};
}

}  // namespace

std::vector<StagingEvent> fault_events(const FaultSpec& faults) {
  std::vector<StagingEvent> events;

  // Merged outage periods per link -> outage/restore pairs.
  std::int32_t max_link = -1;
  for (const LinkOutage& outage : faults.outages) {
    max_link = std::max(max_link, outage.link.value());
  }
  std::vector<IntervalSet> merged(static_cast<std::size_t>(max_link + 1));
  for (const LinkOutage& outage : faults.outages) {
    if (outage.window.empty()) continue;
    merged[outage.link.index()].insert_merge(outage.window);
  }
  for (std::size_t p = 0; p < merged.size(); ++p) {
    const PhysLinkId link(static_cast<std::int32_t>(p));
    for (const Interval& window : merged[p].intervals()) {
      events.push_back(StagingEvent{window.begin, LinkOutageEvent{link}});
      if (!window.end.is_infinite()) {
        events.push_back(StagingEvent{window.end, LinkRestoreEvent{link}});
      }
    }
  }

  for (const LinkDegradation& d : faults.degradations) {
    events.push_back(StagingEvent{
        d.window.begin, LinkDegradeEvent{d.link, d.window, d.factor}});
  }
  for (const CopyLoss& loss : faults.copy_losses) {
    events.push_back(
        StagingEvent{loss.at, CopyLossEvent{loss.item_name, loss.machine}});
  }

  // stable_sort: events fully tied on (time, rank, key) keep the spec's
  // order, so the stream is deterministic on every platform.
  std::stable_sort(events.begin(), events.end(),
            [](const StagingEvent& a, const StagingEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (rank(a.body) != rank(b.body)) return rank(a.body) < rank(b.body);
              return key(a.body) < key(b.body);
            });
  return events;
}

}  // namespace datastage
