#include "net/link_schedule.hpp"

#include "util/assert.hpp"

namespace datastage {

LinkSchedule::LinkSchedule(const Scenario& scenario)
    : scenario_(&scenario), busy_(scenario.virt_links.size()) {}

SimDuration LinkSchedule::occupancy(VirtLinkId link, std::int64_t item_bytes) const {
  const VirtualLink& vl = scenario_->vlink(link);
  return transfer_duration(item_bytes, vl.bandwidth_bps) + vl.latency;
}

std::optional<LinkFit> LinkSchedule::earliest_fit(VirtLinkId link,
                                                  std::int64_t item_bytes,
                                                  SimTime ready_at) const {
  const VirtualLink& vl = scenario_->vlink(link);
  const SimDuration dur = occupancy(link, item_bytes);
  const std::optional<SimTime> start =
      busy_[link.index()].earliest_fit(ready_at, dur, vl.window);
  if (!start.has_value()) return std::nullopt;
  return LinkFit{*start, *start + dur};
}

void LinkSchedule::reserve(VirtLinkId link, std::int64_t item_bytes, SimTime start) {
  const VirtualLink& vl = scenario_->vlink(link);
  const SimDuration dur = occupancy(link, item_bytes);
  const Interval iv{start, start + dur};
  DS_ASSERT_MSG(vl.window.contains(iv), "reservation outside link window");
  busy_[link.index()].insert_disjoint(iv);
  total_reserved_ = total_reserved_ + iv.length();
}

}  // namespace datastage
