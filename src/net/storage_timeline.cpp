#include "net/storage_timeline.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {

StorageTimeline::StorageTimeline(std::int64_t capacity_bytes)
    : capacity_(capacity_bytes) {
  DS_ASSERT(capacity_bytes >= 0);
  base_.push_back(Breakpoint{SimTime::zero(), 0});
}

std::int64_t StorageTimeline::base_at(SimTime t) const {
  const auto it = std::upper_bound(
      base_.begin(), base_.end(), t,
      [](SimTime value, const Breakpoint& bp) { return value < bp.time; });
  if (it == base_.begin()) return 0;  // before time zero
  return std::prev(it)->usage;
}

std::int64_t StorageTimeline::pending_at(SimTime t) const {
  std::int64_t total = 0;
  for (const auto& [iv, bytes] : pending_) {
    if (iv.contains(t)) total += bytes;
  }
  return total;
}

std::int64_t StorageTimeline::usage_at(SimTime t) const {
  return base_at(t) + pending_at(t);
}

std::int64_t StorageTimeline::max_usage(const Interval& iv) const {
  if (iv.empty()) return 0;
  // The maximum of a step function over [begin, end) is attained at the
  // window begin, at a base breakpoint inside it, or where a pending
  // allocation starts inside it — usage only rises at those instants.
  std::int64_t best = usage_at(iv.begin);
  const auto first = std::upper_bound(
      base_.begin(), base_.end(), iv.begin,
      [](SimTime value, const Breakpoint& bp) { return value < bp.time; });
  for (auto it = first; it != base_.end() && it->time < iv.end; ++it) {
    best = std::max(best, it->usage + pending_at(it->time));
  }
  for (const auto& [piv, bytes] : pending_) {
    if (piv.begin > iv.begin && piv.begin < iv.end) {
      best = std::max(best, usage_at(piv.begin));
    }
  }
  return best;
}

void StorageTimeline::allocate(std::int64_t bytes, const Interval& iv) {
  DS_ASSERT(bytes >= 0);
  if (iv.empty() || bytes == 0) return;
  DS_ASSERT_MSG(max_usage(iv) + bytes <= capacity_,
                "storage allocation exceeds machine capacity (caller must "
                "check fits() first)");
  pending_.emplace_back(iv, bytes);
  if (pending_.size() >= kMaxPending) compact();
}

void StorageTimeline::compact() {
  if (pending_.empty()) return;

  // Delta events: +bytes where an allocation begins, -bytes where it ends.
  std::vector<std::pair<SimTime, std::int64_t>> events;
  events.reserve(pending_.size() * 2);
  for (const auto& [iv, bytes] : pending_) {
    events.emplace_back(iv.begin, bytes);
    events.emplace_back(iv.end, -bytes);
  }
  std::sort(events.begin(), events.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  std::vector<Breakpoint> merged;
  merged.reserve(base_.size() + events.size());
  std::size_t bi = 0;
  std::size_t ei = 0;
  std::int64_t base_level = 0;
  std::int64_t delta = 0;
  while (bi < base_.size() || ei < events.size()) {
    SimTime t = bi < base_.size() ? base_[bi].time : events[ei].first;
    if (ei < events.size() && events[ei].first < t) t = events[ei].first;
    if (bi < base_.size() && base_[bi].time == t) {
      base_level = base_[bi].usage;
      ++bi;
    }
    while (ei < events.size() && events[ei].first == t) {
      delta += events[ei].second;
      ++ei;
    }
    // Each time is visited exactly once; drop breakpoints that do not change
    // the level to keep adjacent values distinct.
    const std::int64_t level = base_level + delta;
    if (merged.empty() || merged.back().usage != level) {
      merged.push_back(Breakpoint{t, level});
    }
  }
  DS_ASSERT(delta == 0);  // every pending begin has a matching end

  base_ = std::move(merged);
  pending_.clear();
}

}  // namespace datastage
