#include "net/storage_timeline.hpp"

#include "util/assert.hpp"

namespace datastage {

StorageTimeline::StorageTimeline(std::int64_t capacity_bytes)
    : capacity_(capacity_bytes) {
  DS_ASSERT(capacity_bytes >= 0);
  usage_[SimTime::zero()] = 0;
}

std::int64_t StorageTimeline::usage_at(SimTime t) const {
  auto it = usage_.upper_bound(t);
  if (it == usage_.begin()) return 0;  // before time zero
  return std::prev(it)->second;
}

std::int64_t StorageTimeline::max_usage(const Interval& iv) const {
  if (iv.empty()) return 0;
  std::int64_t best = usage_at(iv.begin);
  for (auto it = usage_.upper_bound(iv.begin); it != usage_.end() && it->first < iv.end;
       ++it) {
    best = std::max(best, it->second);
  }
  return best;
}

void StorageTimeline::allocate(std::int64_t bytes, const Interval& iv) {
  DS_ASSERT(bytes >= 0);
  if (iv.empty() || bytes == 0) return;

  // Materialize breakpoints at the interval boundaries, copying the level in
  // effect at those instants.
  auto ensure_breakpoint = [this](SimTime t) {
    auto it = usage_.lower_bound(t);
    if (it != usage_.end() && it->first == t) return;
    usage_.emplace(t, usage_at(t));
  };
  ensure_breakpoint(iv.begin);
  ensure_breakpoint(iv.end);

  for (auto it = usage_.lower_bound(iv.begin); it != usage_.end() && it->first < iv.end;
       ++it) {
    it->second += bytes;
    DS_ASSERT_MSG(it->second <= capacity_,
                  "storage allocation exceeds machine capacity (caller must "
                  "check fits() first)");
  }
}

}  // namespace datastage
