// Per-machine storage usage over time.
//
// Cap[i](t) in the paper is piecewise constant: it changes when a copy of an
// item is placed on a machine and when garbage collection reclaims it. We
// track *usage* as a piecewise-constant step function keyed by breakpoints;
// free capacity over a window is capacity minus the maximum usage inside it.
//
// Layout: a flat sorted breakpoint vector (`base_`) plus a small bounded
// overlay of not-yet-merged allocations (`pending_`). Queries combine both;
// once the overlay fills up it is folded into the base in one linear merge
// (amortized batch compaction). Compared to the previous std::map this
// removes the per-breakpoint node allocations and pointer chasing that
// dominated at 5k+ machines, while keeping allocate() amortized O(base/k).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "util/interval.hpp"
#include "util/time.hpp"

namespace datastage {

class StorageTimeline {
 public:
  explicit StorageTimeline(std::int64_t capacity_bytes);

  std::int64_t capacity() const { return capacity_; }

  /// Maximum usage at any instant within [iv.begin, iv.end).
  std::int64_t max_usage(const Interval& iv) const;

  /// Free bytes guaranteed throughout `iv`.
  std::int64_t min_free(const Interval& iv) const { return capacity_ - max_usage(iv); }

  /// True iff `bytes` fit throughout `iv`.
  bool fits(std::int64_t bytes, const Interval& iv) const {
    return bytes <= min_free(iv);
  }

  /// Adds `bytes` of usage throughout `iv`. Asserts the result never exceeds
  /// capacity (callers must check with fits() first).
  void allocate(std::int64_t bytes, const Interval& iv);

  /// Usage at a single instant.
  std::int64_t usage_at(SimTime t) const;

 private:
  // Usage level starting at `time`, lasting until the next breakpoint.
  struct Breakpoint {
    SimTime time;
    std::int64_t usage;
  };

  // Pending allocations folded into `base_` once the overlay reaches this
  // size: every query scans the overlay linearly, so it must stay small.
  static constexpr std::size_t kMaxPending = 16;

  // Base usage level in effect at `t` (ignores the pending overlay).
  std::int64_t base_at(SimTime t) const;
  // Sum of pending deltas whose interval contains `t`.
  std::int64_t pending_at(SimTime t) const;
  // Folds `pending_` into `base_` with a single two-pointer merge.
  void compact();

  // Invariant: contains time SimTime::zero() (items never exist before time
  // 0), times strictly ascending, adjacent usage values differ.
  std::vector<Breakpoint> base_;
  std::vector<std::pair<Interval, std::int64_t>> pending_;
  std::int64_t capacity_;
};

}  // namespace datastage
