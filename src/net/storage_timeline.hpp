// Per-machine storage usage over time.
//
// Cap[i](t) in the paper is piecewise constant: it changes when a copy of an
// item is placed on a machine and when garbage collection reclaims it. We
// track *usage* as a piecewise-constant step function keyed by breakpoints;
// free capacity over a window is capacity minus the maximum usage inside it.
#pragma once

#include <cstdint>
#include <map>

#include "util/interval.hpp"
#include "util/time.hpp"

namespace datastage {

class StorageTimeline {
 public:
  explicit StorageTimeline(std::int64_t capacity_bytes);

  std::int64_t capacity() const { return capacity_; }

  /// Maximum usage at any instant within [iv.begin, iv.end).
  std::int64_t max_usage(const Interval& iv) const;

  /// Free bytes guaranteed throughout `iv`.
  std::int64_t min_free(const Interval& iv) const { return capacity_ - max_usage(iv); }

  /// True iff `bytes` fit throughout `iv`.
  bool fits(std::int64_t bytes, const Interval& iv) const {
    return bytes <= min_free(iv);
  }

  /// Adds `bytes` of usage throughout `iv`. Asserts the result never exceeds
  /// capacity (callers must check with fits() first).
  void allocate(std::int64_t bytes, const Interval& iv);

  /// Usage at a single instant.
  std::int64_t usage_at(SimTime t) const;

 private:
  // Breakpoint map: usage_ holds the usage level starting at each key and
  // lasting until the next key. Invariant: contains key SimTime::zero()
  // (items never exist before time 0) and adjacent values differ.
  std::map<SimTime, std::int64_t> usage_;
  std::int64_t capacity_;
};

}  // namespace datastage
