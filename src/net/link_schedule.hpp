// Per-virtual-link reservation state.
//
// A virtual link is dedicated to one transfer at a time (paper §4.3: two data
// items cannot share a virtual link simultaneously). The schedule records the
// busy intervals of each virtual link and answers the routing layer's core
// query: earliest feasible start for a transfer of a given duration.
#pragma once

#include <optional>
#include <vector>

#include "model/scenario.hpp"
#include "util/chunked_intervals.hpp"
#include "util/ids.hpp"
#include "util/interval.hpp"

namespace datastage {

/// A successful link fit: a transfer may occupy [start, start + duration).
struct LinkFit {
  SimTime start;
  SimTime arrival;  ///< start + duration; when the item lands on the receiver
};

class LinkSchedule {
 public:
  /// The scenario must outlive the schedule.
  explicit LinkSchedule(const Scenario& scenario);

  /// Earliest fit of a transfer of `item_bytes` on `link`, starting at or
  /// after `ready_at`. The occupancy duration is transfer time + latency and
  /// must lie entirely inside the link window and outside existing
  /// reservations. nullopt if the window cannot accommodate it.
  std::optional<LinkFit> earliest_fit(VirtLinkId link, std::int64_t item_bytes,
                                      SimTime ready_at) const;

  /// Occupancy duration of `item_bytes` on `link` (transfer + latency).
  SimDuration occupancy(VirtLinkId link, std::int64_t item_bytes) const;

  /// Marks [start, start + occupancy) busy. The caller must have obtained
  /// `start` from earliest_fit (asserts on any overlap or window violation).
  void reserve(VirtLinkId link, std::int64_t item_bytes, SimTime start);

  /// True iff `iv` overlaps an existing reservation on `link`.
  bool busy_overlaps(VirtLinkId link, const Interval& iv) const {
    return busy_[link.index()].overlaps(iv);
  }

  const ChunkedIntervalSet& reservations(VirtLinkId link) const {
    return busy_[link.index()];
  }

  /// Total reserved time across all virtual links (observability/benches).
  /// O(1): maintained as a running sum by reserve() — reservations are never
  /// released, so the sum only grows.
  SimDuration total_reserved() const { return total_reserved_; }

 private:
  const Scenario* scenario_;
  // Chunked: a commit shifts one bounded chunk, not the whole reservation
  // tail of a busy link (O(reservations) per commit at the huge tier).
  std::vector<ChunkedIntervalSet> busy_;
  SimDuration total_reserved_ = SimDuration::zero();
};

}  // namespace datastage
