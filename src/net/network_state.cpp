#include "net/network_state.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {

NetworkState::NetworkState(const Scenario& scenario)
    : scenario_(&scenario), links_(scenario) {
  const std::size_t m = scenario.machine_count();
  const std::size_t n = scenario.item_count();

  storage_.reserve(m);
  for (const Machine& machine : scenario.machines) {
    storage_.emplace_back(machine.capacity_bytes);
  }

  copies_.resize(n);
  holds_.resize(n);
  dests_.resize(n);

  for (std::size_t i = 0; i < n; ++i) {
    const DataItem& item = scenario.items[i];
    std::vector<MachineId>& dests = dests_[i];
    dests.reserve(item.requests.size());
    for (const Request& r : item.requests) {
      dests.push_back(r.destination);
    }
    std::sort(dests.begin(), dests.end());
    dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
    for (const SourceLocation& src : item.sources) {
      // A source with an empty hold window never materializes a copy (shared
      // rule with the simulator and the dynamic stager). Registering it would
      // fake has_copy() and let can_hold()'s existing-hold shortcut skip the
      // capacity check while charging nothing to storage.
      const Interval hold = src.hold_window();
      if (hold.empty()) continue;
      StorageTimeline& st = storage_[src.machine.index()];
      DS_ASSERT_MSG(st.fits(item.size_bytes, hold),
                    "initial source copies exceed machine capacity");
      st.allocate(item.size_bytes, hold);
      copies_[i].push_back(Copy{src.machine, src.available_at});
      record_hold(ItemId{static_cast<std::int32_t>(i)}, src.machine,
                  src.available_at);
    }
  }
}

SimTime* NetworkState::find_hold(ItemId item, MachineId machine) {
  std::vector<HoldRecord>& holds = holds_[item.index()];
  const auto it = std::lower_bound(
      holds.begin(), holds.end(), machine,
      [](const HoldRecord& h, MachineId m) { return h.machine < m; });
  if (it == holds.end() || it->machine != machine) return nullptr;
  return &it->begin;
}

const SimTime* NetworkState::find_hold(ItemId item, MachineId machine) const {
  return const_cast<NetworkState*>(this)->find_hold(item, machine);
}

void NetworkState::record_hold(ItemId item, MachineId machine, SimTime begin) {
  std::vector<HoldRecord>& holds = holds_[item.index()];
  const auto it = std::lower_bound(
      holds.begin(), holds.end(), machine,
      [](const HoldRecord& h, MachineId m) { return h.machine < m; });
  DS_ASSERT(it == holds.end() || it->machine != machine);
  holds.insert(it, HoldRecord{machine, begin});
}

void NetworkState::attach_metrics(obs::MetricsRegistry& registry) {
  counters_ = NetCounters{
      registry.counter("net.transfers"),
      registry.counter("net.link_reservations"),
      registry.counter("net.storage_allocations"),
      registry.counter("net.hold_extensions"),
  };
}

std::optional<SimTime> NetworkState::copy_available_at(ItemId item,
                                                       MachineId machine) const {
  for (const Copy& c : copies_[item.index()]) {
    if (c.machine == machine) return c.available_at;
  }
  return std::nullopt;
}

SimTime NetworkState::hold_end(ItemId item, MachineId machine) const {
  return copy_hold_end(*scenario_, item, machine, is_destination(item, machine));
}

std::optional<SimTime> NetworkState::hold_begin(ItemId item, MachineId machine) const {
  const SimTime* hb = find_hold(item, machine);
  if (hb == nullptr) return std::nullopt;
  return *hb;
}

bool NetworkState::can_hold(ItemId item, MachineId machine, SimTime start) const {
  const std::int64_t bytes = scenario_->item(item).size_bytes;
  const StorageTimeline& st = storage_[machine.index()];
  const std::optional<SimTime> existing = hold_begin(item, machine);
  if (existing.has_value()) {
    // Already held; only the extension to an earlier start needs new space.
    if (*existing <= start) return true;
    return st.fits(bytes, Interval{start, *existing});
  }
  return st.fits(bytes, Interval{start, hold_end(item, machine)});
}

bool NetworkState::can_apply(ItemId item, VirtLinkId link, SimTime start) const {
  const VirtualLink& vl = scenario_->vlink(link);
  const std::int64_t bytes = scenario_->item(item).size_bytes;

  const std::optional<SimTime> sender_avail = copy_available_at(item, vl.from);
  if (!sender_avail.has_value() || *sender_avail > start) return false;
  if (start >= hold_end(item, vl.from)) return false;

  const Interval busy{start, start + links_.occupancy(link, bytes)};
  if (!vl.window.contains(busy)) return false;
  if (links_.busy_overlaps(link, busy)) return false;

  return can_hold(item, vl.to, start);
}

AppliedTransfer NetworkState::apply_transfer(ItemId item, VirtLinkId link,
                                             SimTime start) {
  const VirtualLink& vl = scenario_->vlink(link);
  const std::int64_t bytes = scenario_->item(item).size_bytes;

  const std::optional<SimTime> sender_avail = copy_available_at(item, vl.from);
  DS_ASSERT_MSG(sender_avail.has_value(), "sender does not hold the item");
  DS_ASSERT_MSG(*sender_avail <= start, "sender copy not yet available at start");
  DS_ASSERT_MSG(start < hold_end(item, vl.from),
                "sender copy already garbage-collected at start");
  DS_ASSERT_MSG(can_hold(item, vl.to, start), "receiver cannot store the item");

  links_.reserve(link, bytes, start);
  const SimTime arrival = start + links_.occupancy(link, bytes);
  if (counters_.has_value()) {
    counters_->transfers.inc();
    counters_->link_reservations.inc();
  }

  AppliedTransfer applied;
  applied.start = start;
  applied.arrival = arrival;
  applied.link = link;
  applied.link_busy = Interval{start, arrival};
  applied.storage_machine = vl.to;

  StorageTimeline& st = storage_[vl.to.index()];
  SimTime* hb = find_hold(item, vl.to);
  if (hb != nullptr) {
    // Receiver already holds a copy; this transfer arrives earlier. Charge
    // only the extension and improve the copy's availability.
    if (start < *hb) {
      const Interval extension{start, *hb};
      st.allocate(bytes, extension);
      applied.storage_interval = extension;
      *hb = start;
      if (counters_.has_value()) counters_->hold_extensions.inc();
    }
    for (Copy& c : copies_[item.index()]) {
      if (c.machine == vl.to) {
        c.available_at = min(c.available_at, arrival);
        break;
      }
    }
  } else {
    const Interval hold{start, hold_end(item, vl.to)};
    st.allocate(bytes, hold);
    applied.storage_interval = hold;
    record_hold(item, vl.to, start);
    copies_[item.index()].push_back(Copy{vl.to, arrival});
    if (counters_.has_value()) counters_->storage_allocations.inc();
  }

  ++transfer_count_;
  return applied;
}

}  // namespace datastage
