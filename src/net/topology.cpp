#include "net/topology.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {

Topology::Topology(const Scenario& scenario) : scenario_(&scenario) {
  outgoing_.resize(scenario.machine_count());
  for (std::size_t v = 0; v < scenario.virt_links.size(); ++v) {
    const VirtualLink& vl = scenario.virt_links[v];
    outgoing_[vl.from.index()].push_back(VirtLinkId(static_cast<std::int32_t>(v)));
  }
  for (auto& links : outgoing_) {
    std::sort(links.begin(), links.end(), [&](VirtLinkId a, VirtLinkId b) {
      const VirtualLink& va = scenario.vlink(a);
      const VirtualLink& vb = scenario.vlink(b);
      if (va.to != vb.to) return va.to < vb.to;
      if (va.window.begin != vb.window.begin) return va.window.begin < vb.window.begin;
      return a < b;
    });
  }

  // Distinct-neighbor out-degrees: sort all (from, to) pairs once and count
  // unique destinations per source in a single pass — no per-machine
  // allocations, no red-black trees.
  out_degree_.assign(scenario.machine_count(), 0);
  std::vector<std::pair<std::int32_t, std::int32_t>> edges;
  edges.reserve(scenario.phys_links.size());
  for (const PhysicalLink& pl : scenario.phys_links) {
    edges.emplace_back(pl.from.value(), pl.to.value());
  }
  std::sort(edges.begin(), edges.end());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    if (i == 0 || edges[i] != edges[i - 1]) {
      ++out_degree_[static_cast<std::size_t>(edges[i].first)];
    }
  }
}

bool Topology::strongly_connected() const {
  const std::size_t n = machine_count();
  if (n == 0) return false;
  if (n == 1) return true;

  // Physical adjacency (forward and reverse).
  std::vector<std::vector<std::int32_t>> fwd(n);
  std::vector<std::vector<std::int32_t>> rev(n);
  for (const PhysicalLink& pl : scenario_->phys_links) {
    fwd[pl.from.index()].push_back(pl.to.value());
    rev[pl.to.index()].push_back(pl.from.value());
  }

  auto reaches_all = [n](const std::vector<std::vector<std::int32_t>>& adj) {
    std::vector<bool> seen(n, false);
    std::vector<std::int32_t> stack{0};
    seen[0] = true;
    std::size_t count = 1;
    while (!stack.empty()) {
      const auto u = static_cast<std::size_t>(stack.back());
      stack.pop_back();
      for (std::int32_t w : adj[u]) {
        if (!seen[static_cast<std::size_t>(w)]) {
          seen[static_cast<std::size_t>(w)] = true;
          ++count;
          stack.push_back(w);
        }
      }
    }
    return count == n;
  };

  return reaches_all(fwd) && reaches_all(rev);
}

}  // namespace datastage
