// Mutable resource state of the communication system during scheduling.
//
// NetworkState owns everything a scheduling decision consumes:
//   * link reservations (LinkSchedule),
//   * per-machine storage usage over time (StorageTimeline),
//   * the expanding set of copies of each item ("the sources of Rq[i] must
//     now include all machines that Rq[i] has been moved to/through", §4.8),
//   * the garbage-collection hold windows of those copies (§4.4).
//
// Resources move monotonically: reservations and allocations are only ever
// added (garbage collection is modeled as the *end* of a hold interval, known
// at allocation time). The routing cache in core/engine relies on this
// monotonicity.
#pragma once

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include "model/scenario.hpp"
#include "net/link_schedule.hpp"
#include "net/storage_timeline.hpp"
#include "obs/metrics.hpp"
#include "util/ids.hpp"

namespace datastage {

/// A copy of an item residing on a machine, usable as a transfer source from
/// `available_at` on.
struct Copy {
  MachineId machine;
  SimTime available_at;
};

/// Record of the resources one applied transfer consumed; the scheduling
/// engine uses it to invalidate cached route trees.
struct AppliedTransfer {
  SimTime start;
  SimTime arrival;
  VirtLinkId link;
  Interval link_busy;                        ///< reserved interval on the link
  MachineId storage_machine;                 ///< receiver
  std::optional<Interval> storage_interval;  ///< newly charged hold window, if any
};

class NetworkState {
 public:
  /// Charges every initial source copy against storage. Asserts that initial
  /// copies fit (the generator guarantees this; hand-built scenarios must
  /// too). The scenario must outlive the state.
  explicit NetworkState(const Scenario& scenario);

  const Scenario& scenario() const { return *scenario_; }
  const LinkSchedule& links() const { return links_; }
  const StorageTimeline& storage(MachineId m) const { return storage_[m.index()]; }

  /// All current copies of `item` (initial sources plus staged copies).
  std::span<const Copy> copies(ItemId item) const { return copies_[item.index()]; }

  bool has_copy(ItemId item, MachineId machine) const {
    return hold_begin(item, machine).has_value();
  }

  /// When a copy at `machine` becomes usable; nullopt if no copy there.
  std::optional<SimTime> copy_available_at(ItemId item, MachineId machine) const;

  /// True iff `machine` requests `item` (is one of its destinations).
  bool is_destination(ItemId item, MachineId machine) const {
    const std::vector<MachineId>& dests = dests_[item.index()];
    return std::binary_search(dests.begin(), dests.end(), machine);
  }

  /// End of the storage hold window were `item` staged on `machine`:
  /// destinations and initial sources keep data for the rest of the
  /// simulation; intermediates release at gc_time (latest deadline + γ).
  SimTime hold_end(ItemId item, MachineId machine) const;

  /// Start of the existing hold window of `item` at `machine`, if any.
  std::optional<SimTime> hold_begin(ItemId item, MachineId machine) const;

  /// Could `machine` store `item` from `start` to its hold end, given
  /// current allocations? Accounts for an existing hold of the same item
  /// (only the extension [start, existing begin) needs new space).
  bool can_hold(ItemId item, MachineId machine, SimTime start) const;

  /// Earliest feasible start on `link` for `item` at or after `ready_at`,
  /// considering only the link (capacity is the caller's separate check).
  std::optional<LinkFit> earliest_fit(ItemId item, VirtLinkId link,
                                      SimTime ready_at) const {
    return links_.earliest_fit(link, scenario_->item(item).size_bytes, ready_at);
  }

  /// Full feasibility check of a transfer at an exact start time: sender
  /// holds a usable copy, the link window/reservations admit the occupancy,
  /// and the receiver can store the item. apply_transfer(item, link, start)
  /// succeeds iff this returns true.
  bool can_apply(ItemId item, VirtLinkId link, SimTime start) const;

  /// Commits a transfer of `item` over `link` starting at `start`:
  /// reserves the link, charges receiver storage (or extends an existing
  /// hold), and registers the new copy. Preconditions (asserted): the sender
  /// holds a usable copy by `start`; the link fits; storage fits.
  AppliedTransfer apply_transfer(ItemId item, VirtLinkId link, SimTime start);

  /// Number of transfers applied so far.
  std::size_t transfer_count() const { return transfer_count_; }

  /// Wires resource-accounting counters (`net.*`) into `registry`. Without
  /// this call the state counts nothing beyond transfer_count(). Handles are
  /// copied with the state (branch-and-bound clones share the registry).
  void attach_metrics(obs::MetricsRegistry& registry);

 private:
  /// Pre-resolved counter handles; engaged only after attach_metrics.
  struct NetCounters {
    obs::Counter transfers;
    obs::Counter link_reservations;    ///< busy-window subtractions on links
    obs::Counter storage_allocations;  ///< new hold windows charged
    obs::Counter hold_extensions;      ///< existing holds extended earlier
  };

  /// Hold window start of one copy. Holds exist only where copies do (a few
  /// machines per item), so per-item sorted vectors replace the former dense
  /// [item][machine] matrix — O(items x machines) memory was tens of GB at
  /// the huge scale tier.
  struct HoldRecord {
    MachineId machine;
    SimTime begin;
  };

  SimTime* find_hold(ItemId item, MachineId machine);
  const SimTime* find_hold(ItemId item, MachineId machine) const;
  void record_hold(ItemId item, MachineId machine, SimTime begin);

  const Scenario* scenario_;
  LinkSchedule links_;
  std::vector<StorageTimeline> storage_;
  std::vector<std::vector<Copy>> copies_;  // [item] -> copies
  std::vector<std::vector<HoldRecord>> holds_;  // [item] -> sorted by machine
  std::vector<std::vector<MachineId>> dests_;   // [item] -> sorted machine ids
  std::size_t transfer_count_ = 0;
  std::optional<NetCounters> counters_;
};

}  // namespace datastage
