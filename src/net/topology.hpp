// Immutable network topology view over a Scenario.
//
// Builds the adjacency structure the routing layer iterates (outgoing virtual
// links per machine) plus graph-level analyses: physical strong connectivity
// (the paper's generator guarantees strongly connected systems) and simple
// degree statistics used by tests and the generator.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/scenario.hpp"
#include "util/ids.hpp"

namespace datastage {

class Topology {
 public:
  /// The scenario must outlive the topology.
  explicit Topology(const Scenario& scenario);

  std::size_t machine_count() const { return outgoing_.size(); }

  /// Outgoing virtual links of `machine`, ordered by (destination, window
  /// begin). Stable order keeps Dijkstra deterministic.
  std::span<const VirtLinkId> outgoing(MachineId machine) const {
    return outgoing_[machine.index()];
  }

  /// Distinct machines reachable via at least one physical link (the paper's
  /// "outbound degree"). Precomputed: one sorted flat pass over the physical
  /// links at construction instead of a std::set per query (allocation-heavy
  /// at 5k+ machines).
  std::int32_t out_degree(MachineId machine) const {
    return out_degree_[machine.index()];
  }

  /// True iff the *physical* digraph is strongly connected (§5.1: the test
  /// generation program guarantees this).
  bool strongly_connected() const;

  const Scenario& scenario() const { return *scenario_; }

 private:
  const Scenario* scenario_;
  std::vector<std::vector<VirtLinkId>> outgoing_;
  std::vector<std::int32_t> out_degree_;  // distinct physical neighbors
};

}  // namespace datastage
