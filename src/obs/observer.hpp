// The single hook the scheduling engine exposes for observability.
//
// A RunObserver bundles the two optional sinks — a MetricsRegistry for
// aggregate counters/gauges/histograms and a RunTrace for per-event
// JSON-lines — behind one pointer carried by EngineOptions. The contract:
//
//   * observer == nullptr (the default): instrumented code takes a single
//     branch and does nothing else. No allocation, no formatting, no handle
//     resolution — the hot loop is byte-for-byte the uninstrumented one.
//   * observer != nullptr: each sink is still individually optional, so a
//     caller can collect counters without paying for trace formatting.
//
// Observation never changes scheduling decisions; the integration tests
// assert that observed and unobserved runs produce identical schedules.
#pragma once

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace datastage::obs {

struct RunObserver {
  MetricsRegistry* metrics = nullptr;
  RunTrace* trace = nullptr;
  /// Wall-clock phase sink (engine refresh timing). Kept separate from
  /// `metrics` because phase values differ run to run: harness code that
  /// byte-compares metrics documents across thread counts attaches a
  /// registry but leaves this null, while the full-document tools
  /// (toolflags::Observability) attach their phase timer here.
  PhaseTimer* phases = nullptr;
};

}  // namespace datastage::obs
