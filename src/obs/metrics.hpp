// Metrics registry: named counters, gauges and fixed-bucket histograms, plus
// monotonic phase timers.
//
// The registry is the aggregation side of the observability layer: hot paths
// hold pre-resolved Counter handles (one pointer indirection per increment,
// no lookups, no allocation), and reporting code exports the whole registry
// as an aligned text table or as JSON. Nothing in the library touches a
// registry unless a caller wires one up through obs::RunObserver — the
// default scheduling path never pays for any of this.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/table.hpp"

namespace datastage::obs {

class MetricsRegistry;

/// Cheap handle to a registry-owned counter slot. Copyable; valid as long as
/// the registry lives. A default-constructed handle drops increments, which
/// lets instrumented code hold handles unconditionally.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) {
    if (slot_ != nullptr) *slot_ += n;
  }
  std::uint64_t value() const { return slot_ != nullptr ? *slot_ : 0; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::uint64_t* slot) : slot_(slot) {}
  std::uint64_t* slot_ = nullptr;
};

/// Fixed-bucket histogram: counts per upper bound (inclusive) plus an
/// overflow bucket, with running count/sum/min/max.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v);

  const std::vector<double>& upper_bounds() const { return bounds_; }
  /// One count per bound, plus the trailing overflow bucket.
  const std::vector<std::uint64_t>& bucket_counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const;

  /// Estimated q-quantile (q in [0, 1]) by linear interpolation inside the
  /// bucket holding the target rank, clamped to the observed [min, max] so
  /// sparse buckets cannot widen the estimate. Always finite: the empty
  /// histogram reports 0.0 and overflow-bucket-only data interpolates
  /// between the last bound and the observed max — never NaN or infinity.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }

 private:
  friend class MetricsRegistry;  // from_json rebuilds internal state exactly
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Returns a handle to the named counter, creating it at zero on first
  /// use. Handles stay valid for the registry's lifetime.
  Counter counter(std::string_view name);
  /// Current value of a counter; 0 when it was never created.
  std::uint64_t counter_value(std::string_view name) const;

  void set_gauge(std::string_view name, double value);
  void add_gauge(std::string_view name, double delta);
  /// Current value of a gauge; 0.0 when it was never set.
  double gauge_value(std::string_view name) const;

  /// Returns the named histogram, creating it with `upper_bounds` on first
  /// use (later calls ignore the bounds argument).
  Histogram& histogram(std::string_view name, std::vector<double> upper_bounds);
  const Histogram* find_histogram(std::string_view name) const;

  bool empty() const;

  const std::map<std::string, std::uint64_t, std::less<>>& counters() const {
    return counters_;
  }
  const std::map<std::string, double, std::less<>>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram, std::less<>>& histograms() const {
    return histograms_;
  }

  /// Folds `other` into this registry: counters and gauges add (gauges are
  /// treated as additive — phase seconds, totals), histograms merge
  /// bucket-wise (bounds must match; count/sum/min/max combine exactly).
  /// Lossless for counters and the aggregation primitive behind the parallel
  /// executor: per-job registries merged in job-index order produce output
  /// independent of thread count and completion order.
  void merge(const MetricsRegistry& other);

  /// (kind, name, value) rows, keys sorted, histograms summarized.
  Table to_table() const;
  /// {"counters": {...}, "gauges": {...}, "histograms": {...}}, keys sorted.
  std::string to_json() const;
  /// Inverse of to_json (bit-exact for counters, round-trip-exact doubles).
  static std::optional<MetricsRegistry> from_json(std::string_view json,
                                                  std::string* error = nullptr);

 private:
  std::map<std::string, std::uint64_t, std::less<>> counters_;
  std::map<std::string, double, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// Accumulates wall-clock time per named phase, measured on the monotonic
/// steady clock. Totals never decrease.
class PhaseTimer {
 public:
  void add_nanos(std::string_view phase, std::int64_t nanos);

  /// Adds every phase total of `other` into this timer.
  void merge(const PhaseTimer& other);

  std::int64_t nanos(std::string_view phase) const;
  double seconds(std::string_view phase) const;
  const std::map<std::string, std::int64_t, std::less<>>& phases() const {
    return phases_;
  }

  /// Exports every phase as a gauge `<prefix><phase>_seconds`.
  void export_gauges(MetricsRegistry& registry,
                     const std::string& prefix = "phase.") const;

 private:
  std::map<std::string, std::int64_t, std::less<>> phases_;
};

/// RAII phase measurement: adds the scope's elapsed time to `timer` on
/// destruction. A null timer makes the scope free (observability off).
class ScopedTimer {
 public:
  ScopedTimer(PhaseTimer* timer, std::string phase);
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  PhaseTimer* timer_;
  std::string phase_;
  std::int64_t start_nanos_ = 0;
};

/// Snapshots the util/log emission counters (warnings/errors written to
/// stderr so far) into `log.warnings_emitted` / `log.errors_emitted`.
void record_log_metrics(MetricsRegistry& registry);

}  // namespace datastage::obs
