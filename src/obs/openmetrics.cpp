#include "obs/openmetrics.hpp"

#include "obs/json.hpp"

namespace datastage::obs {

std::string openmetrics_name(std::string_view name) {
  std::string out = "datastage_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string to_openmetrics(const MetricsRegistry& registry) {
  std::string out;
  for (const auto& [name, value] : registry.counters()) {
    const std::string metric = openmetrics_name(name);
    out += "# TYPE " + metric + " counter\n";
    out += metric + "_total " + std::to_string(value) + '\n';
  }
  for (const auto& [name, value] : registry.gauges()) {
    const std::string metric = openmetrics_name(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + ' ' + json_number(value) + '\n';
  }
  for (const auto& [name, h] : registry.histograms()) {
    const std::string metric = openmetrics_name(name);
    out += "# TYPE " + metric + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
      cumulative += h.bucket_counts()[i];
      out += metric + "_bucket{le=\"" + json_number(h.upper_bounds()[i]) + "\"} " +
             std::to_string(cumulative) + '\n';
    }
    cumulative += h.bucket_counts().back();
    out += metric + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) + '\n';
    out += metric + "_sum " + json_number(h.sum()) + '\n';
    out += metric + "_count " + std::to_string(h.count()) + '\n';
  }
  out += "# EOF\n";
  return out;
}

}  // namespace datastage::obs
