#include "obs/trace.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace datastage::obs {

RunTrace::Event::Event(RunTrace& trace, std::string_view type) : trace_(&trace) {
  line_ = "{\"seq\":" + std::to_string(trace.next_seq_++) + ",\"type\":\"" +
          json_escape(type) + '"';
}

RunTrace::Event::~Event() {
  line_ += '}';
  trace_->write_line(line_);
}

RunTrace::Event& RunTrace::Event::field(const char* key, std::int64_t value) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":" + std::to_string(value);
  return *this;
}

RunTrace::Event& RunTrace::Event::field(const char* key, std::uint64_t value) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":" + std::to_string(value);
  return *this;
}

RunTrace::Event& RunTrace::Event::field(const char* key, double value) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":" + json_number(value);
  return *this;
}

RunTrace::Event& RunTrace::Event::field(const char* key, bool value) {
  line_ += ",\"";
  line_ += key;
  line_ += value ? "\":true" : "\":false";
  return *this;
}

RunTrace::Event& RunTrace::Event::field(const char* key, std::string_view value) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":\"" + json_escape(value) + '"';
  return *this;
}

void RunTrace::write_line(const std::string& line) {
  *os_ << line << '\n';
  ++events_written_;
}

}  // namespace datastage::obs
