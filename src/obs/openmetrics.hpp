// OpenMetrics (Prometheus text exposition) rendering of a MetricsRegistry.
//
// This is the scrape surface a long-running `datastage_serve` daemon will
// expose; the CLI tools reach it today through
// `--metrics-out=F --metrics-format=openmetrics`. Mapping:
//
//   * counters  -> `# TYPE <name> counter` + `<name>_total <value>`
//   * gauges    -> `# TYPE <name> gauge` + `<name> <value>`
//   * histograms-> `# TYPE <name> histogram` with *cumulative* `_bucket{le=}`
//                  samples, a `le="+Inf"` bucket, `_sum` and `_count`
//
// Metric names are sanitized to [a-zA-Z0-9_:] (dots become underscores) and
// prefixed `datastage_`; the document ends with the mandatory `# EOF` line.
// Rendering is deterministic: registry maps are sorted and numbers use the
// same shortest-round-trip formatting as the JSON exporter.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace datastage::obs {

/// Renders the whole registry as an OpenMetrics text document.
std::string to_openmetrics(const MetricsRegistry& registry);

/// `datastage_` + `name` with every character outside [a-zA-Z0-9_:]
/// replaced by '_' (exposed for tests and the explain tooling).
std::string openmetrics_name(std::string_view name);

}  // namespace datastage::obs
