#include "obs/trace_reader.hpp"

#include <fstream>
#include <istream>

namespace datastage::obs {

namespace {

const JsonValue* lookup(const JsonValue& value, std::string_view key) {
  return value.find(key);
}

}  // namespace

std::int64_t TraceEvent::num(std::string_view key, std::int64_t fallback) const {
  const JsonValue* v = lookup(value, key);
  return v != nullptr && v->is_number() ? static_cast<std::int64_t>(v->number)
                                        : fallback;
}

double TraceEvent::real(std::string_view key, double fallback) const {
  const JsonValue* v = lookup(value, key);
  return v != nullptr && v->is_number() ? v->number : fallback;
}

std::string TraceEvent::str(std::string_view key, std::string_view fallback) const {
  const JsonValue* v = lookup(value, key);
  return v != nullptr && v->kind == JsonValue::Kind::kString ? v->string
                                                             : std::string(fallback);
}

bool TraceEvent::flag(std::string_view key, bool fallback) const {
  const JsonValue* v = lookup(value, key);
  return v != nullptr && v->kind == JsonValue::Kind::kBool ? v->boolean : fallback;
}

std::optional<std::vector<TraceEvent>> read_trace(std::istream& in,
                                                  std::string* error) {
  const auto fail = [error](std::size_t line_no, const std::string& msg)
      -> std::optional<std::vector<TraceEvent>> {
    if (error != nullptr) {
      *error = "trace line " + std::to_string(line_no) + ": " + msg;
    }
    return std::nullopt;
  };

  std::vector<TraceEvent> events;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::string parse_error;
    std::optional<JsonValue> value = json_parse(line, &parse_error);
    if (!value.has_value()) return fail(line_no, parse_error);
    if (!value->is_object()) return fail(line_no, "event is not a JSON object");
    const JsonValue* seq = value->find("seq");
    const JsonValue* type = value->find("type");
    if (seq == nullptr || !seq->is_number()) {
      return fail(line_no, "missing numeric \"seq\" field");
    }
    if (type == nullptr || type->kind != JsonValue::Kind::kString) {
      return fail(line_no, "missing string \"type\" field");
    }
    TraceEvent event;
    event.seq = static_cast<std::uint64_t>(seq->number);
    if (event.seq != events.size()) {
      return fail(line_no, "seq " + std::to_string(event.seq) +
                               " out of order (expected " +
                               std::to_string(events.size()) +
                               "; truncated or interleaved trace?)");
    }
    event.type = type->string;
    event.value = std::move(*value);
    events.push_back(std::move(event));
  }
  return events;
}

std::optional<std::vector<TraceEvent>> read_trace_file(const std::string& path,
                                                       std::string* error) {
  std::ifstream in(path);
  if (!in.is_open()) {
    if (error != nullptr) *error = "cannot open trace file: " + path;
    return std::nullopt;
  }
  std::string inner;
  std::optional<std::vector<TraceEvent>> events = read_trace(in, &inner);
  if (!events.has_value() && error != nullptr) *error = path + ": " + inner;
  return events;
}

}  // namespace datastage::obs
