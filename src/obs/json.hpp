// Minimal JSON value, writer helpers and recursive-descent parser.
//
// The observability layer emits machine-readable artifacts (metrics
// documents, trace event lines) and the tests parse them back to assert
// round-trip fidelity. Scope is deliberately small: the subset of JSON these
// artifacts use (objects, arrays, finite numbers, strings, booleans, null) —
// not a general-purpose JSON library.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace datastage::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion-ordered; metrics documents keep keys sorted by construction.
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }

  /// Member lookup on objects; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
};

/// Parses `text` into a value. On failure returns nullopt and, when `error`
/// is non-null, stores a message with the byte offset of the problem.
std::optional<JsonValue> json_parse(std::string_view text, std::string* error = nullptr);

/// Escapes `s` for inclusion inside a JSON string literal (no quotes added).
std::string json_escape(std::string_view s);

/// Renders a double as JSON: shortest round-trip form, integral values
/// without a trailing ".0" mantissa are kept exact.
std::string json_number(double v);

}  // namespace datastage::obs
