// Central registry of run-trace event names.
//
// Every `RunTrace::event("...")` call site in the library and tools must use
// a name listed here: the DS009 lint rule (tools/lint/datastage_lint.cpp)
// extracts the string literals from this header and flags any trace event
// whose literal name is not registered, so an event-name typo fails lint
// instead of silently forking the trace vocabulary consumers like
// `datastage_explain` rely on. Keep the list sorted and update
// docs/OBSERVABILITY.md when adding a name.
#pragma once

#include <array>
#include <string_view>

namespace datastage::obs::events {

// Engine (src/core/engine.cpp).
inline constexpr std::string_view kCommit = "commit";
inline constexpr std::string_view kFinish = "finish";
inline constexpr std::string_view kGuardTrip = "guard_trip";
inline constexpr std::string_view kInvalidate = "invalidate";
inline constexpr std::string_view kRecompute = "recompute";
inline constexpr std::string_view kRequest = "request";
inline constexpr std::string_view kRequestLost = "request_lost";
inline constexpr std::string_view kRequestRevived = "request_revived";
inline constexpr std::string_view kRequestSatisfied = "request_satisfied";
inline constexpr std::string_view kRound = "round";

// Dynamic stager (src/dynamic/stager.cpp).
inline constexpr std::string_view kCancel = "cancel";
inline constexpr std::string_view kFault = "fault";
inline constexpr std::string_view kReplan = "replan";
inline constexpr std::string_view kRequestRecovered = "request_recovered";
inline constexpr std::string_view kRequeue = "requeue";

// Serving (src/serve/scheduler_service.cpp).
inline constexpr std::string_view kAdmission = "admission";

// Tools (tools/datastage_gen.cpp).
inline constexpr std::string_view kGenerate = "generate";

/// Every registered name, sorted — the vocabulary `datastage_explain`
/// understands and the trace tests check against.
inline constexpr std::array<std::string_view, 17> kAllEventNames = {
    kAdmission,       kCancel,          kCommit,           kFault,
    kFinish,          kGenerate,        kGuardTrip,        kInvalidate,
    kRecompute,       kReplan,          kRequest,          kRequestLost,
    kRequestRecovered, kRequestRevived, kRequestSatisfied, kRequeue,
    kRound,
};

}  // namespace datastage::obs::events
