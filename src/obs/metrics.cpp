#include "obs/metrics.hpp"

#include <algorithm>

#include "obs/json.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/time.hpp"

namespace datastage::obs {

// --- Histogram -------------------------------------------------------------

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), counts_(bounds_.size() + 1, 0) {
  DS_ASSERT_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                "histogram bounds must be sorted ascending");
}

void Histogram::observe(double v) {
  std::size_t bucket = bounds_.size();  // overflow by default
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0.0;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = cum;
    cum += static_cast<double>(counts_[i]);
    if (cum < target) continue;
    // Bucket i spans (bounds[i-1], bounds[i]]; clamp to [min, max] so the
    // estimate never leaves the observed range (and the overflow bucket,
    // which has no upper bound, closes at max).
    const double hi = i < bounds_.size() ? std::min(bounds_[i], max_) : max_;
    double lo = i == 0 ? min_ : std::max(bounds_[i - 1], min_);
    lo = std::min(lo, hi);
    const double frac = (target - before) / static_cast<double>(counts_[i]);
    return lo + frac * (hi - lo);
  }
  return max_;
}

// --- MetricsRegistry -------------------------------------------------------

Counter MetricsRegistry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), 0).first;
  }
  return Counter(&it->second);
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::set_gauge(std::string_view name, double value) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), value);
  } else {
    it->second = value;
  }
}

void MetricsRegistry::add_gauge(std::string_view name, double delta) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    gauges_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), Histogram(std::move(upper_bounds)))
             .first;
  }
  return it->second;
}

const Histogram* MetricsRegistry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    counter(name).inc(value);
  }
  for (const auto& [name, value] : other.gauges_) {
    add_gauge(name, value);
  }
  for (const auto& [name, theirs] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, theirs);
      continue;
    }
    Histogram& ours = it->second;
    DS_ASSERT_MSG(ours.bounds_ == theirs.bounds_,
                  "cannot merge histograms with different bucket bounds");
    for (std::size_t i = 0; i < ours.counts_.size(); ++i) {
      ours.counts_[i] += theirs.counts_[i];
    }
    if (theirs.count_ > 0) {
      if (ours.count_ == 0) {
        ours.min_ = theirs.min_;
        ours.max_ = theirs.max_;
      } else {
        ours.min_ = std::min(ours.min_, theirs.min_);
        ours.max_ = std::max(ours.max_, theirs.max_);
      }
      ours.count_ += theirs.count_;
      ours.sum_ += theirs.sum_;
    }
  }
}

bool MetricsRegistry::empty() const {
  return counters_.empty() && gauges_.empty() && histograms_.empty();
}

Table MetricsRegistry::to_table() const {
  Table table({"kind", "name", "value"});
  for (const auto& [name, value] : counters_) {
    table.add_row({"counter", name, std::to_string(value)});
  }
  for (const auto& [name, value] : gauges_) {
    table.add_row({"gauge", name, format_double(value, 6)});
  }
  for (const auto& [name, h] : histograms_) {
    table.add_row({"histogram", name,
                   "count=" + std::to_string(h.count()) +
                       " mean=" + format_double(h.mean(), 3) +
                       " min=" + format_double(h.min(), 3) +
                       " max=" + format_double(h.max(), 3) +
                       " p50=" + format_double(h.p50(), 3) +
                       " p99=" + format_double(h.p99(), 3)});
  }
  return table;
}

std::string MetricsRegistry::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":" + json_number(value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    out += '"' + json_escape(name) + "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.upper_bounds().size(); ++i) {
      if (i != 0) out += ',';
      out += json_number(h.upper_bounds()[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.bucket_counts().size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(h.bucket_counts()[i]);
    }
    out += "],\"count\":" + std::to_string(h.count());
    out += ",\"sum\":" + json_number(h.sum());
    out += ",\"min\":" + json_number(h.min());
    out += ",\"max\":" + json_number(h.max());
    // Derived from the buckets above; from_json ignores them, so the
    // document still round-trips exactly.
    out += ",\"p50\":" + json_number(h.p50());
    out += ",\"p90\":" + json_number(h.p90());
    out += ",\"p99\":" + json_number(h.p99());
    out += '}';
  }
  out += "}}";
  return out;
}

std::optional<MetricsRegistry> MetricsRegistry::from_json(std::string_view json,
                                                          std::string* error) {
  const auto set_error = [error](const char* msg) {
    if (error != nullptr && error->empty()) *error = msg;
  };
  const std::optional<JsonValue> root = json_parse(json, error);
  if (!root.has_value()) return std::nullopt;
  if (!root->is_object()) {
    set_error("metrics document must be a JSON object");
    return std::nullopt;
  }

  MetricsRegistry registry;
  if (const JsonValue* counters = root->find("counters")) {
    if (!counters->is_object()) {
      set_error("\"counters\" must be an object");
      return std::nullopt;
    }
    for (const auto& [name, v] : counters->object) {
      if (!v.is_number()) {
        set_error("counter values must be numbers");
        return std::nullopt;
      }
      registry.counter(name).inc(static_cast<std::uint64_t>(v.number));
    }
  }
  if (const JsonValue* gauges = root->find("gauges")) {
    if (!gauges->is_object()) {
      set_error("\"gauges\" must be an object");
      return std::nullopt;
    }
    for (const auto& [name, v] : gauges->object) {
      if (!v.is_number()) {
        set_error("gauge values must be numbers");
        return std::nullopt;
      }
      registry.set_gauge(name, v.number);
    }
  }
  if (const JsonValue* histograms = root->find("histograms")) {
    if (!histograms->is_object()) {
      set_error("\"histograms\" must be an object");
      return std::nullopt;
    }
    for (const auto& [name, v] : histograms->object) {
      const JsonValue* bounds = v.find("bounds");
      const JsonValue* counts = v.find("counts");
      if (bounds == nullptr || counts == nullptr || !bounds->is_array() ||
          !counts->is_array() || counts->array.size() != bounds->array.size() + 1) {
        set_error("malformed histogram entry");
        return std::nullopt;
      }
      std::vector<double> upper;
      upper.reserve(bounds->array.size());
      for (const JsonValue& b : bounds->array) upper.push_back(b.number);
      Histogram& h = registry.histogram(name, std::move(upper));
      // Reconstruct internal state via direct assignment-equivalent observes
      // is lossy for min/max; rebuild the exact fields instead.
      h.counts_ = {};
      h.counts_.reserve(counts->array.size());
      for (const JsonValue& c : counts->array) {
        h.counts_.push_back(static_cast<std::uint64_t>(c.number));
      }
      const JsonValue* count = v.find("count");
      const JsonValue* sum = v.find("sum");
      const JsonValue* min = v.find("min");
      const JsonValue* max = v.find("max");
      h.count_ = count != nullptr ? static_cast<std::uint64_t>(count->number) : 0;
      h.sum_ = sum != nullptr ? sum->number : 0.0;
      h.min_ = min != nullptr ? min->number : 0.0;
      h.max_ = max != nullptr ? max->number : 0.0;
    }
  }
  return registry;
}

// --- PhaseTimer ------------------------------------------------------------

void PhaseTimer::add_nanos(std::string_view phase, std::int64_t nanos) {
  DS_ASSERT_MSG(nanos >= 0, "phase durations are nonnegative");
  auto it = phases_.find(phase);
  if (it == phases_.end()) {
    phases_.emplace(std::string(phase), nanos);
  } else {
    it->second += nanos;
  }
}

void PhaseTimer::merge(const PhaseTimer& other) {
  for (const auto& [phase, nanos] : other.phases_) add_nanos(phase, nanos);
}

std::int64_t PhaseTimer::nanos(std::string_view phase) const {
  const auto it = phases_.find(phase);
  return it == phases_.end() ? 0 : it->second;
}

double PhaseTimer::seconds(std::string_view phase) const {
  return static_cast<double>(nanos(phase)) / 1e9;
}

void PhaseTimer::export_gauges(MetricsRegistry& registry,
                               const std::string& prefix) const {
  for (const auto& [phase, nanos] : phases_) {
    registry.set_gauge(prefix + phase + "_seconds", static_cast<double>(nanos) / 1e9);
  }
}

ScopedTimer::ScopedTimer(PhaseTimer* timer, std::string phase)
    : timer_(timer), phase_(std::move(phase)) {
  if (timer_ != nullptr) start_nanos_ = steady_clock_nanos();
}

ScopedTimer::~ScopedTimer() {
  if (timer_ == nullptr) return;
  const std::int64_t elapsed = steady_clock_nanos() - start_nanos_;
  timer_->add_nanos(phase_, elapsed >= 0 ? elapsed : 0);
}

void record_log_metrics(MetricsRegistry& registry) {
  registry.counter("log.warnings_emitted")
      .inc(static_cast<std::uint64_t>(log_warnings_emitted()));
  registry.counter("log.errors_emitted")
      .inc(static_cast<std::uint64_t>(log_errors_emitted()));
}

}  // namespace datastage::obs
