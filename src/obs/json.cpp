#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace datastage::obs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "0";  // JSON has no inf/nan; clamp defensively
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[40];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";
  return std::string(buf, end);
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  std::optional<JsonValue> run() {
    skip_ws();
    JsonValue v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after value");
      return std::nullopt;
    }
    return v;
  }

 private:
  void fail(const char* msg) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = std::string(msg) + " at offset " + std::to_string(pos_);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.string);
      case 't':
        if (!literal("true")) break;
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return true;
      case 'f':
        if (!literal("false")) break;
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return true;
      case 'n':
        if (!literal("null")) break;
        out.kind = JsonValue::Kind::kNull;
        return true;
      default: return parse_number(out);
    }
    fail("malformed value");
    return false;
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected number");
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) {
      fail("malformed number");
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) {
      fail("expected string");
      return false;
    }
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          unsigned code = 0;
          const auto [p, ec] =
              std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || p != text_.data() + pos_ + 4) {
            fail("malformed \\u escape");
            return false;
          }
          pos_ += 4;
          // Only the BMP subset our escaper produces (control chars).
          out += static_cast<char>(code & 0x7f);
          break;
        }
        default:
          fail("unknown escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_array(JsonValue& out) {
    consume('[');
    out.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue element;
      skip_ws();
      if (!parse_value(element)) return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) {
        fail("expected ',' or ']' in array");
        return false;
      }
    }
  }

  bool parse_object(JsonValue& out) {
    consume('{');
    out.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' in object");
        return false;
      }
      skip_ws();
      JsonValue value;
      if (!parse_value(value)) return false;
      out.object.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) {
        fail("expected ',' or '}' in object");
        return false;
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  return Parser(text, error).run();
}

}  // namespace datastage::obs
