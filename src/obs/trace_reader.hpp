// Reading side of the JSON-lines run trace.
//
// `RunTrace` writes one JSON object per line; this module parses a whole
// trace back into memory so post-processing tools (`datastage_explain`) and
// tests share one loader instead of each hand-rolling line parsing. The
// reader is strict: every line must parse as a JSON object carrying the
// mandatory `seq` and `type` fields, and `seq` must be gapless from 0 — a
// truncated or interleaved trace is reported, not silently accepted.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace datastage::obs {

/// One parsed trace line.
struct TraceEvent {
  std::uint64_t seq = 0;
  std::string type;
  JsonValue value;  ///< the whole line, for event-specific fields

  /// Field accessors with defaults (absent or wrongly-typed -> fallback).
  std::int64_t num(std::string_view key, std::int64_t fallback = -1) const;
  double real(std::string_view key, double fallback = 0.0) const;
  std::string str(std::string_view key, std::string_view fallback = "") const;
  bool flag(std::string_view key, bool fallback = false) const;
  bool has(std::string_view key) const { return value.find(key) != nullptr; }
};

/// Parses a whole JSON-lines trace. On failure returns nullopt and, when
/// `error` is non-null, a message naming the offending line (1-based).
std::optional<std::vector<TraceEvent>> read_trace(std::istream& in,
                                                  std::string* error = nullptr);

/// Convenience: read_trace over a file. Distinguishes unopenable files from
/// malformed content in the error message.
std::optional<std::vector<TraceEvent>> read_trace_file(const std::string& path,
                                                       std::string* error = nullptr);

}  // namespace datastage::obs
