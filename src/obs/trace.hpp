// Structured run traces: one JSON object per line (JSON-lines), one line per
// scheduling-relevant event.
//
// A RunTrace is the event side of the observability layer: where the metrics
// registry answers "how many", the trace answers "what happened, in order".
// Every event carries a monotonically increasing sequence number and a type;
// emitters add their own fields (iteration index, simulation times in
// microseconds, ids). The sink is a caller-owned std::ostream, so traces can
// go to a file, a string buffer in tests, or stderr.
//
// Like the registry, a trace only exists when a caller wires one up through
// obs::RunObserver; unobserved runs never construct events.
#pragma once

#include <concepts>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <type_traits>

namespace datastage::obs {

class RunTrace {
 public:
  /// Builder for one trace line; fields append in call order and the line is
  /// written when the Event goes out of scope.
  class Event {
   public:
    ~Event();
    Event(const Event&) = delete;
    Event& operator=(const Event&) = delete;

    Event& field(const char* key, std::int64_t value);
    Event& field(const char* key, std::uint64_t value);
    Event& field(const char* key, double value);
    Event& field(const char* key, bool value);
    Event& field(const char* key, std::string_view value);
    /// C-string literals must land in the string overload — without this,
    /// overload resolution prefers the pointer-to-bool standard conversion
    /// over the user-defined conversion to string_view.
    Event& field(const char* key, const char* value) {
      return field(key, std::string_view(value));
    }
    /// Narrower integers widen to the matching 64-bit overload.
    template <typename T>
      requires(std::integral<T> && !std::same_as<T, bool> &&
               !std::same_as<T, std::int64_t> && !std::same_as<T, std::uint64_t>)
    Event& field(const char* key, T value) {
      if constexpr (std::is_signed_v<T>) {
        return field(key, static_cast<std::int64_t>(value));
      } else {
        return field(key, static_cast<std::uint64_t>(value));
      }
    }

   private:
    friend class RunTrace;
    Event(RunTrace& trace, std::string_view type);

    RunTrace* trace_;
    std::string line_;
  };

  /// The trace writes to `os` for its whole lifetime; `os` must outlive it.
  explicit RunTrace(std::ostream& os) : os_(&os) {}

  /// Starts an event of the given type. The returned builder must be used
  /// within the statement or a local scope (the line flushes on destruction).
  Event event(std::string_view type) { return Event(*this, type); }

  /// Number of completed (written) events.
  std::uint64_t events_written() const { return events_written_; }

 private:
  void write_line(const std::string& line);

  std::ostream* os_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t events_written_ = 0;
};

}  // namespace datastage::obs
