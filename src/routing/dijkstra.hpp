// Adaptation of Dijkstra's multiple-source shortest-path algorithm to the
// data-staging model (paper §4.2).
//
// For one data item, computes the earliest-arrival forest from all current
// copies of the item to every machine, subject to:
//   (1) receiver storage capacity through the garbage-collection hold window,
//   (2) virtual-link availability windows and existing reservations,
//   (3) copy availability times at the roots.
//
// Edge departures are FIFO (waiting never lets a transfer arrive earlier), so
// label-setting Dijkstra computes exact earliest arrivals.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/network_state.hpp"
#include "net/topology.hpp"
#include "routing/path.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace datastage {

struct DijkstraOptions {
  /// Labels strictly beyond this time are not expanded. Safe prune: any path
  /// that serves a request by its deadline only visits machines at or before
  /// that deadline. Callers pass the latest *pending* deadline of the item.
  SimTime prune_after = SimTime::infinity();
  /// Optional target set: the machines whose labels the caller will read.
  /// When non-empty, the search stops as soon as every target is settled —
  /// arrival times and parent edges of *settled* machines (which includes
  /// every ancestor on a path to a settled target) equal those of a full
  /// run; labels of other machines may be tentative. Empty span (the
  /// default) computes the full forest. The span must stay alive for the
  /// duration of the call only.
  std::span<const MachineId> targets;
};

struct DijkstraStats {
  std::size_t pops = 0;
  std::size_t relaxations = 0;
  std::size_t capacity_rejections = 0;
};

/// Caller-owned scratch buffers reused across runs: heap storage plus the
/// dense per-machine label arrays the search relaxes against. The labels are
/// epoch-stamped — a slot is valid only when its stamp equals the current
/// epoch, so starting a run invalidates everything in O(1) instead of an
/// O(machines) clear per item refresh. After the search the labeled slots
/// are compacted into the caller's sparse RouteTree. Reusing a workspace
/// removes every per-run allocation from the routing hot path; a
/// default-constructed workspace is grown on first use. Not thread-safe —
/// one workspace per thread.
struct DijkstraWorkspace {
  struct HeapEntry {
    SimTime arrival;
    MachineId machine;
  };
  std::vector<HeapEntry> heap;  ///< binary min-heap storage

  std::uint64_t epoch = 0;           ///< current run id; stamps below match it
  std::vector<std::uint64_t> stamp;  ///< label validity (== epoch)
  std::vector<SimTime> arrival;      ///< tentative arrival labels
  std::vector<std::uint8_t> settled;
  std::vector<std::uint8_t> has_parent;
  std::vector<TreeEdge> edge;            ///< parent edges (valid iff has_parent)
  std::uint64_t target_epoch = 0;        ///< separate epoch for the target set
  std::vector<std::uint64_t> target_stamp;
  std::vector<MachineId> touched;  ///< machines labeled this run (unsorted)

  /// Bumps the epoch, grows the arrays to `machine_count`, clears the heap
  /// and the touched list.
  void begin_run(std::size_t machine_count);
};

/// Runs the adapted Dijkstra for `item` over the current `state`, writing the
/// forest into `tree` (reset in place — prior contents are discarded, buffers
/// reused). `topology` must be built from `state.scenario()`.
void compute_route_tree_into(const NetworkState& state, const Topology& topology,
                             ItemId item, const DijkstraOptions& options,
                             DijkstraWorkspace& workspace, RouteTree& tree,
                             DijkstraStats* stats = nullptr);

/// Convenience wrapper allocating a fresh workspace and tree per call. The
/// scheduling engine uses compute_route_tree_into; one-shot callers (bounds,
/// baselines, tests) keep this simpler form.
RouteTree compute_route_tree(const NetworkState& state, const Topology& topology,
                             ItemId item, const DijkstraOptions& options = {},
                             DijkstraStats* stats = nullptr);

}  // namespace datastage
