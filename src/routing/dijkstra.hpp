// Adaptation of Dijkstra's multiple-source shortest-path algorithm to the
// data-staging model (paper §4.2).
//
// For one data item, computes the earliest-arrival forest from all current
// copies of the item to every machine, subject to:
//   (1) receiver storage capacity through the garbage-collection hold window,
//   (2) virtual-link availability windows and existing reservations,
//   (3) copy availability times at the roots.
//
// Edge departures are FIFO (waiting never lets a transfer arrive earlier), so
// label-setting Dijkstra computes exact earliest arrivals.
#pragma once

#include "net/network_state.hpp"
#include "net/topology.hpp"
#include "routing/path.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace datastage {

struct DijkstraOptions {
  /// Labels strictly beyond this time are not expanded. Safe prune: any path
  /// that serves a request by its deadline only visits machines at or before
  /// that deadline. Callers pass the latest *pending* deadline of the item.
  SimTime prune_after = SimTime::infinity();
};

struct DijkstraStats {
  std::size_t pops = 0;
  std::size_t relaxations = 0;
  std::size_t capacity_rejections = 0;
};

/// Runs the adapted Dijkstra for `item` over the current `state`.
/// `topology` must be built from `state.scenario()`.
RouteTree compute_route_tree(const NetworkState& state, const Topology& topology,
                             ItemId item, const DijkstraOptions& options = {},
                             DijkstraStats* stats = nullptr);

}  // namespace datastage
