#include "routing/dijkstra.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {
namespace {

// Min-heap by arrival; machine id breaks ties so the expansion order (and
// therefore the tree under equal arrivals) is deterministic.
bool heap_after(const DijkstraWorkspace::HeapEntry& a,
                const DijkstraWorkspace::HeapEntry& b) {
  if (a.arrival != b.arrival) return a.arrival > b.arrival;
  return a.machine > b.machine;
}

}  // namespace

void DijkstraWorkspace::begin_run(std::size_t machine_count) {
  ++epoch;
  if (stamp.size() < machine_count) {
    stamp.resize(machine_count, 0);
    arrival.resize(machine_count);
    settled.resize(machine_count, 0);
    has_parent.resize(machine_count, 0);
    edge.resize(machine_count);
    target_stamp.resize(machine_count, 0);
  }
  heap.clear();
  touched.clear();
}

void compute_route_tree_into(const NetworkState& state, const Topology& topology,
                             ItemId item, const DijkstraOptions& options,
                             DijkstraWorkspace& workspace, RouteTree& tree,
                             DijkstraStats* stats) {
  const Scenario& scenario = state.scenario();
  const std::size_t n = scenario.machine_count();
  DijkstraWorkspace& ws = workspace;
  ws.begin_run(n);

  // Mark the target set; `targets_left` counts distinct unsettled targets so
  // the main loop can stop the moment the caller has everything it asked for.
  std::size_t targets_left = 0;
  if (!options.targets.empty()) {
    ++ws.target_epoch;
    for (const MachineId t : options.targets) {
      if (ws.target_stamp[t.index()] != ws.target_epoch) {
        ws.target_stamp[t.index()] = ws.target_epoch;
        ++targets_left;
      }
    }
  }
  const bool track_targets = targets_left > 0;

  for (const Copy& copy : state.copies(item)) {
    // Root label: min with any existing label (a machine holds one copy, but
    // the semantics tolerate re-rooting), never via a parent edge.
    const std::size_t i = copy.machine.index();
    if (ws.stamp[i] == ws.epoch) {
      ws.arrival[i] = min(ws.arrival[i], copy.available_at);
      ws.has_parent[i] = 0;
    } else {
      ws.stamp[i] = ws.epoch;
      ws.arrival[i] = copy.available_at;
      ws.has_parent[i] = 0;
      ws.settled[i] = 0;
      ws.touched.push_back(copy.machine);
    }
    ws.heap.push_back({ws.arrival[i], copy.machine});
    std::push_heap(ws.heap.begin(), ws.heap.end(), heap_after);
  }

  while (!ws.heap.empty()) {
    std::pop_heap(ws.heap.begin(), ws.heap.end(), heap_after);
    const DijkstraWorkspace::HeapEntry entry = ws.heap.back();
    ws.heap.pop_back();
    const MachineId u = entry.machine;
    const std::size_t ui = u.index();
    if (ws.settled[ui] != 0) continue;        // lazily deleted duplicate
    if (entry.arrival != ws.arrival[ui]) continue;  // stale entry
    ws.settled[ui] = 1;
    if (stats != nullptr) ++stats->pops;

    const SimTime ready = ws.arrival[ui];
    // Every remaining label is >= ready (min-heap), so nothing past the prune
    // horizon would ever be expanded: all settled labels are already final
    // and the rest of the queue can be dropped wholesale.
    if (ready > options.prune_after) break;

    // Settling the last target finalizes every label the caller will read
    // (ancestors of a settled machine are settled); stop before expanding.
    if (track_targets && ws.target_stamp[ui] == ws.target_epoch &&
        --targets_left == 0) {
      break;
    }

    // The item must still reside on u when a transfer departs; transfers
    // departing after u's hold window has been garbage-collected are invalid.
    const SimTime sender_hold_end = state.hold_end(item, u);

    for (const VirtLinkId link_id : topology.outgoing(u)) {
      if (stats != nullptr) ++stats->relaxations;
      const VirtualLink& vl = scenario.vlink(link_id);
      const MachineId v = vl.to;
      const std::size_t vi = v.index();
      const bool labeled = ws.stamp[vi] == ws.epoch;
      if (labeled && ws.settled[vi] != 0) continue;

      const std::optional<LinkFit> fit = state.earliest_fit(item, link_id, ready);
      if (!fit.has_value()) continue;
      if (fit->start >= sender_hold_end) continue;
      const SimTime current = labeled ? ws.arrival[vi] : SimTime::infinity();
      if (fit->arrival >= current) continue;
      if (fit->arrival > options.prune_after) continue;
      if (!state.can_hold(item, v, fit->start)) {
        if (stats != nullptr) ++stats->capacity_rejections;
        continue;
      }

      if (!labeled) {
        ws.stamp[vi] = ws.epoch;
        ws.settled[vi] = 0;
        ws.touched.push_back(v);
      }
      ws.arrival[vi] = fit->arrival;
      ws.has_parent[vi] = 1;
      ws.edge[vi] = TreeEdge{u, v, link_id, fit->start, fit->arrival};
      ws.heap.push_back({fit->arrival, v});
      std::push_heap(ws.heap.begin(), ws.heap.end(), heap_after);
    }
  }

  // Compact the labeled slots into the sparse tree, ascending by machine id.
  // Tentative (unsettled) labels are included, exactly as the dense layout
  // retained them; root entries get a value-initialized edge so the tree's
  // bytes never depend on stale scratch contents.
  tree.reset(n);
  std::sort(ws.touched.begin(), ws.touched.end());
  for (const MachineId machine : ws.touched) {
    const std::size_t i = machine.index();
    tree.append(machine, ws.arrival[i], ws.has_parent[i] != 0,
                ws.has_parent[i] != 0 ? ws.edge[i] : TreeEdge{});
  }
}

RouteTree compute_route_tree(const NetworkState& state, const Topology& topology,
                             ItemId item, const DijkstraOptions& options,
                             DijkstraStats* stats) {
  DijkstraWorkspace workspace;
  RouteTree tree(0);
  compute_route_tree_into(state, topology, item, options, workspace, tree, stats);
  return tree;
}

}  // namespace datastage
