#include "routing/dijkstra.hpp"

#include <queue>
#include <vector>

#include "util/assert.hpp"

namespace datastage {
namespace {

struct QueueEntry {
  SimTime arrival;
  MachineId machine;

  // Min-heap by arrival; machine id breaks ties so the expansion order (and
  // therefore the tree under equal arrivals) is deterministic.
  friend bool operator>(const QueueEntry& a, const QueueEntry& b) {
    if (a.arrival != b.arrival) return a.arrival > b.arrival;
    return a.machine > b.machine;
  }
};

}  // namespace

RouteTree compute_route_tree(const NetworkState& state, const Topology& topology,
                             ItemId item, const DijkstraOptions& options,
                             DijkstraStats* stats) {
  const Scenario& scenario = state.scenario();
  RouteTree tree(scenario.machine_count());

  std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue;
  std::vector<bool> settled(scenario.machine_count(), false);

  for (const Copy& copy : state.copies(item)) {
    tree.set_root(copy.machine, copy.available_at);
    queue.push(QueueEntry{tree.arrival(copy.machine), copy.machine});
  }

  while (!queue.empty()) {
    const QueueEntry entry = queue.top();
    queue.pop();
    const MachineId u = entry.machine;
    if (settled[u.index()]) continue;              // lazily deleted duplicate
    if (entry.arrival != tree.arrival(u)) continue;  // stale entry
    settled[u.index()] = true;
    if (stats != nullptr) ++stats->pops;

    const SimTime ready = tree.arrival(u);
    if (ready > options.prune_after) continue;

    // The item must still reside on u when a transfer departs; transfers
    // departing after u's hold window has been garbage-collected are invalid.
    const SimTime sender_hold_end = state.hold_end(item, u);

    for (const VirtLinkId link_id : topology.outgoing(u)) {
      if (stats != nullptr) ++stats->relaxations;
      const VirtualLink& vl = scenario.vlink(link_id);
      const MachineId v = vl.to;
      if (settled[v.index()]) continue;

      const std::optional<LinkFit> fit = state.earliest_fit(item, link_id, ready);
      if (!fit.has_value()) continue;
      if (fit->start >= sender_hold_end) continue;
      if (fit->arrival >= tree.arrival(v)) continue;
      if (fit->arrival > options.prune_after) continue;
      if (!state.can_hold(item, v, fit->start)) {
        if (stats != nullptr) ++stats->capacity_rejections;
        continue;
      }

      tree.set_parent(v, TreeEdge{u, v, link_id, fit->start, fit->arrival});
      queue.push(QueueEntry{fit->arrival, v});
    }
  }

  return tree;
}

}  // namespace datastage
