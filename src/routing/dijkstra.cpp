#include "routing/dijkstra.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {
namespace {

// Min-heap by arrival; machine id breaks ties so the expansion order (and
// therefore the tree under equal arrivals) is deterministic.
bool heap_after(const DijkstraWorkspace::HeapEntry& a,
                const DijkstraWorkspace::HeapEntry& b) {
  if (a.arrival != b.arrival) return a.arrival > b.arrival;
  return a.machine > b.machine;
}

}  // namespace

void compute_route_tree_into(const NetworkState& state, const Topology& topology,
                             ItemId item, const DijkstraOptions& options,
                             DijkstraWorkspace& workspace, RouteTree& tree,
                             DijkstraStats* stats) {
  const Scenario& scenario = state.scenario();
  const std::size_t n = scenario.machine_count();
  tree.reset(n);

  std::vector<DijkstraWorkspace::HeapEntry>& heap = workspace.heap;
  heap.clear();
  workspace.settled.assign(n, 0);

  // Mark the target set; `targets_left` counts distinct unsettled targets so
  // the main loop can stop the moment the caller has everything it asked for.
  std::size_t targets_left = 0;
  if (!options.targets.empty()) {
    workspace.is_target.assign(n, 0);
    for (const MachineId t : options.targets) {
      if (workspace.is_target[t.index()] == 0) {
        workspace.is_target[t.index()] = 1;
        ++targets_left;
      }
    }
  }
  const bool track_targets = targets_left > 0;

  for (const Copy& copy : state.copies(item)) {
    tree.set_root(copy.machine, copy.available_at);
    heap.push_back({tree.arrival(copy.machine), copy.machine});
    std::push_heap(heap.begin(), heap.end(), heap_after);
  }

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), heap_after);
    const DijkstraWorkspace::HeapEntry entry = heap.back();
    heap.pop_back();
    const MachineId u = entry.machine;
    if (workspace.settled[u.index()] != 0) continue;  // lazily deleted duplicate
    if (entry.arrival != tree.arrival(u)) continue;   // stale entry
    workspace.settled[u.index()] = 1;
    if (stats != nullptr) ++stats->pops;

    const SimTime ready = tree.arrival(u);
    // Every remaining label is >= ready (min-heap), so nothing past the prune
    // horizon would ever be expanded: all settled labels are already final
    // and the rest of the queue can be dropped wholesale.
    if (ready > options.prune_after) break;

    // Settling the last target finalizes every label the caller will read
    // (ancestors of a settled machine are settled); stop before expanding.
    if (track_targets && workspace.is_target[u.index()] != 0 &&
        --targets_left == 0) {
      break;
    }

    // The item must still reside on u when a transfer departs; transfers
    // departing after u's hold window has been garbage-collected are invalid.
    const SimTime sender_hold_end = state.hold_end(item, u);

    for (const VirtLinkId link_id : topology.outgoing(u)) {
      if (stats != nullptr) ++stats->relaxations;
      const VirtualLink& vl = scenario.vlink(link_id);
      const MachineId v = vl.to;
      if (workspace.settled[v.index()] != 0) continue;

      const std::optional<LinkFit> fit = state.earliest_fit(item, link_id, ready);
      if (!fit.has_value()) continue;
      if (fit->start >= sender_hold_end) continue;
      if (fit->arrival >= tree.arrival(v)) continue;
      if (fit->arrival > options.prune_after) continue;
      if (!state.can_hold(item, v, fit->start)) {
        if (stats != nullptr) ++stats->capacity_rejections;
        continue;
      }

      tree.set_parent(v, TreeEdge{u, v, link_id, fit->start, fit->arrival});
      heap.push_back({fit->arrival, v});
      std::push_heap(heap.begin(), heap.end(), heap_after);
    }
  }
}

RouteTree compute_route_tree(const NetworkState& state, const Topology& topology,
                             ItemId item, const DijkstraOptions& options,
                             DijkstraStats* stats) {
  DijkstraWorkspace workspace;
  RouteTree tree(0);
  compute_route_tree_into(state, topology, item, options, workspace, tree, stats);
  return tree;
}

}  // namespace datastage
