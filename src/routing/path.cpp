#include "routing/path.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {

RouteTree::RouteTree(std::size_t machine_count) : machine_count_(machine_count) {}

void RouteTree::reset(std::size_t machine_count) {
  entries_.clear();
  machine_count_ = machine_count;
}

const RouteTree::Entry* RouteTree::find(MachineId machine) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), machine,
      [](const Entry& e, MachineId m) { return e.machine < m; });
  if (it == entries_.end() || it->machine != machine) return nullptr;
  return &*it;
}

const TreeEdge& RouteTree::parent_edge(MachineId machine) const {
  const Entry* e = find(machine);
  DS_ASSERT(e != nullptr && e->has_parent);
  return e->edge;
}

const TreeEdge& RouteTree::first_hop(MachineId dest) const {
  DS_ASSERT(reached(dest));
  DS_ASSERT(has_parent(dest));
  MachineId cursor = dest;
  while (has_parent(parent_edge(cursor).from)) {
    cursor = parent_edge(cursor).from;
  }
  return parent_edge(cursor);
}

std::vector<TreeEdge> RouteTree::path_to(MachineId dest) const {
  std::vector<TreeEdge> path;
  path_to_into(dest, path);
  return path;
}

void RouteTree::path_to_into(MachineId dest, std::vector<TreeEdge>& out) const {
  DS_ASSERT(reached(dest));
  out.clear();
  MachineId cursor = dest;
  while (has_parent(cursor)) {
    out.push_back(parent_edge(cursor));
    cursor = parent_edge(cursor).from;
  }
  std::reverse(out.begin(), out.end());
}

void RouteTree::append(MachineId machine, SimTime arrival, bool has_parent,
                       const TreeEdge& edge) {
  DS_ASSERT_MSG(entries_.empty() || entries_.back().machine < machine,
                "RouteTree entries must be appended in ascending machine order");
  entries_.push_back(Entry{machine, arrival, has_parent, edge});
}

}  // namespace datastage
