#include "routing/path.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {

RouteTree::RouteTree(std::size_t machine_count)
    : arrival_(machine_count, SimTime::infinity()),
      has_parent_(machine_count, false),
      edge_(machine_count) {}

void RouteTree::reset(std::size_t machine_count) {
  arrival_.assign(machine_count, SimTime::infinity());
  has_parent_.assign(machine_count, false);
  // Edge slots are only read where has_parent_ is true; stale contents are
  // unreachable, so a resize (no refill) suffices.
  edge_.resize(machine_count);
}

const TreeEdge& RouteTree::parent_edge(MachineId machine) const {
  DS_ASSERT(has_parent(machine));
  return edge_[machine.index()];
}

const TreeEdge& RouteTree::first_hop(MachineId dest) const {
  DS_ASSERT(reached(dest));
  DS_ASSERT(has_parent(dest));
  MachineId cursor = dest;
  while (has_parent(parent_edge(cursor).from)) {
    cursor = parent_edge(cursor).from;
  }
  return parent_edge(cursor);
}

std::vector<TreeEdge> RouteTree::path_to(MachineId dest) const {
  DS_ASSERT(reached(dest));
  std::vector<TreeEdge> path;
  MachineId cursor = dest;
  while (has_parent(cursor)) {
    path.push_back(parent_edge(cursor));
    cursor = parent_edge(cursor).from;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

void RouteTree::set_root(MachineId machine, SimTime available_at) {
  // A machine can hold one copy only; availability improvements go through
  // set_parent. Roots may be re-set to an earlier time during relaxation of
  // multi-copy states (the engine initializes each copy exactly once).
  arrival_[machine.index()] = min(arrival_[machine.index()], available_at);
  has_parent_[machine.index()] = false;
}

void RouteTree::set_parent(MachineId machine, const TreeEdge& edge) {
  DS_ASSERT(edge.to == machine);
  DS_ASSERT(edge.arrival < arrival_[machine.index()]);
  arrival_[machine.index()] = edge.arrival;
  has_parent_[machine.index()] = true;
  edge_[machine.index()] = edge;
}

}  // namespace datastage
