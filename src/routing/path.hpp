// Route trees: the output of the multiple-source shortest-path computation.
//
// A RouteTree is the earliest-arrival forest for one data item given the
// current network state: every reachable machine has an arrival time and (if
// it is not a copy holder already) the hop that attains it. Paths and first
// hops are recovered by walking parent pointers.
//
// Storage is sparse: one entry per *labeled* machine, sorted by machine id.
// Deadline pruning and target early-termination keep the labeled set tiny
// compared to the machine count, and the engine holds one tree per item plan
// — a dense per-machine layout cost O(items x machines) memory (tens of GB
// at the huge scale tier) and an O(machines) clear per refresh. The dense
// per-machine scratch now lives in DijkstraWorkspace, shared by every item a
// worker refreshes.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace datastage {

/// One hop of a route: transfer the item from `from` to `to` over `link`,
/// occupying the link during [start, arrival).
struct TreeEdge {
  MachineId from;
  MachineId to;
  VirtLinkId link;
  SimTime start;
  SimTime arrival;

  friend bool operator==(const TreeEdge&, const TreeEdge&) = default;
};

class RouteTree {
 public:
  explicit RouteTree(std::size_t machine_count);

  /// Re-initializes the tree for `machine_count` machines, reusing the
  /// existing entry buffer. Equivalent to assigning a fresh RouteTree but
  /// without reallocating — the engine recomputes trees in place every round.
  void reset(std::size_t machine_count);

  std::size_t machine_count() const { return machine_count_; }

  /// Number of labeled machines (the sparse entry count).
  std::size_t labeled_count() const { return entries_.size(); }

  /// Earliest arrival of the item at `machine` (A_T when `machine` is a
  /// requesting destination). SimTime::infinity() if unreachable.
  SimTime arrival(MachineId machine) const {
    const Entry* e = find(machine);
    return e != nullptr ? e->arrival : SimTime::infinity();
  }

  bool reached(MachineId machine) const {
    const Entry* e = find(machine);
    return e != nullptr && !e->arrival.is_infinite();
  }

  /// True iff `machine` was reached via a transfer (false for copy holders,
  /// which are roots of the forest).
  bool has_parent(MachineId machine) const {
    const Entry* e = find(machine);
    return e != nullptr && e->has_parent;
  }

  const TreeEdge& parent_edge(MachineId machine) const;

  /// The first hop of the path from a copy holder to `dest`: the edge whose
  /// origin is a root. This is the paper's "next machine M[r] to receive the
  /// item" for destination `dest`. Requires reached(dest) && has_parent(dest).
  const TreeEdge& first_hop(MachineId dest) const;

  /// Full path root -> dest, in transfer order. Empty if dest is a root.
  std::vector<TreeEdge> path_to(MachineId dest) const;

  /// path_to writing into a caller-reused buffer (cleared first) — the
  /// allocation-free form for per-round hot paths.
  void path_to_into(MachineId dest, std::vector<TreeEdge>& out) const;

  /// Bulk-build interface for the Dijkstra driver: entries must be appended
  /// in strictly ascending machine order after a reset().
  void append(MachineId machine, SimTime arrival, bool has_parent,
              const TreeEdge& edge);

 private:
  struct Entry {
    MachineId machine;
    SimTime arrival;
    bool has_parent;
    TreeEdge edge;  // parent edge (valid iff has_parent)
  };

  const Entry* find(MachineId machine) const;

  std::vector<Entry> entries_;  // sorted by machine id
  std::size_t machine_count_ = 0;
};

}  // namespace datastage
