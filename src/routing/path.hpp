// Route trees: the output of the multiple-source shortest-path computation.
//
// A RouteTree is the earliest-arrival forest for one data item given the
// current network state: every reachable machine has an arrival time and (if
// it is not a copy holder already) the hop that attains it. Paths and first
// hops are recovered by walking parent pointers.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace datastage {

/// One hop of a route: transfer the item from `from` to `to` over `link`,
/// occupying the link during [start, arrival).
struct TreeEdge {
  MachineId from;
  MachineId to;
  VirtLinkId link;
  SimTime start;
  SimTime arrival;

  friend bool operator==(const TreeEdge&, const TreeEdge&) = default;
};

class RouteTree {
 public:
  explicit RouteTree(std::size_t machine_count);

  /// Re-initializes the tree for `machine_count` machines, reusing the
  /// existing buffers. Equivalent to assigning a fresh RouteTree but without
  /// reallocating — the engine recomputes trees in place every round.
  void reset(std::size_t machine_count);

  std::size_t machine_count() const { return arrival_.size(); }

  /// Earliest arrival of the item at `machine` (A_T when `machine` is a
  /// requesting destination). SimTime::infinity() if unreachable.
  SimTime arrival(MachineId machine) const { return arrival_[machine.index()]; }

  bool reached(MachineId machine) const {
    return !arrival_[machine.index()].is_infinite();
  }

  /// True iff `machine` was reached via a transfer (false for copy holders,
  /// which are roots of the forest).
  bool has_parent(MachineId machine) const { return has_parent_[machine.index()]; }

  const TreeEdge& parent_edge(MachineId machine) const;

  /// The first hop of the path from a copy holder to `dest`: the edge whose
  /// origin is a root. This is the paper's "next machine M[r] to receive the
  /// item" for destination `dest`. Requires reached(dest) && has_parent(dest).
  const TreeEdge& first_hop(MachineId dest) const;

  /// Full path root -> dest, in transfer order. Empty if dest is a root.
  std::vector<TreeEdge> path_to(MachineId dest) const;

  /// Mutation interface for the Dijkstra driver.
  void set_root(MachineId machine, SimTime available_at);
  void set_parent(MachineId machine, const TreeEdge& edge);

 private:
  std::vector<SimTime> arrival_;
  std::vector<bool> has_parent_;
  std::vector<TreeEdge> edge_;  // parent edge of each machine (valid iff has_parent_)
};

}  // namespace datastage
