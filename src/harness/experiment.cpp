#include "harness/experiment.hpp"

#include "harness/parallel.hpp"
#include "obs/observer.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace datastage {
namespace {

// Stream tags for the random baselines: each (baseline, case) pair derives
// its Rng as Rng(cases.seed).split(tag).split(case index), so the stream
// depends only on the base seed, the baseline and the case — never on how
// many cases ran before it or on which thread (the parallel determinism
// contract; see harness/parallel.hpp).
constexpr std::uint64_t kStreamSingleDijkstraRandom = 0xd1b54a32d192ed03ULL;
constexpr std::uint64_t kStreamRandomDijkstra = 0xeb382d69195c39b7ULL;

}  // namespace

CaseSet build_cases(const ExperimentConfig& config) {
  CaseSet cases;
  cases.seed = config.seed;
  cases.scenarios = generate_cases(config.gen, config.seed, config.cases);
  return cases;
}

std::vector<CaseResult> run_cases(const CaseSet& cases, const SchedulerSpec& spec,
                                  const EngineOptions& base_options,
                                  obs::MetricsRegistry* merged) {
  const std::size_t n = cases.scenarios.size();
  std::vector<obs::MetricsRegistry> registries(merged != nullptr ? n : 0);
  std::vector<CaseResult> results =
      default_executor().map<CaseResult>(n, [&](std::size_t i) {
        EngineOptions options = base_options;
        obs::RunObserver observer;
        if (merged != nullptr) {
          observer.metrics = &registries[i];
          options.observer = &observer;
        }
        return run_case(spec, cases.scenarios[i], options);
      });
  if (merged != nullptr) {
    // Sequential, in case order: merged output is independent of scheduling.
    for (const obs::MetricsRegistry& registry : registries) merged->merge(registry);
  }
  return results;
}

double average_pair_value(const CaseSet& cases, const PriorityWeighting& weighting,
                          const SchedulerSpec& spec, const EUWeights& eu) {
  EngineOptions options;
  options.weighting = weighting;
  options.eu = eu;
  double total = 0.0;
  for (const CaseResult& result : run_cases(cases, spec, options)) {
    total += result.weighted_value;
  }
  return total / static_cast<double>(cases.scenarios.size());
}

ValueStats pair_value_stats(const CaseSet& cases, const PriorityWeighting& weighting,
                            const SchedulerSpec& spec, const EUWeights& eu) {
  EngineOptions options;
  options.weighting = weighting;
  options.eu = eu;
  Accumulator acc;
  for (const CaseResult& result : run_cases(cases, spec, options)) {
    acc.add(result.weighted_value);
  }
  return ValueStats{acc.mean(), acc.min(), acc.max(), acc.stddev()};
}

Table scheduler_cost_table(const CaseSet& cases, const PriorityWeighting& weighting,
                           const EUWeights& eu,
                           const std::vector<SchedulerSpec>& specs,
                           obs::MetricsRegistry* merged) {
  Table table({"scheduler", "iterations", "recomputes", "cache_hits", "hit_rate",
               "candidates", "steps"});
  const double n = static_cast<double>(cases.scenarios.size());
  EngineOptions options;
  options.weighting = weighting;
  options.eu = eu;
  for (const SchedulerSpec& spec : specs) {
    obs::MetricsRegistry registry;
    run_cases(cases, spec, options, &registry);
    const auto mean = [&](const char* name) {
      return static_cast<double>(registry.counter_value(name)) / n;
    };
    const double recomputes = mean("engine.tree_recomputes");
    const double hits = mean("engine.cache_hits");
    const double refreshes = recomputes + hits;
    table.add_row({spec.name(), format_double(mean("engine.iterations"), 1),
                   format_double(recomputes, 1), format_double(hits, 1),
                   format_double(refreshes == 0.0 ? 0.0 : hits / refreshes, 3),
                   format_double(mean("engine.candidates_scored"), 1),
                   format_double(mean("engine.steps_committed"), 1)});
    if (merged != nullptr) {
      const std::string prefix = spec.name() + "/";
      for (const auto& [name, value] : registry.counters()) {
        merged->counter(prefix + name).inc(value);
      }
    }
  }
  return table;
}

AveragedBounds average_bounds(const CaseSet& cases, const PriorityWeighting& weighting) {
  const std::vector<BoundsReport> reports =
      default_executor().map<BoundsReport>(cases.scenarios.size(), [&](std::size_t i) {
        return compute_bounds(cases.scenarios[i], weighting);
      });
  AveragedBounds avg;
  for (const BoundsReport& report : reports) {
    avg.upper_bound += report.upper_bound;
    avg.possible_satisfy += report.possible_satisfy;
  }
  const auto n = static_cast<double>(cases.scenarios.size());
  avg.upper_bound /= n;
  avg.possible_satisfy /= n;
  return avg;
}

namespace {

/// Shared shape of the two random baselines: per-case Rng from the stream
/// tag, parallel map, sequential mean.
template <class RunFn>
double average_random_baseline(const CaseSet& cases, std::uint64_t stream_tag,
                               const RunFn& run) {
  const Rng stream_root = Rng(cases.seed).split(stream_tag);
  const std::vector<double> values =
      default_executor().map<double>(cases.scenarios.size(), [&](std::size_t i) {
        Rng rng = stream_root.split(i);
        return run(cases.scenarios[i], rng);
      });
  double total = 0.0;
  for (const double value : values) total += value;
  return total / static_cast<double>(cases.scenarios.size());
}

}  // namespace

double average_single_dijkstra_random(const CaseSet& cases,
                                      const PriorityWeighting& weighting) {
  return average_random_baseline(
      cases, kStreamSingleDijkstraRandom, [&](const Scenario& scenario, Rng& rng) {
        const StagingResult result =
            run_single_dijkstra_random(scenario, weighting, rng);
        return weighted_value(scenario, weighting, result.outcomes);
      });
}

double average_random_dijkstra(const CaseSet& cases,
                               const PriorityWeighting& weighting) {
  return average_random_baseline(
      cases, kStreamRandomDijkstra, [&](const Scenario& scenario, Rng& rng) {
        const StagingResult result = run_random_dijkstra(scenario, weighting, rng);
        return weighted_value(scenario, weighting, result.outcomes);
      });
}

double average_priority_first(const CaseSet& cases,
                              const PriorityWeighting& weighting) {
  const std::vector<double> values =
      default_executor().map<double>(cases.scenarios.size(), [&](std::size_t i) {
        const StagingResult result =
            run_priority_first(cases.scenarios[i], weighting);
        return weighted_value(cases.scenarios[i], weighting, result.outcomes);
      });
  double total = 0.0;
  for (const double value : values) total += value;
  return total / static_cast<double>(cases.scenarios.size());
}

}  // namespace datastage
