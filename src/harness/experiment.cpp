#include "harness/experiment.hpp"

#include "obs/observer.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace datastage {

CaseSet build_cases(const ExperimentConfig& config) {
  CaseSet cases;
  cases.seed = config.seed;
  cases.scenarios = generate_cases(config.gen, config.seed, config.cases);
  return cases;
}

double average_pair_value(const CaseSet& cases, const PriorityWeighting& weighting,
                          const SchedulerSpec& spec, const EUWeights& eu) {
  double total = 0.0;
  EngineOptions options;
  options.weighting = weighting;
  options.eu = eu;
  for (const Scenario& scenario : cases.scenarios) {
    const StagingResult result = run_spec(spec, scenario, options);
    total += weighted_value(scenario, weighting, result.outcomes);
  }
  return total / static_cast<double>(cases.scenarios.size());
}

ValueStats pair_value_stats(const CaseSet& cases, const PriorityWeighting& weighting,
                            const SchedulerSpec& spec, const EUWeights& eu) {
  Accumulator acc;
  EngineOptions options;
  options.weighting = weighting;
  options.eu = eu;
  for (const Scenario& scenario : cases.scenarios) {
    const StagingResult result = run_spec(spec, scenario, options);
    acc.add(weighted_value(scenario, weighting, result.outcomes));
  }
  return ValueStats{acc.mean(), acc.min(), acc.max(), acc.stddev()};
}

Table scheduler_cost_table(const CaseSet& cases, const PriorityWeighting& weighting,
                           const EUWeights& eu,
                           const std::vector<SchedulerSpec>& specs) {
  Table table({"scheduler", "iterations", "recomputes", "cache_hits", "hit_rate",
               "candidates", "steps"});
  const double n = static_cast<double>(cases.scenarios.size());
  for (const SchedulerSpec& spec : specs) {
    obs::MetricsRegistry registry;
    obs::RunObserver observer{&registry, nullptr};
    EngineOptions options;
    options.weighting = weighting;
    options.eu = eu;
    options.observer = &observer;
    for (const Scenario& scenario : cases.scenarios) {
      run_spec(spec, scenario, options);
    }
    const auto mean = [&](const char* name) {
      return static_cast<double>(registry.counter_value(name)) / n;
    };
    const double recomputes = mean("engine.tree_recomputes");
    const double hits = mean("engine.cache_hits");
    const double refreshes = recomputes + hits;
    table.add_row({spec.name(), format_double(mean("engine.iterations"), 1),
                   format_double(recomputes, 1), format_double(hits, 1),
                   format_double(refreshes == 0.0 ? 0.0 : hits / refreshes, 3),
                   format_double(mean("engine.candidates_scored"), 1),
                   format_double(mean("engine.steps_committed"), 1)});
  }
  return table;
}

AveragedBounds average_bounds(const CaseSet& cases, const PriorityWeighting& weighting) {
  AveragedBounds avg;
  for (const Scenario& scenario : cases.scenarios) {
    const BoundsReport report = compute_bounds(scenario, weighting);
    avg.upper_bound += report.upper_bound;
    avg.possible_satisfy += report.possible_satisfy;
  }
  const auto n = static_cast<double>(cases.scenarios.size());
  avg.upper_bound /= n;
  avg.possible_satisfy /= n;
  return avg;
}

double average_single_dijkstra_random(const CaseSet& cases,
                                      const PriorityWeighting& weighting) {
  double total = 0.0;
  for (std::size_t i = 0; i < cases.scenarios.size(); ++i) {
    Rng rng(cases.seed ^ (0xd1b54a32d192ed03ULL * (i + 1)));
    const StagingResult result =
        run_single_dijkstra_random(cases.scenarios[i], weighting, rng);
    total += weighted_value(cases.scenarios[i], weighting, result.outcomes);
  }
  return total / static_cast<double>(cases.scenarios.size());
}

double average_random_dijkstra(const CaseSet& cases,
                               const PriorityWeighting& weighting) {
  double total = 0.0;
  for (std::size_t i = 0; i < cases.scenarios.size(); ++i) {
    Rng rng(cases.seed ^ (0xeb382d69195c39b7ULL * (i + 1)));
    const StagingResult result =
        run_random_dijkstra(cases.scenarios[i], weighting, rng);
    total += weighted_value(cases.scenarios[i], weighting, result.outcomes);
  }
  return total / static_cast<double>(cases.scenarios.size());
}

double average_priority_first(const CaseSet& cases,
                              const PriorityWeighting& weighting) {
  double total = 0.0;
  for (const Scenario& scenario : cases.scenarios) {
    const StagingResult result = run_priority_first(scenario, weighting);
    total += weighted_value(scenario, weighting, result.outcomes);
  }
  return total / static_cast<double>(cases.scenarios.size());
}

}  // namespace datastage
