// E-U ratio sweeps: the x-axis of the paper's figures.
//
// Figures 2-5 plot the weighted sum of satisfied priorities against
// log10(W_E/W_U) in {-3..5} plus the two extremes -inf (urgency only) and
// +inf (effective priority only). A sweep evaluates a set of series (pairs,
// bounds, baselines) at every axis point over a shared CaseSet.
#pragma once

#include <string>
#include <vector>

#include "core/cost.hpp"
#include "core/registry.hpp"
#include "harness/experiment.hpp"

namespace datastage {

/// Axis points as log10 ratios; ±infinity encode the extremes.
std::vector<double> paper_eu_axis();

/// "-inf", "-3" .. "5", "inf" labels for tables/CSV.
std::string eu_axis_label(double log10_ratio);

struct SweepSeries {
  std::string name;
  std::vector<double> values;  ///< one per axis point
};

struct SweepResult {
  std::vector<double> axis;  ///< log10 ratios
  std::vector<SweepSeries> series;
};

/// Evaluates each pair across the axis. Flat series (bounds, C3, baselines)
/// can be added afterwards with add_flat_series.
SweepResult sweep_pairs(const CaseSet& cases, const PriorityWeighting& weighting,
                        const std::vector<SchedulerSpec>& pairs,
                        const std::vector<double>& axis, bool verbose = false);

/// Adds a constant series (bounds/baselines are E-U independent).
void add_flat_series(SweepResult& result, const std::string& name, double value);

}  // namespace datastage
