#include "harness/sweep.hpp"

#include <cmath>
#include <limits>

#include "util/log.hpp"
#include "util/stats.hpp"

namespace datastage {

std::vector<double> paper_eu_axis() {
  std::vector<double> axis;
  axis.push_back(-std::numeric_limits<double>::infinity());
  for (int x = -3; x <= 5; ++x) axis.push_back(static_cast<double>(x));
  axis.push_back(std::numeric_limits<double>::infinity());
  return axis;
}

std::string eu_axis_label(double log10_ratio) {
  if (std::isinf(log10_ratio)) return log10_ratio > 0 ? "inf" : "-inf";
  if (log10_ratio == std::floor(log10_ratio)) {
    return std::to_string(static_cast<long long>(log10_ratio));
  }
  return format_double(log10_ratio, 2);
}

SweepResult sweep_pairs(const CaseSet& cases, const PriorityWeighting& weighting,
                        const std::vector<SchedulerSpec>& pairs,
                        const std::vector<double>& axis, bool verbose) {
  SweepResult result;
  result.axis = axis;
  for (const SchedulerSpec& spec : pairs) {
    SweepSeries series;
    series.name = spec.name();
    series.values.reserve(axis.size());
    // C3 ignores W_E/W_U entirely (§4.8): evaluate once and replicate.
    if (spec.criterion == CostCriterion::kC3) {
      const double value =
          average_pair_value(cases, weighting, spec, EUWeights::from_log10_ratio(0.0));
      series.values.assign(axis.size(), value);
      if (verbose) log_info(series.name + " (flat) = " + format_double(value));
    } else {
      for (const double x : axis) {
        const double value =
            average_pair_value(cases, weighting, spec, EUWeights::from_log10_ratio(x));
        series.values.push_back(value);
        if (verbose) {
          log_info(series.name + " @ " + eu_axis_label(x) + " = " +
                   format_double(value));
        }
      }
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

void add_flat_series(SweepResult& result, const std::string& name, double value) {
  SweepSeries series;
  series.name = name;
  series.values.assign(result.axis.size(), value);
  result.series.push_back(std::move(series));
}

}  // namespace datastage
