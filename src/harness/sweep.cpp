#include "harness/sweep.hpp"

#include <cmath>
#include <limits>

#include "harness/parallel.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"

namespace datastage {

std::vector<double> paper_eu_axis() {
  std::vector<double> axis;
  axis.push_back(-std::numeric_limits<double>::infinity());
  for (int x = -3; x <= 5; ++x) axis.push_back(static_cast<double>(x));
  axis.push_back(std::numeric_limits<double>::infinity());
  return axis;
}

std::string eu_axis_label(double log10_ratio) {
  if (std::isinf(log10_ratio)) return log10_ratio > 0 ? "inf" : "-inf";
  if (log10_ratio == std::floor(log10_ratio)) {
    return std::to_string(static_cast<long long>(log10_ratio));
  }
  return format_double(log10_ratio, 2);
}

SweepResult sweep_pairs(const CaseSet& cases, const PriorityWeighting& weighting,
                        const std::vector<SchedulerSpec>& pairs,
                        const std::vector<double>& axis, bool verbose) {
  SweepResult result;
  result.axis = axis;

  // Fan the whole (pair x axis point x case) grid through the parallel
  // executor in one batch: every cell is an independent run_case call, so
  // wall-clock scales with the worker count while the reduction below —
  // sequential, in grid order — keeps the output bit-identical to a serial
  // sweep. C3 ignores W_E/W_U entirely (§4.8): one evaluated column,
  // replicated across the axis afterwards.
  struct Cell {
    std::size_t series;
    std::size_t point;
    std::size_t case_index;
  };
  std::vector<std::size_t> evaluated_points;  // per series: 1 for C3
  std::vector<Cell> grid;
  evaluated_points.reserve(pairs.size());
  for (std::size_t s = 0; s < pairs.size(); ++s) {
    const bool flat = pairs[s].criterion == CostCriterion::kC3;
    const std::size_t points = flat ? 1 : axis.size();
    evaluated_points.push_back(points);
    for (std::size_t p = 0; p < points; ++p) {
      for (std::size_t c = 0; c < cases.scenarios.size(); ++c) {
        grid.push_back(Cell{s, p, c});
      }
    }
  }

  const std::vector<double> cell_values =
      default_executor().map<double>(grid.size(), [&](std::size_t i) {
        const Cell& cell = grid[i];
        const bool flat = pairs[cell.series].criterion == CostCriterion::kC3;
        EngineOptions options;
        options.weighting = weighting;
        options.eu = EUWeights::from_log10_ratio(flat ? 0.0 : axis[cell.point]);
        return run_case(pairs[cell.series], cases.scenarios[cell.case_index], options)
            .weighted_value;
      });

  // Sequential reduction in grid order (same order as the old serial loops).
  const double n = static_cast<double>(cases.scenarios.size());
  std::vector<std::vector<double>> sums(pairs.size());
  for (std::size_t s = 0; s < pairs.size(); ++s) {
    sums[s].assign(evaluated_points[s], 0.0);
  }
  for (std::size_t i = 0; i < grid.size(); ++i) {
    sums[grid[i].series][grid[i].point] += cell_values[i];
  }

  for (std::size_t s = 0; s < pairs.size(); ++s) {
    SweepSeries series;
    series.name = pairs[s].name();
    if (evaluated_points[s] == 1 && axis.size() != 1) {
      const double value = sums[s][0] / n;
      series.values.assign(axis.size(), value);
      if (verbose) log_info(series.name + " (flat) = " + format_double(value));
    } else {
      series.values.reserve(axis.size());
      for (std::size_t p = 0; p < evaluated_points[s]; ++p) {
        const double value = sums[s][p] / n;
        series.values.push_back(value);
        if (verbose) {
          log_info(series.name + " @ " + eu_axis_label(axis[p]) + " = " +
                   format_double(value));
        }
      }
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

void add_flat_series(SweepResult& result, const std::string& name, double value) {
  SweepSeries series;
  series.name = name;
  series.values.assign(result.axis.size(), value);
  result.series.push_back(std::move(series));
}

}  // namespace datastage
