// Deterministic parallel fan-out for experiment grids.
//
// Every figure and table is a grid of independent engine runs (scheduler
// pair x case x E-U axis point). ParallelExecutor maps an indexed job
// function over such a grid on N threads with a hard determinism contract:
//
//   * results are stored by job index (`results[i] = fn(i)`), never by
//     thread or completion order;
//   * reductions over the results happen sequentially in index order on the
//     calling thread;
//   * any per-job randomness derives from (base seed, job index) via
//     Rng::split(stream_id), never from a shared advancing stream;
//   * per-job obs::MetricsRegistry instances merge in index order
//     (MetricsRegistry::merge), so aggregated counters are lossless.
//
// Under that contract the output is byte-identical for --jobs=1 and
// --jobs=N; the determinism suite and tests/determinism_smoke.sh assert it.
//
// The harness entry points (sweep_pairs, run_cases, average_*) all fan out
// through the process-wide default executor, configured once per process
// from the --jobs flag via set_default_jobs().
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace datastage {

class ParallelExecutor {
 public:
  /// `jobs` worker threads; 0 means hardware concurrency. With jobs == 1
  /// everything runs inline on the calling thread (no pool, no locking).
  explicit ParallelExecutor(std::size_t jobs = 0);

  std::size_t jobs() const { return jobs_; }

  /// Runs fn(0) .. fn(count-1), blocking until all complete. Exceptions
  /// propagate (lowest job index wins when several jobs throw).
  void for_each(std::size_t count, const std::function<void(std::size_t)>& fn) const;

  /// results[i] = fn(i), in index order regardless of completion order.
  /// R must be default-constructible.
  template <class R, class Fn>
  std::vector<R> map(std::size_t count, Fn&& fn) const {
    std::vector<R> results(count);
    for_each(count, [&](std::size_t i) { results[i] = fn(i); });
    return results;
  }

 private:
  std::size_t jobs_;
};

/// Configures the process-wide executor used by the harness entry points.
/// 0 means hardware concurrency (the default when never called).
void set_default_jobs(std::size_t jobs);

/// The currently configured worker count (resolved, never 0).
std::size_t default_jobs();

/// The process-wide executor the harness fans out through.
const ParallelExecutor& default_executor();

}  // namespace datastage
