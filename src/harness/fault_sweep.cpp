#include "harness/fault_sweep.hpp"

#include "dynamic/fault_events.hpp"
#include "dynamic/stager.hpp"
#include "harness/parallel.hpp"
#include "obs/observer.hpp"
#include "sim/fault_replay.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace datastage {
namespace {

// Stream tag for the fault draw; each (intensity, case) cell derives its Rng
// as Rng(fault_seed).split(tag).split(intensity index).split(case index), so
// the spec never depends on the scheduler, the grid shape or the thread (the
// same convention as experiment.cpp's baseline streams).
constexpr std::uint64_t kStreamFaultGen = 0xa3c59ac2f0136d21ULL;

struct CellOutcome {
  double outage_fraction = 0.0;
  double planned = 0.0;
  double realized = 0.0;
  double recovered = 0.0;
  double clairvoyant = 0.0;
};

FaultSpec draw_faults(const Scenario& scenario, const FaultSweepConfig& config,
                      std::size_t intensity_index, std::size_t case_index) {
  FaultGenConfig gen = config.faults;
  gen.intensity = config.intensities[intensity_index];
  if (gen.intensity <= 0.0) return FaultSpec{};
  Rng rng = Rng(config.fault_seed)
                .split(kStreamFaultGen)
                .split(intensity_index)
                .split(case_index);
  return generate_faults(scenario, gen, rng);
}

CellOutcome evaluate_cell(const SchedulerSpec& spec, const Scenario& scenario,
                          const FaultSpec& faults, const EngineOptions& options) {
  CellOutcome out;
  out.outage_fraction = outage_fraction(faults, scenario);

  const CaseResult nominal = run_case(spec, scenario, options);
  out.planned = nominal.weighted_value;

  const FaultReplayReport replay =
      replay_under_faults(scenario, nominal.staging.schedule, faults);
  out.realized = weighted_value(scenario, options.weighting, replay.outcomes);

  DynamicStager stager(scenario, spec, options);
  for (const StagingEvent& event : fault_events(faults)) stager.on_event(event);
  out.recovered = stager.finish().weighted_value(options.weighting);

  const Scenario masked = apply_faults(scenario, faults);
  const StagingResult clair = run_spec(spec, masked, options);
  out.clairvoyant = weighted_value(masked, options.weighting, clair.outcomes);
  return out;
}

}  // namespace

std::vector<double> default_fault_intensities() {
  return {0.0, 0.2, 0.4, 0.6, 0.8};
}

FaultSweepResult run_fault_sweep(const CaseSet& cases,
                                 const std::vector<SchedulerSpec>& specs,
                                 const FaultSweepConfig& config,
                                 const EngineOptions& base_options,
                                 obs::MetricsRegistry* merged) {
  FaultSweepConfig resolved = config;
  if (resolved.intensities.empty()) {
    resolved.intensities = default_fault_intensities();
  }
  const std::size_t cases_n = cases.scenarios.size();
  const std::size_t points = resolved.intensities.size();
  const std::size_t grid = specs.size() * points * cases_n;

  // Every cell is independent: fan the whole grid through the executor and
  // reduce sequentially in grid order afterwards (the parallel determinism
  // contract, see harness/parallel.hpp).
  std::vector<obs::MetricsRegistry> registries(merged != nullptr ? grid : 0);
  const std::vector<CellOutcome> cells =
      default_executor().map<CellOutcome>(grid, [&](std::size_t g) {
        const std::size_t c = g % cases_n;
        const std::size_t i = (g / cases_n) % points;
        const std::size_t s = g / (cases_n * points);
        EngineOptions options = base_options;
        obs::RunObserver observer;
        if (merged != nullptr) {
          observer.metrics = &registries[g];
          options.observer = &observer;
        }
        const FaultSpec faults = draw_faults(cases.scenarios[c], resolved, i, c);
        return evaluate_cell(specs[s], cases.scenarios[c], faults, options);
      });
  if (merged != nullptr) {
    for (const obs::MetricsRegistry& registry : registries) merged->merge(registry);
  }

  FaultSweepResult result;
  result.intensities = resolved.intensities;
  const double n = static_cast<double>(cases_n);
  for (std::size_t s = 0; s < specs.size(); ++s) {
    FaultSweepSeries series;
    series.spec = specs[s];
    for (std::size_t i = 0; i < points; ++i) {
      FaultSweepPoint point;
      point.intensity = resolved.intensities[i];
      for (std::size_t c = 0; c < cases_n; ++c) {
        const CellOutcome& cell = cells[(s * points + i) * cases_n + c];
        point.outage_fraction += cell.outage_fraction;
        point.planned += cell.planned;
        point.realized += cell.realized;
        point.recovered += cell.recovered;
        point.clairvoyant += cell.clairvoyant;
      }
      point.outage_fraction /= n;
      point.planned /= n;
      point.realized /= n;
      point.recovered /= n;
      point.clairvoyant /= n;
      series.points.push_back(point);
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

std::string FaultSweepResult::to_csv() const {
  std::string csv =
      "scheduler,intensity,outage_fraction,planned,realized,recovered,"
      "clairvoyant\n";
  for (const FaultSweepSeries& entry : series) {
    for (const FaultSweepPoint& point : entry.points) {
      csv += entry.spec.name();
      csv += ',';
      csv += format_double(point.intensity, 2);
      csv += ',';
      csv += format_double(point.outage_fraction, 4);
      csv += ',';
      csv += format_double(point.planned, 3);
      csv += ',';
      csv += format_double(point.realized, 3);
      csv += ',';
      csv += format_double(point.recovered, 3);
      csv += ',';
      csv += format_double(point.clairvoyant, 3);
      csv += '\n';
    }
  }
  return csv;
}

}  // namespace datastage
