// Fault-intensity sweeps: degradation curves for the robustness experiments.
//
// For each (scheduler, intensity, case) cell the sweep draws a seeded
// FaultSpec (intensity 0 => empty spec) and scores four outcomes of the same
// fault scenario:
//   planned      the nominal plan's value with no faults (the clean run),
//   realized     the nominal plan replayed under the faults with no reaction
//                (sim/fault_replay),
//   recovered    the DynamicStager reacting to the faults as they occur
//                (dynamic/fault_events),
//   clairvoyant  a fresh plan computed against apply_faults(scenario, faults)
//                — the faults known upfront, an upper reference for recovery.
// Values are averaged over the cases per (scheduler, intensity) point, along
// with the realized outage fraction of link capacity.
//
// Faults depend only on (fault_seed, intensity index, case index) — never on
// the scheduler — so every series faces the identical fault draw and the
// curves are comparable. The grid fans through the default parallel executor
// with a sequential in-order reduction, so the result (and its CSV image) is
// byte-identical for any --jobs value.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "gen/fault_gen.hpp"
#include "harness/experiment.hpp"

namespace datastage {

struct FaultSweepConfig {
  /// Intensity grid; defaults to default_fault_intensities().
  std::vector<double> intensities;
  /// Generator knobs; the intensity field is overridden per grid point.
  FaultGenConfig faults;
  /// Seed of the fault draw (independent of the scenario seed).
  std::uint64_t fault_seed = 9000;
};

/// The default grid: 0 (fault-free anchor) to 0.8 in steps of 0.2.
std::vector<double> default_fault_intensities();

/// One (scheduler, intensity) point, averaged over the cases.
struct FaultSweepPoint {
  double intensity = 0.0;
  double outage_fraction = 0.0;  ///< mean fraction of link capacity lost
  double planned = 0.0;
  double realized = 0.0;
  double recovered = 0.0;
  double clairvoyant = 0.0;
};

struct FaultSweepSeries {
  SchedulerSpec spec;
  std::vector<FaultSweepPoint> points;  ///< one per intensity
};

struct FaultSweepResult {
  std::vector<double> intensities;
  std::vector<FaultSweepSeries> series;

  /// "scheduler,intensity,outage_fraction,planned,realized,recovered,
  /// clairvoyant" rows, fixed precision (deterministic bytes).
  std::string to_csv() const;
};

/// Runs the sweep over the grid (specs x config.intensities x cases). When
/// `merged` is non-null, per-cell metrics registries are merged into it in
/// grid order (the faults.* recovery counters land here).
FaultSweepResult run_fault_sweep(const CaseSet& cases,
                                 const std::vector<SchedulerSpec>& specs,
                                 const FaultSweepConfig& config,
                                 const EngineOptions& base_options,
                                 obs::MetricsRegistry* merged = nullptr);

}  // namespace datastage
