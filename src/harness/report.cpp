#include "harness/report.hpp"

#include <cstdio>

#include "util/stats.hpp"

namespace datastage {

Table sweep_table(const SweepResult& result) {
  std::vector<std::string> header{"log10(E-U)"};
  for (const SweepSeries& series : result.series) header.push_back(series.name);
  Table table(std::move(header));

  for (std::size_t x = 0; x < result.axis.size(); ++x) {
    std::vector<std::string> row{eu_axis_label(result.axis[x])};
    for (const SweepSeries& series : result.series) {
      row.push_back(format_double(series.values[x], 1));
    }
    table.add_row(std::move(row));
  }
  return table;
}

void print_sweep(const std::string& caption, const SweepResult& result,
                 const std::string& csv_path) {
  const Table table = sweep_table(result);
  std::printf("%s\n%s\n", caption.c_str(), table.to_text().c_str());
  if (!csv_path.empty()) {
    table.write_csv_file(csv_path);
    std::printf("(CSV written to %s)\n\n", csv_path.c_str());
  }
}

}  // namespace datastage
