#include "harness/parallel.hpp"

#include <memory>
#include <mutex>

#include "util/thread_pool.hpp"

namespace datastage {
namespace {

// Process-wide executor state. One pool is cached and rebuilt only when the
// configured size changes; jobs == 1 never touches (or builds) a pool.
struct DefaultExecutorState {
  std::mutex mutex;
  std::size_t jobs = 0;  // 0 = hardware concurrency, resolved lazily
  ParallelExecutor executor{0};
};

DefaultExecutorState& default_state() {
  static DefaultExecutorState state;
  return state;
}

// Shared pool cache for all executors (one batch runs at a time anyway; the
// pool serializes batches internally).
ThreadPool& shared_pool(std::size_t threads) {
  static std::mutex mutex;
  static std::unique_ptr<ThreadPool> pool;
  std::lock_guard<std::mutex> lock(mutex);
  if (pool == nullptr || pool->thread_count() != threads) {
    pool.reset();  // join the old workers before spawning replacements
    pool = std::make_unique<ThreadPool>(threads);
  }
  return *pool;
}

}  // namespace

ParallelExecutor::ParallelExecutor(std::size_t jobs)
    : jobs_(jobs == 0 ? ThreadPool::hardware_jobs() : jobs) {}

void ParallelExecutor::for_each(std::size_t count,
                                const std::function<void(std::size_t)>& fn) const {
  if (count == 0) return;
  if (jobs_ == 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  shared_pool(jobs_).run_indexed(count, fn);
}

void set_default_jobs(std::size_t jobs) {
  DefaultExecutorState& state = default_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  state.jobs = jobs;
  state.executor = ParallelExecutor(jobs);
}

std::size_t default_jobs() { return default_executor().jobs(); }

const ParallelExecutor& default_executor() {
  DefaultExecutorState& state = default_state();
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.executor;
}

}  // namespace datastage
