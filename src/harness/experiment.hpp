// Experiment harness: generates the shared test cases and evaluates
// schedulers, bounds and baselines over them.
//
// The paper averages every data point over the same 40 randomly generated
// test cases; the harness generates a CaseSet once per bench invocation and
// reuses it across all series so every curve sees identical workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bounds.hpp"
#include "core/registry.hpp"
#include "gen/generator.hpp"
#include "model/priority.hpp"
#include "model/scenario.hpp"
#include "util/table.hpp"

namespace datastage {

namespace obs {
class MetricsRegistry;
}  // namespace obs

struct ExperimentConfig {
  GeneratorConfig gen;
  std::uint64_t seed = 2000;  ///< base seed for case generation
  std::size_t cases = 40;     ///< the paper uses 40
};

struct CaseSet {
  std::vector<Scenario> scenarios;
  std::uint64_t seed = 0;
};

CaseSet build_cases(const ExperimentConfig& config);

/// Runs `spec` on every case through run_case, fanned across the process-wide
/// parallel executor (harness/parallel.hpp). Results come back in case order
/// regardless of thread count or completion order. When `merged` is non-null,
/// each case runs with its own obs::MetricsRegistry/RunObserver and the
/// per-case registries are folded into `merged` in case order — counters
/// aggregate losslessly and identically for any --jobs value.
std::vector<CaseResult> run_cases(const CaseSet& cases,
                                  const SchedulerSpec& spec,
                                  const EngineOptions& options,
                                  obs::MetricsRegistry* merged = nullptr);

/// Mean weighted value of one heuristic/criterion pair across the cases.
double average_pair_value(const CaseSet& cases, const PriorityWeighting& weighting,
                          const SchedulerSpec& spec, const EUWeights& eu);

/// Dispersion across the individual cases (the TR companion of the paper
/// reports min/max over the 40 cases for the C4 pairs).
struct ValueStats {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};
ValueStats pair_value_stats(const CaseSet& cases, const PriorityWeighting& weighting,
                            const SchedulerSpec& spec, const EUWeights& eu);

struct AveragedBounds {
  double upper_bound = 0.0;
  double possible_satisfy = 0.0;
};
AveragedBounds average_bounds(const CaseSet& cases, const PriorityWeighting& weighting);

/// Mean per-case engine cost counters for each spec: iterations, Dijkstra
/// recomputes, route-cache hits (plus hit rate) and candidates scored —
/// the "why heuristics differ in cost" companion to their value numbers.
/// Observation does not perturb results (asserted by the integration tests).
/// When `merged` is non-null it additionally receives every engine counter,
/// prefixed "<spec name>/", merged in (spec, case) order — a deterministic
/// machine-readable companion to the table.
Table scheduler_cost_table(const CaseSet& cases, const PriorityWeighting& weighting,
                           const EUWeights& eu,
                           const std::vector<SchedulerSpec>& specs,
                           obs::MetricsRegistry* merged = nullptr);

/// Mean value of the §5.2 random baselines (RNG derived from the case seed).
double average_single_dijkstra_random(const CaseSet& cases,
                                      const PriorityWeighting& weighting);
double average_random_dijkstra(const CaseSet& cases,
                               const PriorityWeighting& weighting);
/// Mean value of the §5.4 priority-first simplified scheme.
double average_priority_first(const CaseSet& cases, const PriorityWeighting& weighting);

}  // namespace datastage
