// Experiment harness: generates the shared test cases and evaluates
// schedulers, bounds and baselines over them.
//
// The paper averages every data point over the same 40 randomly generated
// test cases; the harness generates a CaseSet once per bench invocation and
// reuses it across all series so every curve sees identical workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "core/bounds.hpp"
#include "core/registry.hpp"
#include "gen/generator.hpp"
#include "model/priority.hpp"
#include "model/scenario.hpp"
#include "util/table.hpp"

namespace datastage {

struct ExperimentConfig {
  GeneratorConfig gen;
  std::uint64_t seed = 2000;  ///< base seed for case generation
  std::size_t cases = 40;     ///< the paper uses 40
};

struct CaseSet {
  std::vector<Scenario> scenarios;
  std::uint64_t seed = 0;
};

CaseSet build_cases(const ExperimentConfig& config);

/// Mean weighted value of one heuristic/criterion pair across the cases.
double average_pair_value(const CaseSet& cases, const PriorityWeighting& weighting,
                          const SchedulerSpec& spec, const EUWeights& eu);

/// Dispersion across the individual cases (the TR companion of the paper
/// reports min/max over the 40 cases for the C4 pairs).
struct ValueStats {
  double mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  double stddev = 0.0;
};
ValueStats pair_value_stats(const CaseSet& cases, const PriorityWeighting& weighting,
                            const SchedulerSpec& spec, const EUWeights& eu);

struct AveragedBounds {
  double upper_bound = 0.0;
  double possible_satisfy = 0.0;
};
AveragedBounds average_bounds(const CaseSet& cases, const PriorityWeighting& weighting);

/// Mean per-case engine cost counters for each spec: iterations, Dijkstra
/// recomputes, route-cache hits (plus hit rate) and candidates scored —
/// the "why heuristics differ in cost" companion to their value numbers.
/// Observation does not perturb results (asserted by the integration tests).
Table scheduler_cost_table(const CaseSet& cases, const PriorityWeighting& weighting,
                           const EUWeights& eu,
                           const std::vector<SchedulerSpec>& specs);

/// Mean value of the §5.2 random baselines (RNG derived from the case seed).
double average_single_dijkstra_random(const CaseSet& cases,
                                      const PriorityWeighting& weighting);
double average_random_dijkstra(const CaseSet& cases,
                               const PriorityWeighting& weighting);
/// Mean value of the §5.4 priority-first simplified scheme.
double average_priority_first(const CaseSet& cases, const PriorityWeighting& weighting);

}  // namespace datastage
