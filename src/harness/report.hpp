// Rendering of sweep results as the figures' data tables.
#pragma once

#include <string>

#include "harness/sweep.hpp"
#include "util/table.hpp"

namespace datastage {

/// One row per axis point, one column per series — the figure as numbers.
Table sweep_table(const SweepResult& result);

/// Renders with a caption and optionally writes a CSV next to stdout output.
/// `csv_path` empty = no file.
void print_sweep(const std::string& caption, const SweepResult& result,
                 const std::string& csv_path);

}  // namespace datastage
