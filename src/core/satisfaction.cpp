#include "core/satisfaction.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {

OutcomeTracker::OutcomeTracker(const Scenario& scenario) : scenario_(&scenario) {
  outcomes_.resize(scenario.item_count());
  pending_.resize(scenario.item_count());
  for (std::size_t i = 0; i < scenario.item_count(); ++i) {
    const std::size_t nrq = scenario.items[i].requests.size();
    outcomes_[i].resize(nrq);
    pending_[i].reserve(nrq);
    for (std::size_t k = 0; k < nrq; ++k) {
      pending_[i].push_back(static_cast<std::int32_t>(k));
    }
    pending_count_ += nrq;
  }
}

void OutcomeTracker::note_arrival(ItemId item, MachineId machine, SimTime arrival) {
  const DataItem& it = scenario_->item(item);
  auto& pending = pending_[item.index()];
  // Checked scenarios carry at most one request per (item, machine), but the
  // dynamic stager legally replays unchecked effective scenarios where an
  // original and an ad-hoc request share a destination. Resolve *every*
  // pending request the arrival serves; stopping at the first would leave a
  // duplicate pending and score the replay differently from the stager's own
  // records. The deadline is closed: arriving exactly at the deadline counts
  // (the delivery window is [start, deadline + 1µs) at µs resolution).
  for (auto cursor = pending.begin(); cursor != pending.end();) {
    const auto k = static_cast<std::size_t>(*cursor);
    const Request& request = it.requests[k];
    if (request.destination != machine) {
      ++cursor;
      continue;
    }
    RequestOutcome& outcome = outcomes_[item.index()][k];
    outcome.arrival = min(outcome.arrival, arrival);
    if (arrival <= request.deadline) {
      outcome.satisfied = true;
      cursor = pending.erase(cursor);
      --pending_count_;
    } else {
      ++cursor;
    }
  }
}

SimTime OutcomeTracker::latest_pending_deadline(ItemId item) const {
  SimTime latest = SimTime::zero();
  const DataItem& it = scenario_->item(item);
  for (const std::int32_t k : pending_[item.index()]) {
    latest = max(latest, it.requests[static_cast<std::size_t>(k)].deadline);
  }
  return latest;
}

double weighted_value(const Scenario& scenario, const PriorityWeighting& weighting,
                      const OutcomeMatrix& outcomes) {
  DS_ASSERT_MSG(outcomes.size() == scenario.item_count(),
                "outcome matrix rows must match scenario items");
  double total = 0.0;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const DataItem& item = scenario.items[i];
    DS_ASSERT_MSG(outcomes[i].size() == item.requests.size(),
                  "outcome row width must match the item's request count");
    for (std::size_t k = 0; k < outcomes[i].size(); ++k) {
      if (outcomes[i][k].satisfied) {
        total += weighting.weight(item.requests[k].priority);
      }
    }
  }
  return total;
}

std::vector<std::size_t> satisfied_by_class(const Scenario& scenario,
                                            std::size_t num_classes,
                                            const OutcomeMatrix& outcomes) {
  std::vector<std::size_t> counts(num_classes, 0);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    for (std::size_t k = 0; k < outcomes[i].size(); ++k) {
      if (!outcomes[i][k].satisfied) continue;
      const auto cls = static_cast<std::size_t>(scenario.items[i].requests[k].priority);
      DS_ASSERT_MSG(cls < num_classes, "request priority outside the class range");
      ++counts[cls];
    }
  }
  return counts;
}

std::size_t satisfied_count(const OutcomeMatrix& outcomes) {
  std::size_t n = 0;
  for (const auto& row : outcomes) {
    for (const RequestOutcome& o : row) n += o.satisfied ? 1 : 0;
  }
  return n;
}

}  // namespace datastage
