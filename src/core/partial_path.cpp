#include "core/heuristics.hpp"

namespace datastage {

StagingResult run_partial_path(const Scenario& scenario, const EngineOptions& options) {
  StagingEngine engine(scenario, options);
  while (std::optional<Candidate> best = engine.best_candidate()) {
    engine.apply_hop(*best);
  }
  return engine.finish();
}

}  // namespace datastage
