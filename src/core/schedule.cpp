#include "core/schedule.hpp"

#include <algorithm>
#include <sstream>

namespace datastage {

SimDuration Schedule::total_link_time() const {
  SimDuration total = SimDuration::zero();
  for (const CommStep& step : steps_) total = total + (step.arrival - step.start);
  return total;
}

std::string Schedule::to_string(const Scenario& scenario) const {
  std::vector<CommStep> sorted(steps_.begin(), steps_.end());
  std::stable_sort(sorted.begin(), sorted.end(), [](const CommStep& a, const CommStep& b) {
    return a.start < b.start;
  });
  std::ostringstream os;
  for (const CommStep& step : sorted) {
    os << step.start.to_string() << " -> " << step.arrival.to_string() << "  "
       << scenario.item(step.item).name << ": "
       << scenario.machine(step.from).name << " => "
       << scenario.machine(step.to).name << " (vlink " << step.link.value() << ")\n";
  }
  return os.str();
}

}  // namespace datastage
