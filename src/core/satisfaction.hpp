// Request satisfaction accounting and result metrics.
//
// OutcomeTracker is the single source of truth, shared by the heuristics and
// the baselines, for which requests are still pending and which have been
// satisfied: a request (i, k) is satisfied the moment a copy of Rq[i] lands
// on machine Request[i,k] at or before Rft[i,k]. Late arrivals are recorded
// (the destination now holds a stale copy) but the request stays pending —
// a later, faster path could still beat the deadline.
#pragma once

#include <span>
#include <vector>

#include "core/schedule.hpp"
#include "model/priority.hpp"
#include "model/scenario.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace datastage {

/// Final state of one request.
struct RequestOutcome {
  bool satisfied = false;
  /// Earliest recorded arrival of the item at the destination;
  /// SimTime::infinity() if it never arrived.
  SimTime arrival = SimTime::infinity();

  friend bool operator==(const RequestOutcome&, const RequestOutcome&) = default;
};

/// [item][k] -> outcome.
using OutcomeMatrix = std::vector<std::vector<RequestOutcome>>;

class OutcomeTracker {
 public:
  explicit OutcomeTracker(const Scenario& scenario);

  /// Records that `item` arrived at `machine` at `arrival`; resolves any
  /// pending request of `item` at that machine whose deadline is met.
  void note_arrival(ItemId item, MachineId machine, SimTime arrival);

  /// Requests of `item` not yet satisfied, by k, ascending.
  std::span<const std::int32_t> pending_of(ItemId item) const {
    return pending_[item.index()];
  }
  bool any_pending(ItemId item) const { return !pending_[item.index()].empty(); }
  std::size_t pending_count() const { return pending_count_; }

  /// Latest deadline among pending requests of `item` (Dijkstra prune bound);
  /// SimTime::zero() if none pending.
  SimTime latest_pending_deadline(ItemId item) const;

  const OutcomeMatrix& outcomes() const { return outcomes_; }
  OutcomeMatrix take_outcomes() { return std::move(outcomes_); }

 private:
  const Scenario* scenario_;
  OutcomeMatrix outcomes_;
  std::vector<std::vector<std::int32_t>> pending_;  // [item] -> pending ks
  std::size_t pending_count_ = 0;
};

/// Everything a scheduler run produces.
struct StagingResult {
  Schedule schedule;
  OutcomeMatrix outcomes;
  std::size_t dijkstra_runs = 0;  ///< heuristic-cost observability (paper TR)
  std::size_t iterations = 0;     ///< scheduling decisions taken
};

/// The paper's optimization objective, negated to be a maximization value:
/// Σ W[Priority[i,k]] over satisfied requests.
double weighted_value(const Scenario& scenario, const PriorityWeighting& weighting,
                      const OutcomeMatrix& outcomes);

/// Satisfied request count per priority class (index = class).
std::vector<std::size_t> satisfied_by_class(const Scenario& scenario,
                                            std::size_t num_classes,
                                            const OutcomeMatrix& outcomes);

std::size_t satisfied_count(const OutcomeMatrix& outcomes);

}  // namespace datastage
