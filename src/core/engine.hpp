// The staging engine: shared machinery behind all three heuristics.
//
// Responsibilities (paper §4.2-§4.8):
//   * maintain the per-item earliest-arrival route trees (Dijkstra),
//   * derive "valid next communication steps" and score them with the
//     configured cost criterion,
//   * commit a chosen step (one hop, a full path, or a full multi-destination
//     subtree) against the NetworkState,
//   * track request satisfaction.
//
// Performance note: the paper re-runs Dijkstra for every item on every
// iteration and explicitly leaves the obvious caching optimization to future
// work (§4.5). We implement it — and make the per-iteration cost proportional
// to what actually changed rather than to the scenario size:
//   * a cached tree is recomputed only when the resources consumed by a
//     committed step overlap the resources the tree's pending-destination
//     paths rely on; the overlap test is driven by an inverted resource
//     index (core/resource_index.hpp) so a commit dispatches only to the
//     plans subscribed to the touched links/storage, not to every plan;
//   * each plan caches its own best candidate, and best_candidate() runs a
//     lazy tournament heap over the per-plan bests — only plans rebuilt this
//     round are rescored;
//   * route trees are recomputed into reused buffers through a shared
//     DijkstraWorkspace, with the search stopping once every pending
//     destination is settled.
// Because reservations and allocations only ever shrink the feasible set,
// unaffected cached trees stay *exactly* equal to a recompute (tested against
// `paranoid` mode, which recomputes everything every iteration; see
// docs/PERFORMANCE.md for the equivalence argument).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/cost.hpp"
#include "core/resource_index.hpp"
#include "core/satisfaction.hpp"
#include "core/schedule.hpp"
#include "model/priority.hpp"
#include "model/scenario.hpp"
#include "net/network_state.hpp"
#include "net/topology.hpp"
#include "routing/dijkstra.hpp"
#include "routing/path.hpp"
#include "util/arena.hpp"

namespace datastage {

class ThreadPool;

namespace obs {
struct RunObserver;
class PhaseTimer;
class RunTrace;
}  // namespace obs

/// Process-wide default for EngineOptions::engine_jobs, the intra-scenario
/// analogue of harness/parallel.hpp's default_jobs (which governs the
/// case-level fan-out). Tools apply --engine-jobs here once so harness code
/// that builds EngineOptions internally (sweeps, bounds, baselines) picks the
/// value up without threading it through every signature. 0 resolves to one
/// worker per hardware thread at engine construction.
void set_default_engine_jobs(std::size_t jobs);
std::size_t default_engine_jobs();

struct EngineOptions {
  PriorityWeighting weighting = PriorityWeighting::w_1_10_100();
  CostCriterion criterion = CostCriterion::kC4;
  EUWeights eu = {};
  /// Disable the route cache: recompute every item's tree every iteration
  /// (the paper's literal procedure). Used to validate the cache.
  bool paranoid = false;
  /// Hard stop for the scheduling loop; 0 derives a generous bound from the
  /// request count. The loop provably terminates on well-formed scenarios;
  /// the guard protects experiments from pathological hand-built inputs.
  std::size_t max_iterations = 0;
  /// Optional observability sinks (see obs/observer.hpp). nullptr — the
  /// default — keeps the hot loop free of any metric or trace work; set, it
  /// never changes scheduling decisions, only records them.
  obs::RunObserver* observer = nullptr;
  /// Worker threads for intra-scenario parallelism (plan refresh +
  /// speculative cross-round scoring). 1 = serial; 0 = one per hardware
  /// thread. Schedules, metrics and traces are byte-identical at any value —
  /// parallel workers only ever write plan-local state and all shared-state
  /// effects are merged in ascending plan order (see docs/PARALLELISM.md).
  std::size_t engine_jobs = default_engine_jobs();
  /// Optional externally owned worker pool. Non-null wins over engine_jobs:
  /// long-lived callers (DynamicStager, datastage_serve) keep one pool across
  /// replans instead of paying thread spawn per engine instance. The caller
  /// must keep the pool alive for the engine's lifetime.
  ThreadPool* engine_pool = nullptr;
};

/// Fluent construction of EngineOptions, so every call site wires weighting,
/// criterion, guard, paranoid mode and observability the same way instead of
/// mutating a default-constructed struct field by field. Tools should prefer
/// toolflags::make_engine_options, which layers flag parsing on top.
///
///   EngineOptions options = EngineOptionsBuilder()
///                               .weighting(PriorityWeighting::w_1_5_10())
///                               .criterion(CostCriterion::kC1)
///                               .observer(&observer)
///                               .build();
class EngineOptionsBuilder {
 public:
  EngineOptionsBuilder& weighting(const PriorityWeighting& weighting) {
    options_.weighting = weighting;
    return *this;
  }
  EngineOptionsBuilder& criterion(CostCriterion criterion) {
    options_.criterion = criterion;
    return *this;
  }
  EngineOptionsBuilder& eu(const EUWeights& eu) {
    options_.eu = eu;
    return *this;
  }
  EngineOptionsBuilder& paranoid(bool paranoid = true) {
    options_.paranoid = paranoid;
    return *this;
  }
  EngineOptionsBuilder& max_iterations(std::size_t max_iterations) {
    options_.max_iterations = max_iterations;
    return *this;
  }
  EngineOptionsBuilder& observer(obs::RunObserver* observer) {
    options_.observer = observer;
    return *this;
  }
  EngineOptionsBuilder& engine_jobs(std::size_t jobs) {
    options_.engine_jobs = jobs;
    return *this;
  }
  EngineOptionsBuilder& engine_pool(ThreadPool* pool) {
    options_.engine_pool = pool;
    return *this;
  }
  EngineOptions build() const { return options_; }

 private:
  EngineOptions options_;
};

/// A valid next communication step: move `item` over `hop` (the shared first
/// hop of the grouped destinations' shortest paths). For per-destination
/// criteria (C1, priority_only) the group contains exactly one destination.
struct Candidate {
  ItemId item;
  TreeEdge hop;
  std::vector<DestinationEval> dests;  ///< pending dests whose path starts with hop
  double cost = 0.0;
};

class StagingEngine {
 public:
  StagingEngine(const Scenario& scenario, EngineOptions options);
  ~StagingEngine();  // out-of-line: Instr is defined in engine.cpp

  /// Refreshes dirty plans and returns the lowest-cost candidate (ties broken
  /// deterministically by item, next machine, destination). nullopt when no
  /// satisfiable pending request remains — the heuristic loop is done.
  std::optional<Candidate> best_candidate();

  /// All current candidates (refreshes dirty plans). The returned vector is a
  /// copy owned by the caller — the engine's own candidate storage is reused
  /// across rounds. Used by the random-choice lower bound and by tests;
  /// callers that only need the count should use candidate_count().
  std::vector<Candidate> all_candidates();

  /// Number of current candidates (refreshes dirty plans) without copying
  /// them — the cheap form for benches and traces.
  std::size_t candidate_count();

  /// Commits exactly one hop (partial path heuristic, §4.5).
  void apply_hop(const Candidate& candidate);

  /// Commits the full path to one destination (full path/one destination
  /// heuristic, §4.6): C1 uses the candidate's single destination; aggregate
  /// criteria complete the most urgent satisfiable destination of the group.
  void apply_full_path_one(const Candidate& candidate);

  /// Commits the tree paths to every satisfiable destination of the group
  /// (full path/all destinations heuristic, §4.7).
  void apply_full_path_all(const Candidate& candidate);

  /// True once the iteration guard tripped (pathological input protection).
  bool guard_tripped() const { return guard_tripped_; }

  /// Finalizes and returns the result. The engine must not be used after.
  StagingResult finish();

  // --- Introspection (tests, traces) ---
  const NetworkState& network() const { return state_; }
  const OutcomeTracker& tracker() const { return tracker_; }
  std::size_t dijkstra_runs() const { return dijkstra_runs_; }
  std::size_t iterations() const { return iterations_; }
  /// The (fresh) route tree of an item; recomputes if dirty. The tree is
  /// exact on the item's pending destinations and their paths; labels of
  /// other machines may be tentative (target-set early termination).
  const RouteTree& plan_tree(ItemId item);

 private:
  static constexpr std::size_t kNoBest = static_cast<std::size_t>(-1);

  struct ItemPlan {
    RouteTree tree{0};
    bool dirty = true;
    bool exhausted = false;  ///< no pending dests; skip entirely
    /// Bumped whenever candidates are rebuilt or the plan retires; tournament
    /// heap entries carrying an older generation are stale.
    std::uint64_t generation = 0;
    /// Index of the plan's best candidate under the global order (kNoBest
    /// when the plan has no candidate).
    std::size_t best = kNoBest;
    std::vector<Candidate> candidates;
    // Resources the pending-destination paths rely on, for invalidation:
    std::vector<std::pair<VirtLinkId, Interval>> used_links;
    std::vector<std::pair<MachineId, Interval>> used_storage;
    /// Item whose commit most recently dirtied this plan (-1: none). Only
    /// maintained when lifecycle tracing is on; feeds `lost_to` attribution.
    std::int32_t last_invalidated_by = -1;
    /// Reusable first-hop grouping buffer (replaces the per-round std::map
    /// allocations build_candidates used to make).
    struct GroupEntry {
      std::int32_t r;  ///< first-hop receiver (the paper's r in Drq[i,r])
      TreeEdge hop;
      DestinationEval eval;
    };
    std::vector<GroupEntry> groups;
  };

  /// Tournament-heap entry: a snapshot of one plan's best candidate under the
  /// deterministic candidate order. Snapshots keep the heap comparator stable
  /// while plans change; stale entries (generation mismatch) are popped lazily.
  struct BestEntry {
    double cost;
    std::int32_t item;
    std::int32_t hop_to;
    std::int32_t k;
    std::uint64_t generation;
  };
  /// Min-heap comparator over BestEntry snapshots: candidate_less inverted
  /// for std::push_heap/pop_heap.
  static bool best_entry_after(const BestEntry& a, const BestEntry& b);

  enum class InvalidationCause : std::uint8_t { kLink, kStorage };

  /// One unit of refresh work: the plan to rebuild plus everything the serial
  /// merge needs to replay the exact counter/trace sequence of a serial
  /// recompute (Dijkstra stats, the prune horizon, the pre-rebuild candidate
  /// count for the global total).
  struct RefreshJob {
    std::size_t plan = 0;
    std::size_t old_candidates = 0;
    SimTime prune_after = SimTime::infinity();
    DijkstraStats stats;
  };

  /// Per-worker scratch for the compute phase: a Dijkstra workspace, the
  /// target buffer, the node-mark epoch set, and the pooled buffers the
  /// candidate rebuild recycles round over round (destination groups, path
  /// walks). refresh_ws_[0] doubles as the serial path's scratch, so serial
  /// and parallel runs share one code path.
  struct RefreshWorkspace {
    DijkstraWorkspace ws;
    std::vector<MachineId> targets;
    std::vector<std::uint64_t> node_mark;
    std::uint64_t node_mark_epoch = 0;
    VectorPool<DestinationEval> dest_pool;
    std::vector<TreeEdge> path_scratch;
  };

  /// Brings every plan up to date: recomputes the dirty set (incremental
  /// mode) or every pending plan (paranoid mode), retiring exhausted plans.
  /// Three phases — collect (serial: dirty set -> jobs), compute (parallel:
  /// route trees + candidate lists into plan-local storage), merge (serial,
  /// ascending plan order: index subscriptions, tournament pushes, counters,
  /// trace events) — so output is byte-identical at any thread count.
  void refresh_plans();
  /// Serial collect: drains dirty_queue_ (sorted, dup-skipped) into
  /// refresh_jobs_, retiring plans with no pending requests and recording the
  /// batch for speculation accounting.
  void collect_refresh_jobs();
  /// Runs the compute phase over refresh_jobs_ — on the pool when the batch
  /// is big enough, inline (workspace 0) otherwise. Either way results are
  /// identical: compute writes only plan-local state and its own job record.
  void run_refresh_batch();
  void compute_refresh_job(RefreshJob& job, RefreshWorkspace& ws);
  /// Serial merge of one computed job, replaying the exact shared-state
  /// effect sequence of the old serial recompute_plan.
  void merge_refresh_job(RefreshJob& job);
  void merge_refresh_jobs();
  /// Joins an in-flight speculative batch and merges it (plan_tree and any
  /// other entry point that must observe a consistent engine).
  void complete_pending_refresh();
  /// Joins and discards an in-flight speculative batch without merging —
  /// finish()/destruction only. Counters stay serial-equivalent because the
  /// serial path would not have refreshed either.
  void abandon_refresh_batch();
  /// Speculative cross-round scoring: after a commit, eagerly collects the
  /// freshly invalidated plans and dispatches their recompute on the pool.
  /// The next refresh_plans() (or the next commit's invalidation) decides
  /// each plan's fate: untouched neighborhoods keep the speculative result
  /// (spec_commit), re-dirtied plans are recomputed again (spec_abort).
  void launch_speculative_refresh();
  /// Resolves the previous speculation batch at the end of invalidate():
  /// plans the new commit re-dirtied are aborts, the rest commits.
  void resolve_spec_batch();
  /// Lazily creates the owned pool (first batch that wants it).
  ThreadPool* ensure_pool();
  /// Serial recompute of a single plan (plan_tree's paranoid/dirty path):
  /// compute + merge inline through the same job machinery.
  void recompute_plan_now(ItemId item);
  /// Marks a plan exhausted, releasing its candidates, resource records and
  /// index subscriptions (dead plans must not attract invalidation work or
  /// hold memory).
  void retire_plan(std::size_t plan_index);
  /// The thread-safe part of candidate building: rebuilds the plan's
  /// candidates, resource records and cached best from its fresh tree,
  /// touching only plan-local storage and the per-worker scratch. The
  /// matching shared-state work (index subscriptions, tournament push,
  /// totals, counters) happens in merge_refresh_job.
  void build_candidates_local(ItemId item, ItemPlan& plan, RefreshWorkspace& ws);
  /// Lifecycle tracing: reclassifies every pending request of a freshly
  /// recomputed plan (feasible / deadline infeasible / no route) and emits
  /// request_lost / request_revived transitions. Only called when a trace is
  /// attached — the unobserved and metrics-only paths never run it.
  void classify_requests(ItemId item, const ItemPlan& plan);
  /// Pushes plan's current best into the tournament heap.
  void push_best(std::size_t plan_index);
  /// Emits per-request outcome events and final satisfaction counters.
  void observe_finish();
  /// Commits one tree edge: network transfer + schedule step + satisfaction.
  AppliedTransfer commit_edge(ItemId item, const TreeEdge& edge);
  /// Marks plans dirty whose used resources overlap the applied transfers,
  /// dispatching through the inverted resource index.
  void invalidate(ItemId scheduled_item, std::span<const AppliedTransfer> applied);
  void count_iteration();

  const Scenario* scenario_;
  EngineOptions options_;
  Topology topology_;
  NetworkState state_;
  OutcomeTracker tracker_;
  Schedule schedule_;
  std::vector<ItemPlan> plans_;
  /// resource -> subscribed plans; drives invalidate().
  ResourceIndex index_;
  /// Plans marked dirty since the last refresh (unique; sorted at refresh).
  std::vector<std::size_t> dirty_queue_;
  /// Lazy min-heap over per-plan best candidates (see BestEntry).
  std::vector<BestEntry> best_heap_;
  /// Per-worker compute scratch; [0] is the serial path's workspace.
  std::vector<RefreshWorkspace> refresh_ws_;
  /// The current refresh batch (reused buffer). Must not grow while a
  /// speculative batch is in flight on the pool.
  std::vector<RefreshJob> refresh_jobs_;
  /// Worker pool for the compute phase: the caller's engine_pool, or an
  /// owned pool created lazily once a batch is worth parallelizing.
  ThreadPool* pool_ = nullptr;
  std::unique_ptr<ThreadPool> owned_pool_;
  std::size_t engine_jobs_resolved_ = 1;  ///< engine_jobs with 0 -> hardware
  bool parallel_enabled_ = false;  ///< pool available or engine_jobs > 1
  bool batch_collected_ = false;   ///< refresh_jobs_ computed but not merged
  bool batch_async_ = false;       ///< ... and still running on pool_
  /// Plans refreshed by the last commit-triggered batch, awaiting their
  /// speculation verdict at the next commit's invalidation.
  std::vector<std::size_t> spec_batch_;
  bool spec_pending_ = false;
  /// Epoch-stamped per-machine marks: the allocation-free node_seen set used
  /// by full-tree commits (candidate building uses the per-worker copies).
  std::vector<std::uint64_t> node_mark_;
  std::uint64_t node_mark_epoch_ = 0;
  std::vector<std::pair<std::size_t, InvalidationCause>> invalidation_scratch_;
  /// Serial commit-path scratch (apply_full_path_*): reused across commits so
  /// path walks and transfer batches stop allocating per iteration.
  std::vector<TreeEdge> commit_path_scratch_;
  std::vector<TreeEdge> commit_edges_scratch_;
  std::vector<AppliedTransfer> applied_scratch_;
  std::size_t active_plans_ = 0;     ///< plans not yet retired
  std::size_t candidate_total_ = 0;  ///< Σ plan.candidates.size() (live plans)
  std::size_t last_round_cache_hits_ = 0;  ///< clean plans reused last refresh
  std::size_t dijkstra_runs_ = 0;
  std::size_t iterations_ = 0;
  std::size_t max_iterations_ = 0;
  bool guard_tripped_ = false;

  /// Pre-resolved metric counter handles; allocated once at construction
  /// when (and only when) an observer with a metrics registry is configured,
  /// so the unobserved hot loop performs no metric work beyond null checks.
  struct Instr;
  std::unique_ptr<Instr> instr_;
  obs::RunTrace* trace_ = nullptr;
  /// Wall-clock refresh timing sink. Deliberately separate from instr_:
  /// timing values differ run to run, so they are recorded only for callers
  /// that attach a phase timer (full observability documents) and never leak
  /// into the deterministic, byte-comparable metrics registries.
  obs::PhaseTimer* phases_ = nullptr;
  /// Per-request lifecycle state (feasibility status, ever-feasible flag,
  /// lost-to attribution) behind the request_lost/request_revived/
  /// request_satisfied trace events and the final loss-reason taxonomy.
  /// Allocated only when a trace is attached: metrics-only runs (the perf
  /// benches) skip the classification pass entirely.
  struct Lifecycle;
  std::unique_ptr<Lifecycle> lifecycle_;
};

}  // namespace datastage
