// The staging engine: shared machinery behind all three heuristics.
//
// Responsibilities (paper §4.2-§4.8):
//   * maintain the per-item earliest-arrival route trees (Dijkstra),
//   * derive "valid next communication steps" and score them with the
//     configured cost criterion,
//   * commit a chosen step (one hop, a full path, or a full multi-destination
//     subtree) against the NetworkState,
//   * track request satisfaction.
//
// Performance note: the paper re-runs Dijkstra for every item on every
// iteration and explicitly leaves the obvious caching optimization to future
// work (§4.5). We implement it — and make the per-iteration cost proportional
// to what actually changed rather than to the scenario size:
//   * a cached tree is recomputed only when the resources consumed by a
//     committed step overlap the resources the tree's pending-destination
//     paths rely on; the overlap test is driven by an inverted resource
//     index (core/resource_index.hpp) so a commit dispatches only to the
//     plans subscribed to the touched links/storage, not to every plan;
//   * each plan caches its own best candidate, and best_candidate() runs a
//     lazy tournament heap over the per-plan bests — only plans rebuilt this
//     round are rescored;
//   * route trees are recomputed into reused buffers through a shared
//     DijkstraWorkspace, with the search stopping once every pending
//     destination is settled.
// Because reservations and allocations only ever shrink the feasible set,
// unaffected cached trees stay *exactly* equal to a recompute (tested against
// `paranoid` mode, which recomputes everything every iteration; see
// docs/PERFORMANCE.md for the equivalence argument).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/cost.hpp"
#include "core/resource_index.hpp"
#include "core/satisfaction.hpp"
#include "core/schedule.hpp"
#include "model/priority.hpp"
#include "model/scenario.hpp"
#include "net/network_state.hpp"
#include "net/topology.hpp"
#include "routing/dijkstra.hpp"
#include "routing/path.hpp"

namespace datastage {

namespace obs {
struct RunObserver;
class RunTrace;
}  // namespace obs

struct EngineOptions {
  PriorityWeighting weighting = PriorityWeighting::w_1_10_100();
  CostCriterion criterion = CostCriterion::kC4;
  EUWeights eu = {};
  /// Disable the route cache: recompute every item's tree every iteration
  /// (the paper's literal procedure). Used to validate the cache.
  bool paranoid = false;
  /// Hard stop for the scheduling loop; 0 derives a generous bound from the
  /// request count. The loop provably terminates on well-formed scenarios;
  /// the guard protects experiments from pathological hand-built inputs.
  std::size_t max_iterations = 0;
  /// Optional observability sinks (see obs/observer.hpp). nullptr — the
  /// default — keeps the hot loop free of any metric or trace work; set, it
  /// never changes scheduling decisions, only records them.
  obs::RunObserver* observer = nullptr;
};

/// Fluent construction of EngineOptions, so every call site wires weighting,
/// criterion, guard, paranoid mode and observability the same way instead of
/// mutating a default-constructed struct field by field. Tools should prefer
/// toolflags::make_engine_options, which layers flag parsing on top.
///
///   EngineOptions options = EngineOptionsBuilder()
///                               .weighting(PriorityWeighting::w_1_5_10())
///                               .criterion(CostCriterion::kC1)
///                               .observer(&observer)
///                               .build();
class EngineOptionsBuilder {
 public:
  EngineOptionsBuilder& weighting(const PriorityWeighting& weighting) {
    options_.weighting = weighting;
    return *this;
  }
  EngineOptionsBuilder& criterion(CostCriterion criterion) {
    options_.criterion = criterion;
    return *this;
  }
  EngineOptionsBuilder& eu(const EUWeights& eu) {
    options_.eu = eu;
    return *this;
  }
  EngineOptionsBuilder& paranoid(bool paranoid = true) {
    options_.paranoid = paranoid;
    return *this;
  }
  EngineOptionsBuilder& max_iterations(std::size_t max_iterations) {
    options_.max_iterations = max_iterations;
    return *this;
  }
  EngineOptionsBuilder& observer(obs::RunObserver* observer) {
    options_.observer = observer;
    return *this;
  }
  EngineOptions build() const { return options_; }

 private:
  EngineOptions options_;
};

/// A valid next communication step: move `item` over `hop` (the shared first
/// hop of the grouped destinations' shortest paths). For per-destination
/// criteria (C1, priority_only) the group contains exactly one destination.
struct Candidate {
  ItemId item;
  TreeEdge hop;
  std::vector<DestinationEval> dests;  ///< pending dests whose path starts with hop
  double cost = 0.0;
};

class StagingEngine {
 public:
  StagingEngine(const Scenario& scenario, EngineOptions options);
  ~StagingEngine();  // out-of-line: Instr is defined in engine.cpp

  /// Refreshes dirty plans and returns the lowest-cost candidate (ties broken
  /// deterministically by item, next machine, destination). nullopt when no
  /// satisfiable pending request remains — the heuristic loop is done.
  std::optional<Candidate> best_candidate();

  /// All current candidates (refreshes dirty plans). The returned vector is a
  /// copy owned by the caller — the engine's own candidate storage is reused
  /// across rounds. Used by the random-choice lower bound and by tests;
  /// callers that only need the count should use candidate_count().
  std::vector<Candidate> all_candidates();

  /// Number of current candidates (refreshes dirty plans) without copying
  /// them — the cheap form for benches and traces.
  std::size_t candidate_count();

  /// Commits exactly one hop (partial path heuristic, §4.5).
  void apply_hop(const Candidate& candidate);

  /// Commits the full path to one destination (full path/one destination
  /// heuristic, §4.6): C1 uses the candidate's single destination; aggregate
  /// criteria complete the most urgent satisfiable destination of the group.
  void apply_full_path_one(const Candidate& candidate);

  /// Commits the tree paths to every satisfiable destination of the group
  /// (full path/all destinations heuristic, §4.7).
  void apply_full_path_all(const Candidate& candidate);

  /// True once the iteration guard tripped (pathological input protection).
  bool guard_tripped() const { return guard_tripped_; }

  /// Finalizes and returns the result. The engine must not be used after.
  StagingResult finish();

  // --- Introspection (tests, traces) ---
  const NetworkState& network() const { return state_; }
  const OutcomeTracker& tracker() const { return tracker_; }
  std::size_t dijkstra_runs() const { return dijkstra_runs_; }
  std::size_t iterations() const { return iterations_; }
  /// The (fresh) route tree of an item; recomputes if dirty. The tree is
  /// exact on the item's pending destinations and their paths; labels of
  /// other machines may be tentative (target-set early termination).
  const RouteTree& plan_tree(ItemId item);

 private:
  static constexpr std::size_t kNoBest = static_cast<std::size_t>(-1);

  struct ItemPlan {
    RouteTree tree{0};
    bool dirty = true;
    bool exhausted = false;  ///< no pending dests; skip entirely
    /// Bumped whenever candidates are rebuilt or the plan retires; tournament
    /// heap entries carrying an older generation are stale.
    std::uint64_t generation = 0;
    /// Index of the plan's best candidate under the global order (kNoBest
    /// when the plan has no candidate).
    std::size_t best = kNoBest;
    std::vector<Candidate> candidates;
    // Resources the pending-destination paths rely on, for invalidation:
    std::vector<std::pair<VirtLinkId, Interval>> used_links;
    std::vector<std::pair<MachineId, Interval>> used_storage;
    /// Item whose commit most recently dirtied this plan (-1: none). Only
    /// maintained when lifecycle tracing is on; feeds `lost_to` attribution.
    std::int32_t last_invalidated_by = -1;
    /// Reusable first-hop grouping buffer (replaces the per-round std::map
    /// allocations build_candidates used to make).
    struct GroupEntry {
      std::int32_t r;  ///< first-hop receiver (the paper's r in Drq[i,r])
      TreeEdge hop;
      DestinationEval eval;
    };
    std::vector<GroupEntry> groups;
  };

  /// Tournament-heap entry: a snapshot of one plan's best candidate under the
  /// deterministic candidate order. Snapshots keep the heap comparator stable
  /// while plans change; stale entries (generation mismatch) are popped lazily.
  struct BestEntry {
    double cost;
    std::int32_t item;
    std::int32_t hop_to;
    std::int32_t k;
    std::uint64_t generation;
  };
  /// Min-heap comparator over BestEntry snapshots: candidate_less inverted
  /// for std::push_heap/pop_heap.
  static bool best_entry_after(const BestEntry& a, const BestEntry& b);

  enum class InvalidationCause : std::uint8_t { kLink, kStorage };

  /// Brings every plan up to date: recomputes the dirty set (incremental
  /// mode) or every pending plan (paranoid mode), retiring exhausted plans.
  void refresh_plans();
  void recompute_plan(ItemId item);
  /// Marks a plan exhausted, releasing its candidates, resource records and
  /// index subscriptions (dead plans must not attract invalidation work or
  /// hold memory).
  void retire_plan(std::size_t plan_index);
  void build_candidates(ItemId item, ItemPlan& plan);
  /// Lifecycle tracing: reclassifies every pending request of a freshly
  /// recomputed plan (feasible / deadline infeasible / no route) and emits
  /// request_lost / request_revived transitions. Only called when a trace is
  /// attached — the unobserved and metrics-only paths never run it.
  void classify_requests(ItemId item, const ItemPlan& plan);
  /// Pushes plan's current best into the tournament heap.
  void push_best(std::size_t plan_index);
  /// Emits per-request outcome events and final satisfaction counters.
  void observe_finish();
  /// Commits one tree edge: network transfer + schedule step + satisfaction.
  AppliedTransfer commit_edge(ItemId item, const TreeEdge& edge);
  /// Marks plans dirty whose used resources overlap the applied transfers,
  /// dispatching through the inverted resource index.
  void invalidate(ItemId scheduled_item, std::span<const AppliedTransfer> applied);
  void count_iteration();

  const Scenario* scenario_;
  EngineOptions options_;
  Topology topology_;
  NetworkState state_;
  OutcomeTracker tracker_;
  Schedule schedule_;
  std::vector<ItemPlan> plans_;
  /// resource -> subscribed plans; drives invalidate().
  ResourceIndex index_;
  /// Plans marked dirty since the last refresh (unique; sorted at refresh).
  std::vector<std::size_t> dirty_queue_;
  /// Lazy min-heap over per-plan best candidates (see BestEntry).
  std::vector<BestEntry> best_heap_;
  /// Reused Dijkstra scratch (heap storage, settled/target bitmaps).
  DijkstraWorkspace dijkstra_ws_;
  std::vector<MachineId> target_scratch_;
  /// Epoch-stamped per-machine marks: the allocation-free node_seen set used
  /// by candidate building and full-tree commits.
  std::vector<std::uint64_t> node_mark_;
  std::uint64_t node_mark_epoch_ = 0;
  std::vector<std::pair<std::size_t, InvalidationCause>> invalidation_scratch_;
  std::size_t active_plans_ = 0;     ///< plans not yet retired
  std::size_t candidate_total_ = 0;  ///< Σ plan.candidates.size() (live plans)
  std::size_t last_round_cache_hits_ = 0;  ///< clean plans reused last refresh
  std::size_t dijkstra_runs_ = 0;
  std::size_t iterations_ = 0;
  std::size_t max_iterations_ = 0;
  bool guard_tripped_ = false;

  /// Pre-resolved metric counter handles; allocated once at construction
  /// when (and only when) an observer with a metrics registry is configured,
  /// so the unobserved hot loop performs no metric work beyond null checks.
  struct Instr;
  std::unique_ptr<Instr> instr_;
  obs::RunTrace* trace_ = nullptr;
  /// Per-request lifecycle state (feasibility status, ever-feasible flag,
  /// lost-to attribution) behind the request_lost/request_revived/
  /// request_satisfied trace events and the final loss-reason taxonomy.
  /// Allocated only when a trace is attached: metrics-only runs (the perf
  /// benches) skip the classification pass entirely.
  struct Lifecycle;
  std::unique_ptr<Lifecycle> lifecycle_;
};

}  // namespace datastage
