#include "core/resource_index.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {

ResourceIndex::ResourceIndex(std::size_t link_count, std::size_t machine_count,
                             std::size_t plan_count)
    : by_link_(link_count),
      by_storage_(machine_count),
      plan_epoch_(plan_count, 0),
      plan_live_(plan_count, 0) {}

void ResourceIndex::subscribe_link(std::size_t plan, VirtLinkId link,
                                   const Interval& iv) {
  append(by_link_[link.index()], plan, iv);
}

void ResourceIndex::subscribe_storage(std::size_t plan, MachineId machine,
                                      const Interval& iv) {
  append(by_storage_[machine.index()], plan, iv);
}

void ResourceIndex::unsubscribe_all(std::size_t plan) {
  DS_ASSERT_MSG(plan < plan_epoch_.size(), "unsubscribe of unknown plan");
  if (plan_live_[plan] == 0) return;  // nothing live; epoch bump unnecessary
  dead_entries_ += plan_live_[plan];
  live_entries_ -= plan_live_[plan];
  plan_live_[plan] = 0;
  ++plan_epoch_[plan];
  // Amortized reclamation: once dead entries outnumber live ones (plus a
  // small floor so tiny indexes never sweep), one pass erases them all. The
  // trigger depends only on subscription history, keeping runs reproducible.
  if (dead_entries_ > live_entries_ + 64) sweep();
}

void ResourceIndex::append(std::vector<Entry>& entries, std::size_t plan,
                           const Interval& iv) {
  DS_ASSERT_MSG(plan < plan_epoch_.size(), "subscribe of unknown plan");
  entries.push_back(Entry{static_cast<std::uint32_t>(plan), plan_epoch_[plan], iv});
  ++plan_live_[plan];
  ++live_entries_;
}

void ResourceIndex::sweep() {
  const auto dead = [this](const Entry& e) { return !live(e); };
  for (std::vector<Entry>& entries : by_link_) {
    std::erase_if(entries, dead);
  }
  for (std::vector<Entry>& entries : by_storage_) {
    std::erase_if(entries, dead);
  }
  dead_entries_ = 0;
}

}  // namespace datastage
