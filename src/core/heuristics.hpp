// Entry points for the paper's three heuristics, the two random lower-bound
// procedures (§5.2) and the priority-first simplified scheme (§5.4).
//
// All functions take the scenario by const reference and return a
// StagingResult whose schedule can be independently replayed and verified by
// the simulator in src/sim.
#pragma once

#include "core/engine.hpp"
#include "core/satisfaction.hpp"
#include "model/scenario.hpp"
#include "util/rng.hpp"

namespace datastage {

/// Partial path heuristic (§4.5): each iteration commits the single cheapest
/// next hop among all items.
StagingResult run_partial_path(const Scenario& scenario, const EngineOptions& options);

/// Full path/one destination heuristic (§4.6): each iteration commits the
/// whole path of the cheapest candidate to one destination.
StagingResult run_full_path_one(const Scenario& scenario, const EngineOptions& options);

/// Full path/all destinations heuristic (§4.7): each iteration commits the
/// tree paths to every satisfiable destination sharing the first hop.
/// C1 is rejected (the paper excludes the pair; asserts).
StagingResult run_full_path_all(const Scenario& scenario, const EngineOptions& options);

/// Lower bound 1 (§5.2, "single_Dij_random"): one Dijkstra per item on the
/// pristine network, paths replayed in random item order, conflicting
/// requests dropped. `rng` drives the item order.
StagingResult run_single_dijkstra_random(const Scenario& scenario,
                                         const PriorityWeighting& weighting, Rng& rng);

/// Lower bound 2 (§5.2, "random_Dijkstra"): the partial path machinery but
/// choosing a uniformly random valid communication step each iteration.
StagingResult run_random_dijkstra(const Scenario& scenario,
                                  const PriorityWeighting& weighting, Rng& rng);

/// The §5.4 simplified scheme: all highest-priority requests scheduled before
/// any lower class, ignoring urgency (full-path completion per request).
StagingResult run_priority_first(const Scenario& scenario,
                                 const PriorityWeighting& weighting);

/// Related-work baseline (§2): earliest-deadline-first — requests completed
/// (full path) strictly by absolute deadline, ignoring priority and slack.
StagingResult run_earliest_deadline_first(const Scenario& scenario,
                                          const PriorityWeighting& weighting);

}  // namespace datastage
