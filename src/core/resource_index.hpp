// Inverted resource index: resource -> subscribed plans.
//
// The scheduling engine caches one route plan per data item; a committed
// transfer must dirty exactly the cached plans whose satisfiable paths rely
// on a resource the transfer consumed. The naive check — every plan against
// every resource of every commit — is O(items x resources) per iteration and
// dominates large runs. This index inverts the relationship: each virtual
// link and each machine's storage keeps a posting list of (plan, interval)
// subscriptions, so a commit dispatches only to the plans actually subscribed
// to the touched resources, with interval overlap filtering at dispatch time.
//
// Unsubscription is O(1) via per-plan epochs (entries of an old epoch are
// dead); dead entries are reclaimed by a global sweep once they outnumber the
// live ones, keeping memory and dispatch cost proportional to live
// subscriptions. Determinism: posting lists are ordered by subscription
// history and the sweep is triggered by deterministic state only, so dispatch
// visits plans in a reproducible order (callers that need a canonical order
// sort the dispatched plan set — it is small by construction).
//
// Only ordered/flat containers are used (lint rule DS003): posting lists are
// plain vectors indexed by the dense VirtLinkId/MachineId spaces.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.hpp"
#include "util/interval.hpp"

namespace datastage {

class ResourceIndex {
 public:
  ResourceIndex(std::size_t link_count, std::size_t machine_count,
                std::size_t plan_count);

  /// Registers that `plan`'s cached paths occupy `link` during `iv`.
  void subscribe_link(std::size_t plan, VirtLinkId link, const Interval& iv);
  /// Registers that `plan`'s cached paths need `machine` storage during `iv`.
  void subscribe_storage(std::size_t plan, MachineId machine, const Interval& iv);

  /// Drops every subscription of `plan`. O(1): entries die by epoch and are
  /// reclaimed lazily.
  void unsubscribe_all(std::size_t plan);

  /// Calls `fn(plan, interval)` for every live link subscription on `link`
  /// overlapping `iv`, except those of plan `skip`. Returns the number of
  /// live entries examined (the dispatch work metric).
  template <class Fn>
  std::size_t dispatch_link(VirtLinkId link, const Interval& iv, std::size_t skip,
                            Fn&& fn) const {
    return dispatch(by_link_[link.index()], iv, skip, fn);
  }

  /// Same for storage subscriptions on `machine`.
  template <class Fn>
  std::size_t dispatch_storage(MachineId machine, const Interval& iv,
                               std::size_t skip, Fn&& fn) const {
    return dispatch(by_storage_[machine.index()], iv, skip, fn);
  }

  /// Live subscriptions across all resources — what one full scan of every
  /// plan's resource list would have to walk (the counterfactual cost the
  /// index avoids; exported as `engine.invalidations_scan_equiv`).
  std::size_t live_entries() const { return live_entries_; }

  /// Live subscriptions of one plan (tests).
  std::size_t plan_entries(std::size_t plan) const { return plan_live_[plan]; }

 private:
  struct Entry {
    std::uint32_t plan;
    std::uint64_t epoch;  ///< live iff == plan_epoch_[plan]
    Interval iv;
  };

  bool live(const Entry& e) const { return e.epoch == plan_epoch_[e.plan]; }

  template <class Fn>
  std::size_t dispatch(const std::vector<Entry>& entries, const Interval& iv,
                       std::size_t skip, Fn&& fn) const {
    std::size_t examined = 0;
    for (const Entry& e : entries) {
      if (!live(e)) continue;
      ++examined;
      if (e.plan == skip) continue;
      if (e.iv.overlaps(iv)) fn(static_cast<std::size_t>(e.plan), e.iv);
    }
    return examined;
  }

  void append(std::vector<Entry>& entries, std::size_t plan, const Interval& iv);
  /// Erases every dead entry from every posting list.
  void sweep();

  std::vector<std::vector<Entry>> by_link_;
  std::vector<std::vector<Entry>> by_storage_;
  std::vector<std::uint64_t> plan_epoch_;
  std::vector<std::size_t> plan_live_;
  std::size_t live_entries_ = 0;
  std::size_t dead_entries_ = 0;
};

}  // namespace datastage
