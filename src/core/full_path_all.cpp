#include "core/heuristics.hpp"

#include "util/assert.hpp"

namespace datastage {

StagingResult run_full_path_all(const Scenario& scenario,
                                const EngineOptions& options) {
  // The paper excludes full_all + C1: a per-destination cost cannot express
  // sending one item to multiple destinations (§4.8).
  DS_ASSERT_MSG(!is_per_destination(options.criterion),
                "full path/all destinations requires an aggregate cost criterion");
  StagingEngine engine(scenario, options);
  while (std::optional<Candidate> best = engine.best_candidate()) {
    engine.apply_full_path_all(*best);
  }
  return engine.finish();
}

}  // namespace datastage
