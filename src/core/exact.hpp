// Exhaustive branch-and-bound over the heuristics' decision space.
//
// The paper (§5.1) notes optimal schedules are intractable to enumerate for
// realistic instances, so it brackets the heuristics with bounds. For *tiny*
// instances we can do better: every schedule any of the three heuristics (or
// any cost criterion) could emit arises from iteratively committing one
// "valid next communication step" — a first hop along a current
// shortest-path tree toward a satisfiable destination. This module searches
// that decision tree exhaustively with branch-and-bound, yielding the best
// value attainable by ANY cost criterion under the paper's candidate rule.
// The gap between a heuristic/criterion pair and this envelope isolates how
// much a better cost function could still buy (bench/tbl_optimality_gap).
#pragma once

#include <cstdint>

#include "core/satisfaction.hpp"
#include "model/priority.hpp"
#include "model/scenario.hpp"

namespace datastage {

struct SearchOptions {
  PriorityWeighting weighting = PriorityWeighting::w_1_10_100();
  /// Hard cap on explored nodes; the search reports whether it completed.
  std::size_t max_nodes = 200'000;
};

struct SearchReport {
  /// Best weighted value found (the envelope).
  double best_value = 0.0;
  /// The schedule and outcomes attaining best_value.
  StagingResult best;
  /// Nodes expanded.
  std::size_t nodes = 0;
  /// True iff the search ran to completion (best_value is exact for the
  /// candidate rule); false if the node cap truncated it (lower bound).
  bool complete = false;
};

/// Exhaustive search over candidate-step choices. Exponential: only for
/// instances with a handful of requests (tests cap request counts).
SearchReport exhaustive_step_search(const Scenario& scenario,
                                    const SearchOptions& options = {});

struct BeamOptions {
  PriorityWeighting weighting = PriorityWeighting::w_1_10_100();
  /// States kept per level. Width 1 is a pure greedy on
  /// (value + optimistic); larger widths interpolate toward the exhaustive
  /// envelope at linear cost in width.
  std::size_t width = 8;
  /// Hard cap on expanded states across the whole search.
  std::size_t max_expansions = 50'000;
};

/// Beam search over the same candidate-step decision space: keeps the
/// `width` most promising partial schedules per level, scored by achieved
/// value plus the optimistic bound of the remaining pending requests.
/// Polynomial, unlike exhaustive_step_search, but still much costlier than
/// the paper's heuristics — intended for small and medium instances.
StagingResult run_beam_search(const Scenario& scenario, const BeamOptions& options = {});

}  // namespace datastage
