// Plain-text schedule serialization.
//
// Lets the CLI tools persist a computed schedule next to its scenario file,
// diff schedules between runs, and replay a saved schedule through the
// simulator later. Versioned, line-oriented, strict parsing — same design as
// model/scenario_io.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/schedule.hpp"

namespace datastage {

void write_schedule(std::ostream& os, const Schedule& schedule);
std::string schedule_to_string(const Schedule& schedule);
void save_schedule(const std::string& path, const Schedule& schedule);

/// Parses the v1 format. On failure returns nullopt and stores a message
/// (with line number) in *error if non-null. Id ranges are not validated
/// here; replaying through sim/simulator validates against a scenario.
std::optional<Schedule> read_schedule(std::istream& is, std::string* error);
std::optional<Schedule> schedule_from_string(const std::string& text,
                                             std::string* error);
std::optional<Schedule> load_schedule(const std::string& path, std::string* error);

}  // namespace datastage
