#include "core/heuristics.hpp"

namespace datastage {

StagingResult run_full_path_one(const Scenario& scenario,
                                const EngineOptions& options) {
  StagingEngine engine(scenario, options);
  while (std::optional<Candidate> best = engine.best_candidate()) {
    engine.apply_full_path_one(*best);
  }
  return engine.finish();
}

}  // namespace datastage
