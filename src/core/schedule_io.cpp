#include "core/schedule_io.hpp"

#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace datastage {
namespace {

constexpr const char* kMagic = "datastage-schedule";
constexpr const char* kVersion = "v1";

}  // namespace

void write_schedule(std::ostream& os, const Schedule& schedule) {
  os << kMagic << ' ' << kVersion << '\n';
  for (const CommStep& step : schedule.steps()) {
    os << "step " << step.item.value() << ' ' << step.from.value() << ' '
       << step.to.value() << ' ' << step.link.value() << ' ' << step.start.usec()
       << ' ' << step.arrival.usec() << '\n';
  }
}

std::string schedule_to_string(const Schedule& schedule) {
  std::ostringstream os;
  write_schedule(os, schedule);
  return os.str();
}

void save_schedule(const std::string& path, const Schedule& schedule) {
  std::ofstream out(path);
  DS_ASSERT_MSG(out.good(), "cannot open schedule output file");
  write_schedule(out, schedule);
}

std::optional<Schedule> read_schedule(std::istream& is, std::string* error) {
  auto fail = [error](int line, const std::string& msg) {
    if (error != nullptr) *error = "line " + std::to_string(line) + ": " + msg;
    return std::nullopt;
  };

  std::string line;
  int line_no = 0;
  if (!std::getline(is, line)) return fail(1, "empty input");
  ++line_no;
  {
    std::istringstream header(line);
    std::string magic;
    std::string version;
    header >> magic >> version;
    if (magic != kMagic || version != kVersion) {
      return fail(line_no, "malformed header (expected 'datastage-schedule v1')");
    }
  }

  Schedule schedule;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;

    std::istringstream ss(line);
    std::string directive;
    ss >> directive;
    if (directive != "step") return fail(line_no, "unknown directive '" + directive + "'");

    std::int32_t item = 0;
    std::int32_t from = 0;
    std::int32_t to = 0;
    std::int32_t link = 0;
    std::int64_t start = 0;
    std::int64_t arrival = 0;
    if (!(ss >> item >> from >> to >> link >> start >> arrival)) {
      return fail(line_no, "expected: step <item> <from> <to> <link> <start> <arrival>");
    }
    if (arrival < start) return fail(line_no, "arrival precedes start");
    schedule.add(CommStep{ItemId(item), MachineId(from), MachineId(to),
                          VirtLinkId(link), SimTime::from_usec(start),
                          SimTime::from_usec(arrival)});
  }
  return schedule;
}

std::optional<Schedule> schedule_from_string(const std::string& text,
                                             std::string* error) {
  std::istringstream ss(text);
  return read_schedule(ss, error);
}

std::optional<Schedule> load_schedule(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error != nullptr) *error = "cannot open file: " + path;
    return std::nullopt;
  }
  return read_schedule(in, error);
}

}  // namespace datastage
