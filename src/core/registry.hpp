// Named access to every scheduler the paper evaluates: the eleven
// heuristic/cost-criterion pairs, the two random lower bounds and the
// priority-first scheme. The experiment harness and the bench binaries drive
// everything through this registry so figure code never hard-codes schedulers.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/cost.hpp"
#include "core/engine.hpp"
#include "core/heuristics.hpp"
#include "core/satisfaction.hpp"

namespace datastage {

enum class HeuristicKind {
  kPartial,   ///< partial path (§4.5)
  kFullOne,   ///< full path/one destination (§4.6)
  kFullAll,   ///< full path/all destinations (§4.7)
};

const char* heuristic_name(HeuristicKind kind);

/// A heuristic/cost-criterion pairing (a "series" in the figures).
struct SchedulerSpec {
  HeuristicKind heuristic;
  CostCriterion criterion;

  std::string name() const;  ///< e.g. "partial/C4"
  friend bool operator==(const SchedulerSpec&, const SchedulerSpec&) = default;
};

/// The eleven pairs the paper evaluates (full_all + C1 excluded, §4.8).
std::vector<SchedulerSpec> paper_pairs();

/// The paper pairs plus the C5 extension (the §5.4 future-work criterion)
/// for each heuristic: fourteen pairs.
std::vector<SchedulerSpec> extended_pairs();

/// Pairs for one heuristic (the per-figure series sets).
std::vector<SchedulerSpec> pairs_for(HeuristicKind kind);

/// Parses "partial/C4" etc. nullopt on unknown names.
std::optional<SchedulerSpec> parse_spec(const std::string& name);

/// True iff the pair is one the paper admits (rejects full_all + C1).
bool is_valid_pair(const SchedulerSpec& spec);

/// Runs the pair on a scenario.
StagingResult run_spec(const SchedulerSpec& spec, const Scenario& scenario,
                       const EngineOptions& options);

/// Everything the experiment layer needs from one (scheduler, scenario) run:
/// the raw staging result plus the evaluation numbers every figure and table
/// derives from it, computed once under options.weighting.
struct CaseResult {
  StagingResult staging;
  double weighted_value = 0.0;        ///< Σ W[priority] over satisfied requests
  std::size_t satisfied = 0;          ///< satisfied request count
  std::vector<std::size_t> by_class;  ///< satisfied per priority class
                                      ///< (size = weighting.num_classes())
};

/// The single entry point for evaluating one scheduler on one scenario — the
/// unit of work the parallel executor dispatches. Wraps run_spec and derives
/// the standard evaluation numbers so harness and bench code never hand-roll
/// engine/bounds/baseline plumbing per call site.
CaseResult run_case(const SchedulerSpec& spec, const Scenario& scenario,
                    const EngineOptions& options);

}  // namespace datastage
