// The two random-search lower bounds of paper §5.2.
#include <numeric>

#include "core/heuristics.hpp"
#include "net/topology.hpp"
#include "routing/dijkstra.hpp"
#include "util/assert.hpp"

namespace datastage {

StagingResult run_single_dijkstra_random(const Scenario& scenario,
                                         const PriorityWeighting& weighting, Rng& rng) {
  (void)weighting;  // the procedure is cost-free; signature kept uniform
  Topology topology(scenario);
  // `pristine` never receives reservations: it answers "what would the path
  // be if this were the only item in the network". `state` accumulates the
  // actual schedule.
  const NetworkState pristine(scenario);
  NetworkState state(scenario);
  OutcomeTracker tracker(scenario);
  Schedule schedule;
  std::size_t dijkstra_runs = 0;

  std::vector<std::int32_t> order(scenario.item_count());
  std::iota(order.begin(), order.end(), 0);
  rng.shuffle(order);  // "the ordering of the data items is arbitrary"

  for (const std::int32_t raw_item : order) {
    const ItemId item(raw_item);
    const DataItem& it = scenario.item(item);

    DijkstraOptions dopt;
    dopt.prune_after = it.latest_deadline();
    const RouteTree tree = compute_route_tree(pristine, topology, item, dopt);
    ++dijkstra_runs;

    // Machines already holding the item along already-committed paths of
    // *this* item (tree edges are shared between destinations).
    std::vector<bool> committed(scenario.machine_count(), false);

    for (std::size_t k = 0; k < it.requests.size(); ++k) {
      const Request& request = it.requests[k];
      const MachineId dest = request.destination;
      if (!tree.reached(dest) || !tree.has_parent(dest)) continue;
      if (tree.arrival(dest) > request.deadline) continue;  // never satisfiable

      // Replay the pristine path on the shared network. The first conflict
      // drops the request; transfers already committed stay (§4.5 rationale).
      for (const TreeEdge& edge : tree.path_to(dest)) {
        if (committed[edge.to.index()]) continue;
        if (!state.can_apply(item, edge.link, edge.start)) break;  // conflict: drop
        const AppliedTransfer applied =
            state.apply_transfer(item, edge.link, edge.start);
        schedule.add(CommStep{item, edge.from, edge.to, edge.link, applied.start,
                              applied.arrival});
        tracker.note_arrival(item, edge.to, applied.arrival);
        committed[edge.to.index()] = true;
      }
    }
  }

  StagingResult result;
  result.schedule = std::move(schedule);
  result.outcomes = tracker.take_outcomes();
  result.dijkstra_runs = dijkstra_runs;
  result.iterations = scenario.item_count();
  return result;
}

StagingResult run_random_dijkstra(const Scenario& scenario,
                                  const PriorityWeighting& weighting, Rng& rng) {
  // Identical to the partial path heuristic except the valid next step is
  // chosen uniformly at random instead of by cost (§5.2).
  EngineOptions options;
  options.weighting = weighting;
  options.criterion = CostCriterion::kC4;  // aggregate grouping; cost ignored
  StagingEngine engine(scenario, options);
  while (true) {
    std::vector<Candidate> candidates = engine.all_candidates();
    if (candidates.empty() || engine.guard_tripped()) break;
    const auto pick = static_cast<std::size_t>(
        rng.uniform_i64(0, static_cast<std::int64_t>(candidates.size()) - 1));
    engine.apply_hop(candidates[pick]);
  }
  return engine.finish();
}

}  // namespace datastage
