#include "core/metrics.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace datastage {

ResultMetrics compute_metrics(const Scenario& scenario,
                              const PriorityWeighting& weighting,
                              const StagingResult& result) {
  ResultMetrics m;
  m.satisfied_per_class.assign(weighting.num_classes(), 0);
  m.total_per_class.assign(weighting.num_classes(), 0);

  Accumulator slack;
  Accumulator response;

  DS_ASSERT_MSG(result.outcomes.size() == scenario.item_count(),
                "outcome matrix rows must match scenario items");
  for (std::size_t i = 0; i < scenario.item_count(); ++i) {
    const DataItem& item = scenario.items[i];
    // Earliest availability over the item's sources (its "birth" time).
    SimTime born = SimTime::infinity();
    for (const SourceLocation& src : item.sources) born = min(born, src.available_at);

    for (std::size_t k = 0; k < item.requests.size(); ++k) {
      const Request& request = item.requests[k];
      const RequestOutcome& outcome = result.outcomes[i][k];
      ++m.total_requests;
      const auto cls = static_cast<std::size_t>(request.priority);
      DS_ASSERT_MSG(cls < m.total_per_class.size(),
                    "request priority outside the weighting's class range");
      ++m.total_per_class[cls];
      m.weighted_total += weighting.weight(request.priority);
      if (!outcome.satisfied) continue;

      ++m.satisfied;
      ++m.satisfied_per_class[cls];
      m.weighted_value += weighting.weight(request.priority);
      slack.add((request.deadline - outcome.arrival).as_seconds());
      response.add((outcome.arrival - born).as_seconds());
      m.makespan = max(m.makespan, outcome.arrival);
    }
  }

  if (slack.count() > 0) {
    m.mean_slack_seconds = slack.mean();
    m.min_slack_seconds = slack.min();
    m.mean_response_seconds = response.mean();
  }

  m.transfers = result.schedule.size();
  m.total_link_time = result.schedule.total_link_time();
  m.transfers_per_satisfied =
      m.satisfied == 0 ? 0.0
                       : static_cast<double>(m.transfers) /
                             static_cast<double>(m.satisfied);
  return m;
}

Table metrics_table(const ResultMetrics& m) {
  Table table({"metric", "value"});
  table.add_row({"requests satisfied",
                 std::to_string(m.satisfied) + " / " + std::to_string(m.total_requests) +
                     " (" + format_double(100.0 * m.satisfied_fraction(), 1) + "%)"});
  table.add_row({"weighted value",
                 format_double(m.weighted_value, 1) + " / " +
                     format_double(m.weighted_total, 1) + " (" +
                     format_double(100.0 * m.value_fraction(), 1) + "%)"});
  for (std::size_t c = m.satisfied_per_class.size(); c-- > 0;) {
    table.add_row({"satisfied " + priority_name(static_cast<Priority>(c)),
                   std::to_string(m.satisfied_per_class[c]) + " / " +
                       std::to_string(m.total_per_class[c])});
  }
  table.add_row({"mean slack", format_double(m.mean_slack_seconds, 1) + " s"});
  table.add_row({"min slack", format_double(m.min_slack_seconds, 1) + " s"});
  table.add_row({"mean response", format_double(m.mean_response_seconds, 1) + " s"});
  table.add_row({"transfers", std::to_string(m.transfers)});
  table.add_row({"transfers per satisfied", format_double(m.transfers_per_satisfied, 2)});
  table.add_row({"total link time", m.total_link_time.to_string()});
  table.add_row({"makespan", m.makespan.to_string()});
  return table;
}

}  // namespace datastage
