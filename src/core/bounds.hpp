// Upper bounds on achievable performance (paper §5.2).
//
//   upper_bound      — the weighted sum of ALL requests (assumes everything
//                      can be satisfied; the loose bound).
//   possible_satisfy — the weighted sum of the requests that could be
//                      satisfied if each were the only request in the system
//                      (one pristine Dijkstra per item; the tight bound).
#pragma once

#include "core/satisfaction.hpp"
#include "model/priority.hpp"
#include "model/scenario.hpp"

namespace datastage {

struct BoundsReport {
  double upper_bound = 0.0;
  double possible_satisfy = 0.0;
  /// Outcome of every request when alone in the system (satisfiable or not);
  /// reused by tests and the per-class tables.
  OutcomeMatrix alone_outcomes;
};

BoundsReport compute_bounds(const Scenario& scenario,
                            const PriorityWeighting& weighting);

}  // namespace datastage
