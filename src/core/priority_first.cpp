// The §5.4 "simplified scheme": a cost-guided scheduler that looks only at
// request priority — all highest-priority requests are scheduled (full path)
// before any medium-priority one, and so on. The paper uses it to show that
// the heuristic/cost-criterion combinations beat priority-only scheduling.
#include "core/heuristics.hpp"

namespace datastage {

StagingResult run_priority_first(const Scenario& scenario,
                                 const PriorityWeighting& weighting) {
  EngineOptions options;
  options.weighting = weighting;
  options.criterion = CostCriterion::kPriorityOnly;
  StagingEngine engine(scenario, options);
  while (std::optional<Candidate> best = engine.best_candidate()) {
    engine.apply_full_path_one(*best);
  }
  return engine.finish();
}

StagingResult run_earliest_deadline_first(const Scenario& scenario,
                                          const PriorityWeighting& weighting) {
  EngineOptions options;
  options.weighting = weighting;
  options.criterion = CostCriterion::kEdf;
  StagingEngine engine(scenario, options);
  while (std::optional<Candidate> best = engine.best_candidate()) {
    engine.apply_full_path_one(*best);
  }
  return engine.finish();
}

}  // namespace datastage
