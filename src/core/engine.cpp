#include "core/engine.hpp"

#include <algorithm>
#include <functional>

#include "obs/observer.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"

namespace datastage {

namespace {

/// Process-wide EngineOptions::engine_jobs default (see engine.hpp). Plain
/// global, same idiom as harness/parallel.hpp's default_jobs: written once
/// during tool flag parsing, read at EngineOptions construction.
std::size_t g_default_engine_jobs = 1;

/// Batches smaller than this run inline on the caller's thread: dispatching
/// a couple of Dijkstra rebuilds to the pool costs more than it saves, and
/// the inline path reuses the identical compute/merge code so results do not
/// depend on which side of the threshold a batch lands.
constexpr std::size_t kParallelRefreshMinJobs = 4;

}  // namespace

void set_default_engine_jobs(std::size_t jobs) { g_default_engine_jobs = jobs; }

std::size_t default_engine_jobs() { return g_default_engine_jobs; }

/// Counter handles resolved once at engine construction. Grouped here (not
/// in the header) so engine.hpp only needs forward declarations of obs.
struct StagingEngine::Instr {
  obs::Counter iterations;
  obs::Counter rounds;              ///< candidate scoring rounds (refreshes)
  obs::Counter tree_recomputes;     ///< Dijkstra reruns (cache miss/dirty)
  obs::Counter cache_hits;          ///< clean cached trees reused in a round
  obs::Counter candidates;          ///< candidates generated and scored
  obs::Counter best_rescans;        ///< per-plan best recomputations
  obs::Counter steps_committed;     ///< tree edges committed to the network
  obs::Counter requests_satisfied;  ///< requests resolved by a committed edge
  obs::Counter invalidations_link;
  obs::Counter invalidations_storage;
  obs::Counter invalidations_self;  ///< scheduled item's own plan dirtied
  obs::Counter invalidations_checked;     ///< index entries examined
  obs::Counter invalidations_scan_equiv;  ///< entries a full scan would examine
  obs::Counter dijkstra_pops;
  obs::Counter dijkstra_relaxations;
  obs::Counter dijkstra_capacity_rejections;
  obs::Counter guard_trips;
  /// Speculation verdicts: plans whose speculative refresh survived the next
  /// commit (kept) vs plans the commit re-invalidated (recomputed again).
  /// Logical batches, so the values are identical at any engine_jobs.
  obs::Counter spec_commits;
  obs::Counter spec_aborts;
  /// Wall nanoseconds blocked in refresh (join + merge). Incremented only
  /// when a phase timer is attached — wall time is not byte-comparable, and
  /// the deterministic documents (harness per-case registries) have none.
  obs::Counter refresh_parallel_ns;
  /// Deadline margin (seconds) of each satisfied request, recorded at finish.
  obs::Histogram* satisfied_slack_seconds;
  /// Per-round refresh latency (microseconds); phase-timer-gated like
  /// refresh_parallel_ns.
  obs::Histogram* refresh_batch_usec;

  explicit Instr(obs::MetricsRegistry& m)
      : iterations(m.counter("engine.iterations")),
        rounds(m.counter("engine.scoring_rounds")),
        tree_recomputes(m.counter("engine.tree_recomputes")),
        cache_hits(m.counter("engine.cache_hits")),
        candidates(m.counter("engine.candidates_scored")),
        best_rescans(m.counter("engine.best_rescans")),
        steps_committed(m.counter("engine.steps_committed")),
        requests_satisfied(m.counter("engine.requests_satisfied")),
        invalidations_link(m.counter("engine.invalidations_link")),
        invalidations_storage(m.counter("engine.invalidations_storage")),
        invalidations_self(m.counter("engine.invalidations_self")),
        invalidations_checked(m.counter("engine.invalidations_checked")),
        invalidations_scan_equiv(m.counter("engine.invalidations_scan_equiv")),
        dijkstra_pops(m.counter("dijkstra.heap_pops")),
        dijkstra_relaxations(m.counter("dijkstra.relaxations")),
        dijkstra_capacity_rejections(m.counter("dijkstra.capacity_rejections")),
        guard_trips(m.counter("engine.guard_trips")),
        spec_commits(m.counter("engine.spec_commits")),
        spec_aborts(m.counter("engine.spec_aborts")),
        refresh_parallel_ns(m.counter("engine.refresh_parallel_ns")),
        satisfied_slack_seconds(&m.histogram("engine.satisfied_slack_seconds",
                                             {0.1, 1.0, 10.0, 60.0, 600.0, 3600.0})),
        refresh_batch_usec(&m.histogram(
            "engine.refresh_batch_usec",
            {50.0, 200.0, 1000.0, 5000.0, 20000.0, 100000.0})) {}
};

/// Per-request lifecycle state behind the span-model trace events. Kept out
/// of the header (like Instr) and allocated only when a trace is attached.
struct StagingEngine::Lifecycle {
  enum class Status : std::uint8_t {
    kUnknown,             ///< plan not classified yet
    kFeasible,            ///< a route arriving before the deadline exists
    kDeadlineInfeasible,  ///< reachable, but every route arrives too late
    kNoRoute,             ///< no capacity-feasible route at all
    kSatisfied,           ///< a committed transfer resolved the request
  };

  struct RequestState {
    Status status = Status::kUnknown;
    bool ever_feasible = false;
    /// Item whose commit caused the final feasible -> infeasible transition.
    std::int32_t lost_to = -1;
  };

  explicit Lifecycle(const Scenario& scenario) {
    // Static reachability from each item's sources over the physical
    // topology. The engine's route trees are deadline-pruned, so a
    // destination they never reach may still be connected — this separates
    // "the graph cannot carry the item there" (no_feasible_route) from "it
    // can, but not in time" (deadline_infeasible).
    std::vector<std::vector<std::int32_t>> out(scenario.machine_count());
    for (const PhysicalLink& link : scenario.phys_links) {
      out[link.from.index()].push_back(link.to.value());
    }
    requests.resize(scenario.item_count());
    reachable.resize(scenario.item_count());
    std::vector<std::int32_t> stack;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      requests[i].resize(scenario.items[i].requests.size());
      std::vector<char>& seen = reachable[i];
      seen.assign(scenario.machine_count(), 0);
      stack.clear();
      for (const SourceLocation& source : scenario.items[i].sources) {
        if (seen[source.machine.index()] == 0) {
          seen[source.machine.index()] = 1;
          stack.push_back(source.machine.value());
        }
      }
      while (!stack.empty()) {
        const std::int32_t m = stack.back();
        stack.pop_back();
        for (const std::int32_t next : out[static_cast<std::size_t>(m)]) {
          if (seen[static_cast<std::size_t>(next)] == 0) {
            seen[static_cast<std::size_t>(next)] = 1;
            stack.push_back(next);
          }
        }
      }
    }
  }

  std::vector<std::vector<RequestState>> requests;  ///< [item][k]
  std::vector<std::vector<char>> reachable;         ///< [item][machine]
};

namespace {

/// Deterministic total order on candidates: cost first, then stable
/// structural tie-breakers so equal-cost runs are reproducible.
bool candidate_less(const Candidate& a, const Candidate& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  if (a.item != b.item) return a.item < b.item;
  if (a.hop.to != b.hop.to) return a.hop.to < b.hop.to;
  const std::int32_t ka = a.dests.empty() ? -1 : a.dests.front().k;
  const std::int32_t kb = b.dests.empty() ? -1 : b.dests.front().k;
  return ka < kb;
}

}  // namespace

// The same total order as candidate_less over snapshots. (item, hop_to, k)
// never tie across distinct plans, so the order is total even when stale
// snapshots coexist with fresh ones.
bool StagingEngine::best_entry_after(const StagingEngine::BestEntry& a,
                                     const StagingEngine::BestEntry& b) {
  if (a.cost != b.cost) return a.cost > b.cost;
  if (a.item != b.item) return a.item > b.item;
  if (a.hop_to != b.hop_to) return a.hop_to > b.hop_to;
  return a.k > b.k;
}

StagingEngine::StagingEngine(const Scenario& scenario, EngineOptions options)
    : scenario_(&scenario),
      options_(std::move(options)),
      topology_(scenario),
      state_(scenario),
      tracker_(scenario),
      index_(scenario.virt_links.size(), scenario.machine_count(),
             scenario.item_count()),
      node_mark_(scenario.machine_count(), 0) {
  plans_.resize(scenario.item_count());
  active_plans_ = plans_.size();
  // Every plan starts dirty: seed the queue so the first refresh builds all.
  dirty_queue_.resize(plans_.size());
  for (std::size_t i = 0; i < plans_.size(); ++i) dirty_queue_[i] = i;
  max_iterations_ = options_.max_iterations != 0
                        ? options_.max_iterations
                        : 1000 + 200 * scenario.request_count();
  engine_jobs_resolved_ = options_.engine_jobs == 0 ? ThreadPool::hardware_jobs()
                                                    : options_.engine_jobs;
  pool_ = options_.engine_pool;  // an owned pool is created lazily on demand
  parallel_enabled_ = pool_ != nullptr || engine_jobs_resolved_ > 1;
  refresh_ws_.resize(pool_ != nullptr ? pool_->thread_count() : 1);
  for (RefreshWorkspace& ws : refresh_ws_) {
    ws.node_mark.assign(scenario.machine_count(), 0);
  }
  if (options_.observer != nullptr) {
    trace_ = options_.observer->trace;
    phases_ = options_.observer->phases;
    if (trace_ != nullptr) {
      lifecycle_ = std::make_unique<Lifecycle>(scenario);
    }
    if (options_.observer->metrics != nullptr) {
      instr_ = std::make_unique<Instr>(*options_.observer->metrics);
      state_.attach_metrics(*options_.observer->metrics);
    }
  }
}

StagingEngine::~StagingEngine() {
  if (batch_async_) {
    try {
      pool_->join();
    } catch (...) {
      // A speculative recompute failed after the engine was abandoned; there
      // is no caller left to care and nothing may escape a destructor.
    }
  }
}

ThreadPool* StagingEngine::ensure_pool() {
  if (pool_ == nullptr) {
    owned_pool_ = std::make_unique<ThreadPool>(engine_jobs_resolved_);
    pool_ = owned_pool_.get();
    const std::size_t old_workers = refresh_ws_.size();
    refresh_ws_.resize(pool_->thread_count());
    for (std::size_t w = old_workers; w < refresh_ws_.size(); ++w) {
      refresh_ws_[w].node_mark.assign(scenario_->machine_count(), 0);
    }
  }
  return pool_;
}

void StagingEngine::refresh_plans() {
  if (instr_ != nullptr) instr_->rounds.inc();
  const std::int64_t t0 = phases_ != nullptr ? steady_clock_nanos() : 0;
  if (options_.paranoid) {
    // The paper's literal procedure: rebuild every live plan every round.
    // Each rebuild bumps the plan's generation, so every existing heap entry
    // is about to go stale — drop them wholesale instead of popping one by
    // one later.
    best_heap_.clear();
    refresh_jobs_.clear();
    for (std::size_t i = 0; i < plans_.size(); ++i) {
      const ItemId item(static_cast<std::int32_t>(i));
      if (plans_[i].exhausted) continue;
      if (!tracker_.any_pending(item)) {
        retire_plan(i);
        continue;
      }
      RefreshJob job;
      job.plan = i;
      job.old_candidates = plans_[i].candidates.size();
      refresh_jobs_.push_back(job);
    }
    dirty_queue_.clear();
    run_refresh_batch();
    merge_refresh_jobs();
    last_round_cache_hits_ = 0;
  } else if (batch_collected_) {
    // The dirty set was already collected (and its compute dispatched) by
    // the speculative launch at the end of the last commit; nothing can have
    // dirtied a plan since. Join the workers and replay the merge.
    DS_ASSERT_MSG(dirty_queue_.empty(),
                  "plans dirtied while a speculative batch was in flight");
    if (batch_async_) {
      batch_async_ = false;
      pool_->join();
    }
    const std::size_t recomputed = refresh_jobs_.size();
    merge_refresh_jobs();
    last_round_cache_hits_ = active_plans_ - recomputed;
    if (instr_ != nullptr) instr_->cache_hits.inc(last_round_cache_hits_);
  } else {
    // Incremental mode without a speculative batch: collect the dirty set,
    // compute (parallel when worthwhile), merge in ascending plan order.
    collect_refresh_jobs();
    run_refresh_batch();
    const std::size_t recomputed = refresh_jobs_.size();
    merge_refresh_jobs();
    // Every live plan not recomputed this round reused its cached tree; the
    // cache is provably identical to a recompute (see the header note).
    last_round_cache_hits_ = active_plans_ - recomputed;
    if (instr_ != nullptr) instr_->cache_hits.inc(last_round_cache_hits_);
  }
  if (phases_ != nullptr) {
    const std::int64_t ns = steady_clock_nanos() - t0;
    if (instr_ != nullptr) {
      instr_->refresh_parallel_ns.inc(static_cast<std::uint64_t>(ns));
      instr_->refresh_batch_usec->observe(static_cast<double>(ns) / 1000.0);
    }
    phases_->add_nanos("engine.refresh_parallel", ns);
  }
}

void StagingEngine::collect_refresh_jobs() {
  refresh_jobs_.clear();
  // Sorting keeps the recompute (and hence Dijkstra/trace) order identical
  // to the old full scan; duplicates are skipped via the dirty flag, which
  // each claimed plan drops here so the batch holds it exactly once.
  std::sort(dirty_queue_.begin(), dirty_queue_.end());
  for (const std::size_t i : dirty_queue_) {
    ItemPlan& plan = plans_[i];
    if (!plan.dirty) continue;  // duplicate queue entry or refreshed early
    const ItemId item(static_cast<std::int32_t>(i));
    if (!tracker_.any_pending(item)) {
      retire_plan(i);
      continue;
    }
    plan.dirty = false;
    RefreshJob job;
    job.plan = i;
    job.old_candidates = plan.candidates.size();
    refresh_jobs_.push_back(job);
  }
  dirty_queue_.clear();
  // Every commit-triggered batch is a speculation round: the next commit's
  // invalidation delivers each plan's keep/abort verdict. Batches are
  // logical — recorded whether the compute runs inline or on the pool — so
  // the verdict counters are identical at any engine_jobs.
  if (iterations_ > 0) {
    spec_batch_.clear();
    for (const RefreshJob& job : refresh_jobs_) spec_batch_.push_back(job.plan);
    spec_pending_ = true;
  }
}

void StagingEngine::run_refresh_batch() {
  if (parallel_enabled_ && refresh_jobs_.size() >= kParallelRefreshMinJobs) {
    const std::function<void(std::size_t, std::size_t)> job =
        [this](std::size_t worker, std::size_t j) {
          compute_refresh_job(refresh_jobs_[j], refresh_ws_[worker]);
        };
    ensure_pool()->parallel_for(refresh_jobs_.size(), job);
  } else {
    for (RefreshJob& job : refresh_jobs_) {
      compute_refresh_job(job, refresh_ws_.front());
    }
  }
}

void StagingEngine::merge_refresh_jobs() {
  // Ascending plan order (collect drains the sorted queue), replaying the
  // exact shared-state sequence a serial refresh would have produced.
  for (RefreshJob& job : refresh_jobs_) merge_refresh_job(job);
  refresh_jobs_.clear();
  batch_collected_ = false;
}

void StagingEngine::complete_pending_refresh() {
  if (!batch_collected_) return;
  if (batch_async_) {
    batch_async_ = false;
    pool_->join();
  }
  merge_refresh_jobs();
}

void StagingEngine::abandon_refresh_batch() {
  if (batch_async_) {
    batch_async_ = false;
    pool_->join();
  }
  batch_collected_ = false;
  refresh_jobs_.clear();
}

void StagingEngine::launch_speculative_refresh() {
  if (!parallel_enabled_ || options_.paranoid || guard_tripped_) return;
  // The commit is fully applied and the network state is stable until the
  // next apply_*, which can only run after a refresh joins this batch — so
  // workers read a frozen NetworkState/topology and write plan-local state.
  const std::int64_t t0 = phases_ != nullptr ? steady_clock_nanos() : 0;
  collect_refresh_jobs();
  batch_collected_ = true;
  if (refresh_jobs_.size() >= kParallelRefreshMinJobs) {
    batch_async_ = true;
    ensure_pool()->begin(refresh_jobs_.size(),
                         [this](std::size_t worker, std::size_t j) {
                           compute_refresh_job(refresh_jobs_[j],
                                               refresh_ws_[worker]);
                         });
  } else {
    for (RefreshJob& job : refresh_jobs_) {
      compute_refresh_job(job, refresh_ws_.front());
    }
  }
  if (phases_ != nullptr) {
    phases_->add_nanos("engine.refresh_speculate", steady_clock_nanos() - t0);
  }
}

void StagingEngine::resolve_spec_batch() {
  if (!spec_pending_) return;
  spec_pending_ = false;
  std::size_t aborts = 0;
  for (const std::size_t p : spec_batch_) {
    if (plans_[p].dirty) ++aborts;
  }
  if (instr_ != nullptr) {
    instr_->spec_aborts.inc(aborts);
    instr_->spec_commits.inc(spec_batch_.size() - aborts);
  }
  spec_batch_.clear();
}

void StagingEngine::retire_plan(std::size_t plan_index) {
  ItemPlan& plan = plans_[plan_index];
  plan.exhausted = true;
  plan.dirty = false;
  ++plan.generation;  // any tournament entry for this plan is now stale
  plan.best = kNoBest;
  candidate_total_ -= plan.candidates.size();
  // Release, don't just clear: a retired plan must neither hold candidate or
  // interval memory for the rest of the run nor keep stale index
  // subscriptions that would attract invalidation dispatches.
  plan.candidates = {};
  plan.used_links = {};
  plan.used_storage = {};
  plan.groups = {};
  index_.unsubscribe_all(plan_index);
  --active_plans_;
}

void StagingEngine::compute_refresh_job(RefreshJob& job, RefreshWorkspace& ws) {
  // Thread-safe by construction: reads the frozen NetworkState/topology and
  // the (const) tracker, writes only the plan's own storage, this worker's
  // scratch and the job record. Every shared-state effect of the old serial
  // recompute lives in merge_refresh_job.
  const ItemId item(static_cast<std::int32_t>(job.plan));
  ItemPlan& plan = plans_[job.plan];
  DijkstraOptions dopt;
  dopt.prune_after = tracker_.latest_pending_deadline(item);
  // The engine only reads labels of pending destinations (and their paths):
  // hand Dijkstra the target set so it can stop once all are settled.
  ws.targets.clear();
  const DataItem& it = scenario_->item(item);
  for (const std::int32_t k : tracker_.pending_of(item)) {
    ws.targets.push_back(it.requests[static_cast<std::size_t>(k)].destination);
  }
  dopt.targets = ws.targets;
  compute_route_tree_into(state_, topology_, item, dopt, ws.ws, plan.tree,
                          instr_ != nullptr ? &job.stats : nullptr);
  job.prune_after = dopt.prune_after;
  build_candidates_local(item, plan, ws);
}

void StagingEngine::merge_refresh_job(RefreshJob& job) {
  const std::size_t plan_index = job.plan;
  const ItemId item(static_cast<std::int32_t>(plan_index));
  ItemPlan& plan = plans_[plan_index];
  ++dijkstra_runs_;
  if (instr_ != nullptr) {
    instr_->tree_recomputes.inc();
    instr_->dijkstra_pops.inc(job.stats.pops);
    instr_->dijkstra_relaxations.inc(job.stats.relaxations);
    instr_->dijkstra_capacity_rejections.inc(job.stats.capacity_rejections);
  }
  if (trace_ != nullptr) {
    trace_->event("recompute")
        .field("iter", iterations_)
        .field("item", item.value())
        .field("pending", tracker_.pending_of(item).size())
        .field("prune_after_usec", job.prune_after.usec());
  }
  candidate_total_ -= job.old_candidates;
  index_.unsubscribe_all(plan_index);
  // Replay the subscriptions the compute phase recorded, in recorded order:
  // each emplace below was a subscribe call in the serial code, so posting
  // lists end up byte-identical to a serial refresh.
  for (const auto& [link, busy] : plan.used_links) {
    index_.subscribe_link(plan_index, link, busy);
  }
  for (const auto& [machine, hold] : plan.used_storage) {
    index_.subscribe_storage(plan_index, machine, hold);
  }
  candidate_total_ += plan.candidates.size();
  if (plan.best != kNoBest) push_best(plan_index);
  if (instr_ != nullptr) {
    instr_->candidates.inc(plan.candidates.size());
    instr_->best_rescans.inc();
  }
  if (lifecycle_ != nullptr) classify_requests(item, plan);
  plan.dirty = false;
  plan.last_invalidated_by = -1;
}

void StagingEngine::recompute_plan_now(ItemId item) {
  ItemPlan& plan = plans_[item.index()];
  RefreshJob job;
  job.plan = item.index();
  job.old_candidates = plan.candidates.size();
  plan.dirty = false;
  compute_refresh_job(job, refresh_ws_.front());
  merge_refresh_job(job);
}

void StagingEngine::classify_requests(ItemId item, const ItemPlan& plan) {
  using Status = Lifecycle::Status;
  const DataItem& it = scenario_->item(item);
  for (const std::int32_t k : tracker_.pending_of(item)) {
    const Request& request = it.requests[static_cast<std::size_t>(k)];
    const MachineId dest = request.destination;
    Status next;
    if (!plan.tree.reached(dest)) {
      // The route tree is deadline-pruned: an unreached destination is a
      // dead drop only when the static topology cannot carry the item there
      // at all; otherwise every connecting route just arrives too late.
      next = lifecycle_->reachable[item.index()][dest.index()] != 0
                 ? Status::kDeadlineInfeasible
                 : Status::kNoRoute;
    } else if (!plan.tree.has_parent(dest)) {
      // Destination already holds a late copy and no fresh route improves on
      // it — the request is reachable but can no longer meet its deadline.
      next = Status::kDeadlineInfeasible;
    } else {
      next = plan.tree.arrival(dest) <= request.deadline
                 ? Status::kFeasible
                 : Status::kDeadlineInfeasible;
    }
    Lifecycle::RequestState& st =
        lifecycle_->requests[item.index()][static_cast<std::size_t>(k)];
    if (st.status == next) continue;
    const bool was_feasible = st.status == Status::kFeasible;
    if (next == Status::kFeasible) {
      // Feasibility can return: a commit of this item staged a copy closer to
      // the destination, opening a faster route than before.
      if (st.status != Status::kUnknown) {
        trace_->event("request_revived")
            .field("iter", iterations_)
            .field("item", item.value())
            .field("k", k)
            .field("dest", dest.value());
      }
      st.ever_feasible = true;
      st.lost_to = -1;
    } else {
      auto event = trace_->event("request_lost");
      event.field("iter", iterations_)
          .field("item", item.value())
          .field("k", k)
          .field("dest", dest.value())
          .field("reason", next == Status::kNoRoute ? "no_feasible_route"
                                                    : "deadline_infeasible");
      if (was_feasible && plan.last_invalidated_by >= 0) {
        st.lost_to = plan.last_invalidated_by;
        event.field("lost_to", plan.last_invalidated_by);
      }
    }
    st.status = next;
  }
}

void StagingEngine::build_candidates_local(ItemId item, ItemPlan& plan,
                                           RefreshWorkspace& ws) {
  ++plan.generation;  // existing tournament entries for this plan go stale
  for (Candidate& c : plan.candidates) ws.dest_pool.release(std::move(c.dests));
  plan.candidates.clear();
  plan.used_links.clear();
  plan.used_storage.clear();
  plan.best = kNoBest;

  const DataItem& it = scenario_->item(item);

  // Evaluate every pending destination against the fresh tree and group the
  // reachable ones by the first hop of their path (the paper's Drq[i,r]).
  // The flat buffer + stable sort reproduce the old std::map grouping —
  // ascending r, insertion order within a group — without its per-round node
  // allocations (every machine has a unique parent edge, so all entries of a
  // group share the same hop).
  std::vector<ItemPlan::GroupEntry>& groups = plan.groups;
  groups.clear();

  for (const std::int32_t k : tracker_.pending_of(item)) {
    const Request& request = it.requests[static_cast<std::size_t>(k)];
    const MachineId dest = request.destination;
    if (!plan.tree.reached(dest)) continue;

    DestinationEval eval;
    eval.k = k;
    eval.weight = options_.weighting.weight(request.priority);
    eval.deadline_seconds = request.deadline.seconds();

    if (!plan.tree.has_parent(dest)) {
      // The destination already holds a (late) copy: a pending request with a
      // root label means the copy arrived past the deadline. No transfer is
      // proposed for it; it contributes nothing.
      DS_ASSERT_MSG(plan.tree.arrival(dest) > request.deadline,
                    "rootless pending destination implies a late arrival");
      continue;
    }

    const SimTime at = plan.tree.arrival(dest);
    eval.sat = at <= request.deadline;
    eval.slack_seconds = eval.sat ? (request.deadline - at).as_seconds() : 0.0;

    const TreeEdge& hop = plan.tree.first_hop(dest);
    groups.push_back(ItemPlan::GroupEntry{hop.to.value(), hop, eval});
  }

  std::stable_sort(groups.begin(), groups.end(),
                   [](const ItemPlan::GroupEntry& a, const ItemPlan::GroupEntry& b) {
                     return a.r < b.r;
                   });

  const bool per_dest = is_per_destination(options_.criterion);
  for (std::size_t lo = 0; lo < groups.size();) {
    std::size_t hi = lo;
    while (hi < groups.size() && groups[hi].r == groups[lo].r) ++hi;
    const TreeEdge& hop = groups[lo].hop;

    bool any_sat = false;
    for (std::size_t g = lo; g < hi; ++g) any_sat |= groups[g].eval.sat;
    if (!any_sat) {  // Sat == 0 everywhere: no resources (§4.8)
      lo = hi;
      continue;
    }

    if (per_dest) {
      for (std::size_t g = lo; g < hi; ++g) {
        const DestinationEval& eval = groups[g].eval;
        if (!eval.sat) continue;
        Candidate c;
        c.item = item;
        c.hop = hop;
        c.dests = ws.dest_pool.acquire();
        c.dests.push_back(eval);
        c.cost = evaluate_cost(options_.criterion, options_.eu, c.dests);
        plan.candidates.push_back(std::move(c));
      }
    } else {
      Candidate c;
      c.item = item;
      c.hop = hop;
      c.dests = ws.dest_pool.acquire();
      c.dests.reserve(hi - lo);
      for (std::size_t g = lo; g < hi; ++g) c.dests.push_back(groups[g].eval);
      c.cost = evaluate_cost(options_.criterion, options_.eu, c.dests);
      plan.candidates.push_back(std::move(c));
    }

    // Record the resources the satisfiable paths of this group rely on.
    // The merge phase replays these records as inverted-index subscriptions
    // (in recorded order) so a later overlapping reservation dispatches an
    // invalidation here; recording and subscribing are kept 1:1.
    ++ws.node_mark_epoch;
    for (std::size_t g = lo; g < hi; ++g) {
      const DestinationEval& eval = groups[g].eval;
      if (!eval.sat) continue;
      const MachineId dest =
          it.requests[static_cast<std::size_t>(eval.k)].destination;
      plan.tree.path_to_into(dest, ws.path_scratch);
      for (const TreeEdge& edge : ws.path_scratch) {
        if (ws.node_mark[edge.to.index()] == ws.node_mark_epoch) continue;
        ws.node_mark[edge.to.index()] = ws.node_mark_epoch;
        const Interval busy{edge.start, edge.arrival};
        plan.used_links.emplace_back(edge.link, busy);
        // What can_hold checked for this node: the full hold window for a new
        // copy, or only the extension when an (earlier-scheduled) hold exists.
        const std::optional<SimTime> existing = state_.hold_begin(item, edge.to);
        if (existing.has_value()) {
          if (*existing > edge.start) {
            plan.used_storage.emplace_back(edge.to, Interval{edge.start, *existing});
          }
        } else {
          plan.used_storage.emplace_back(
              edge.to, Interval{edge.start, state_.hold_end(item, edge.to)});
        }
      }
    }
    lo = hi;
  }

  // Rescore the plan's own best under the global candidate order. The merge
  // phase enters it into the tournament; plans that stay clean do no
  // per-round scoring work at all.
  for (std::size_t c = 0; c < plan.candidates.size(); ++c) {
    if (plan.best == kNoBest ||
        candidate_less(plan.candidates[c], plan.candidates[plan.best])) {
      plan.best = c;
    }
  }
}

void StagingEngine::push_best(std::size_t plan_index) {
  const ItemPlan& plan = plans_[plan_index];
  const Candidate& c = plan.candidates[plan.best];
  best_heap_.push_back(BestEntry{c.cost, c.item.value(), c.hop.to.value(),
                                 c.dests.empty() ? -1 : c.dests.front().k,
                                 plan.generation});
  std::push_heap(best_heap_.begin(), best_heap_.end(), best_entry_after);
}

std::optional<Candidate> StagingEngine::best_candidate() {
  if (guard_tripped_) return std::nullopt;
  refresh_plans();
  // Lazy tournament: pop stale snapshots (plan rebuilt or retired since the
  // push) until the top is live. A live top is the plan's current best, and
  // every live plan with candidates has a live entry, so it is the global
  // minimum under candidate_less.
  const Candidate* best = nullptr;
  while (!best_heap_.empty()) {
    const BestEntry& top = best_heap_.front();
    const ItemPlan& plan = plans_[static_cast<std::size_t>(top.item)];
    if (top.generation == plan.generation && !plan.exhausted &&
        plan.best != kNoBest) {
      best = &plan.candidates[plan.best];
      break;
    }
    std::pop_heap(best_heap_.begin(), best_heap_.end(), best_entry_after);
    best_heap_.pop_back();
  }
  if (trace_ != nullptr) {
    auto event = trace_->event("round");
    event.field("iter", iterations_)
        .field("candidates", candidate_total_)
        .field("pending_requests", tracker_.pending_count())
        .field("cache_hits", last_round_cache_hits_);
    if (best != nullptr) {
      event.field("best_item", best->item.value())
          .field("best_cost", best->cost)
          .field("best_hop_to", best->hop.to.value());
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::vector<Candidate> StagingEngine::all_candidates() {
  refresh_plans();
  std::vector<Candidate> all;
  all.reserve(candidate_total_);
  for (const ItemPlan& plan : plans_) {
    if (plan.exhausted) continue;
    all.insert(all.end(), plan.candidates.begin(), plan.candidates.end());
  }
  return all;
}

std::size_t StagingEngine::candidate_count() {
  refresh_plans();
  return candidate_total_;
}

AppliedTransfer StagingEngine::commit_edge(ItemId item, const TreeEdge& edge) {
  const std::size_t pending_before =
      (instr_ != nullptr || trace_ != nullptr) ? tracker_.pending_count() : 0;
  const AppliedTransfer applied = state_.apply_transfer(item, edge.link, edge.start);
  DS_ASSERT_MSG(applied.arrival == edge.arrival,
                "committed transfer deviates from the planned tree edge");
  schedule_.add(
      CommStep{item, edge.from, edge.to, edge.link, edge.start, applied.arrival});
  if (lifecycle_ != nullptr) {
    // Emit request_satisfied before note_arrival mutates the pending set:
    // exactly the requests of this item at the receiving machine whose
    // deadline the arrival meets (note_arrival's own resolution rule).
    const DataItem& it = scenario_->item(item);
    for (const std::int32_t k : tracker_.pending_of(item)) {
      const Request& request = it.requests[static_cast<std::size_t>(k)];
      if (request.destination != edge.to || applied.arrival > request.deadline) {
        continue;
      }
      Lifecycle::RequestState& st =
          lifecycle_->requests[item.index()][static_cast<std::size_t>(k)];
      st.status = Lifecycle::Status::kSatisfied;
      st.ever_feasible = true;
      trace_->event("request_satisfied")
          .field("iter", iterations_)
          .field("item", item.value())
          .field("k", k)
          .field("dest", edge.to.value())
          .field("arrival_usec", applied.arrival.usec())
          .field("slack_usec", (request.deadline - applied.arrival).usec());
    }
  }
  tracker_.note_arrival(item, edge.to, applied.arrival);
  if (instr_ != nullptr || trace_ != nullptr) {
    const std::size_t satisfied = pending_before - tracker_.pending_count();
    if (instr_ != nullptr) {
      instr_->steps_committed.inc();
      instr_->requests_satisfied.inc(satisfied);
    }
    if (trace_ != nullptr) {
      trace_->event("commit")
          .field("iter", iterations_)
          .field("item", item.value())
          .field("from", edge.from.value())
          .field("to", edge.to.value())
          .field("link", edge.link.value())
          .field("start_usec", edge.start.usec())
          .field("arrival_usec", applied.arrival.usec())
          .field("satisfied", satisfied);
    }
  }
  return applied;
}

void StagingEngine::apply_hop(const Candidate& candidate) {
  DS_ASSERT_MSG(!plans_[candidate.item.index()].dirty,
                "candidate applied after its plan was invalidated");
  const AppliedTransfer applied = commit_edge(candidate.item, candidate.hop);
  invalidate(candidate.item, std::span(&applied, 1));
  count_iteration();
  launch_speculative_refresh();
}

void StagingEngine::apply_full_path_one(const Candidate& candidate) {
  ItemPlan& plan = plans_[candidate.item.index()];
  DS_ASSERT_MSG(!plan.dirty, "candidate applied after its plan was invalidated");

  // Pick the destination to complete: the candidate's own for per-destination
  // criteria; otherwise the most urgent satisfiable one of the group.
  const DestinationEval* chosen = nullptr;
  for (const DestinationEval& eval : candidate.dests) {
    if (!eval.sat) continue;
    if (chosen == nullptr || eval.slack_seconds < chosen->slack_seconds ||
        (eval.slack_seconds == chosen->slack_seconds && eval.k < chosen->k)) {
      chosen = &eval;
    }
  }
  DS_ASSERT_MSG(chosen != nullptr, "candidate without satisfiable destination");

  const MachineId dest = scenario_->item(candidate.item)
                             .requests[static_cast<std::size_t>(chosen->k)]
                             .destination;
  plan.tree.path_to_into(dest, commit_path_scratch_);
  applied_scratch_.clear();
  for (const TreeEdge& edge : commit_path_scratch_) {
    applied_scratch_.push_back(commit_edge(candidate.item, edge));
  }
  invalidate(candidate.item, applied_scratch_);
  count_iteration();
  launch_speculative_refresh();
}

void StagingEngine::apply_full_path_all(const Candidate& candidate) {
  ItemPlan& plan = plans_[candidate.item.index()];
  DS_ASSERT_MSG(!plan.dirty, "candidate applied after its plan was invalidated");

  // Union of the tree paths to every satisfiable destination of the group;
  // each machine has a unique parent edge, so dedupe by edge target.
  ++node_mark_epoch_;
  std::vector<TreeEdge>& edges = commit_edges_scratch_;
  edges.clear();
  for (const DestinationEval& eval : candidate.dests) {
    if (!eval.sat) continue;
    const MachineId dest = scenario_->item(candidate.item)
                               .requests[static_cast<std::size_t>(eval.k)]
                               .destination;
    plan.tree.path_to_into(dest, commit_path_scratch_);
    for (const TreeEdge& edge : commit_path_scratch_) {
      if (node_mark_[edge.to.index()] == node_mark_epoch_) continue;
      node_mark_[edge.to.index()] = node_mark_epoch_;
      edges.push_back(edge);
    }
  }
  DS_ASSERT_MSG(!edges.empty(), "candidate without satisfiable destination");

  // A parent's arrival strictly precedes its children's arrivals, so sorting
  // by arrival yields a valid commit order (senders hold copies in time).
  std::sort(edges.begin(), edges.end(), [](const TreeEdge& a, const TreeEdge& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.to < b.to;
  });

  applied_scratch_.clear();
  applied_scratch_.reserve(edges.size());
  for (const TreeEdge& edge : edges) {
    applied_scratch_.push_back(commit_edge(candidate.item, edge));
  }
  invalidate(candidate.item, applied_scratch_);
  count_iteration();
  launch_speculative_refresh();
}

void StagingEngine::invalidate(ItemId scheduled_item,
                               std::span<const AppliedTransfer> applied) {
  // The scheduled item's sources, pending set and resources all changed.
  {
    ItemPlan& self = plans_[scheduled_item.index()];
    if (!self.dirty) {
      self.dirty = true;
      if (lifecycle_ != nullptr) {
        // Self-attribution is real: committing one destination of an item can
        // consume resources its other pending destinations relied on.
        self.last_invalidated_by = scheduled_item.value();
      }
      dirty_queue_.push_back(scheduled_item.index());
    }
    if (instr_ != nullptr) instr_->invalidations_self.inc();
  }

  // Dispatch each applied transfer through the inverted index: only plans
  // subscribed to the touched link/storage are examined, instead of every
  // plan's whole resource list. Per plan, the first conflicting (transfer,
  // link-before-storage) pair wins — the same cause the old full scan
  // assigned — because a dirtied plan is skipped by later dispatches.
  const bool record = instr_ != nullptr || trace_ != nullptr;
  invalidation_scratch_.clear();
  std::size_t examined = 0;
  for (const AppliedTransfer& t : applied) {
    examined += index_.dispatch_link(
        t.link, t.link_busy, scheduled_item.index(),
        [&](std::size_t p, const Interval&) {
          ItemPlan& plan = plans_[p];
          if (plan.dirty || plan.exhausted) return;
          plan.dirty = true;
          if (lifecycle_ != nullptr) {
            plan.last_invalidated_by = scheduled_item.value();
          }
          dirty_queue_.push_back(p);
          if (record) {
            invalidation_scratch_.emplace_back(p, InvalidationCause::kLink);
          }
        });
    if (t.storage_interval.has_value()) {
      examined += index_.dispatch_storage(
          t.storage_machine, *t.storage_interval, scheduled_item.index(),
          [&](std::size_t p, const Interval& hold) {
            ItemPlan& plan = plans_[p];
            if (plan.dirty || plan.exhausted) return;
            // Storage conflict: new usage overlaps a hold window this plan
            // checked and the hold no longer fits. (If it still fits, the
            // cached tree's capacity decisions are unchanged — alternatives
            // only got worse.)
            const std::int64_t bytes = scenario_->items[p].size_bytes;
            if (state_.storage(t.storage_machine).fits(bytes, hold)) return;
            plan.dirty = true;
            if (lifecycle_ != nullptr) {
              plan.last_invalidated_by = scheduled_item.value();
            }
            dirty_queue_.push_back(p);
            if (record) {
              invalidation_scratch_.emplace_back(p, InvalidationCause::kStorage);
            }
          });
    }
  }

  // The dirty flags are final for this commit: deliver the previous
  // speculation batch's verdicts (re-dirtied plans aborted, the rest kept).
  resolve_spec_batch();

  if (!record) return;
  if (instr_ != nullptr) {
    instr_->invalidations_checked.inc(examined);
    // What a full scan of every live plan's resource list would have walked
    // for this commit — the counterfactual the index avoids.
    instr_->invalidations_scan_equiv.inc(index_.live_entries());
  }
  // Emit in ascending plan order, matching the order the old full scan
  // produced (dispatch discovers plans in posting-list order).
  std::sort(invalidation_scratch_.begin(), invalidation_scratch_.end());
  for (const auto& [p, cause] : invalidation_scratch_) {
    if (instr_ != nullptr) {
      (cause == InvalidationCause::kLink ? instr_->invalidations_link
                                         : instr_->invalidations_storage)
          .inc();
    }
    if (trace_ != nullptr) {
      trace_->event("invalidate")
          .field("iter", iterations_)
          .field("item", static_cast<std::int64_t>(p))
          .field("by_item", scheduled_item.value())
          .field("cause", cause == InvalidationCause::kLink ? "link" : "storage");
    }
  }
}

void StagingEngine::count_iteration() {
  ++iterations_;
  if (instr_ != nullptr) instr_->iterations.inc();
  if (iterations_ >= max_iterations_) {
    guard_tripped_ = true;
    if (instr_ != nullptr) instr_->guard_trips.inc();
    if (trace_ != nullptr) {
      trace_->event("guard_trip").field("iter", iterations_);
    }
    log_warn("staging engine iteration guard tripped; stopping the loop");
  }
}

const RouteTree& StagingEngine::plan_tree(ItemId item) {
  // A speculative batch may cover this plan (its dirty flag is already
  // cleared); merge it first so the tree below is the committed one.
  complete_pending_refresh();
  ItemPlan& plan = plans_[item.index()];
  if (plan.dirty || options_.paranoid) recompute_plan_now(item);
  return plan.tree;
}

void StagingEngine::observe_finish() {
  using Status = Lifecycle::Status;
  std::size_t satisfied = 0;
  std::size_t dropped = 0;
  // Loss-reason tallies (lifecycle tracing only): indexed to match `kinds`.
  std::size_t lost_by_reason[4] = {0, 0, 0, 0};
  const OutcomeMatrix& outcomes = tracker_.outcomes();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    for (std::size_t k = 0; k < outcomes[i].size(); ++k) {
      const RequestOutcome& outcome = outcomes[i][k];
      outcome.satisfied ? ++satisfied : ++dropped;
      if (instr_ != nullptr && outcome.satisfied) {
        const Request& request = scenario_->items[i].requests[k];
        instr_->satisfied_slack_seconds->observe(
            (request.deadline - outcome.arrival).as_seconds());
      }
      if (trace_ != nullptr) {
        const Request& request = scenario_->items[i].requests[k];
        auto event = trace_->event("request");
        event.field("item", static_cast<std::int64_t>(i))
            .field("k", static_cast<std::int64_t>(k))
            .field("dest", request.destination.value())
            .field("deadline_usec", request.deadline.usec())
            .field("priority", static_cast<std::int64_t>(request.priority))
            .field("satisfied", outcome.satisfied);
        if (!outcome.arrival.is_infinite()) {
          event.field("arrival_usec", outcome.arrival.usec());
        }
        if (!outcome.satisfied && lifecycle_ != nullptr) {
          // Final loss reason from the last classification. A request still
          // marked feasible (or never classified) was abandoned mid-loop —
          // the guard tripped or the caller stopped early.
          const Lifecycle::RequestState& st = lifecycle_->requests[i][k];
          const char* reason = nullptr;
          std::size_t reason_index = 0;
          switch (st.status) {
            case Status::kNoRoute:
              reason = "no_feasible_route";
              reason_index = 0;
              break;
            case Status::kDeadlineInfeasible:
              reason = st.ever_feasible ? "lost_tournament" : "deadline_infeasible";
              reason_index = st.ever_feasible ? 2 : 1;
              break;
            case Status::kUnknown:
            case Status::kFeasible:
            case Status::kSatisfied:
              reason = guard_tripped_ ? "guard_tripped" : "not_scheduled";
              reason_index = 3;
              break;
          }
          ++lost_by_reason[reason_index];
          event.field("reason", reason);
          if (st.lost_to >= 0) event.field("lost_to", st.lost_to);
        }
      }
    }
  }
  if (instr_ != nullptr && options_.observer != nullptr &&
      options_.observer->metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.observer->metrics;
    m.counter("engine.requests_satisfied_final").inc(satisfied);
    m.counter("engine.requests_dropped").inc(dropped);
    m.counter("engine.runs").inc();
    if (lifecycle_ != nullptr) {
      m.counter("engine.lost_no_feasible_route").inc(lost_by_reason[0]);
      m.counter("engine.lost_deadline_infeasible").inc(lost_by_reason[1]);
      m.counter("engine.lost_tournament").inc(lost_by_reason[2]);
      m.counter("engine.lost_abandoned").inc(lost_by_reason[3]);
    }
  }
  if (trace_ != nullptr) {
    trace_->event("finish")
        .field("iterations", iterations_)
        .field("dijkstra_runs", dijkstra_runs_)
        .field("steps", schedule_.size())
        .field("satisfied", satisfied)
        .field("dropped", dropped)
        .field("guard_tripped", guard_tripped_);
  }
}

StagingResult StagingEngine::finish() {
  // A caller that stops mid-loop may leave a speculative batch in flight.
  // Discard it unmerged: the serial path would not have refreshed either, so
  // counters and trace stay serial-equivalent.
  abandon_refresh_batch();
  if (instr_ != nullptr || trace_ != nullptr) observe_finish();
  StagingResult result;
  result.schedule = std::move(schedule_);
  result.outcomes = tracker_.take_outcomes();
  result.dijkstra_runs = dijkstra_runs_;
  result.iterations = iterations_;
  return result;
}

}  // namespace datastage
