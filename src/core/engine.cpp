#include "core/engine.hpp"

#include <algorithm>
#include <map>

#include "obs/observer.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace datastage {

/// Counter handles resolved once at engine construction. Grouped here (not
/// in the header) so engine.hpp only needs forward declarations of obs.
struct StagingEngine::Instr {
  obs::Counter iterations;
  obs::Counter rounds;              ///< candidate scoring rounds (refreshes)
  obs::Counter tree_recomputes;     ///< Dijkstra reruns (cache miss/dirty)
  obs::Counter cache_hits;          ///< clean cached trees reused in a round
  obs::Counter candidates;          ///< candidates generated and scored
  obs::Counter steps_committed;     ///< tree edges committed to the network
  obs::Counter requests_satisfied;  ///< requests resolved by a committed edge
  obs::Counter invalidations_link;
  obs::Counter invalidations_storage;
  obs::Counter invalidations_self;  ///< scheduled item's own plan dirtied
  obs::Counter dijkstra_pops;
  obs::Counter dijkstra_relaxations;
  obs::Counter dijkstra_capacity_rejections;
  obs::Counter guard_trips;

  explicit Instr(obs::MetricsRegistry& m)
      : iterations(m.counter("engine.iterations")),
        rounds(m.counter("engine.scoring_rounds")),
        tree_recomputes(m.counter("engine.tree_recomputes")),
        cache_hits(m.counter("engine.cache_hits")),
        candidates(m.counter("engine.candidates_scored")),
        steps_committed(m.counter("engine.steps_committed")),
        requests_satisfied(m.counter("engine.requests_satisfied")),
        invalidations_link(m.counter("engine.invalidations_link")),
        invalidations_storage(m.counter("engine.invalidations_storage")),
        invalidations_self(m.counter("engine.invalidations_self")),
        dijkstra_pops(m.counter("dijkstra.heap_pops")),
        dijkstra_relaxations(m.counter("dijkstra.relaxations")),
        dijkstra_capacity_rejections(m.counter("dijkstra.capacity_rejections")),
        guard_trips(m.counter("engine.guard_trips")) {}
};

namespace {

/// Deterministic total order on candidates: cost first, then stable
/// structural tie-breakers so equal-cost runs are reproducible.
bool candidate_less(const Candidate& a, const Candidate& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  if (a.item != b.item) return a.item < b.item;
  if (a.hop.to != b.hop.to) return a.hop.to < b.hop.to;
  const std::int32_t ka = a.dests.empty() ? -1 : a.dests.front().k;
  const std::int32_t kb = b.dests.empty() ? -1 : b.dests.front().k;
  return ka < kb;
}

}  // namespace

StagingEngine::StagingEngine(const Scenario& scenario, EngineOptions options)
    : scenario_(&scenario),
      options_(std::move(options)),
      topology_(scenario),
      state_(scenario),
      tracker_(scenario) {
  plans_.resize(scenario.item_count());
  max_iterations_ = options_.max_iterations != 0
                        ? options_.max_iterations
                        : 1000 + 200 * scenario.request_count();
  if (options_.observer != nullptr) {
    trace_ = options_.observer->trace;
    if (options_.observer->metrics != nullptr) {
      instr_ = std::make_unique<Instr>(*options_.observer->metrics);
      state_.attach_metrics(*options_.observer->metrics);
    }
  }
}

StagingEngine::~StagingEngine() = default;

void StagingEngine::refresh_all() {
  if (instr_ != nullptr) instr_->rounds.inc();
  for (std::size_t i = 0; i < plans_.size(); ++i) {
    const ItemId item(static_cast<std::int32_t>(i));
    ItemPlan& plan = plans_[i];
    if (!tracker_.any_pending(item)) {
      plan.exhausted = true;
      plan.candidates.clear();
      continue;
    }
    plan.exhausted = false;
    if (plan.dirty || options_.paranoid) {
      recompute_plan(item);
    } else {
      // The cached tree is provably identical to a recompute (see the header
      // note); reusing it is the cache hit every perf PR wants counted.
      if (instr_ != nullptr) instr_->cache_hits.inc();
      if (trace_ != nullptr) {
        trace_->event("cache_hit")
            .field("iter", iterations_)
            .field("item", item.value());
      }
    }
  }
}

void StagingEngine::recompute_plan(ItemId item) {
  ItemPlan& plan = plans_[item.index()];
  DijkstraOptions dopt;
  dopt.prune_after = tracker_.latest_pending_deadline(item);
  DijkstraStats stats;
  plan.tree = compute_route_tree(state_, topology_, item, dopt,
                                 instr_ != nullptr ? &stats : nullptr);
  ++dijkstra_runs_;
  if (instr_ != nullptr) {
    instr_->tree_recomputes.inc();
    instr_->dijkstra_pops.inc(stats.pops);
    instr_->dijkstra_relaxations.inc(stats.relaxations);
    instr_->dijkstra_capacity_rejections.inc(stats.capacity_rejections);
  }
  if (trace_ != nullptr) {
    trace_->event("recompute")
        .field("iter", iterations_)
        .field("item", item.value())
        .field("pending", tracker_.pending_of(item).size())
        .field("prune_after_usec", dopt.prune_after.usec());
  }
  build_candidates(item, plan);
  plan.dirty = false;
}

void StagingEngine::build_candidates(ItemId item, ItemPlan& plan) {
  plan.candidates.clear();
  plan.used_links.clear();
  plan.used_storage.clear();

  const DataItem& it = scenario_->item(item);

  // Evaluate every pending destination against the fresh tree and group the
  // reachable ones by the first hop of their path (the paper's Drq[i,r]).
  std::map<std::int32_t, std::vector<DestinationEval>> groups;  // key: r = hop.to
  std::map<std::int32_t, TreeEdge> group_hop;

  for (const std::int32_t k : tracker_.pending_of(item)) {
    const Request& request = it.requests[static_cast<std::size_t>(k)];
    const MachineId dest = request.destination;
    if (!plan.tree.reached(dest)) continue;

    DestinationEval eval;
    eval.k = k;
    eval.weight = options_.weighting.weight(request.priority);
    eval.deadline_seconds = request.deadline.seconds();

    if (!plan.tree.has_parent(dest)) {
      // The destination already holds a (late) copy: a pending request with a
      // root label means the copy arrived past the deadline. No transfer is
      // proposed for it; it contributes nothing.
      DS_ASSERT_MSG(plan.tree.arrival(dest) > request.deadline,
                    "rootless pending destination implies a late arrival");
      continue;
    }

    const SimTime at = plan.tree.arrival(dest);
    eval.sat = at <= request.deadline;
    eval.slack_seconds = eval.sat ? (request.deadline - at).as_seconds() : 0.0;

    const TreeEdge& hop = plan.tree.first_hop(dest);
    groups[hop.to.value()].push_back(eval);
    group_hop.emplace(hop.to.value(), hop);
  }

  const bool per_dest = is_per_destination(options_.criterion);
  for (auto& [r, evals] : groups) {
    const TreeEdge& hop = group_hop.at(r);
    const bool any_sat =
        std::any_of(evals.begin(), evals.end(), [](const DestinationEval& e) {
          return e.sat;
        });
    if (!any_sat) continue;  // Sat == 0 everywhere: no resources (§4.8)

    if (per_dest) {
      for (const DestinationEval& eval : evals) {
        if (!eval.sat) continue;
        Candidate c;
        c.item = item;
        c.hop = hop;
        c.dests = {eval};
        c.cost = evaluate_cost(options_.criterion, options_.eu, c.dests);
        plan.candidates.push_back(std::move(c));
      }
    } else {
      Candidate c;
      c.item = item;
      c.hop = hop;
      c.dests = evals;
      c.cost = evaluate_cost(options_.criterion, options_.eu, c.dests);
      plan.candidates.push_back(std::move(c));
    }

    // Record the resources the satisfiable paths of this group rely on; a
    // later reservation overlapping them forces a recompute.
    std::vector<bool> node_seen(scenario_->machine_count(), false);
    for (const DestinationEval& eval : evals) {
      if (!eval.sat) continue;
      const MachineId dest =
          it.requests[static_cast<std::size_t>(eval.k)].destination;
      for (const TreeEdge& edge : plan.tree.path_to(dest)) {
        if (node_seen[edge.to.index()]) continue;
        node_seen[edge.to.index()] = true;
        plan.used_links.emplace_back(edge.link, Interval{edge.start, edge.arrival});
        // What can_hold checked for this node: the full hold window for a new
        // copy, or only the extension when an (earlier-scheduled) hold exists.
        const std::optional<SimTime> existing = state_.hold_begin(item, edge.to);
        if (existing.has_value()) {
          if (*existing > edge.start) {
            plan.used_storage.emplace_back(edge.to, Interval{edge.start, *existing});
          }
        } else {
          plan.used_storage.emplace_back(
              edge.to, Interval{edge.start, state_.hold_end(item, edge.to)});
        }
      }
    }
  }

  if (instr_ != nullptr) instr_->candidates.inc(plan.candidates.size());
}

std::optional<Candidate> StagingEngine::best_candidate() {
  if (guard_tripped_) return std::nullopt;
  refresh_all();
  const Candidate* best = nullptr;
  std::size_t total = 0;
  for (const ItemPlan& plan : plans_) {
    if (plan.exhausted) continue;
    total += plan.candidates.size();
    for (const Candidate& c : plan.candidates) {
      if (best == nullptr || candidate_less(c, *best)) best = &c;
    }
  }
  if (trace_ != nullptr) {
    auto event = trace_->event("round");
    event.field("iter", iterations_)
        .field("candidates", total)
        .field("pending_requests", tracker_.pending_count());
    if (best != nullptr) {
      event.field("best_item", best->item.value())
          .field("best_cost", best->cost)
          .field("best_hop_to", best->hop.to.value());
    }
  }
  if (best == nullptr) return std::nullopt;
  return *best;
}

std::vector<Candidate> StagingEngine::all_candidates() {
  refresh_all();
  std::vector<Candidate> all;
  for (const ItemPlan& plan : plans_) {
    if (plan.exhausted) continue;
    all.insert(all.end(), plan.candidates.begin(), plan.candidates.end());
  }
  return all;
}

AppliedTransfer StagingEngine::commit_edge(ItemId item, const TreeEdge& edge) {
  const std::size_t pending_before =
      (instr_ != nullptr || trace_ != nullptr) ? tracker_.pending_count() : 0;
  const AppliedTransfer applied = state_.apply_transfer(item, edge.link, edge.start);
  DS_ASSERT_MSG(applied.arrival == edge.arrival,
                "committed transfer deviates from the planned tree edge");
  schedule_.add(
      CommStep{item, edge.from, edge.to, edge.link, edge.start, applied.arrival});
  tracker_.note_arrival(item, edge.to, applied.arrival);
  if (instr_ != nullptr || trace_ != nullptr) {
    const std::size_t satisfied = pending_before - tracker_.pending_count();
    if (instr_ != nullptr) {
      instr_->steps_committed.inc();
      instr_->requests_satisfied.inc(satisfied);
    }
    if (trace_ != nullptr) {
      trace_->event("commit")
          .field("iter", iterations_)
          .field("item", item.value())
          .field("from", edge.from.value())
          .field("to", edge.to.value())
          .field("link", edge.link.value())
          .field("start_usec", edge.start.usec())
          .field("arrival_usec", applied.arrival.usec())
          .field("satisfied", satisfied);
    }
  }
  return applied;
}

void StagingEngine::apply_hop(const Candidate& candidate) {
  DS_ASSERT_MSG(!plans_[candidate.item.index()].dirty,
                "candidate applied after its plan was invalidated");
  const AppliedTransfer applied = commit_edge(candidate.item, candidate.hop);
  invalidate(candidate.item, std::span(&applied, 1));
  count_iteration();
}

void StagingEngine::apply_full_path_one(const Candidate& candidate) {
  ItemPlan& plan = plans_[candidate.item.index()];
  DS_ASSERT_MSG(!plan.dirty, "candidate applied after its plan was invalidated");

  // Pick the destination to complete: the candidate's own for per-destination
  // criteria; otherwise the most urgent satisfiable one of the group.
  const DestinationEval* chosen = nullptr;
  for (const DestinationEval& eval : candidate.dests) {
    if (!eval.sat) continue;
    if (chosen == nullptr || eval.slack_seconds < chosen->slack_seconds ||
        (eval.slack_seconds == chosen->slack_seconds && eval.k < chosen->k)) {
      chosen = &eval;
    }
  }
  DS_ASSERT_MSG(chosen != nullptr, "candidate without satisfiable destination");

  const MachineId dest = scenario_->item(candidate.item)
                             .requests[static_cast<std::size_t>(chosen->k)]
                             .destination;
  std::vector<AppliedTransfer> applied;
  for (const TreeEdge& edge : plan.tree.path_to(dest)) {
    applied.push_back(commit_edge(candidate.item, edge));
  }
  invalidate(candidate.item, applied);
  count_iteration();
}

void StagingEngine::apply_full_path_all(const Candidate& candidate) {
  ItemPlan& plan = plans_[candidate.item.index()];
  DS_ASSERT_MSG(!plan.dirty, "candidate applied after its plan was invalidated");

  // Union of the tree paths to every satisfiable destination of the group;
  // each machine has a unique parent edge, so dedupe by edge target.
  std::vector<bool> node_seen(scenario_->machine_count(), false);
  std::vector<TreeEdge> edges;
  for (const DestinationEval& eval : candidate.dests) {
    if (!eval.sat) continue;
    const MachineId dest = scenario_->item(candidate.item)
                               .requests[static_cast<std::size_t>(eval.k)]
                               .destination;
    for (const TreeEdge& edge : plan.tree.path_to(dest)) {
      if (node_seen[edge.to.index()]) continue;
      node_seen[edge.to.index()] = true;
      edges.push_back(edge);
    }
  }
  DS_ASSERT_MSG(!edges.empty(), "candidate without satisfiable destination");

  // A parent's arrival strictly precedes its children's arrivals, so sorting
  // by arrival yields a valid commit order (senders hold copies in time).
  std::sort(edges.begin(), edges.end(), [](const TreeEdge& a, const TreeEdge& b) {
    if (a.arrival != b.arrival) return a.arrival < b.arrival;
    return a.to < b.to;
  });

  std::vector<AppliedTransfer> applied;
  applied.reserve(edges.size());
  for (const TreeEdge& edge : edges) {
    applied.push_back(commit_edge(candidate.item, edge));
  }
  invalidate(candidate.item, applied);
  count_iteration();
}

void StagingEngine::invalidate(ItemId scheduled_item,
                               std::span<const AppliedTransfer> applied) {
  // The scheduled item's sources, pending set and resources all changed.
  plans_[scheduled_item.index()].dirty = true;
  if (instr_ != nullptr) instr_->invalidations_self.inc();

  for (std::size_t i = 0; i < plans_.size(); ++i) {
    if (i == scheduled_item.index()) continue;
    ItemPlan& plan = plans_[i];
    if (plan.dirty || plan.exhausted) continue;
    const std::int64_t bytes = scenario_->items[i].size_bytes;

    enum class Cause { kNone, kLink, kStorage };
    Cause cause = Cause::kNone;
    for (const AppliedTransfer& t : applied) {
      // Link conflict: the new reservation overlaps a link interval one of
      // this plan's satisfiable paths occupies.
      for (const auto& [link, interval] : plan.used_links) {
        if (link == t.link && interval.overlaps(t.link_busy)) {
          cause = Cause::kLink;
          break;
        }
      }
      if (cause != Cause::kNone) break;
      // Storage conflict: new usage overlaps a hold window this plan checked
      // and the hold no longer fits. (If it still fits, the cached tree's
      // capacity decisions are unchanged — alternatives only got worse.)
      if (t.storage_interval.has_value()) {
        for (const auto& [machine, hold] : plan.used_storage) {
          if (machine != t.storage_machine) continue;
          if (!hold.overlaps(*t.storage_interval)) continue;
          if (!state_.storage(machine).fits(bytes, hold)) {
            cause = Cause::kStorage;
            break;
          }
        }
      }
      if (cause != Cause::kNone) break;
    }
    if (cause == Cause::kNone) continue;
    plan.dirty = true;
    if (instr_ != nullptr) {
      (cause == Cause::kLink ? instr_->invalidations_link
                             : instr_->invalidations_storage)
          .inc();
    }
    if (trace_ != nullptr) {
      trace_->event("invalidate")
          .field("iter", iterations_)
          .field("item", static_cast<std::int64_t>(i))
          .field("by_item", scheduled_item.value())
          .field("cause", cause == Cause::kLink ? "link" : "storage");
    }
  }
}

void StagingEngine::count_iteration() {
  ++iterations_;
  if (instr_ != nullptr) instr_->iterations.inc();
  if (iterations_ >= max_iterations_) {
    guard_tripped_ = true;
    if (instr_ != nullptr) instr_->guard_trips.inc();
    if (trace_ != nullptr) {
      trace_->event("guard_trip").field("iter", iterations_);
    }
    log_warn("staging engine iteration guard tripped; stopping the loop");
  }
}

const RouteTree& StagingEngine::plan_tree(ItemId item) {
  ItemPlan& plan = plans_[item.index()];
  if (plan.dirty || options_.paranoid) recompute_plan(item);
  return plan.tree;
}

void StagingEngine::observe_finish() {
  std::size_t satisfied = 0;
  std::size_t dropped = 0;
  const OutcomeMatrix& outcomes = tracker_.outcomes();
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    for (std::size_t k = 0; k < outcomes[i].size(); ++k) {
      const RequestOutcome& outcome = outcomes[i][k];
      outcome.satisfied ? ++satisfied : ++dropped;
      if (trace_ != nullptr) {
        const Request& request = scenario_->items[i].requests[k];
        auto event = trace_->event("request");
        event.field("item", static_cast<std::int64_t>(i))
            .field("k", static_cast<std::int64_t>(k))
            .field("dest", request.destination.value())
            .field("deadline_usec", request.deadline.usec())
            .field("priority", static_cast<std::int64_t>(request.priority))
            .field("satisfied", outcome.satisfied);
        if (!outcome.arrival.is_infinite()) {
          event.field("arrival_usec", outcome.arrival.usec());
        }
      }
    }
  }
  if (instr_ != nullptr && options_.observer != nullptr &&
      options_.observer->metrics != nullptr) {
    obs::MetricsRegistry& m = *options_.observer->metrics;
    m.counter("engine.requests_satisfied_final").inc(satisfied);
    m.counter("engine.requests_dropped").inc(dropped);
    m.counter("engine.runs").inc();
  }
  if (trace_ != nullptr) {
    trace_->event("finish")
        .field("iterations", iterations_)
        .field("dijkstra_runs", dijkstra_runs_)
        .field("steps", schedule_.size())
        .field("satisfied", satisfied)
        .field("dropped", dropped)
        .field("guard_tripped", guard_tripped_);
  }
}

StagingResult StagingEngine::finish() {
  if (instr_ != nullptr || trace_ != nullptr) observe_finish();
  StagingResult result;
  result.schedule = std::move(schedule_);
  result.outcomes = tracker_.take_outcomes();
  result.dijkstra_runs = dijkstra_runs_;
  result.iterations = iterations_;
  return result;
}

}  // namespace datastage
