#include "core/registry.hpp"

#include "util/assert.hpp"

namespace datastage {

const char* heuristic_name(HeuristicKind kind) {
  switch (kind) {
    case HeuristicKind::kPartial: return "partial";
    case HeuristicKind::kFullOne: return "full_one";
    case HeuristicKind::kFullAll: return "full_all";
  }
  DS_UNREACHABLE("bad heuristic kind");
}

std::string SchedulerSpec::name() const {
  return std::string(heuristic_name(heuristic)) + "/" + cost_name(criterion);
}

bool is_valid_pair(const SchedulerSpec& spec) {
  if (spec.criterion == CostCriterion::kPriorityOnly) return false;
  if (spec.heuristic == HeuristicKind::kFullAll && is_per_destination(spec.criterion)) {
    return false;  // full_all + C1 "did not make sense" (§6)
  }
  return true;
}

std::vector<SchedulerSpec> pairs_for(HeuristicKind kind) {
  std::vector<SchedulerSpec> pairs;
  for (const CostCriterion criterion :
       {CostCriterion::kC1, CostCriterion::kC2, CostCriterion::kC3,
        CostCriterion::kC4}) {
    const SchedulerSpec spec{kind, criterion};
    if (is_valid_pair(spec)) pairs.push_back(spec);
  }
  return pairs;
}

std::vector<SchedulerSpec> paper_pairs() {
  std::vector<SchedulerSpec> pairs;
  for (const HeuristicKind kind :
       {HeuristicKind::kPartial, HeuristicKind::kFullOne, HeuristicKind::kFullAll}) {
    for (const SchedulerSpec& spec : pairs_for(kind)) pairs.push_back(spec);
  }
  DS_ASSERT_MSG(pairs.size() == 11,
                "paper pair set must list 11 scheduler/criterion pairs");
  return pairs;
}

std::vector<SchedulerSpec> extended_pairs() {
  std::vector<SchedulerSpec> pairs = paper_pairs();
  for (const HeuristicKind kind :
       {HeuristicKind::kPartial, HeuristicKind::kFullOne, HeuristicKind::kFullAll}) {
    pairs.push_back(SchedulerSpec{kind, CostCriterion::kC5});
  }
  return pairs;
}

std::optional<SchedulerSpec> parse_spec(const std::string& name) {
  for (const SchedulerSpec& spec : extended_pairs()) {
    if (spec.name() == name) return spec;
  }
  return std::nullopt;
}

StagingResult run_spec(const SchedulerSpec& spec, const Scenario& scenario,
                       const EngineOptions& base_options) {
  DS_ASSERT_MSG(is_valid_pair(spec), "scheduler pair not admitted by the paper");
  EngineOptions options = base_options;
  options.criterion = spec.criterion;
  switch (spec.heuristic) {
    case HeuristicKind::kPartial: return run_partial_path(scenario, options);
    case HeuristicKind::kFullOne: return run_full_path_one(scenario, options);
    case HeuristicKind::kFullAll: return run_full_path_all(scenario, options);
  }
  DS_UNREACHABLE("bad heuristic kind");
}

CaseResult run_case(const SchedulerSpec& spec, const Scenario& scenario,
                    const EngineOptions& options) {
  CaseResult result;
  result.staging = run_spec(spec, scenario, options);
  result.weighted_value =
      weighted_value(scenario, options.weighting, result.staging.outcomes);
  result.satisfied = satisfied_count(result.staging.outcomes);
  result.by_class = satisfied_by_class(scenario, options.weighting.num_classes(),
                                       result.staging.outcomes);
  return result;
}

}  // namespace datastage
