// The four cost criteria of paper §4.8 (plus the priority-only cost of the
// §5.4 "simplified scheme" baseline).
//
// A cost scores a valid next communication step — transferring Rq[i] from a
// copy holder to the next machine M[r] — from the per-destination
// ingredients:
//   Sat[i,r](j)      1 iff the tree arrival A_T[i,j] meets the deadline
//   Efp[i,r](j)      Sat * W[Priority[i,j]]        (effective priority)
//   Urgency[i,r](j)  -Sat * (Rft[i,j] - A_T[i,j])  (seconds; <= 0, closer to
//                                                   0 means more urgent)
// Lower cost wins.
#pragma once

#include <cstdint>
#include <span>
#include <string>

namespace datastage {

enum class CostCriterion {
  kC1,  ///< per destination: -W_E*Efp - W_U*Urgency
  kC2,  ///< -W_E*ΣEfp - W_U*max(Urgency over satisfiable dests)
  kC3,  ///< Σ Efp/Urgency (independent of W_E, W_U)
  kC4,  ///< -W_E*ΣEfp - W_U*ΣUrgency
  kPriorityOnly,  ///< baseline: -W[priority], per destination (§5.4)
  /// Extension (the §5.4 future-work direction): C3's priority-per-urgency
  /// intent with a one-minute slack floor, so a single near-zero slack can
  /// no longer dominate the sum. E-U independent like C3.
  kC5,
  /// Baseline from the related work (§2): earliest-deadline-first. Ignores
  /// priority and slack; per destination, cost = the absolute deadline.
  kEdf,
};

const char* cost_name(CostCriterion criterion);

/// True for criteria evaluated per individual destination (one candidate per
/// satisfiable request); false for criteria aggregated over Drq[i,r].
bool is_per_destination(CostCriterion criterion);

/// The relative weights W_E (effective priority) and W_U (urgency). The
/// experiments sweep the E-U ratio W_E/W_U on a log10 axis with ±inf ends.
struct EUWeights {
  double we = 1.0;
  double wu = 1.0;

  /// Mid-axis point: W_U = 1, W_E = 10^log10_ratio. Accepts ±infinity, which
  /// map to priority_only() / urgency_only().
  static EUWeights from_log10_ratio(double log10_ratio);
  static EUWeights priority_only() { return EUWeights{1.0, 0.0}; }
  static EUWeights urgency_only() { return EUWeights{0.0, 1.0}; }
};

/// Per-destination evaluation for a candidate step.
struct DestinationEval {
  std::int32_t k = -1;        ///< request index within the item
  bool sat = false;           ///< Sat[i,r](k)
  double weight = 0.0;        ///< W[Priority[i,k]]
  double slack_seconds = 0.0; ///< Rft - A_T, valid when sat
  double deadline_seconds = 0.0;  ///< Rft as absolute time (for EDF)

  double efp() const { return sat ? weight : 0.0; }
  double urgency() const { return sat ? -slack_seconds : 0.0; }
};

double cost_c1(const EUWeights& eu, const DestinationEval& dest);
double cost_c2(const EUWeights& eu, std::span<const DestinationEval> dests);
double cost_c3(std::span<const DestinationEval> dests);
double cost_c4(const EUWeights& eu, std::span<const DestinationEval> dests);
double cost_priority_only(const DestinationEval& dest);
double cost_c5(std::span<const DestinationEval> dests);
double cost_edf(const DestinationEval& dest);

/// Dispatches to the criterion. For per-destination criteria `dests` must
/// contain exactly the one destination being scored.
double evaluate_cost(CostCriterion criterion, const EUWeights& eu,
                     std::span<const DestinationEval> dests);

}  // namespace datastage
