// Communication schedules: the output of every scheduling heuristic.
//
// A schedule S_h is an ordered list of communication steps; each step moves
// one data item over one virtual link at a fixed time. Schedules are plain
// data — they can be rendered, serialized, diffed and (crucially) replayed by
// the independent simulator in src/sim to verify that every resource
// constraint holds and to recompute the satisfied request set.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "model/scenario.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace datastage {

/// One scheduled transfer: `item` moves from `from` to `to` over `link`,
/// occupying the link during [start, arrival).
struct CommStep {
  ItemId item;
  MachineId from;
  MachineId to;
  VirtLinkId link;
  SimTime start;
  SimTime arrival;

  friend bool operator==(const CommStep&, const CommStep&) = default;
};

class Schedule {
 public:
  void add(const CommStep& step) { steps_.push_back(step); }

  std::span<const CommStep> steps() const { return steps_; }
  std::size_t size() const { return steps_.size(); }
  bool empty() const { return steps_.empty(); }

  /// Total time the schedule keeps links busy.
  SimDuration total_link_time() const;

  /// One line per step, sorted by start time (for traces and examples).
  std::string to_string(const Scenario& scenario) const;

 private:
  std::vector<CommStep> steps_;
};

}  // namespace datastage
