#include "core/cost.hpp"

#include <cmath>
#include <limits>

#include "util/assert.hpp"

namespace datastage {
namespace {

// Guard for C3's division: a request with zero slack would divide by zero
// (the paper itself notes C3's scaling pathology, §5.4). One microsecond of
// slack is the model's resolution.
constexpr double kMinUrgencyMagnitude = 1e-6;

// C5's slack floor: one minute. Slacks below it are treated as equally
// urgent, so the ratio stays on the scale of the other destinations' terms.
constexpr double kC5SlackFloorSeconds = 60.0;

}  // namespace

const char* cost_name(CostCriterion criterion) {
  switch (criterion) {
    case CostCriterion::kC1: return "C1";
    case CostCriterion::kC2: return "C2";
    case CostCriterion::kC3: return "C3";
    case CostCriterion::kC4: return "C4";
    case CostCriterion::kPriorityOnly: return "priority_only";
    case CostCriterion::kC5: return "C5";
    case CostCriterion::kEdf: return "edf";
  }
  DS_UNREACHABLE("bad criterion");
}

bool is_per_destination(CostCriterion criterion) {
  return criterion == CostCriterion::kC1 ||
         criterion == CostCriterion::kPriorityOnly ||
         criterion == CostCriterion::kEdf;
}

EUWeights EUWeights::from_log10_ratio(double log10_ratio) {
  if (std::isinf(log10_ratio)) {
    return log10_ratio > 0 ? priority_only() : urgency_only();
  }
  return EUWeights{std::pow(10.0, log10_ratio), 1.0};
}

double cost_c1(const EUWeights& eu, const DestinationEval& dest) {
  return -eu.we * dest.efp() - eu.wu * dest.urgency();
}

double cost_c2(const EUWeights& eu, std::span<const DestinationEval> dests) {
  double efp_sum = 0.0;
  // Most urgent satisfiable request: the maximum urgency (closest to zero).
  // Unsatisfiable destinations contribute nothing (paper §4.8 intent).
  double max_urgency = -std::numeric_limits<double>::infinity();
  bool any_sat = false;
  for (const DestinationEval& d : dests) {
    efp_sum += d.efp();
    if (d.sat) {
      any_sat = true;
      max_urgency = std::max(max_urgency, d.urgency());
    }
  }
  if (!any_sat) max_urgency = 0.0;
  return -eu.we * efp_sum - eu.wu * max_urgency;
}

double cost_c3(std::span<const DestinationEval> dests) {
  double total = 0.0;
  for (const DestinationEval& d : dests) {
    if (!d.sat) continue;  // sums over destinations with satisfiable requests
    const double urgency = std::min(d.urgency(), -kMinUrgencyMagnitude);
    total += d.efp() / urgency;
  }
  return total;
}

double cost_c4(const EUWeights& eu, std::span<const DestinationEval> dests) {
  double efp_sum = 0.0;
  double urgency_sum = 0.0;
  for (const DestinationEval& d : dests) {
    efp_sum += d.efp();
    urgency_sum += d.urgency();
  }
  return -eu.we * efp_sum - eu.wu * urgency_sum;
}

double cost_priority_only(const DestinationEval& dest) { return -dest.efp(); }

double cost_edf(const DestinationEval& dest) { return dest.deadline_seconds; }

double cost_c5(std::span<const DestinationEval> dests) {
  double total = 0.0;
  for (const DestinationEval& d : dests) {
    if (!d.sat) continue;
    const double slack = std::max(d.slack_seconds, kC5SlackFloorSeconds);
    total += -d.efp() / slack;
  }
  return total;
}

double evaluate_cost(CostCriterion criterion, const EUWeights& eu,
                     std::span<const DestinationEval> dests) {
  switch (criterion) {
    case CostCriterion::kC1:
      DS_ASSERT_MSG(dests.size() == 1, "C1 is a per-destination criterion");
      return cost_c1(eu, dests.front());
    case CostCriterion::kC2: return cost_c2(eu, dests);
    case CostCriterion::kC3: return cost_c3(dests);
    case CostCriterion::kC4: return cost_c4(eu, dests);
    case CostCriterion::kPriorityOnly:
      DS_ASSERT_MSG(dests.size() == 1, "kPriorityOnly is a per-destination criterion");
      return cost_priority_only(dests.front());
    case CostCriterion::kC5: return cost_c5(dests);
    case CostCriterion::kEdf:
      DS_ASSERT_MSG(dests.size() == 1, "EDF is a per-destination criterion");
      return cost_edf(dests.front());
  }
  DS_UNREACHABLE("bad criterion");
}

}  // namespace datastage
