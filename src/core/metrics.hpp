// Result metrics beyond the paper's single objective.
//
// The weighted sum of satisfied priorities is the optimization criterion
// (§3); operators evaluating a deployment also ask how tight the deliveries
// were, which classes got served, and how much network the schedule burned.
// compute_metrics derives all of that from a StagingResult.
#pragma once

#include <cstdint>
#include <vector>

#include "core/satisfaction.hpp"
#include "model/priority.hpp"
#include "model/scenario.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace datastage {

struct ResultMetrics {
  // Satisfaction.
  std::size_t total_requests = 0;
  std::size_t satisfied = 0;
  double weighted_value = 0.0;
  double weighted_total = 0.0;  ///< upper_bound: all requests satisfied
  std::vector<std::size_t> satisfied_per_class;
  std::vector<std::size_t> total_per_class;

  // Delivery quality over satisfied requests.
  double mean_slack_seconds = 0.0;     ///< deadline − arrival
  double min_slack_seconds = 0.0;
  double mean_response_seconds = 0.0;  ///< arrival − item availability

  // Resource usage.
  std::size_t transfers = 0;
  SimDuration total_link_time;
  double transfers_per_satisfied = 0.0;
  SimTime makespan = SimTime::zero();  ///< last arrival (zero if none)

  double satisfied_fraction() const {
    return total_requests == 0
               ? 0.0
               : static_cast<double>(satisfied) / static_cast<double>(total_requests);
  }
  double value_fraction() const {
    return weighted_total == 0.0  // ds-lint: allow(DS012 exact zero-sentinel: weighted_total is only ever assigned 0.0 or a sum of positive weights)
               ? 0.0
               : weighted_value / weighted_total;
  }
};

ResultMetrics compute_metrics(const Scenario& scenario,
                              const PriorityWeighting& weighting,
                              const StagingResult& result);

/// Two-column (metric, value) rendering.
Table metrics_table(const ResultMetrics& metrics);

}  // namespace datastage
