#include "core/exact.hpp"

#include <algorithm>
#include <map>

#include "net/network_state.hpp"
#include "net/topology.hpp"
#include "routing/dijkstra.hpp"
#include "util/assert.hpp"

namespace datastage {
namespace {

/// One branchable choice: commit this hop for this item.
struct Choice {
  ItemId item;
  TreeEdge hop;
};

class Searcher {
 public:
  Searcher(const Scenario& scenario, const SearchOptions& options)
      : scenario_(scenario), options_(options), topology_(scenario) {}

  SearchReport run() {
    NetworkState state(scenario_);
    OutcomeTracker tracker(scenario_);
    Schedule schedule;
    report_.complete = true;   // cleared if the cap trips
    report_.best_value = -1.0;  // so the root (value 0) becomes the incumbent
    dfs(state, tracker, schedule, 0.0);
    DS_ASSERT_MSG(report_.best_value >= 0.0,
                  "search must at least visit the empty root schedule");
    return std::move(report_);
  }

 private:
  /// Valid next steps plus the optimistic bound: the weighted value of every
  /// pending request still individually satisfiable on the current state.
  struct Frontier {
    std::vector<Choice> choices;
    double optimistic = 0.0;
  };

  Frontier frontier(const NetworkState& state, const OutcomeTracker& tracker) {
    Frontier f;
    for (std::size_t i = 0; i < scenario_.item_count(); ++i) {
      const ItemId item(static_cast<std::int32_t>(i));
      if (!tracker.any_pending(item)) continue;
      DijkstraOptions dopt;
      dopt.prune_after = tracker.latest_pending_deadline(item);
      const RouteTree tree = compute_route_tree(state, topology_, item, dopt);

      // Distinct first hops toward satisfiable destinations.
      std::map<std::int32_t, TreeEdge> hops;
      const DataItem& it = scenario_.item(item);
      for (const std::int32_t k : tracker.pending_of(item)) {
        const Request& request = it.requests[static_cast<std::size_t>(k)];
        if (!tree.reached(request.destination)) continue;
        if (!tree.has_parent(request.destination)) continue;
        if (tree.arrival(request.destination) > request.deadline) continue;
        f.optimistic += options_.weighting.weight(request.priority);
        const TreeEdge& hop = tree.first_hop(request.destination);
        hops.emplace(hop.to.value(), hop);
      }
      for (const auto& [to, hop] : hops) {
        (void)to;
        f.choices.push_back(Choice{item, hop});
      }
    }
    return f;
  }

  void dfs(NetworkState& state, OutcomeTracker& tracker, Schedule& schedule,
           double value) {
    if (report_.nodes >= options_.max_nodes) {
      report_.complete = false;
      return;
    }
    ++report_.nodes;

    const Frontier f = frontier(state, tracker);
    if (value > report_.best_value) {
      report_.best_value = value;
      report_.best.schedule = schedule;
      report_.best.outcomes = tracker.outcomes();
      report_.best.iterations = schedule.size();
    }
    // Bound: even satisfying every still-satisfiable pending request cannot
    // beat the incumbent.
    if (value + f.optimistic <= report_.best_value) return;
    if (f.choices.empty()) return;

    for (const Choice& choice : f.choices) {
      // Copy-on-branch: tiny instances make the copies affordable and keep
      // the resource accounting trivially correct (no undo logic).
      NetworkState next_state = state;
      OutcomeTracker next_tracker = tracker;
      Schedule next_schedule = schedule;

      const AppliedTransfer applied =
          next_state.apply_transfer(choice.item, choice.hop.link, choice.hop.start);
      next_schedule.add(CommStep{choice.item, choice.hop.from, choice.hop.to,
                                 choice.hop.link, applied.start, applied.arrival});
      next_tracker.note_arrival(choice.item, choice.hop.to, applied.arrival);
      const double next_value =
          weighted_value(scenario_, options_.weighting, next_tracker.outcomes());

      dfs(next_state, next_tracker, next_schedule, next_value);
      if (report_.nodes >= options_.max_nodes) {
        report_.complete = false;
        return;
      }
    }
  }

  const Scenario& scenario_;
  const SearchOptions& options_;
  Topology topology_;
  SearchReport report_;
};

/// One partial schedule in the beam.
struct BeamState {
  NetworkState state;
  OutcomeTracker tracker;
  Schedule schedule;
  double value = 0.0;
  double optimistic = 0.0;  ///< upper bound on additional value

  double score() const { return value + optimistic; }
};

class BeamSearcher {
 public:
  BeamSearcher(const Scenario& scenario, const BeamOptions& options)
      : scenario_(scenario), options_(options), topology_(scenario) {}

  StagingResult run() {
    std::vector<BeamState> beam;
    beam.push_back(BeamState{NetworkState(scenario_), OutcomeTracker(scenario_),
                             Schedule{}, 0.0, 0.0});
    BeamState best = beam.front();
    std::size_t expansions = 0;

    while (!beam.empty() && expansions < options_.max_expansions) {
      std::vector<BeamState> next;
      for (BeamState& state : beam) {
        const std::vector<Choice> choices = frontier_choices(state);
        if (choices.empty()) continue;
        for (const Choice& choice : choices) {
          if (++expansions > options_.max_expansions) break;
          BeamState successor{state.state, state.tracker, state.schedule,
                              0.0, 0.0};
          const AppliedTransfer applied = successor.state.apply_transfer(
              choice.item, choice.hop.link, choice.hop.start);
          successor.schedule.add(CommStep{choice.item, choice.hop.from,
                                          choice.hop.to, choice.hop.link,
                                          applied.start, applied.arrival});
          successor.tracker.note_arrival(choice.item, choice.hop.to,
                                         applied.arrival);
          successor.value = weighted_value(scenario_, options_.weighting,
                                           successor.tracker.outcomes());
          successor.optimistic = optimistic_bound(successor);
          if (successor.value > best.value) best = successor;
          next.push_back(std::move(successor));
        }
      }
      if (next.empty()) break;
      // Keep the `width` most promising states (deterministic tie order).
      std::stable_sort(next.begin(), next.end(),
                       [](const BeamState& a, const BeamState& b) {
                         return a.score() > b.score();
                       });
      if (next.size() > options_.width) {
        next.erase(next.begin() + static_cast<std::ptrdiff_t>(options_.width),
                   next.end());
      }
      beam = std::move(next);
    }

    StagingResult result;
    result.schedule = std::move(best.schedule);
    result.outcomes = best.tracker.take_outcomes();
    result.iterations = result.schedule.size();
    return result;
  }

 private:
  std::vector<Choice> frontier_choices(const BeamState& bs) {
    std::vector<Choice> choices;
    for (std::size_t i = 0; i < scenario_.item_count(); ++i) {
      const ItemId item(static_cast<std::int32_t>(i));
      if (!bs.tracker.any_pending(item)) continue;
      DijkstraOptions dopt;
      dopt.prune_after = bs.tracker.latest_pending_deadline(item);
      const RouteTree tree = compute_route_tree(bs.state, topology_, item, dopt);
      std::map<std::int32_t, TreeEdge> hops;
      const DataItem& it = scenario_.item(item);
      for (const std::int32_t k : bs.tracker.pending_of(item)) {
        const Request& request = it.requests[static_cast<std::size_t>(k)];
        if (!tree.reached(request.destination)) continue;
        if (!tree.has_parent(request.destination)) continue;
        if (tree.arrival(request.destination) > request.deadline) continue;
        const TreeEdge& hop = tree.first_hop(request.destination);
        hops.emplace(hop.to.value(), hop);
      }
      for (const auto& [to, hop] : hops) {
        (void)to;
        choices.push_back(Choice{item, hop});
      }
    }
    return choices;
  }

  double optimistic_bound(const BeamState& bs) {
    double bound = 0.0;
    for (std::size_t i = 0; i < scenario_.item_count(); ++i) {
      const ItemId item(static_cast<std::int32_t>(i));
      if (!bs.tracker.any_pending(item)) continue;
      DijkstraOptions dopt;
      dopt.prune_after = bs.tracker.latest_pending_deadline(item);
      const RouteTree tree = compute_route_tree(bs.state, topology_, item, dopt);
      const DataItem& it = scenario_.item(item);
      for (const std::int32_t k : bs.tracker.pending_of(item)) {
        const Request& request = it.requests[static_cast<std::size_t>(k)];
        if (tree.reached(request.destination) &&
            tree.arrival(request.destination) <= request.deadline) {
          bound += options_.weighting.weight(request.priority);
        }
      }
    }
    return bound;
  }

  const Scenario& scenario_;
  const BeamOptions& options_;
  Topology topology_;
};

}  // namespace

SearchReport exhaustive_step_search(const Scenario& scenario,
                                    const SearchOptions& options) {
  return Searcher(scenario, options).run();
}

StagingResult run_beam_search(const Scenario& scenario, const BeamOptions& options) {
  return BeamSearcher(scenario, options).run();
}

}  // namespace datastage
