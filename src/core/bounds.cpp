#include "core/bounds.hpp"

#include "net/topology.hpp"
#include "routing/dijkstra.hpp"

namespace datastage {

BoundsReport compute_bounds(const Scenario& scenario,
                            const PriorityWeighting& weighting) {
  BoundsReport report;
  Topology topology(scenario);
  const NetworkState pristine(scenario);

  report.alone_outcomes.resize(scenario.item_count());
  for (std::size_t i = 0; i < scenario.item_count(); ++i) {
    const ItemId item(static_cast<std::int32_t>(i));
    const DataItem& it = scenario.items[i];
    report.alone_outcomes[i].resize(it.requests.size());

    DijkstraOptions dopt;
    dopt.prune_after = it.latest_deadline();
    const RouteTree tree = compute_route_tree(pristine, topology, item, dopt);

    for (std::size_t k = 0; k < it.requests.size(); ++k) {
      const Request& request = it.requests[k];
      report.upper_bound += weighting.weight(request.priority);

      // Capacity checks against the pristine state are exactly the "only
      // request in the system" assumption: no other item consumes links, and
      // only initial copies consume storage.
      if (tree.reached(request.destination) &&
          tree.arrival(request.destination) <= request.deadline) {
        report.alone_outcomes[i][k].satisfied = true;
        report.alone_outcomes[i][k].arrival = tree.arrival(request.destination);
        report.possible_satisfy += weighting.weight(request.priority);
      }
    }
  }
  return report;
}

}  // namespace datastage
