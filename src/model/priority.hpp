// Request priorities and priority weighting schemes.
//
// The paper models priorities 0..P with a relative weight W[i] per class; the
// experiments use three classes (low / medium / high) under two weightings,
// {1,5,10} and {1,10,100}. The weighting is an *experiment* parameter, not a
// scenario property: the same scenario is evaluated under several weightings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/assert.hpp"

namespace datastage {

/// A priority class index, 0 = least important .. P = most important.
using Priority = std::int32_t;

/// The three classes used throughout the paper's evaluation.
inline constexpr Priority kPriorityLow = 0;
inline constexpr Priority kPriorityMedium = 1;
inline constexpr Priority kPriorityHigh = 2;

/// W[0..P]: the relative weight of each priority class. Weights must be
/// positive and non-decreasing (a higher class is never less important).
class PriorityWeighting {
 public:
  explicit PriorityWeighting(std::vector<double> weights);

  /// Paper weighting "1, 5, 10".
  static PriorityWeighting w_1_5_10() { return PriorityWeighting({1.0, 5.0, 10.0}); }
  /// Paper weighting "1, 10, 100".
  static PriorityWeighting w_1_10_100() { return PriorityWeighting({1.0, 10.0, 100.0}); }

  Priority max_priority() const {
    return static_cast<Priority>(weights_.size()) - 1;
  }

  double weight(Priority p) const {
    DS_ASSERT(p >= 0 && p <= max_priority());
    return weights_[static_cast<std::size_t>(p)];
  }

  std::size_t num_classes() const { return weights_.size(); }

  std::string to_string() const;

  friend bool operator==(const PriorityWeighting&, const PriorityWeighting&) = default;

 private:
  std::vector<double> weights_;
};

/// Human-readable class name for the three-class setup; falls back to "P<i>".
std::string priority_name(Priority p);

}  // namespace datastage
