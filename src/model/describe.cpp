#include "model/describe.hpp"

#include <algorithm>

#include "util/assert.hpp"
#include "util/stats.hpp"

namespace datastage {
namespace {

StatRange to_range(const Accumulator& acc) {
  if (acc.count() == 0) return {};
  return StatRange{acc.min(), acc.mean(), acc.max()};
}

std::string render(const StatRange& r, int precision = 1) {
  return format_double(r.min, precision) + " / " + format_double(r.mean, precision) +
         " / " + format_double(r.max, precision);
}

}  // namespace

ScenarioStats describe(const Scenario& scenario) {
  ScenarioStats stats;
  stats.machines = scenario.machine_count();
  stats.phys_links = scenario.phys_links.size();
  stats.virt_links = scenario.virt_links.size();
  stats.items = scenario.item_count();
  stats.requests = scenario.request_count();

  constexpr double kMB = 1024.0 * 1024.0;

  Accumulator capacity;
  for (const Machine& m : scenario.machines) {
    capacity.add(static_cast<double>(m.capacity_bytes) / kMB);
  }
  stats.capacity_mb = to_range(capacity);

  Accumulator bandwidth;
  Accumulator degree;
  Accumulator windows;
  Accumulator availability;
  std::vector<std::size_t> out_degree(scenario.machine_count(), 0);
  std::vector<std::vector<bool>> neighbor(
      scenario.machine_count(), std::vector<bool>(scenario.machine_count(), false));
  std::vector<std::size_t> window_count(scenario.phys_links.size(), 0);
  std::vector<SimDuration> window_time(scenario.phys_links.size(),
                                       SimDuration::zero());

  for (const PhysicalLink& pl : scenario.phys_links) {
    bandwidth.add(static_cast<double>(pl.bandwidth_bps) / 1000.0);
    if (!neighbor[pl.from.index()][pl.to.index()]) {
      neighbor[pl.from.index()][pl.to.index()] = true;
      ++out_degree[pl.from.index()];
    }
  }
  for (const std::size_t d : out_degree) degree.add(static_cast<double>(d));
  stats.bandwidth_kbps = to_range(bandwidth);
  stats.out_degree = to_range(degree);

  double supply_bits = 0.0;
  for (const VirtualLink& vl : scenario.virt_links) {
    ++window_count[vl.phys.index()];
    const SimTime lo = max(vl.window.begin, SimTime::zero());
    const SimTime hi = min(vl.window.end, scenario.horizon);
    if (lo < hi) {
      window_time[vl.phys.index()] = window_time[vl.phys.index()] + (hi - lo);
      supply_bits += (hi - lo).as_seconds() * static_cast<double>(vl.bandwidth_bps);
    }
  }
  const double horizon_seconds = (scenario.horizon - SimTime::zero()).as_seconds();
  for (std::size_t p = 0; p < scenario.phys_links.size(); ++p) {
    windows.add(static_cast<double>(window_count[p]));
    availability.add(horizon_seconds > 0.0
                         ? window_time[p].as_seconds() / horizon_seconds
                         : 0.0);
  }
  stats.windows_per_phys_link = to_range(windows);
  stats.availability_fraction = to_range(availability);

  Accumulator item_mb;
  Accumulator sources;
  Accumulator requests;
  Accumulator offsets;
  Priority max_priority = 0;
  for (const DataItem& item : scenario.items) {
    for (const Request& r : item.requests) max_priority = std::max(max_priority, r.priority);
  }
  stats.requests_per_priority.assign(static_cast<std::size_t>(max_priority) + 1, 0);

  double demand_bits = 0.0;
  for (const DataItem& item : scenario.items) {
    item_mb.add(static_cast<double>(item.size_bytes) / kMB);
    sources.add(static_cast<double>(item.sources.size()));
    requests.add(static_cast<double>(item.requests.size()));
    SimTime born = SimTime::infinity();
    for (const SourceLocation& src : item.sources) born = min(born, src.available_at);
    for (const Request& r : item.requests) {
      offsets.add((r.deadline - born).as_seconds() / 60.0);
      ++stats.requests_per_priority[static_cast<std::size_t>(r.priority)];
      demand_bits += static_cast<double>(item.size_bytes) * 8.0;
    }
  }
  stats.item_mb = to_range(item_mb);
  stats.sources_per_item = to_range(sources);
  stats.requests_per_item = to_range(requests);
  stats.deadline_offset_min = to_range(offsets);
  stats.demand_supply_ratio = supply_bits > 0.0 ? demand_bits / supply_bits : 0.0;
  return stats;
}

Table describe_table(const ScenarioStats& stats) {
  Table table({"property", "min / mean / max"});
  table.add_row({"machines", std::to_string(stats.machines)});
  table.add_row({"physical links", std::to_string(stats.phys_links)});
  table.add_row({"virtual links", std::to_string(stats.virt_links)});
  table.add_row({"items", std::to_string(stats.items)});
  table.add_row({"requests", std::to_string(stats.requests)});
  table.add_row({"capacity (MB)", render(stats.capacity_mb)});
  table.add_row({"bandwidth (kbit/s)", render(stats.bandwidth_kbps)});
  table.add_row({"out-degree", render(stats.out_degree)});
  table.add_row({"windows per link", render(stats.windows_per_phys_link)});
  table.add_row({"availability fraction", render(stats.availability_fraction, 2)});
  table.add_row({"item size (MB)", render(stats.item_mb)});
  table.add_row({"sources per item", render(stats.sources_per_item)});
  table.add_row({"requests per item", render(stats.requests_per_item)});
  table.add_row({"deadline offset (min)", render(stats.deadline_offset_min)});
  std::string classes;
  for (std::size_t c = 0; c < stats.requests_per_priority.size(); ++c) {
    if (c != 0) classes += " / ";
    classes += std::to_string(stats.requests_per_priority[c]);
  }
  table.add_row({"requests per class (low..high)", classes});
  table.add_row({"demand/supply ratio", format_double(stats.demand_supply_ratio, 2)});
  return table;
}

std::string topology_dot(const Scenario& scenario) {
  constexpr double kMB = 1024.0 * 1024.0;
  std::string dot = "digraph datastage {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::size_t m = 0; m < scenario.machine_count(); ++m) {
    const Machine& machine = scenario.machines[m];
    dot += "  m" + std::to_string(m) + " [label=\"" + machine.name + "\\n" +
           format_double(static_cast<double>(machine.capacity_bytes) / kMB, 0) +
           " MB\"];\n";
  }
  std::vector<std::size_t> windows(scenario.phys_links.size(), 0);
  for (const VirtualLink& vl : scenario.virt_links) ++windows[vl.phys.index()];
  for (std::size_t p = 0; p < scenario.phys_links.size(); ++p) {
    const PhysicalLink& pl = scenario.phys_links[p];
    dot += "  m" + std::to_string(pl.from.value()) + " -> m" +
           std::to_string(pl.to.value()) + " [label=\"" +
           format_double(static_cast<double>(pl.bandwidth_bps) / 1000.0, 0) +
           " kb/s x" + std::to_string(windows[p]) + "\"];\n";
  }
  dot += "}\n";
  return dot;
}

}  // namespace datastage
