// Deterministic fault model layered on top of a Scenario.
//
// A FaultSpec describes how the network misbehaves relative to the nominal
// scenario: link outage windows (no capacity at all), bandwidth degradation
// windows (the link runs at a fraction of its physical rate), and losses of
// staged copies (a machine drops an item it was holding). Faults are data,
// not events: the same FaultSpec can mask a scenario a priori (apply_faults,
// the clairvoyant view), score a committed schedule a posteriori
// (replay_under_faults in sim/), or drive the dynamic stager's recovery path
// (fault_events in dynamic/). All three views are deterministic functions of
// (Scenario, FaultSpec).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/scenario.hpp"
#include "util/interval.hpp"

namespace datastage {

/// A physical link carries no traffic at all during `window`.
struct LinkOutage {
  PhysLinkId link;
  Interval window;

  friend bool operator==(const LinkOutage&, const LinkOutage&) = default;
};

/// A physical link runs at `factor` (in (0, 1)) of its nominal bandwidth
/// during `window`. Overlapping degradations of one link compound by taking
/// the minimum factor (the worst brownout wins).
struct LinkDegradation {
  PhysLinkId link;
  Interval window;
  double factor = 1.0;

  friend bool operator==(const LinkDegradation&, const LinkDegradation&) = default;
};

/// The copy of `item_name` held by `machine` is destroyed at time `at`.
/// A copy that materializes after `at` (a later re-delivery) is unaffected.
struct CopyLoss {
  std::string item_name;
  MachineId machine;
  SimTime at;

  friend bool operator==(const CopyLoss&, const CopyLoss&) = default;
};

/// A full fault scenario. Order within each vector is not semantically
/// meaningful but is preserved by serialization (write -> read -> write is
/// byte-identical).
struct FaultSpec {
  std::vector<LinkOutage> outages;
  std::vector<LinkDegradation> degradations;
  std::vector<CopyLoss> copy_losses;

  bool empty() const {
    return outages.empty() && degradations.empty() && copy_losses.empty();
  }

  /// Structural validation against the scenario the faults apply to. Returns
  /// human-readable defects; empty means well-formed.
  std::vector<std::string> validate(const Scenario& scenario) const;

  /// validate() and abort with a message on the first defect.
  void check_valid(const Scenario& scenario) const;
};

/// Fraction of the scenario's total virtual-link window time removed by the
/// outage windows (the x-axis of a degradation curve). 0 when there are no
/// links or no outages.
double outage_fraction(const FaultSpec& faults, const Scenario& scenario);

/// Splits `window` at the degradation boundaries of `link` and returns the
/// fragments with their effective bandwidth: base_bps outside every
/// degradation, floor(base_bps * min factor) (at least 1 bps) inside. With no
/// overlapping degradation the result is {(window, base_bps)}.
std::vector<std::pair<Interval, std::int64_t>> degraded_fragments(
    const Interval& window, std::int64_t base_bps, PhysLinkId link,
    const std::vector<LinkDegradation>& degradations);

/// The clairvoyant view: the scenario a scheduler that knew every fault in
/// advance would plan against. Outage windows are subtracted from virtual
/// links, degradation windows split them into fragments carrying the reduced
/// bandwidth, and copy losses clamp source hold windows (a source whose hold
/// window becomes empty is dropped). With an empty FaultSpec the result is
/// identical to `scenario`. The result is structurally sound but may violate
/// check_valid() (an item can lose all sources); schedulers consume it
/// unchecked, exactly like the dynamic stager's residual scenarios.
Scenario apply_faults(const Scenario& scenario, const FaultSpec& faults);

}  // namespace datastage
