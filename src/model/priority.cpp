#include "model/priority.hpp"

#include <sstream>

namespace datastage {

PriorityWeighting::PriorityWeighting(std::vector<double> weights)
    : weights_(std::move(weights)) {
  DS_ASSERT_MSG(!weights_.empty(), "weighting needs at least one class");
  double prev = 0.0;
  for (double w : weights_) {
    DS_ASSERT_MSG(w > 0.0, "priority weights must be positive");
    DS_ASSERT_MSG(w >= prev, "priority weights must be non-decreasing");
    prev = w;
  }
}

std::string PriorityWeighting::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < weights_.size(); ++i) {
    if (i != 0) os << ",";
    // Render integral weights without a decimal point (matches the paper's
    // "1, 10, 100" notation).
    const double w = weights_[i];
    if (w == static_cast<double>(static_cast<long long>(w))) {
      os << static_cast<long long>(w);
    } else {
      os << w;
    }
  }
  return os.str();
}

std::string priority_name(Priority p) {
  switch (p) {
    case kPriorityLow: return "low";
    case kPriorityMedium: return "medium";
    case kPriorityHigh: return "high";
    default: return "P" + std::to_string(p);
  }
}

}  // namespace datastage
