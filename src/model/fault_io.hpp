// Plain-text fault-spec serialization.
//
// Same design as scenario_io: a stable, diff-friendly, line-oriented,
// versioned format with strict parsing (unknown directives, malformed or
// trailing tokens are errors). A FaultSpec file travels alongside a scenario
// file; validation against the scenario happens at use time via
// FaultSpec::validate. Degradation factors are serialized as integer parts
// per million, so write -> read -> write is byte-identical and no float
// formatting is involved.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "model/fault.hpp"

namespace datastage {

/// Serializes `faults` in the v1 text format.
void write_faults(std::ostream& os, const FaultSpec& faults);
std::string faults_to_string(const FaultSpec& faults);
void save_faults(const std::string& path, const FaultSpec& faults);

/// Parses the v1 text format. On failure returns nullopt and stores a
/// human-readable message (with line number) in *error if non-null.
std::optional<FaultSpec> read_faults(std::istream& is, std::string* error);
std::optional<FaultSpec> faults_from_string(const std::string& text, std::string* error);
std::optional<FaultSpec> load_faults(const std::string& path, std::string* error);

/// Quantizes a degradation factor to the serialized resolution (parts per
/// million). The fault generator emits pre-quantized factors so an in-memory
/// FaultSpec and its write -> read image behave identically.
double quantize_factor(double factor);

}  // namespace datastage
