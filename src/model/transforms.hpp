// Scenario transformations for sensitivity studies.
//
// Pure functions producing perturbed copies of a scenario: shrink link
// availability, scale bandwidth, tighten deadlines, remove links, flatten
// priorities. Used by the ablation benches and the link-outage example;
// every transform preserves scenario validity.
#pragma once

#include "model/scenario.hpp"
#include "util/ids.hpp"

namespace datastage {

/// Shortens every virtual-link window to `keep_fraction` of its length
/// (trimming the tail, as if each pass drops early). Windows shrinking to
/// nothing are removed. Requires 0 <= keep_fraction <= 1.
Scenario scale_link_availability(const Scenario& scenario, double keep_fraction);

/// Multiplies every link bandwidth by `factor` (> 0); bandwidths are clamped
/// to at least 1 bit/s.
Scenario scale_bandwidth(const Scenario& scenario, double factor);

/// Rescales every request's deadline offset from its item's availability:
/// new deadline = availability + (old deadline − availability) * factor.
/// Offsets are clamped to at least one microsecond. Requires factor > 0.
Scenario scale_deadlines(const Scenario& scenario, double factor);

/// Removes one physical link and all of its virtual links. The result may no
/// longer be strongly connected — intentionally, for outage studies.
Scenario drop_physical_link(const Scenario& scenario, PhysLinkId link);

/// Sets every request to the lowest priority class (ablates the priority
/// signal while keeping workload shape identical).
Scenario flatten_priorities(const Scenario& scenario);

/// Keeps only the first `max_sources` initial sources of every item
/// (controlled replication ablation: the workload is otherwise identical).
/// Requires max_sources >= 1.
Scenario limit_sources(const Scenario& scenario, std::size_t max_sources);

}  // namespace datastage
