// The static data-staging problem instance (paper §3).
//
// A Scenario aggregates machines, physical/virtual links, data items with
// their initial sources, and the requests (destination, deadline, priority).
// It is immutable input to every scheduler; all mutable resource state lives
// in net::NetworkState.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/priority.hpp"
#include "util/ids.hpp"
#include "util/interval.hpp"
#include "util/time.hpp"

namespace datastage {

/// A machine M[i]: storage server, client and/or intermediate node.
struct Machine {
  std::string name;
  std::int64_t capacity_bytes = 0;  ///< Cap[i]: total storage capacity.
};

/// A unidirectional physical transmission link.
struct PhysicalLink {
  MachineId from;
  MachineId to;
  std::int64_t bandwidth_bps = 0;            ///< bits per second
  SimDuration latency = SimDuration::zero();  ///< per-transfer fixed overhead
};

/// A virtual link L[i,j][k]: one contiguous availability window of a physical
/// link (paper §3: a link available in nl disjoint intervals is modeled as nl
/// virtual links).
struct VirtualLink {
  PhysLinkId phys;
  MachineId from;
  MachineId to;
  std::int64_t bandwidth_bps = 0;
  SimDuration latency = SimDuration::zero();
  Interval window;  ///< [Lst, Let)
};

/// One initial location of a data item: Source[i,j] and δst[i,j].
struct SourceLocation {
  MachineId machine;
  SimTime available_at;
  /// When this copy disappears from the machine. Infinity (the default) is
  /// the static model: sources hold their data for the whole simulation.
  /// The dynamic extension uses finite values for staged copies carried into
  /// a residual problem, whose garbage collection is already scheduled.
  SimTime hold_until = SimTime::infinity();

  /// Storage hold window of this initial copy. validate() rejects empty
  /// windows, but unchecked residual/faulted scenarios may carry them (a
  /// copy lost the instant it appears); every consumer must skip a source
  /// whose hold_window() is empty — it never materializes a copy.
  constexpr Interval hold_window() const { return Interval{available_at, hold_until}; }
};

/// One request for a data item: Request[i,k], Rft[i,k], Priority[i,k].
struct Request {
  MachineId destination;
  SimTime deadline;
  Priority priority = kPriorityLow;
};

/// A requested data item Rq[i] with its initial sources and requests.
struct DataItem {
  std::string name;
  std::int64_t size_bytes = 0;
  std::vector<SourceLocation> sources;
  std::vector<Request> requests;

  /// Latest deadline over all requests; drives garbage collection (§4.4).
  SimTime latest_deadline() const;
};

/// A full problem instance.
struct Scenario {
  std::vector<Machine> machines;
  std::vector<PhysicalLink> phys_links;
  std::vector<VirtualLink> virt_links;
  std::vector<DataItem> items;

  /// End of the scheduling period (paper: two hours of effective duration).
  SimTime horizon = SimTime::zero();
  /// γ: how long intermediates keep an item past its latest deadline (§4.4).
  SimDuration gc_gamma = SimDuration::zero();

  std::size_t machine_count() const { return machines.size(); }
  std::size_t item_count() const { return items.size(); }
  /// Total number of individual requests across all items.
  std::size_t request_count() const;

  const Machine& machine(MachineId id) const { return machines[id.index()]; }
  const DataItem& item(ItemId id) const { return items[id.index()]; }
  const VirtualLink& vlink(VirtLinkId id) const { return virt_links[id.index()]; }
  const PhysicalLink& plink(PhysLinkId id) const { return phys_links[id.index()]; }

  const Request& request(RequestRef ref) const {
    return items[ref.item.index()].requests[static_cast<std::size_t>(ref.k)];
  }

  /// Garbage-collection time for an item: latest deadline + γ (§4.4).
  SimTime gc_time(ItemId id) const {
    return item(id).latest_deadline() + gc_gamma;
  }

  /// Structural validation. Returns a list of human-readable defects; an
  /// empty list means the scenario is well-formed. Checks index ranges,
  /// window sanity, positive sizes/bandwidths/capacities, deadline ordering,
  /// source/destination disjointness and duplicate requests per machine.
  std::vector<std::string> validate() const;

  /// Convenience: validate() and abort with a message on the first defect.
  void check_valid() const;
};

/// End of the storage hold window for a copy of `item` staged on `machine`
/// (§4.4): a destination keeps its data to the end of the simulation, an
/// initial source until its hold_until, any other machine until gc_time
/// (latest deadline + γ). `is_destination` is supplied by the caller because
/// each resource tracker derives it differently. Shared by NetworkState, the
/// replay simulator and the fault replay so the hold rules cannot diverge.
SimTime copy_hold_end(const Scenario& scenario, ItemId item, MachineId machine,
                      bool is_destination);

}  // namespace datastage
