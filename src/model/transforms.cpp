#include "model/transforms.hpp"

#include <algorithm>
#include <cmath>

#include "util/assert.hpp"

namespace datastage {

Scenario scale_link_availability(const Scenario& scenario, double keep_fraction) {
  DS_ASSERT(keep_fraction >= 0.0 && keep_fraction <= 1.0);
  Scenario out = scenario;
  out.virt_links.clear();
  for (const VirtualLink& vl : scenario.virt_links) {
    VirtualLink copy = vl;
    const auto kept = static_cast<std::int64_t>(
        static_cast<double>(vl.window.length().usec()) * keep_fraction);
    copy.window.end = copy.window.begin + SimDuration::from_usec(kept);
    if (!copy.window.empty()) out.virt_links.push_back(copy);
  }
  return out;
}

Scenario scale_bandwidth(const Scenario& scenario, double factor) {
  DS_ASSERT(factor > 0.0);
  Scenario out = scenario;
  auto scaled = [factor](std::int64_t bps) {
    return std::max<std::int64_t>(
        1, static_cast<std::int64_t>(std::llround(static_cast<double>(bps) * factor)));
  };
  for (PhysicalLink& pl : out.phys_links) pl.bandwidth_bps = scaled(pl.bandwidth_bps);
  for (VirtualLink& vl : out.virt_links) vl.bandwidth_bps = scaled(vl.bandwidth_bps);
  return out;
}

Scenario scale_deadlines(const Scenario& scenario, double factor) {
  DS_ASSERT(factor > 0.0);
  Scenario out = scenario;
  for (DataItem& item : out.items) {
    SimTime born = SimTime::infinity();
    for (const SourceLocation& src : item.sources) born = min(born, src.available_at);
    for (Request& request : item.requests) {
      const double offset_usec =
          static_cast<double>((request.deadline - born).usec()) * factor;
      const auto clamped = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(std::llround(offset_usec)));
      request.deadline = born + SimDuration::from_usec(clamped);
    }
  }
  return out;
}

Scenario drop_physical_link(const Scenario& scenario, PhysLinkId link) {
  DS_ASSERT(link.valid() && link.index() < scenario.phys_links.size());
  Scenario out = scenario;
  out.phys_links.erase(out.phys_links.begin() +
                       static_cast<std::ptrdiff_t>(link.index()));
  out.virt_links.clear();
  for (const VirtualLink& vl : scenario.virt_links) {
    if (vl.phys == link) continue;
    VirtualLink copy = vl;
    // Physical ids above the removed one shift down by one.
    if (copy.phys > link) copy.phys = PhysLinkId(copy.phys.value() - 1);
    out.virt_links.push_back(copy);
  }
  return out;
}

Scenario limit_sources(const Scenario& scenario, std::size_t max_sources) {
  DS_ASSERT(max_sources >= 1);
  Scenario out = scenario;
  for (DataItem& item : out.items) {
    if (item.sources.size() > max_sources) {
      item.sources.resize(max_sources);
    }
  }
  return out;
}

Scenario flatten_priorities(const Scenario& scenario) {
  Scenario out = scenario;
  for (DataItem& item : out.items) {
    for (Request& request : item.requests) request.priority = kPriorityLow;
  }
  return out;
}

}  // namespace datastage
