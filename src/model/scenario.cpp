#include "model/scenario.hpp"

#include <set>
#include <sstream>

#include "util/assert.hpp"

namespace datastage {

SimTime DataItem::latest_deadline() const {
  SimTime latest = SimTime::zero();
  for (const Request& r : requests) latest = max(latest, r.deadline);
  return latest;
}

std::size_t Scenario::request_count() const {
  std::size_t n = 0;
  for (const DataItem& item : items) n += item.requests.size();
  return n;
}

std::vector<std::string> Scenario::validate() const {
  std::vector<std::string> errors;
  auto error = [&errors](const std::string& msg) { errors.push_back(msg); };
  const auto m = static_cast<std::int32_t>(machines.size());

  auto machine_ok = [m](MachineId id) { return id.valid() && id.value() < m; };

  if (machines.empty()) error("scenario has no machines");
  if (horizon <= SimTime::zero()) error("horizon must be positive");
  if (gc_gamma < SimDuration::zero()) error("gc gamma must be non-negative");

  for (std::size_t i = 0; i < machines.size(); ++i) {
    if (machines[i].capacity_bytes <= 0) {
      error("machine " + std::to_string(i) + " has non-positive capacity");
    }
  }

  for (std::size_t i = 0; i < phys_links.size(); ++i) {
    const PhysicalLink& pl = phys_links[i];
    std::ostringstream os;
    os << "phys link " << i << ": ";
    if (!machine_ok(pl.from) || !machine_ok(pl.to)) {
      error(os.str() + "endpoint out of range");
      continue;
    }
    if (pl.from == pl.to) error(os.str() + "self-loop");
    if (pl.bandwidth_bps <= 0) error(os.str() + "non-positive bandwidth");
    if (pl.latency < SimDuration::zero()) error(os.str() + "negative latency");
  }

  for (std::size_t i = 0; i < virt_links.size(); ++i) {
    const VirtualLink& vl = virt_links[i];
    std::ostringstream os;
    os << "virt link " << i << ": ";
    if (!vl.phys.valid() || vl.phys.index() >= phys_links.size()) {
      error(os.str() + "physical link out of range");
      continue;
    }
    const PhysicalLink& pl = phys_links[vl.phys.index()];
    if (vl.from != pl.from || vl.to != pl.to) {
      error(os.str() + "endpoints disagree with physical link");
    }
    // A virtual link may run *below* the physical rate (a degraded window
    // produced by fault masking) but never above it.
    if (vl.bandwidth_bps <= 0 || vl.bandwidth_bps > pl.bandwidth_bps) {
      error(os.str() + "bandwidth exceeds physical link or is non-positive");
    }
    if (vl.latency != pl.latency) {
      error(os.str() + "latency disagrees with physical link");
    }
    if (vl.window.empty()) error(os.str() + "empty availability window");
  }

  // Virtual links of one physical link must not overlap in time (§3: the
  // intervals are non-overlapping and discontinuous).
  {
    std::vector<IntervalSet> busy(phys_links.size());
    for (std::size_t i = 0; i < virt_links.size(); ++i) {
      const VirtualLink& vl = virt_links[i];
      if (!vl.phys.valid() || vl.phys.index() >= phys_links.size()) continue;
      if (vl.window.empty()) continue;
      IntervalSet& set = busy[vl.phys.index()];
      if (set.overlaps(vl.window)) {
        error("virt link " + std::to_string(i) +
              ": window overlaps a sibling virtual link of the same physical link");
      } else {
        set.insert_disjoint(vl.window);
      }
    }
  }

  for (std::size_t i = 0; i < items.size(); ++i) {
    const DataItem& item = items[i];
    const std::string prefix = "item " + std::to_string(i) + " (" + item.name + "): ";
    if (item.size_bytes <= 0) error(prefix + "non-positive size");
    if (item.sources.empty()) error(prefix + "no sources");
    if (item.requests.empty()) error(prefix + "no requests");

    std::set<std::int32_t> source_machines;
    for (const SourceLocation& s : item.sources) {
      if (!machine_ok(s.machine)) {
        error(prefix + "source machine out of range");
        continue;
      }
      if (!source_machines.insert(s.machine.value()).second) {
        error(prefix + "duplicate source machine");
      }
      if (s.available_at < SimTime::zero()) error(prefix + "negative source time");
      if (s.hold_until <= s.available_at) {
        error(prefix + "source hold ends at or before its availability");
      }
    }
    std::set<std::int32_t> request_machines;
    for (const Request& r : item.requests) {
      if (!machine_ok(r.destination)) {
        error(prefix + "request destination out of range");
        continue;
      }
      // §3: a given machine generates at most one request per data item.
      if (!request_machines.insert(r.destination.value()).second) {
        error(prefix + "duplicate request from one machine");
      }
      // §5.3: a destination for a data item is not also a source of it.
      if (source_machines.count(r.destination.value()) != 0) {
        error(prefix + "destination is also a source");
      }
      if (r.deadline <= SimTime::zero()) error(prefix + "non-positive deadline");
      if (r.priority < 0) error(prefix + "negative priority");
    }
  }

  return errors;
}

SimTime copy_hold_end(const Scenario& scenario, ItemId item, MachineId machine,
                      bool is_destination) {
  if (is_destination) return SimTime::infinity();
  for (const SourceLocation& src : scenario.item(item).sources) {
    if (src.machine == machine) return src.hold_until;
  }
  return scenario.gc_time(item);
}

void Scenario::check_valid() const {
  const std::vector<std::string> errors = validate();
  if (!errors.empty()) {
    std::ostringstream os;
    os << "invalid scenario:";
    for (const auto& e : errors) os << "\n  - " << e;
    DS_ASSERT_MSG(false, os.str().c_str());
  }
}

}  // namespace datastage
