#include "model/fault_io.hpp"

#include <charconv>
#include <cmath>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace datastage {
namespace {

constexpr const char* kMagic = "datastage-faults";
constexpr const char* kVersion = "v1";
constexpr double kFactorScale = 1'000'000.0;

std::int64_t factor_to_ppm(double factor) {
  return std::llround(factor * kFactorScale);
}

}  // namespace

double quantize_factor(double factor) {
  return static_cast<double>(factor_to_ppm(factor)) / kFactorScale;
}

void write_faults(std::ostream& os, const FaultSpec& faults) {
  os << kMagic << ' ' << kVersion << '\n';
  for (const LinkOutage& o : faults.outages) {
    os << "outage " << o.link.value() << ' ' << o.window.begin.usec() << ' '
       << o.window.end.usec() << '\n';
  }
  for (const LinkDegradation& d : faults.degradations) {
    os << "degrade " << d.link.value() << ' ' << d.window.begin.usec() << ' '
       << d.window.end.usec() << ' ' << factor_to_ppm(d.factor) << '\n';
  }
  for (const CopyLoss& loss : faults.copy_losses) {
    os << "copyloss " << loss.item_name << ' ' << loss.machine.value() << ' '
       << loss.at.usec() << '\n';
  }
}

std::string faults_to_string(const FaultSpec& faults) {
  std::ostringstream os;
  write_faults(os, faults);
  return os.str();
}

void save_faults(const std::string& path, const FaultSpec& faults) {
  std::ofstream out(path);
  DS_ASSERT_MSG(out.good(), "cannot open fault output file");
  write_faults(out, faults);
}

namespace {

class Parser {
 public:
  explicit Parser(std::istream& is) : is_(is) {}

  std::optional<FaultSpec> run(std::string* error) {
    FaultSpec f;
    std::string line;
    if (!next_line(line) || !parse_header(line)) {
      fail("missing or malformed header (expected 'datastage-faults v1')");
    }
    while (!failed_ && next_line(line)) {
      parse_line(line, f);
    }
    if (failed_) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    return f;
  }

 private:
  bool next_line(std::string& line) {
    while (std::getline(is_, line)) {
      ++line_no_;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      if (line.find_first_not_of(" \t\r") != std::string::npos) return true;
    }
    return false;
  }

  bool parse_header(const std::string& line) {
    std::istringstream ss(line);
    std::string magic;
    std::string version;
    ss >> magic >> version;
    return magic == kMagic && version == kVersion;
  }

  void fail(const std::string& msg) {
    if (failed_) return;
    failed_ = true;
    error_ = "line " + std::to_string(line_no_) + ": " + msg;
  }

  /// Whole-token integer parse: partial parses and overflow are errors,
  /// never silent fallbacks (same contract as scenario_io and CliFlags).
  template <class Int>
  bool read_int(std::istringstream& ss, Int& out, const char* what) {
    std::string token;
    if (!(ss >> token)) {
      fail(std::string("expected ") + what);
      return false;
    }
    const char* last = token.data() + token.size();
    const auto [ptr, ec] = std::from_chars(token.data(), last, out);
    if (ec != std::errc() || ptr != last) {
      fail(std::string("malformed ") + what + " '" + token + "'");
      return false;
    }
    return true;
  }

  bool read_name(std::istringstream& ss, std::string& out, const char* what) {
    if (!(ss >> out)) {
      fail(std::string("expected ") + what);
      return false;
    }
    return true;
  }

  bool at_line_end(std::istringstream& ss) {
    std::string junk;
    if (ss >> junk) {
      fail("unexpected trailing token '" + junk + "'");
      return false;
    }
    return true;
  }

  void parse_line(const std::string& line, FaultSpec& f) {
    std::istringstream ss(line);
    std::string directive;
    ss >> directive;
    if (directive == "outage") {
      std::int32_t link = 0;
      std::int64_t begin = 0;
      std::int64_t end = 0;
      if (read_int(ss, link, "link") && read_int(ss, begin, "begin") &&
          read_int(ss, end, "end") && at_line_end(ss)) {
        f.outages.push_back(LinkOutage{
            PhysLinkId(link),
            Interval{SimTime::from_usec(begin), SimTime::from_usec(end)}});
      }
    } else if (directive == "degrade") {
      std::int32_t link = 0;
      std::int64_t begin = 0;
      std::int64_t end = 0;
      std::int64_t ppm = 0;
      if (read_int(ss, link, "link") && read_int(ss, begin, "begin") &&
          read_int(ss, end, "end") && read_int(ss, ppm, "factor ppm") &&
          at_line_end(ss)) {
        f.degradations.push_back(LinkDegradation{
            PhysLinkId(link),
            Interval{SimTime::from_usec(begin), SimTime::from_usec(end)},
            static_cast<double>(ppm) / kFactorScale});
      }
    } else if (directive == "copyloss") {
      std::string item;
      std::int32_t machine = 0;
      std::int64_t at = 0;
      if (read_name(ss, item, "item name") && read_int(ss, machine, "machine") &&
          read_int(ss, at, "time") && at_line_end(ss)) {
        f.copy_losses.push_back(
            CopyLoss{std::move(item), MachineId(machine), SimTime::from_usec(at)});
      }
    } else {
      fail("unknown directive '" + directive + "'");
    }
  }

  std::istream& is_;
  int line_no_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace

std::optional<FaultSpec> read_faults(std::istream& is, std::string* error) {
  return Parser(is).run(error);
}

std::optional<FaultSpec> faults_from_string(const std::string& text,
                                            std::string* error) {
  std::istringstream ss(text);
  return read_faults(ss, error);
}

std::optional<FaultSpec> load_faults(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error != nullptr) *error = "cannot open file: " + path;
    return std::nullopt;
  }
  return read_faults(in, error);
}

}  // namespace datastage
