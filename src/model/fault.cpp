#include "model/fault.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/assert.hpp"

namespace datastage {

std::vector<std::string> FaultSpec::validate(const Scenario& scenario) const {
  std::vector<std::string> errors;
  auto error = [&errors](const std::string& msg) { errors.push_back(msg); };
  const auto link_ok = [&scenario](PhysLinkId id) {
    return id.valid() && id.index() < scenario.phys_links.size();
  };
  const auto machine_ok = [&scenario](MachineId id) {
    return id.valid() && id.index() < scenario.machines.size();
  };
  const auto find_item = [&scenario](const std::string& name) -> const DataItem* {
    for (const DataItem& item : scenario.items) {
      if (item.name == name) return &item;
    }
    return nullptr;
  };

  for (std::size_t i = 0; i < outages.size(); ++i) {
    const std::string prefix = "outage " + std::to_string(i) + ": ";
    if (!link_ok(outages[i].link)) error(prefix + "link out of range");
    if (outages[i].window.empty()) error(prefix + "empty window");
    if (outages[i].window.begin < SimTime::zero()) error(prefix + "negative begin");
  }
  for (std::size_t i = 0; i < degradations.size(); ++i) {
    const LinkDegradation& d = degradations[i];
    const std::string prefix = "degradation " + std::to_string(i) + ": ";
    if (!link_ok(d.link)) error(prefix + "link out of range");
    if (d.window.empty()) error(prefix + "empty window");
    if (d.window.begin < SimTime::zero()) error(prefix + "negative begin");
    if (!(d.factor > 0.0 && d.factor < 1.0)) {
      error(prefix + "factor must lie in (0, 1)");
    }
  }
  for (std::size_t i = 0; i < copy_losses.size(); ++i) {
    const CopyLoss& loss = copy_losses[i];
    const std::string prefix = "copy loss " + std::to_string(i) + ": ";
    if (!machine_ok(loss.machine)) error(prefix + "machine out of range");
    if (loss.at < SimTime::zero()) error(prefix + "negative time");
    if (find_item(loss.item_name) == nullptr) {
      error(prefix + "unknown item '" + loss.item_name + "'");
    }
  }
  return errors;
}

void FaultSpec::check_valid(const Scenario& scenario) const {
  const std::vector<std::string> errors = validate(scenario);
  if (!errors.empty()) {
    std::ostringstream os;
    os << "invalid fault spec:";
    for (const auto& e : errors) os << "\n  - " << e;
    DS_ASSERT_MSG(false, os.str().c_str());
  }
}

double outage_fraction(const FaultSpec& faults, const Scenario& scenario) {
  SimDuration total = SimDuration::zero();
  SimDuration removed = SimDuration::zero();
  for (const VirtualLink& vl : scenario.virt_links) {
    total = total + vl.window.length();
    IntervalSet cut;
    for (const LinkOutage& outage : faults.outages) {
      if (outage.link != vl.phys) continue;
      cut.insert_merge(outage.window);
    }
    removed = removed + cut.covered_within(vl.window);
  }
  if (total <= SimDuration::zero()) return 0.0;
  return static_cast<double>(removed.usec()) / static_cast<double>(total.usec());
}

std::vector<std::pair<Interval, std::int64_t>> degraded_fragments(
    const Interval& window, std::int64_t base_bps, PhysLinkId link,
    const std::vector<LinkDegradation>& degradations) {
  std::vector<std::pair<Interval, std::int64_t>> fragments;
  if (window.empty()) return fragments;

  // Boundary points: the window ends plus every degradation edge inside it.
  std::vector<SimTime> cuts{window.begin, window.end};
  for (const LinkDegradation& d : degradations) {
    if (d.link != link || d.window.empty()) continue;
    if (window.contains(d.window.begin)) cuts.push_back(d.window.begin);
    if (window.contains(d.window.end)) cuts.push_back(d.window.end);
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    const Interval frag{cuts[i], cuts[i + 1]};
    double factor = 1.0;
    for (const LinkDegradation& d : degradations) {
      if (d.link != link || !d.window.contains(frag)) continue;
      factor = std::min(factor, d.factor);  // the worst brownout wins
    }
    std::int64_t bps = base_bps;
    if (factor < 1.0) {
      bps = std::max<std::int64_t>(
          1, static_cast<std::int64_t>(static_cast<double>(base_bps) * factor));
    }
    // Merge with the previous fragment when the rate did not change (keeps
    // the zero-fault and fully-covered cases to a single fragment).
    if (!fragments.empty() && fragments.back().second == bps &&
        fragments.back().first.end == frag.begin) {
      fragments.back().first.end = frag.end;
    } else {
      fragments.emplace_back(frag, bps);
    }
  }
  return fragments;
}

Scenario apply_faults(const Scenario& scenario, const FaultSpec& faults) {
  Scenario out;
  out.machines = scenario.machines;
  out.phys_links = scenario.phys_links;
  out.items = scenario.items;
  out.horizon = scenario.horizon;
  out.gc_gamma = scenario.gc_gamma;

  for (const VirtualLink& vl : scenario.virt_links) {
    IntervalSet windows;
    windows.insert_disjoint(vl.window);
    for (const LinkOutage& outage : faults.outages) {
      if (outage.link != vl.phys) continue;
      windows.subtract(outage.window);
    }
    for (const Interval& window : windows.intervals()) {
      for (const auto& [frag, bps] :
           degraded_fragments(window, vl.bandwidth_bps, vl.phys,
                              faults.degradations)) {
        out.virt_links.push_back(
            VirtualLink{vl.phys, vl.from, vl.to, bps, vl.latency, frag});
      }
    }
  }

  // A copy loss at an initial source ends that source's hold window at the
  // loss time; a source whose window empties never materializes a copy and
  // is dropped (consumers skip empty windows anyway, but dropping keeps the
  // masked scenario closer to check_valid()-clean).
  for (const CopyLoss& loss : faults.copy_losses) {
    for (DataItem& item : out.items) {
      if (item.name != loss.item_name) continue;
      std::vector<SourceLocation> kept;
      for (SourceLocation src : item.sources) {
        if (src.machine == loss.machine) {
          src.hold_until = min(src.hold_until, loss.at);
        }
        if (!src.hold_window().empty()) kept.push_back(src);
      }
      item.sources = std::move(kept);
    }
  }
  return out;
}

}  // namespace datastage
