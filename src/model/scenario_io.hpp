// Plain-text scenario serialization.
//
// A stable, diff-friendly, line-oriented format so that generated test cases
// can be saved, inspected, replayed and shipped as regression fixtures. The
// format is versioned; parsing is strict (unknown directives are errors).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "model/scenario.hpp"

namespace datastage {

/// Serializes `scenario` in the v1 text format.
void write_scenario(std::ostream& os, const Scenario& scenario);
std::string scenario_to_string(const Scenario& scenario);
void save_scenario(const std::string& path, const Scenario& scenario);

/// Parses the v1 text format. On failure returns nullopt and stores a
/// human-readable message (with line number) in *error if non-null.
std::optional<Scenario> read_scenario(std::istream& is, std::string* error);
std::optional<Scenario> scenario_from_string(const std::string& text, std::string* error);
std::optional<Scenario> load_scenario(const std::string& path, std::string* error);

}  // namespace datastage
