// Scenario statistics: a structured profile of a problem instance.
//
// Used by the CLI (`datastage_gen --stats`), by tests asserting that the
// generator hits the paper's §5.3 parameter ranges, and by anyone deciding
// whether a hand-built scenario resembles the BADD-like regime the
// heuristics were designed for.
#pragma once

#include <cstdint>

#include "model/scenario.hpp"
#include "util/table.hpp"

namespace datastage {

/// Min/mean/max triple over one scalar dimension of the scenario.
struct StatRange {
  double min = 0.0;
  double mean = 0.0;
  double max = 0.0;
};

struct ScenarioStats {
  std::size_t machines = 0;
  std::size_t phys_links = 0;
  std::size_t virt_links = 0;
  std::size_t items = 0;
  std::size_t requests = 0;

  StatRange capacity_mb;
  StatRange bandwidth_kbps;
  StatRange out_degree;
  StatRange windows_per_phys_link;
  /// Fraction of [0, horizon) each physical link is available.
  StatRange availability_fraction;

  StatRange item_mb;
  StatRange sources_per_item;
  StatRange requests_per_item;
  StatRange deadline_offset_min;  ///< deadline − item availability, minutes
  std::vector<std::size_t> requests_per_priority;

  /// Aggregate demand vs supply: total bytes that must move (item size ×
  /// requests) against total link capacity within the horizon. > 1 means the
  /// network is oversubscribed even before deadlines bite.
  double demand_supply_ratio = 0.0;
};

ScenarioStats describe(const Scenario& scenario);

/// Two-column rendering of the profile.
Table describe_table(const ScenarioStats& stats);

/// Graphviz DOT rendering of the physical topology: one node per machine
/// (labeled with its capacity), one edge per physical link (labeled with
/// bandwidth and window count). Render with `dot -Tsvg`.
std::string topology_dot(const Scenario& scenario);

}  // namespace datastage
