#include "model/scenario_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "util/assert.hpp"

namespace datastage {
namespace {

constexpr const char* kMagic = "datastage-scenario";
constexpr const char* kVersion = "v1";

}  // namespace

void write_scenario(std::ostream& os, const Scenario& s) {
  os << kMagic << ' ' << kVersion << '\n';
  os << "horizon " << s.horizon.usec() << '\n';
  os << "gamma " << s.gc_gamma.usec() << '\n';
  for (const Machine& m : s.machines) {
    os << "machine " << m.name << ' ' << m.capacity_bytes << '\n';
  }
  for (const PhysicalLink& pl : s.phys_links) {
    os << "plink " << pl.from.value() << ' ' << pl.to.value() << ' '
       << pl.bandwidth_bps << ' ' << pl.latency.usec() << '\n';
  }
  for (const VirtualLink& vl : s.virt_links) {
    os << "vlink " << vl.phys.value() << ' ' << vl.window.begin.usec() << ' '
       << vl.window.end.usec();
    // A degraded window (fault masking) runs below the physical rate; the
    // optional fourth field keeps undegraded scenarios in the original form.
    if (vl.bandwidth_bps != s.phys_links[vl.phys.index()].bandwidth_bps) {
      os << ' ' << vl.bandwidth_bps;
    }
    os << '\n';
  }
  for (const DataItem& item : s.items) {
    os << "item " << item.name << ' ' << item.size_bytes << '\n';
    for (const SourceLocation& src : item.sources) {
      os << "source " << src.machine.value() << ' ' << src.available_at.usec();
      // The hold end is only written when finite (static scenarios stay in
      // the original two-field form).
      if (!src.hold_until.is_infinite()) os << ' ' << src.hold_until.usec();
      os << '\n';
    }
    for (const Request& r : item.requests) {
      os << "request " << r.destination.value() << ' ' << r.deadline.usec() << ' '
         << r.priority << '\n';
    }
  }
}

std::string scenario_to_string(const Scenario& scenario) {
  std::ostringstream os;
  write_scenario(os, scenario);
  return os.str();
}

void save_scenario(const std::string& path, const Scenario& scenario) {
  std::ofstream out(path);
  DS_ASSERT_MSG(out.good(), "cannot open scenario output file");
  write_scenario(out, scenario);
}

namespace {

class Parser {
 public:
  explicit Parser(std::istream& is) : is_(is) {}

  std::optional<Scenario> run(std::string* error) {
    Scenario s;
    std::string line;
    if (!next_line(line) || !parse_header(line)) {
      fail("missing or malformed header (expected 'datastage-scenario v1')");
    }
    while (!failed_ && next_line(line)) {
      parse_line(line, s);
    }
    if (failed_) {
      if (error != nullptr) *error = error_;
      return std::nullopt;
    }
    const std::vector<std::string> defects = s.validate();
    if (!defects.empty()) {
      if (error != nullptr) *error = "scenario invalid after parse: " + defects.front();
      return std::nullopt;
    }
    return s;
  }

 private:
  bool next_line(std::string& line) {
    while (std::getline(is_, line)) {
      ++line_no_;
      // Strip comments and whitespace-only lines.
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      if (line.find_first_not_of(" \t\r") != std::string::npos) return true;
    }
    return false;
  }

  bool parse_header(const std::string& line) {
    std::istringstream ss(line);
    std::string magic;
    std::string version;
    ss >> magic >> version;
    return magic == kMagic && version == kVersion;
  }

  void fail(const std::string& msg) {
    if (failed_) return;
    failed_ = true;
    error_ = "line " + std::to_string(line_no_) + ": " + msg;
  }

  bool read_name(std::istringstream& ss, std::string& out, const char* what) {
    if (!(ss >> out)) {
      fail(std::string("expected ") + what);
      return false;
    }
    return true;
  }

  /// Whole-token integer parse, same contract as the hardened CliFlags
  /// numeric getters: a partial parse like "12x" or an overflow is an error,
  /// never a silent truncation or fallback.
  template <class Int>
  bool parse_token(const std::string& token, Int& out, const char* what) {
    const char* last = token.data() + token.size();
    const auto [ptr, ec] = std::from_chars(token.data(), last, out);
    if (ec != std::errc() || ptr != last) {
      fail(std::string("malformed ") + what + " '" + token + "'");
      return false;
    }
    return true;
  }

  template <class Int>
  bool read_int(std::istringstream& ss, Int& out, const char* what) {
    std::string token;
    if (!(ss >> token)) {
      fail(std::string("expected ") + what);
      return false;
    }
    return parse_token(token, out, what);
  }

  /// Directives carry a fixed field list; anything after it is an error
  /// (trailing junk used to be silently ignored).
  bool at_line_end(std::istringstream& ss) {
    std::string junk;
    if (ss >> junk) {
      fail("unexpected trailing token '" + junk + "'");
      return false;
    }
    return true;
  }

  void parse_line(const std::string& line, Scenario& s) {
    std::istringstream ss(line);
    std::string directive;
    ss >> directive;
    if (directive == "horizon") {
      std::int64_t usec = 0;
      if (read_int(ss, usec, "horizon usec") && at_line_end(ss)) {
        s.horizon = SimTime::from_usec(usec);
      }
    } else if (directive == "gamma") {
      std::int64_t usec = 0;
      if (read_int(ss, usec, "gamma usec") && at_line_end(ss)) {
        s.gc_gamma = SimDuration::from_usec(usec);
      }
    } else if (directive == "machine") {
      Machine m;
      if (read_name(ss, m.name, "machine name") &&
          read_int(ss, m.capacity_bytes, "machine capacity") && at_line_end(ss)) {
        s.machines.push_back(std::move(m));
      }
    } else if (directive == "plink") {
      std::int32_t from = 0;
      std::int32_t to = 0;
      std::int64_t bw = 0;
      std::int64_t lat = 0;
      if (read_int(ss, from, "from") && read_int(ss, to, "to") &&
          read_int(ss, bw, "bandwidth") && read_int(ss, lat, "latency") &&
          at_line_end(ss)) {
        s.phys_links.push_back(PhysicalLink{MachineId(from), MachineId(to), bw,
                                            SimDuration::from_usec(lat)});
      }
    } else if (directive == "vlink") {
      std::int32_t phys = 0;
      std::int64_t begin = 0;
      std::int64_t end = 0;
      if (!read_int(ss, phys, "phys id") || !read_int(ss, begin, "begin") ||
          !read_int(ss, end, "end")) {
        return;
      }
      if (phys < 0 || static_cast<std::size_t>(phys) >= s.phys_links.size()) {
        fail("vlink references unknown physical link");
        return;
      }
      const PhysicalLink& pl = s.phys_links[static_cast<std::size_t>(phys)];
      // Optional fourth field: a degraded bandwidth below the physical rate.
      std::int64_t bw = pl.bandwidth_bps;
      std::string token;
      if (ss >> token) {
        if (!parse_token(token, bw, "vlink bandwidth") || !at_line_end(ss)) return;
      }
      s.virt_links.push_back(VirtualLink{
          PhysLinkId(phys), pl.from, pl.to, bw, pl.latency,
          Interval{SimTime::from_usec(begin), SimTime::from_usec(end)}});
    } else if (directive == "item") {
      DataItem item;
      if (read_name(ss, item.name, "item name") &&
          read_int(ss, item.size_bytes, "item size") && at_line_end(ss)) {
        s.items.push_back(std::move(item));
      }
    } else if (directive == "source") {
      if (s.items.empty()) {
        fail("source before any item");
        return;
      }
      std::int32_t machine = 0;
      std::int64_t at = 0;
      if (!read_int(ss, machine, "machine") || !read_int(ss, at, "available time")) {
        return;
      }
      SourceLocation src{MachineId(machine), SimTime::from_usec(at),
                         SimTime::infinity()};
      // Optional third field: a finite hold end. A token that is present but
      // malformed must fail — falling back to infinity would silently turn
      // an expiring staged copy into a permanent one.
      std::int64_t hold_until = 0;
      std::string token;
      if (ss >> token) {
        if (!parse_token(token, hold_until, "source hold end") || !at_line_end(ss)) {
          return;
        }
        src.hold_until = SimTime::from_usec(hold_until);
      }
      s.items.back().sources.push_back(src);
    } else if (directive == "request") {
      if (s.items.empty()) {
        fail("request before any item");
        return;
      }
      std::int32_t machine = 0;
      std::int64_t deadline = 0;
      Priority priority = 0;
      if (read_int(ss, machine, "machine") && read_int(ss, deadline, "deadline") &&
          read_int(ss, priority, "priority") && at_line_end(ss)) {
        s.items.back().requests.push_back(
            Request{MachineId(machine), SimTime::from_usec(deadline), priority});
      }
    } else {
      fail("unknown directive '" + directive + "'");
    }
  }

  std::istream& is_;
  int line_no_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace

std::optional<Scenario> read_scenario(std::istream& is, std::string* error) {
  return Parser(is).run(error);
}

std::optional<Scenario> scenario_from_string(const std::string& text,
                                             std::string* error) {
  std::istringstream ss(text);
  return read_scenario(ss, error);
}

std::optional<Scenario> load_scenario(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in.good()) {
    if (error != nullptr) *error = "cannot open file: " + path;
    return std::nullopt;
  }
  return read_scenario(in, error);
}

}  // namespace datastage
