#include "serve/serve_protocol.hpp"

#include <cmath>
#include <initializer_list>
#include <utility>

#include "obs/json.hpp"

namespace datastage {

namespace {

using obs::JsonValue;

/// Largest integer a double carries exactly; times beyond it are rejected
/// rather than silently rounded.
constexpr double kMaxExactInteger = 9007199254740992.0;  // 2^53

bool fail(ServeError* error, ServeErrorCode code, std::string message) {
  if (error != nullptr) {
    error->code = code;
    error->message = std::move(message);
  }
  return false;
}

bool get_string(const JsonValue& object, const char* key, std::string* out,
                ServeError* error) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) {
    return fail(error, ServeErrorCode::kMissingField,
                std::string("missing field '") + key + "'");
  }
  if (value->kind != JsonValue::Kind::kString || value->string.empty()) {
    return fail(error, ServeErrorCode::kBadField,
                std::string("field '") + key + "' must be a non-empty string");
  }
  *out = value->string;
  return true;
}

/// Reads a non-negative integer (exact in double) into `out`.
bool get_integer(const JsonValue& object, const char* key, std::int64_t* out,
                 ServeError* error) {
  const JsonValue* value = object.find(key);
  if (value == nullptr) {
    return fail(error, ServeErrorCode::kMissingField,
                std::string("missing field '") + key + "'");
  }
  const double v = value->number;
  if (!value->is_number() || !(v >= 0.0) || v > kMaxExactInteger ||
      v != std::floor(v)) {
    return fail(error, ServeErrorCode::kBadField,
                std::string("field '") + key +
                    "' must be a non-negative integer");
  }
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool get_time(const JsonValue& object, const char* key, SimTime* out,
              ServeError* error) {
  std::int64_t usec = 0;
  if (!get_integer(object, key, &usec, error)) return false;
  *out = SimTime::from_usec(usec);
  return true;
}

/// Strictness backstop: every key of `object` must be in `allowed`.
bool only_fields(const JsonValue& object,
                 std::initializer_list<std::string_view> allowed,
                 ServeError* error) {
  for (const auto& [key, value] : object.object) {
    bool known = false;
    for (const std::string_view a : allowed) {
      if (key == a) known = true;
    }
    if (!known) {
      return fail(error, ServeErrorCode::kBadField,
                  "unexpected field '" + key + "'");
    }
  }
  return true;
}

bool parse_new_item(const JsonValue& value, NewItemPayload* out,
                    ServeError* error) {
  if (!value.is_object()) {
    return fail(error, ServeErrorCode::kBadField,
                "field 'new_item' must be an object");
  }
  if (!only_fields(value, {"size_bytes", "sources"}, error)) return false;
  if (!get_integer(value, "size_bytes", &out->size_bytes, error)) return false;
  if (out->size_bytes <= 0) {
    return fail(error, ServeErrorCode::kBadField,
                "field 'size_bytes' must be positive");
  }
  const JsonValue* sources = value.find("sources");
  if (sources == nullptr) {
    return fail(error, ServeErrorCode::kMissingField,
                "missing field 'sources'");
  }
  if (!sources->is_array() || sources->array.empty()) {
    return fail(error, ServeErrorCode::kBadField,
                "field 'sources' must be a non-empty array");
  }
  for (const JsonValue& entry : sources->array) {
    if (!entry.is_object()) {
      return fail(error, ServeErrorCode::kBadField,
                  "each source must be an object");
    }
    if (!only_fields(entry, {"machine", "available_at_usec"}, error)) {
      return false;
    }
    NewItemPayload::Source source;
    if (!get_string(entry, "machine", &source.machine, error)) return false;
    if (!get_time(entry, "available_at_usec", &source.available_at, error)) {
      return false;
    }
    out->sources.push_back(std::move(source));
  }
  return true;
}

void append_time(std::string& line, const char* key, SimTime t) {
  line += ",\"";
  line += key;
  line += "\":";
  line += std::to_string(t.usec());
}

}  // namespace

const char* serve_error_code_name(ServeErrorCode code) {
  switch (code) {
    case ServeErrorCode::kNone:
      return "none";
    case ServeErrorCode::kBadJson:
      return "bad_json";
    case ServeErrorCode::kBadVersion:
      return "bad_version";
    case ServeErrorCode::kMissingField:
      return "missing_field";
    case ServeErrorCode::kBadField:
      return "bad_field";
    case ServeErrorCode::kUnknownCommand:
      return "unknown_command";
    case ServeErrorCode::kDuplicateId:
      return "duplicate_id";
    case ServeErrorCode::kUnknownId:
      return "unknown_id";
    case ServeErrorCode::kUnknownItem:
      return "unknown_item";
    case ServeErrorCode::kUnknownMachine:
      return "unknown_machine";
    case ServeErrorCode::kDuplicateRequest:
      return "duplicate_request";
    case ServeErrorCode::kInvalidItem:
      return "invalid_item";
    case ServeErrorCode::kTimeRegression:
      return "time_regression";
    case ServeErrorCode::kShutdown:
      return "shutdown";
  }
  return "unknown";
}

std::optional<ServeCommand> parse_command(std::string_view line,
                                          ServeError* error) {
  std::string parse_error;
  const std::optional<JsonValue> parsed = obs::json_parse(line, &parse_error);
  if (!parsed.has_value()) {
    fail(error, ServeErrorCode::kBadJson, parse_error);
    return std::nullopt;
  }
  if (!parsed->is_object()) {
    fail(error, ServeErrorCode::kBadJson, "command must be a JSON object");
    return std::nullopt;
  }
  const JsonValue& object = *parsed;

  const JsonValue* version = object.find("v");
  if (version == nullptr) {
    fail(error, ServeErrorCode::kMissingField, "missing field 'v'");
    return std::nullopt;
  }
  if (!version->is_number() ||
      version->number != static_cast<double>(kServeProtocolVersion)) {
    fail(error, ServeErrorCode::kBadVersion,
         "unsupported protocol version (expected " +
             std::to_string(kServeProtocolVersion) + ")");
    return std::nullopt;
  }

  std::string cmd;
  if (!get_string(object, "cmd", &cmd, error)) return std::nullopt;

  if (cmd == "submit") {
    SubmitCommand submit;
    if (!only_fields(object,
                     {"v", "cmd", "id", "t_usec", "item", "dest",
                      "deadline_usec", "priority", "new_item"},
                     error)) {
      return std::nullopt;
    }
    if (!get_string(object, "id", &submit.id, error)) return std::nullopt;
    if (!get_time(object, "t_usec", &submit.at, error)) return std::nullopt;
    if (!get_string(object, "item", &submit.item, error)) return std::nullopt;
    if (!get_string(object, "dest", &submit.dest, error)) return std::nullopt;
    if (!get_time(object, "deadline_usec", &submit.deadline, error)) {
      return std::nullopt;
    }
    std::int64_t priority = 0;
    if (!get_integer(object, "priority", &priority, error)) return std::nullopt;
    if (priority > kPriorityHigh) {
      fail(error, ServeErrorCode::kBadField,
           "field 'priority' must lie in [0, 2]");
      return std::nullopt;
    }
    submit.priority = static_cast<Priority>(priority);
    if (const JsonValue* new_item = object.find("new_item")) {
      NewItemPayload payload;
      if (!parse_new_item(*new_item, &payload, error)) return std::nullopt;
      submit.new_item = std::move(payload);
    }
    return ServeCommand(std::move(submit));
  }
  if (cmd == "cancel") {
    CancelCommand cancel;
    if (!only_fields(object, {"v", "cmd", "id", "t_usec"}, error)) {
      return std::nullopt;
    }
    if (!get_string(object, "id", &cancel.id, error)) return std::nullopt;
    if (!get_time(object, "t_usec", &cancel.at, error)) return std::nullopt;
    return ServeCommand(std::move(cancel));
  }
  if (cmd == "advance") {
    AdvanceCommand advance;
    if (!only_fields(object, {"v", "cmd", "to_usec"}, error)) {
      return std::nullopt;
    }
    if (!get_time(object, "to_usec", &advance.to, error)) return std::nullopt;
    return ServeCommand(advance);
  }
  if (cmd == "query") {
    QueryCommand query;
    if (!only_fields(object, {"v", "cmd", "id"}, error)) return std::nullopt;
    if (!get_string(object, "id", &query.id, error)) return std::nullopt;
    return ServeCommand(std::move(query));
  }
  if (cmd == "stats") {
    if (!only_fields(object, {"v", "cmd"}, error)) return std::nullopt;
    return ServeCommand(StatsCommand{});
  }
  if (cmd == "shutdown") {
    if (!only_fields(object, {"v", "cmd"}, error)) return std::nullopt;
    return ServeCommand(ShutdownCommand{});
  }
  fail(error, ServeErrorCode::kUnknownCommand,
       "unknown command '" + cmd + "'");
  return std::nullopt;
}

std::string serialize_command(const ServeCommand& command) {
  std::string line = "{\"v\":";
  line += std::to_string(kServeProtocolVersion);
  line += ",\"cmd\":\"";
  if (const auto* submit = std::get_if<SubmitCommand>(&command)) {
    line += "submit\",\"id\":\"" + obs::json_escape(submit->id) + "\"";
    append_time(line, "t_usec", submit->at);
    line += ",\"item\":\"" + obs::json_escape(submit->item) + "\"";
    line += ",\"dest\":\"" + obs::json_escape(submit->dest) + "\"";
    append_time(line, "deadline_usec", submit->deadline);
    line += ",\"priority\":" + std::to_string(submit->priority);
    if (submit->new_item.has_value()) {
      line += ",\"new_item\":{\"size_bytes\":" +
              std::to_string(submit->new_item->size_bytes) + ",\"sources\":[";
      bool first = true;
      for (const NewItemPayload::Source& source : submit->new_item->sources) {
        if (!first) line += ",";
        first = false;
        line += "{\"machine\":\"" + obs::json_escape(source.machine) +
                "\",\"available_at_usec\":" +
                std::to_string(source.available_at.usec()) + "}";
      }
      line += "]}";
    }
  } else if (const auto* cancel = std::get_if<CancelCommand>(&command)) {
    line += "cancel\",\"id\":\"" + obs::json_escape(cancel->id) + "\"";
    append_time(line, "t_usec", cancel->at);
  } else if (const auto* advance = std::get_if<AdvanceCommand>(&command)) {
    line += "advance\"";
    append_time(line, "to_usec", advance->to);
  } else if (const auto* query = std::get_if<QueryCommand>(&command)) {
    line += "query\",\"id\":\"" + obs::json_escape(query->id) + "\"";
  } else if (std::holds_alternative<StatsCommand>(command)) {
    line += "stats\"";
  } else {
    line += "shutdown\"";
  }
  line += "}";
  return line;
}

std::string error_response(const ServeError& error) {
  std::string line = "{\"v\":";
  line += std::to_string(kServeProtocolVersion);
  line += ",\"ok\":false,\"error\":\"";
  line += serve_error_code_name(error.code);
  line += "\",\"message\":\"";
  line += obs::json_escape(error.message);
  line += "\"}";
  return line;
}

}  // namespace datastage
