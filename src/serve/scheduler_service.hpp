// Session-oriented scheduling facade: the open-world API behind
// datastage_serve.
//
// The batch surface (core run_case()/StagingEngine) answers one closed
// question — "given every request up front, what is the best schedule?".
// SchedulerService holds a *live* DynamicStager and answers the open-world
// questions a long-running daemon faces instead:
//
//   submit(r)    -> AdmissionDecision   admit/reject now, with a plan summary
//   cancel(...)  -> withdrew an outstanding request
//   advance_to(t)                       simulation time passes
//   snapshot()   -> ServiceSnapshot     aggregate serving state
//   finish()     -> DynamicResult       merged schedule + request records
//
// Admission is two-stage (the RCD idea: decide cheaply, schedule fully only
// for plausible work):
//   1. quick estimate — one deadline-pruned Dijkstra on the residual
//      scenario ("alone in the system", serve/admission.hpp). Infeasible
//      here means infeasible, full stop: reject without touching the plan.
//   2. bounded incremental replan — inject the request into the stager,
//      replan the residual, and admit iff the new plan delivers the item by
//      its deadline. A request the plan cannot serve on time is withdrawn
//      again (cancel event at the same instant), so a rejected submit leaves
//      no outstanding work behind.
//
// Determinism contract: decisions are pure functions of (initial scenario,
// command/fault history). Wall-clock decision latency is *measured* (metrics
// histogram admission.decision_usec) but never feeds a decision or a
// decision-log field.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/registry.hpp"
#include "dynamic/events.hpp"
#include "dynamic/stager.hpp"
#include "model/scenario.hpp"
#include "util/time.hpp"

namespace datastage {

struct ServiceOptions {
  SchedulerSpec spec{HeuristicKind::kFullOne, CostCriterion::kC4};
  EngineOptions engine;
  /// Soft wall-clock budget per submit decision, in microseconds. Decisions
  /// exceeding it bump admission.budget_overruns (the decision still
  /// completes — the budget is an SLO, not a timeout). 0 disables.
  std::int64_t latency_budget_usec = 0;
  /// Run the quick estimate before the full replan. Off, every submit pays
  /// for a replan even when it is hopeless (the ablation perf_serve measures).
  bool quick_admission = true;
  /// Fault events to interleave with the request stream, sorted by
  /// (time, staging_event_rank): at equal timestamps faults apply before
  /// request arrivals, so a submit at t sees the post-fault world.
  std::vector<StagingEvent> fault_events;
};

enum class AdmissionOutcome {
  kAdmitted,          ///< plan commits to an on-time delivery
  kAlreadySatisfied,  ///< destination already holds a usable copy
  kQuickReject,       ///< stage 1: infeasible even alone in the system
  kFullReject,        ///< stage 2: the full replan cannot meet the deadline
};

const char* admission_outcome_name(AdmissionOutcome outcome);

struct AdmissionDecision {
  AdmissionOutcome outcome = AdmissionOutcome::kFullReject;
  /// Stage 1 ran (quick_admission on and the submit reached it).
  bool quick_checked = false;
  bool quick_feasible = false;
  /// Stage 1's alone-in-the-system arrival bound (infinity if infeasible).
  SimTime quick_arrival = SimTime::infinity();
  /// The arrival the committed plan promises (for kAdmitted /
  /// kAlreadySatisfied); infinity on rejects.
  SimTime planned_arrival = SimTime::infinity();
  /// Replans this decision consumed (0 for quick rejects).
  std::size_t replans = 0;
  /// Weighted value the plan currently locks in across every admitted
  /// request (satisfied already, or planned to arrive by deadline).
  double committed_value = 0.0;
  /// Wall-clock decision latency. Measurement only: it feeds the latency
  /// histogram and must never appear in a decision log (determinism).
  std::int64_t decision_nanos = 0;

  bool admitted() const {
    return outcome == AdmissionOutcome::kAdmitted ||
           outcome == AdmissionOutcome::kAlreadySatisfied;
  }
};

struct SubmitRequest {
  SimTime at = SimTime::zero();
  std::string item_name;
  Request request;
  /// Present for a submit that introduces a brand-new item (name, size,
  /// sources; any requests on the payload are ignored). On a quick reject
  /// the item is *not* introduced; on a full reject it is (its copies
  /// exist), but the request is withdrawn.
  std::optional<DataItem> new_item;
};

struct ServiceSnapshot {
  SimTime now = SimTime::zero();
  std::size_t submits = 0;
  std::size_t admitted = 0;  ///< includes already-satisfied
  std::size_t quick_rejects = 0;
  std::size_t full_rejects = 0;
  std::size_t already_satisfied = 0;
  std::size_t cancelled = 0;
  std::size_t replans = 0;
  std::size_t committed_steps = 0;
  std::size_t planned_steps = 0;
  double committed_value = 0.0;
};

class SchedulerService {
 public:
  /// Starts at time zero on `initial` (validated); its batch requests count
  /// as admitted at t=0. `options.engine.observer` receives the admission
  /// counters/histogram and `admission`/`cancel` trace events.
  SchedulerService(Scenario initial, ServiceOptions options);

  /// Decides one request at submit.at (>= now(); time advances to it).
  AdmissionDecision submit(const SubmitRequest& submit);

  /// Withdraws the outstanding request (item, destination) at time `at`.
  /// False (and no replan) when no such request is outstanding.
  bool cancel(const std::string& item_name, MachineId destination, SimTime at);

  /// Advances the clock, applying any scheduled fault events on the way.
  void advance_to(SimTime t);

  /// Lifecycle state of the most recent request for (item, destination).
  DynamicRequestStatus request_status(const std::string& item_name,
                                      MachineId destination) const;

  /// Arrival the current plan promises for (item, destination).
  SimTime planned_arrival(const std::string& item_name,
                          MachineId destination) const;

  bool has_item(const std::string& item_name) const;

  /// Pre-check for SubmitRequest::new_item: the new sources must fit their
  /// machines' storage on top of the current residual.
  bool new_item_fits(const DataItem& item) const;

  ServiceSnapshot snapshot() const;

  /// Applies all remaining fault events and closes the run.
  DynamicResult finish();

  SimTime now() const { return stager_.now(); }

 private:
  /// An admission ledger entry; committed_value() re-evaluates each against
  /// the live plan (a fault can un-commit what a submit once locked in).
  struct AdmittedRequest {
    std::string item_name;
    MachineId destination;
    SimTime deadline;
    Priority priority = kPriorityLow;
  };

  /// Applies scheduled fault events with at <= t (faults order before the
  /// request events of the same instant), then advances the stager clock.
  void drain_faults_and_advance(SimTime t);
  /// Stamps value/latency onto a finished decision, records metrics and
  /// emits the `admission` trace event.
  void finish_decision(AdmissionDecision& decision, const SubmitRequest& submit,
                       std::int64_t start_nanos);
  double committed_value() const;
  void bump(const char* counter) const;
  obs::RunTrace* trace() const;
  void record_latency(std::int64_t nanos) const;

  DynamicStager stager_;
  SchedulerSpec spec_;
  EngineOptions engine_;
  std::int64_t latency_budget_usec_ = 0;
  bool quick_admission_ = true;
  PriorityWeighting weighting_;

  std::vector<StagingEvent> fault_events_;
  std::size_t next_fault_ = 0;

  std::vector<AdmittedRequest> ledger_;
  ServiceSnapshot counts_;  ///< now/replans/steps filled in snapshot()
  bool finished_ = false;
};

}  // namespace datastage
