#include "serve/serve_session.hpp"

#include <utility>

#include "obs/json.hpp"
#include "util/assert.hpp"

namespace datastage {

namespace {

const char* request_status_name(DynamicRequestStatus status) {
  switch (status) {
    case DynamicRequestStatus::kUnknown:
      return "unknown";
    case DynamicRequestStatus::kPending:
      return "pending";
    case DynamicRequestStatus::kSatisfied:
      return "satisfied";
    case DynamicRequestStatus::kUnsatisfied:
      return "unsatisfied";
    case DynamicRequestStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

/// Starts a success line: {"v":1,"ok":true,"cmd":"<cmd>". Every response
/// opens with the same two fixed keys so consumers can dispatch cheaply.
std::string begin_ok(const char* cmd) {
  std::string line = "{\"v\":";
  line += std::to_string(kServeProtocolVersion);
  line += ",\"ok\":true,\"cmd\":\"";
  line += cmd;
  line += "\"";
  return line;
}

void append_string(std::string& line, const char* key, std::string_view value) {
  line += ",\"";
  line += key;
  line += "\":\"";
  line += obs::json_escape(value);
  line += "\"";
}

void append_int(std::string& line, const char* key, std::int64_t value) {
  line += ",\"";
  line += key;
  line += "\":";
  line += std::to_string(value);
}

void append_size(std::string& line, const char* key, std::size_t value) {
  append_int(line, key, static_cast<std::int64_t>(value));
}

void append_bool(std::string& line, const char* key, bool value) {
  line += ",\"";
  line += key;
  line += "\":";
  line += value ? "true" : "false";
}

void append_double(std::string& line, const char* key, double value) {
  line += ",\"";
  line += key;
  line += "\":";
  line += obs::json_number(value);
}

std::string session_error(ServeErrorCode code, std::string message) {
  return error_response(ServeError{code, std::move(message)});
}

}  // namespace

ServeSession::ServeSession(Scenario initial, ServiceOptions options)
    : service_(initial, options),
      weighting_(std::move(options.engine.weighting)) {
  for (std::size_t i = 0; i < initial.machines.size(); ++i) {
    machines_.emplace(initial.machines[i].name,
                      MachineId(static_cast<std::int32_t>(i)));
  }
}

std::string ServeSession::handle_line(std::string_view line) {
  ServeError error;
  const std::optional<ServeCommand> command = parse_command(line, &error);
  if (!command.has_value()) return error_response(error);
  return handle(*command);
}

std::string ServeSession::handle(const ServeCommand& command) {
  if (shut_down_) {
    return session_error(ServeErrorCode::kShutdown,
                         "session is shut down");
  }
  if (const auto* submit = std::get_if<SubmitCommand>(&command)) {
    return handle_submit(*submit);
  }
  if (const auto* cancel = std::get_if<CancelCommand>(&command)) {
    return handle_cancel(*cancel);
  }
  if (const auto* query = std::get_if<QueryCommand>(&command)) {
    return handle_query(*query);
  }
  if (const auto* advance = std::get_if<AdvanceCommand>(&command)) {
    if (advance->to < service_.now()) {
      return session_error(ServeErrorCode::kTimeRegression,
                           "cannot advance to the past");
    }
    service_.advance_to(advance->to);
    std::string line = begin_ok("advance");
    append_int(line, "now_usec", service_.now().usec());
    line += "}";
    return line;
  }
  if (std::holds_alternative<StatsCommand>(command)) return handle_stats();
  return handle_shutdown();
}

std::pair<DynamicRequestStatus, SimTime> ServeSession::record_status(
    const RequestRecord& record) const {
  if (record.terminal) return {record.status, record.arrival};
  const DynamicRequestStatus status =
      service_.request_status(record.item, record.destination);
  SimTime arrival = SimTime::infinity();
  if (status == DynamicRequestStatus::kSatisfied ||
      status == DynamicRequestStatus::kPending) {
    arrival = service_.planned_arrival(record.item, record.destination);
  }
  return {status, arrival};
}

void ServeSession::freeze(RequestRecord& record) {
  if (record.terminal) return;
  const auto [status, arrival] = record_status(record);
  record.terminal = true;
  record.status = status;
  record.arrival = arrival;
}

std::string ServeSession::handle_submit(const SubmitCommand& submit) {
  if (requests_.find(submit.id) != requests_.end()) {
    return session_error(ServeErrorCode::kDuplicateId,
                         "id '" + submit.id + "' was already submitted");
  }
  if (submit.at < service_.now()) {
    return session_error(ServeErrorCode::kTimeRegression,
                         "cannot submit in the past");
  }
  const auto dest = machines_.find(submit.dest);
  if (dest == machines_.end()) {
    return session_error(ServeErrorCode::kUnknownMachine,
                         "unknown machine '" + submit.dest + "'");
  }

  SubmitRequest request;
  request.at = submit.at;
  request.item_name = submit.item;
  request.request =
      Request{dest->second, submit.deadline, submit.priority};
  if (submit.new_item.has_value()) {
    if (service_.has_item(submit.item)) {
      return session_error(ServeErrorCode::kInvalidItem,
                           "item '" + submit.item + "' already exists");
    }
    DataItem item;
    item.name = submit.item;
    item.size_bytes = submit.new_item->size_bytes;
    for (const NewItemPayload::Source& source : submit.new_item->sources) {
      const auto machine = machines_.find(source.machine);
      if (machine == machines_.end()) {
        return session_error(ServeErrorCode::kUnknownMachine,
                             "unknown machine '" + source.machine + "'");
      }
      item.sources.push_back(SourceLocation{machine->second,
                                            source.available_at});
    }
    if (!service_.new_item_fits(item)) {
      return session_error(
          ServeErrorCode::kInvalidItem,
          "item '" + submit.item + "' does not fit its source machines");
    }
    request.new_item = std::move(item);
  } else if (!service_.has_item(submit.item)) {
    return session_error(ServeErrorCode::kUnknownItem,
                         "unknown item '" + submit.item + "'");
  }
  if (service_.request_status(submit.item, dest->second) ==
      DynamicRequestStatus::kPending) {
    return session_error(ServeErrorCode::kDuplicateRequest,
                         "a request for ('" + submit.item + "', '" +
                             submit.dest + "') is already outstanding");
  }
  // The (item, dest) slot is free again: the previous occupant (if any) is
  // resolved. Freeze its outcome before the service's "latest request wins"
  // queries start answering for the new one.
  const std::pair<std::string, std::int32_t> slot{submit.item,
                                                  dest->second.value()};
  const auto previous = slots_.find(slot);
  if (previous != slots_.end()) freeze(requests_.at(previous->second));

  const AdmissionDecision decision = service_.submit(request);

  RequestRecord record;
  record.item = submit.item;
  record.destination = dest->second;
  record.deadline = submit.deadline;
  record.admitted = decision.admitted();
  if (!record.admitted) {
    record.terminal = true;
    record.status = DynamicRequestStatus::kUnknown;  // reported as "rejected"
  }
  requests_.emplace(submit.id, std::move(record));
  slots_[slot] = submit.id;

  std::string line = begin_ok("submit");
  append_string(line, "id", submit.id);
  append_string(line, "outcome", admission_outcome_name(decision.outcome));
  append_bool(line, "admitted", decision.admitted());
  append_bool(line, "quick_checked", decision.quick_checked);
  append_bool(line, "quick_feasible", decision.quick_feasible);
  if (!decision.quick_arrival.is_infinite()) {
    append_int(line, "quick_arrival_usec", decision.quick_arrival.usec());
  }
  if (!decision.planned_arrival.is_infinite()) {
    append_int(line, "planned_arrival_usec", decision.planned_arrival.usec());
  }
  append_size(line, "replans", decision.replans);
  append_double(line, "committed_value", decision.committed_value);
  line += "}";
  return line;
}

std::string ServeSession::handle_cancel(const CancelCommand& cancel) {
  const auto it = requests_.find(cancel.id);
  if (it == requests_.end()) {
    return session_error(ServeErrorCode::kUnknownId,
                         "unknown id '" + cancel.id + "'");
  }
  if (cancel.at < service_.now()) {
    return session_error(ServeErrorCode::kTimeRegression,
                         "cannot cancel in the past");
  }
  RequestRecord& record = it->second;
  bool withdrawn = false;
  // A rejected or already-frozen request has nothing outstanding to
  // withdraw; the cancel is then a no-op, but time still passes to `at`.
  if (record.admitted && !record.terminal) {
    withdrawn = service_.cancel(record.item, record.destination, cancel.at);
    freeze(record);
  } else {
    service_.advance_to(cancel.at);
  }
  std::string line = begin_ok("cancel");
  append_string(line, "id", cancel.id);
  append_bool(line, "cancelled", withdrawn);
  append_int(line, "now_usec", service_.now().usec());
  line += "}";
  return line;
}

std::string ServeSession::handle_query(const QueryCommand& query) {
  const auto it = requests_.find(query.id);
  if (it == requests_.end()) {
    return session_error(ServeErrorCode::kUnknownId,
                         "unknown id '" + query.id + "'");
  }
  const RequestRecord& record = it->second;
  std::string line = begin_ok("query");
  append_string(line, "id", query.id);
  if (!record.admitted) {
    append_string(line, "status", "rejected");
  } else {
    const auto [status, arrival] = record_status(record);
    append_string(line, "status", request_status_name(status));
    if (!arrival.is_infinite()) {
      append_int(line, "arrival_usec", arrival.usec());
    }
  }
  line += "}";
  return line;
}

std::string ServeSession::handle_stats() const {
  const ServiceSnapshot snap = service_.snapshot();
  std::string line = begin_ok("stats");
  append_int(line, "now_usec", snap.now.usec());
  append_size(line, "submits", snap.submits);
  append_size(line, "admitted", snap.admitted);
  append_size(line, "already_satisfied", snap.already_satisfied);
  append_size(line, "quick_rejects", snap.quick_rejects);
  append_size(line, "full_rejects", snap.full_rejects);
  append_size(line, "cancelled", snap.cancelled);
  append_size(line, "replans", snap.replans);
  append_size(line, "committed_steps", snap.committed_steps);
  append_size(line, "planned_steps", snap.planned_steps);
  append_double(line, "committed_value", snap.committed_value);
  line += "}";
  return line;
}

std::string ServeSession::handle_shutdown() {
  const DynamicResult result = service_.finish();
  shut_down_ = true;
  std::string line = begin_ok("shutdown");
  append_size(line, "requests", result.requests.size());
  append_size(line, "satisfied", result.satisfied_count());
  append_double(line, "value", result.weighted_value(weighting_));
  append_size(line, "replans", result.replans);
  line += "}";
  return line;
}

}  // namespace datastage
