#include "serve/admission.hpp"

#include <array>

#include "net/network_state.hpp"
#include "net/storage_timeline.hpp"
#include "net/topology.hpp"
#include "routing/dijkstra.hpp"
#include "util/ids.hpp"

namespace datastage {

QuickEstimate quick_admission_estimate(const Scenario& residual,
                                       const std::string& item_name,
                                       const Request& request,
                                       const PriorityWeighting& weighting) {
  QuickEstimate estimate;
  estimate.value = weighting.weight(request.priority);

  ItemId item = ItemId::invalid();
  for (std::size_t i = 0; i < residual.items.size(); ++i) {
    if (residual.items[i].name == item_name) {
      item = ItemId(static_cast<std::int32_t>(i));
      break;
    }
  }
  if (!item.valid()) return estimate;
  bool has_copy = false;
  for (const SourceLocation& src : residual.item(item).sources) {
    if (!src.hold_window().empty()) has_copy = true;
  }
  if (!has_copy) return estimate;

  // One deadline-pruned Dijkstra, stopping as soon as the destination
  // settles. The pristine NetworkState charges only the residual's copies —
  // the "alone in the system" relaxation.
  const Topology topology(residual);
  const NetworkState pristine(residual);
  DijkstraOptions options;
  options.prune_after = request.deadline;
  const std::array<MachineId, 1> targets{request.destination};
  options.targets = targets;
  const RouteTree tree = compute_route_tree(pristine, topology, item, options);

  if (tree.reached(request.destination) &&
      tree.arrival(request.destination) <= request.deadline) {
    estimate.feasible = true;
    estimate.earliest_arrival = tree.arrival(request.destination);
  }
  return estimate;
}

bool new_item_sources_fit(const Scenario& residual, const DataItem& item) {
  // Rebuild the storage charge of every residual copy, then try the new
  // item's copies on top. New source copies hold forever (they are original
  // sources of their item), so the fit check uses an infinite hold window.
  std::vector<StorageTimeline> charge;
  charge.reserve(residual.machine_count());
  for (const Machine& machine : residual.machines) {
    charge.emplace_back(machine.capacity_bytes);
  }
  for (const DataItem& existing : residual.items) {
    for (const SourceLocation& src : existing.sources) {
      const Interval hold = src.hold_window();
      if (hold.empty()) continue;
      if (!charge[src.machine.index()].fits(existing.size_bytes, hold)) {
        return false;  // the residual itself is over capacity: refuse
      }
      charge[src.machine.index()].allocate(existing.size_bytes, hold);
    }
  }
  for (const SourceLocation& src : item.sources) {
    const Interval hold{src.available_at, SimTime::infinity()};
    if (!charge[src.machine.index()].fits(item.size_bytes, hold)) return false;
    charge[src.machine.index()].allocate(item.size_bytes, hold);
  }
  return true;
}

}  // namespace datastage
