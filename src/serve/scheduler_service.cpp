#include "serve/scheduler_service.hpp"

#include <utility>

#include "obs/event_names.hpp"
#include "obs/observer.hpp"
#include "serve/admission.hpp"
#include "util/assert.hpp"

namespace datastage {

namespace {

/// Latency histogram bounds in microseconds: sub-millisecond buckets for the
/// quick path, up to a second for heavyweight replans.
std::vector<double> decision_usec_bounds() {
  return {50.0,    100.0,   250.0,   500.0,    1000.0,    2500.0,   5000.0,
          10000.0, 25000.0, 50000.0, 100000.0, 250000.0, 1000000.0};
}

}  // namespace

const char* admission_outcome_name(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      return "admitted";
    case AdmissionOutcome::kAlreadySatisfied:
      return "already_satisfied";
    case AdmissionOutcome::kQuickReject:
      return "quick_reject";
    case AdmissionOutcome::kFullReject:
      return "full_reject";
  }
  return "unknown";
}

SchedulerService::SchedulerService(Scenario initial, ServiceOptions options)
    : stager_(initial, options.spec, options.engine),
      spec_(options.spec),
      engine_(options.engine),
      latency_budget_usec_(options.latency_budget_usec),
      quick_admission_(options.quick_admission),
      weighting_(options.engine.weighting),
      fault_events_(std::move(options.fault_events)) {
  sort_staging_events(fault_events_);
  for (const StagingEvent& event : fault_events_) {
    DS_ASSERT_MSG(!std::holds_alternative<NewItemEvent>(event.body) &&
                      !std::holds_alternative<NewRequestEvent>(event.body) &&
                      !std::holds_alternative<CancelRequestEvent>(event.body),
                  "service fault stream must hold fault events only; requests "
                  "go through submit()/cancel()");
  }
  // The initial scenario's batch requests are the ledger's time-zero cohort:
  // they were "admitted" by accepting the scenario.
  for (const DataItem& item : initial.items) {
    for (const Request& request : item.requests) {
      ledger_.push_back({item.name, request.destination, request.deadline,
                         request.priority});
    }
  }
}

void SchedulerService::bump(const char* counter) const {
  if (engine_.observer != nullptr && engine_.observer->metrics != nullptr) {
    engine_.observer->metrics->counter(counter).inc();
  }
}

obs::RunTrace* SchedulerService::trace() const {
  return engine_.observer != nullptr ? engine_.observer->trace : nullptr;
}

void SchedulerService::record_latency(std::int64_t nanos) const {
  if (engine_.observer == nullptr || engine_.observer->metrics == nullptr) {
    return;
  }
  const double usec = static_cast<double>(nanos) / 1000.0;
  engine_.observer->metrics
      ->histogram("admission.decision_usec", decision_usec_bounds())
      .observe(usec);
  if (latency_budget_usec_ > 0 &&
      usec > static_cast<double>(latency_budget_usec_)) {
    engine_.observer->metrics->counter("admission.budget_overruns").inc();
  }
}

void SchedulerService::drain_faults_and_advance(SimTime t) {
  while (next_fault_ < fault_events_.size() &&
         fault_events_[next_fault_].at <= t) {
    stager_.on_event(fault_events_[next_fault_]);
    ++next_fault_;
  }
  if (t > stager_.now()) stager_.advance_to(t);
}

double SchedulerService::committed_value() const {
  double value = 0.0;
  for (const AdmittedRequest& admitted : ledger_) {
    switch (stager_.request_status(admitted.item_name, admitted.destination)) {
      case DynamicRequestStatus::kSatisfied:
        value += weighting_.weight(admitted.priority);
        break;
      case DynamicRequestStatus::kPending: {
        const SimTime arrival =
            stager_.planned_arrival(admitted.item_name, admitted.destination);
        if (!arrival.is_infinite() && arrival <= admitted.deadline) {
          value += weighting_.weight(admitted.priority);
        }
        break;
      }
      default:
        break;
    }
  }
  return value;
}

AdmissionDecision SchedulerService::submit(const SubmitRequest& submit) {
  DS_ASSERT_MSG(!finished_, "submit after finish");
  DS_ASSERT_MSG(submit.at >= now(), "submits must arrive in time order");
  const std::int64_t start_nanos = steady_clock_nanos();
  drain_faults_and_advance(submit.at);

  AdmissionDecision decision;
  ++counts_.submits;
  bump("admission.submits");

  // Stage 1: quick estimate on the residual world. For a brand-new item the
  // estimate runs with the item appended to the residual; a quick reject then
  // simply never introduces it.
  if (quick_admission_) {
    decision.quick_checked = true;
    bump("admission.quick_checks");
    Scenario residual = stager_.residual_scenario();
    if (submit.new_item.has_value()) {
      DataItem probe = *submit.new_item;
      probe.requests.clear();
      residual.items.push_back(std::move(probe));
    }
    const QuickEstimate estimate = quick_admission_estimate(
        residual, submit.item_name, submit.request, weighting_);
    decision.quick_feasible = estimate.feasible;
    decision.quick_arrival = estimate.earliest_arrival;
    if (!estimate.feasible) {
      decision.outcome = AdmissionOutcome::kQuickReject;
      ++counts_.quick_rejects;
      bump("admission.quick_rejects");
      finish_decision(decision, submit, start_nanos);
      return decision;
    }
  }

  // Stage 2: inject the request and let the stager replan the residual.
  const std::size_t replans_before = stager_.replans();
  if (submit.new_item.has_value()) {
    DataItem item = *submit.new_item;
    item.requests.clear();
    stager_.on_event({submit.at, NewItemEvent{std::move(item)}});
  }
  stager_.on_event(
      {submit.at, NewRequestEvent{submit.item_name, submit.request}});

  switch (stager_.request_status(submit.item_name,
                                 submit.request.destination)) {
    case DynamicRequestStatus::kSatisfied:
      // Resolved instantly: the destination already held a usable copy.
      decision.outcome = AdmissionOutcome::kAlreadySatisfied;
      decision.planned_arrival =
          stager_.planned_arrival(submit.item_name, submit.request.destination);
      ++counts_.admitted;
      ++counts_.already_satisfied;
      bump("admission.admitted");
      bump("admission.already_satisfied");
      ledger_.push_back({submit.item_name, submit.request.destination,
                         submit.request.deadline, submit.request.priority});
      break;
    case DynamicRequestStatus::kPending: {
      const SimTime arrival =
          stager_.planned_arrival(submit.item_name, submit.request.destination);
      if (!arrival.is_infinite() && arrival <= submit.request.deadline) {
        decision.outcome = AdmissionOutcome::kAdmitted;
        decision.planned_arrival = arrival;
        ++counts_.admitted;
        bump("admission.admitted");
        ledger_.push_back({submit.item_name, submit.request.destination,
                           submit.request.deadline, submit.request.priority});
        break;
      }
      // The full replan cannot meet the deadline: withdraw the request at
      // the same instant so a reject leaves no outstanding work behind.
      stager_.on_event({submit.at, CancelRequestEvent{
                                       submit.item_name,
                                       submit.request.destination}});
      decision.outcome = AdmissionOutcome::kFullReject;
      ++counts_.full_rejects;
      bump("admission.full_rejects");
      break;
    }
    default:
      // Resolved instantly as unsatisfied (e.g. the destination holds a copy
      // that arrived too late). Closed — nothing to withdraw.
      decision.outcome = AdmissionOutcome::kFullReject;
      ++counts_.full_rejects;
      bump("admission.full_rejects");
      break;
  }
  decision.replans = stager_.replans() - replans_before;
  finish_decision(decision, submit, start_nanos);
  return decision;
}

void SchedulerService::finish_decision(AdmissionDecision& decision,
                                       const SubmitRequest& submit,
                                       std::int64_t start_nanos) {
  decision.committed_value = committed_value();
  decision.decision_nanos = steady_clock_nanos() - start_nanos;
  record_latency(decision.decision_nanos);
  if (trace() != nullptr) {
    auto event = trace()->event(obs::events::kAdmission);
    event.field("t_usec", submit.at.usec())
        .field("item", submit.item_name)
        .field("dest", static_cast<std::int64_t>(
                           submit.request.destination.value()))
        .field("deadline_usec", submit.request.deadline.usec())
        .field("outcome", admission_outcome_name(decision.outcome))
        .field("quick_checked", decision.quick_checked)
        .field("quick_feasible", decision.quick_feasible)
        .field("replans", static_cast<std::int64_t>(decision.replans))
        .field("committed_value", decision.committed_value);
    if (!decision.planned_arrival.is_infinite()) {
      event.field("planned_arrival_usec", decision.planned_arrival.usec());
    }
  }
}

bool SchedulerService::cancel(const std::string& item_name,
                              MachineId destination, SimTime at) {
  DS_ASSERT_MSG(!finished_, "cancel after finish");
  DS_ASSERT_MSG(at >= now(), "cancels must arrive in time order");
  drain_faults_and_advance(at);
  const bool outstanding =
      stager_.request_status(item_name, destination) ==
      DynamicRequestStatus::kPending;
  stager_.on_event({at, CancelRequestEvent{item_name, destination}});
  if (outstanding) {
    ++counts_.cancelled;
    bump("admission.cancelled");
  }
  if (trace() != nullptr) {
    trace()
        ->event(obs::events::kCancel)
        .field("t_usec", at.usec())
        .field("item", item_name)
        .field("dest", static_cast<std::int64_t>(destination.value()))
        .field("withdrawn", outstanding);
  }
  return outstanding;
}

void SchedulerService::advance_to(SimTime t) {
  DS_ASSERT_MSG(!finished_, "advance after finish");
  DS_ASSERT_MSG(t >= now(), "time must be nondecreasing");
  drain_faults_and_advance(t);
}

DynamicRequestStatus SchedulerService::request_status(
    const std::string& item_name, MachineId destination) const {
  return stager_.request_status(item_name, destination);
}

SimTime SchedulerService::planned_arrival(const std::string& item_name,
                                          MachineId destination) const {
  return stager_.planned_arrival(item_name, destination);
}

bool SchedulerService::has_item(const std::string& item_name) const {
  return stager_.has_item(item_name);
}

bool SchedulerService::new_item_fits(const DataItem& item) const {
  return new_item_sources_fit(stager_.residual_scenario(), item);
}

ServiceSnapshot SchedulerService::snapshot() const {
  ServiceSnapshot snap = counts_;
  snap.now = stager_.now();
  snap.replans = stager_.replans();
  snap.committed_steps = stager_.committed_step_count();
  snap.planned_steps = stager_.planned_step_count();
  snap.committed_value = committed_value();
  return snap;
}

DynamicResult SchedulerService::finish() {
  DS_ASSERT_MSG(!finished_, "finish called twice");
  // Remaining scheduled faults are part of the world even if no command ever
  // advanced past them.
  while (next_fault_ < fault_events_.size()) {
    stager_.on_event(fault_events_[next_fault_]);
    ++next_fault_;
  }
  finished_ = true;
  return stager_.finish();
}

}  // namespace datastage
