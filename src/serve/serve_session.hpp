// One datastage_serve session: the command handler between the wire protocol
// and the SchedulerService.
//
// A ServeSession owns a SchedulerService plus the client-facing bookkeeping
// the service deliberately does not carry: the client-chosen request-id
// ledger (duplicate ids, cancel/query by id), machine-name resolution, and
// the shutdown latch. handle_line() is the daemon's whole request loop body:
// one request line in, exactly one response line out — deterministically, so
// replaying a command script reproduces the decision log byte for byte.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "serve/scheduler_service.hpp"
#include "serve/serve_protocol.hpp"

namespace datastage {

class ServeSession {
 public:
  ServeSession(Scenario initial, ServiceOptions options);

  /// Parses one request line and executes it; returns the response line
  /// (no trailing newline). Never throws — protocol and session errors
  /// become error_response lines.
  std::string handle_line(std::string_view line);

  /// Executes one already-parsed command.
  std::string handle(const ServeCommand& command);

  /// True once a shutdown command was processed; every later command is
  /// answered with the `shutdown` error code.
  bool shut_down() const { return shut_down_; }

  const SchedulerService& service() const { return service_; }

 private:
  /// Per-id outcome. Records of admitted requests stay live (queries read
  /// the scheduler) until the (item, dest) slot is reused or cancelled; then
  /// the terminal status freezes here.
  struct RequestRecord {
    std::string item;
    MachineId destination;
    SimTime deadline;
    bool admitted = false;
    bool terminal = false;  ///< status_/arrival_ frozen, stop asking the service
    DynamicRequestStatus status = DynamicRequestStatus::kUnknown;
    SimTime arrival = SimTime::infinity();
  };

  std::string handle_submit(const SubmitCommand& submit);
  std::string handle_cancel(const CancelCommand& cancel);
  std::string handle_query(const QueryCommand& query);
  std::string handle_stats() const;
  std::string handle_shutdown();
  /// Live or frozen status of a record, plus its arrival when resolved.
  std::pair<DynamicRequestStatus, SimTime> record_status(
      const RequestRecord& record) const;
  /// Freezes the terminal status of the id currently occupying this record's
  /// (item, dest) slot — called before the slot is reused or withdrawn.
  void freeze(RequestRecord& record);

  SchedulerService service_;
  PriorityWeighting weighting_;
  std::map<std::string, MachineId, std::less<>> machines_;
  std::map<std::string, RequestRecord, std::less<>> requests_;
  /// (item, dest) -> id of the most recent submit for that slot.
  std::map<std::pair<std::string, std::int32_t>, std::string> slots_;
  bool shut_down_ = false;
};

}  // namespace datastage
