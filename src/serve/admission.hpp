// RCD-style quick admission estimate: a cheap feasibility-plus-value check
// run before the full incremental replan.
//
// The estimate answers "could this request possibly be satisfied?" with one
// deadline-pruned, target-limited Dijkstra over the stager's residual
// scenario — the "alone in the residual system" relaxation of the bounds
// module (core/bounds.cpp): no other outstanding request consumes links, and
// only existing copies consume storage. The relaxation is safe in exactly
// one direction, which is the one admission control needs:
//
//   quick-infeasible  =>  no schedule on the residual can satisfy the
//                         request  =>  reject without replanning.
//
// A quick-feasible verdict is only an estimate (contention with other
// outstanding requests can still sink it); the service then runs the full
// bounded replan to decide. See docs/SERVING.md for the two-stage path.
#pragma once

#include <string>

#include "model/priority.hpp"
#include "model/scenario.hpp"
#include "util/time.hpp"

namespace datastage {

/// Result of the quick admission check for one (item, request) pair.
struct QuickEstimate {
  /// The item exists in the residual and a deadline-meeting route exists
  /// when the request runs alone in the residual system.
  bool feasible = false;
  /// Earliest arrival of that alone-in-the-system route (infinity when
  /// infeasible). A lower bound on any achievable arrival.
  SimTime earliest_arrival = SimTime::infinity();
  /// The weighted value the request contributes if admitted and satisfied.
  double value = 0.0;
};

/// Runs the quick check for a request for `item_name` against `residual`
/// (a DynamicStager::residual_scenario(), optionally with a brand-new item
/// appended). An unknown item or an item with no surviving copies is
/// infeasible.
QuickEstimate quick_admission_estimate(const Scenario& residual,
                                       const std::string& item_name,
                                       const Request& request,
                                       const PriorityWeighting& weighting);

/// True when `item`'s source copies fit their machines' storage on top of
/// everything `residual` already charges (residual sources hold through
/// their hold windows; the new copies hold forever, like any original
/// source). Must pass before a new item is injected into a stager — the
/// resource trackers assert, rather than check, that initial copies fit.
bool new_item_sources_fit(const Scenario& residual, const DataItem& item);

}  // namespace datastage
