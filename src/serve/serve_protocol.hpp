// Wire protocol of datastage_serve: versioned, newline-delimited JSON.
//
// Each request line is one JSON object carrying the protocol version and a
// command; each response line is one JSON object starting with the fixed
// keys `"v"` (version) and `"ok"`. The parser is strict in the fault_io
// tradition — every violation maps to a specific ServeErrorCode instead of a
// best-effort guess, so a client bug fails loudly and deterministically:
//
//   * the line must parse as a JSON object            -> bad_json
//   * "v" must be present                             -> missing_field
//   * "v" must be the integer 1                       -> bad_version
//   * "cmd" must be a known command                   -> unknown_command
//   * required fields present, correct type/range     -> missing_field /
//                                                        bad_field
//   * no unexpected keys                              -> bad_field
//
// Commands (time fields are integer simulation microseconds):
//
//   {"v":1,"cmd":"submit","id":"r1","t_usec":0,"item":"item3","dest":"M2",
//    "deadline_usec":5000000,"priority":2}
//   ... optionally introducing a brand-new item:
//    ,"new_item":{"size_bytes":4096,
//                 "sources":[{"machine":"M0","available_at_usec":0}]}
//   {"v":1,"cmd":"cancel","id":"r1","t_usec":1000}
//   {"v":1,"cmd":"advance","to_usec":2000000}
//   {"v":1,"cmd":"query","id":"r1"}
//   {"v":1,"cmd":"stats"}
//   {"v":1,"cmd":"shutdown"}
//
// serialize_command() renders the canonical form of any command;
// parse_command(serialize_command(c)) round-trips exactly (tested in
// tests/serve/serve_protocol_test.cpp). Session-level error codes
// (duplicate_id, unknown_item, ...) share ServeErrorCode so a decision log
// speaks one error vocabulary; see docs/SERVING.md for the full reference.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "model/priority.hpp"
#include "util/time.hpp"

namespace datastage {

inline constexpr std::int64_t kServeProtocolVersion = 1;

enum class ServeErrorCode {
  kNone = 0,
  // Parse-level (produced by parse_command).
  kBadJson,         ///< line is not a JSON object
  kBadVersion,      ///< "v" present but not the supported version
  kMissingField,    ///< a required field is absent
  kBadField,        ///< wrong type, out of range, or unexpected field
  kUnknownCommand,  ///< "cmd" names no known command
  // Session-level (produced by ServeSession).
  kDuplicateId,       ///< submit id already used
  kUnknownId,         ///< cancel/query id never submitted
  kUnknownItem,       ///< submit for an item the world does not know
  kUnknownMachine,    ///< destination / source machine name unknown
  kDuplicateRequest,  ///< an identical (item, dest) request is outstanding
  kInvalidItem,       ///< new_item payload rejected (exists / does not fit)
  kTimeRegression,    ///< command time is before the session clock
  kShutdown,          ///< command received after shutdown
};

/// Stable wire name of a code ("bad_json", "duplicate_id", ...).
const char* serve_error_code_name(ServeErrorCode code);

struct ServeError {
  ServeErrorCode code = ServeErrorCode::kNone;
  std::string message;
};

/// A brand-new item introduced by a submit: its copies and where they are.
struct NewItemPayload {
  std::int64_t size_bytes = 0;
  struct Source {
    std::string machine;
    SimTime available_at = SimTime::zero();
  };
  std::vector<Source> sources;
};

struct SubmitCommand {
  std::string id;  ///< client-chosen request id, unique per session
  SimTime at = SimTime::zero();
  std::string item;
  std::string dest;  ///< destination machine name
  SimTime deadline = SimTime::zero();
  Priority priority = kPriorityLow;  ///< 0..2 (paper's three classes)
  std::optional<NewItemPayload> new_item;
};

struct CancelCommand {
  std::string id;
  SimTime at = SimTime::zero();
};

struct AdvanceCommand {
  SimTime to = SimTime::zero();
};

struct QueryCommand {
  std::string id;
};

struct StatsCommand {};

struct ShutdownCommand {};

using ServeCommand = std::variant<SubmitCommand, CancelCommand, AdvanceCommand,
                                  QueryCommand, StatsCommand, ShutdownCommand>;

/// Parses one request line. On failure returns nullopt and fills `error`
/// (when non-null) with the specific code and a human-readable message.
std::optional<ServeCommand> parse_command(std::string_view line,
                                          ServeError* error = nullptr);

/// Canonical one-line JSON rendering; parse_command round-trips it.
std::string serialize_command(const ServeCommand& command);

/// The error response line: {"v":1,"ok":false,"error":"...","message":"..."}.
std::string error_response(const ServeError& error);

}  // namespace datastage
