// Random BADD-like scenario generator (paper §5.3).
//
// Every parameter of the paper's test-case generator is reproduced and
// exposed for sweeps: machine count, storage capacities, out-degrees, link
// counts, bandwidths, virtual-link windows (duration, daily availability
// percentage, randomized gaps), request volume, source/destination counts,
// item sizes, start times, deadlines, priorities and γ. The generated
// physical digraph is guaranteed strongly connected, and initial source
// copies are guaranteed to fit their machines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/scenario.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace datastage {

struct GeneratorConfig {
  // --- machines ---
  std::int32_t min_machines = 10;
  std::int32_t max_machines = 12;
  std::int64_t min_capacity_bytes = std::int64_t{10} * 1024 * 1024;           // 10 MB
  std::int64_t max_capacity_bytes = std::int64_t{20} * 1024 * 1024 * 1024;    // 20 GB

  // --- physical links ---
  std::int32_t min_out_degree = 4;  ///< distinct neighbor machines
  std::int32_t max_out_degree = 7;
  /// Probability that a chosen (from, to) pair gets a second physical link
  /// (the paper allows "at most two").
  double second_link_probability = 0.5;
  std::int64_t min_bandwidth_bps = 10'000;      // 10 Kbit/s
  std::int64_t max_bandwidth_bps = 1'500'000;   // 1.5 Mbit/s
  /// Fixed per-transfer latency range (the model has a latency term; §5.3
  /// does not give values, so the default is zero).
  SimDuration min_latency = SimDuration::zero();
  SimDuration max_latency = SimDuration::zero();

  // --- virtual links ---
  /// Candidate virtual-link durations (uniform choice per physical link).
  std::vector<SimDuration> virtual_link_durations = {
      SimDuration::minutes(30), SimDuration::hours(1), SimDuration::hours(2),
      SimDuration::hours(4)};
  std::int32_t min_available_percent = 50;   ///< of the 24h day, 10% steps
  std::int32_t max_available_percent = 100;
  SimDuration day = SimDuration::hours(24);
  /// Drop virtual links that start after this time; they cannot carry any
  /// transfer that matters (all deadlines precede it). Zero keeps all.
  SimTime keep_links_before = SimTime::zero() + SimDuration::hours(3);

  // --- requests ---
  std::int32_t min_requests_per_machine = 20;  ///< total requests = U[20,40] * m
  std::int32_t max_requests_per_machine = 40;
  /// Scales the drawn request total (1.0 = paper; the congestion sweep bench
  /// varies this).
  double load_multiplier = 1.0;
  std::int32_t max_sources = 5;
  std::int32_t max_destinations = 5;
  std::int64_t min_item_bytes = 10 * 1024;             // 10 KB
  std::int64_t max_item_bytes = 100 * 1024 * 1024;     // 100 MB
  SimDuration max_item_start = SimDuration::minutes(60);
  SimDuration min_deadline_offset = SimDuration::minutes(15);
  SimDuration max_deadline_offset = SimDuration::minutes(60);
  std::int32_t priority_classes = 3;  ///< uniform over {0 .. classes-1}

  // --- simulation ---
  SimTime horizon = SimTime::zero() + SimDuration::hours(2);
  SimDuration gc_gamma = SimDuration::minutes(6);

  // --- scale ---
  /// Replace the paper-faithful O(machines) pool shuffles (neighbor pools,
  /// source/destination eligibility scans) with expected-O(picks) rejection
  /// sampling. Draws from the RNG in a different order, so it is opt-in:
  /// existing presets keep byte-identical output. huge() turns it on.
  bool scalable_sampling = false;

  // --- presets ---
  /// The defaults: exactly the paper's §5.3 parameters.
  static GeneratorConfig paper() { return GeneratorConfig{}; }
  /// Smaller instances for unit tests and fast iteration: 8-10 machines,
  /// 5-8 requests per machine.
  static GeneratorConfig light();
  /// Heavily oversubscribed: paper topology with 2x request load and halved
  /// deadline windows.
  static GeneratorConfig congested();
  /// Scale tier: 5000 machines x 100 requests/machine (500k requests),
  /// fat-tree-ish out-degrees (8-16). Uses scalable_sampling.
  static GeneratorConfig huge();

  /// Every way this configuration is invalid (empty = valid): reversed
  /// min/max ranges, non-positive counts, and 32-bit overflows in derived
  /// products such as machines x requests_per_machine.
  std::vector<std::string> validation_errors() const;
  /// Exits with status 2 after printing each error to stderr (the CLI
  /// diagnostic contract). Called by generate_scenario().
  void validate_or_die() const;
};

/// Generates one scenario. The result passes Scenario::validate() and has a
/// strongly connected physical digraph.
Scenario generate_scenario(const GeneratorConfig& config, Rng& rng);

/// Generates `count` scenarios with independent RNG streams derived from
/// `seed` (case i is identical regardless of count — stable test fixtures).
std::vector<Scenario> generate_cases(const GeneratorConfig& config, std::uint64_t seed,
                                     std::size_t count);

}  // namespace datastage
