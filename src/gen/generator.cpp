#include "gen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <numeric>

#include "net/topology.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace datastage {
namespace {

std::vector<bool> reachable(std::size_t m, const std::vector<PhysicalLink>& links,
                            bool reverse) {
  std::vector<std::vector<std::int32_t>> adj(m);
  for (const PhysicalLink& pl : links) {
    if (reverse) {
      adj[pl.to.index()].push_back(pl.from.value());
    } else {
      adj[pl.from.index()].push_back(pl.to.value());
    }
  }
  std::vector<bool> seen(m, false);
  std::vector<std::int32_t> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const auto u = static_cast<std::size_t>(stack.back());
    stack.pop_back();
    for (const std::int32_t w : adj[u]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

MachineId pick_where(Rng& rng, const std::vector<bool>& mask, bool value) {
  std::vector<std::int32_t> pool;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] == value) pool.push_back(static_cast<std::int32_t>(i));
  }
  DS_ASSERT(!pool.empty());
  return MachineId(pool[static_cast<std::size_t>(
      rng.uniform_i64(0, static_cast<std::int64_t>(pool.size()) - 1))]);
}

PhysicalLink make_link(const GeneratorConfig& config, Rng& rng, MachineId from,
                       MachineId to) {
  PhysicalLink pl;
  pl.from = from;
  pl.to = to;
  pl.bandwidth_bps = rng.uniform_i64(config.min_bandwidth_bps, config.max_bandwidth_bps);
  pl.latency = rng.uniform_duration(config.min_latency, config.max_latency);
  return pl;
}

void generate_machines(const GeneratorConfig& config, Rng& rng, Scenario& s,
                       std::int32_t m) {
  s.machines.reserve(static_cast<std::size_t>(m));
  for (std::int32_t i = 0; i < m; ++i) {
    Machine machine;
    machine.name = "M" + std::to_string(i);
    machine.capacity_bytes =
        rng.uniform_i64(config.min_capacity_bytes, config.max_capacity_bytes);
    s.machines.push_back(std::move(machine));
  }
}

void generate_physical_links(const GeneratorConfig& config, Rng& rng, Scenario& s) {
  const auto m = static_cast<std::int32_t>(s.machines.size());
  std::vector<std::int32_t> targets;
  for (std::int32_t i = 0; i < m; ++i) {
    const std::int32_t degree = std::min(
        m - 1, rng.uniform_i32(config.min_out_degree, config.max_out_degree));
    if (config.scalable_sampling) {
      // Rejection-sample `degree` distinct neighbors: expected O(degree)
      // draws per machine (degree << m at scale) instead of materializing
      // and shuffling an O(m) pool — the paper path is quadratic in m.
      targets.clear();
      while (static_cast<std::int32_t>(targets.size()) < degree) {
        const std::int32_t t = rng.uniform_i32(0, m - 1);
        if (t == i) continue;
        if (std::find(targets.begin(), targets.end(), t) != targets.end()) continue;
        targets.push_back(t);
      }
    } else {
      targets.clear();
      for (std::int32_t j = 0; j < m; ++j) {
        if (j != i) targets.push_back(j);
      }
      rng.shuffle(targets);
      targets.resize(static_cast<std::size_t>(degree));
    }
    for (const std::int32_t t : targets) {
      const MachineId to(t);
      s.phys_links.push_back(make_link(config, rng, MachineId(i), to));
      if (rng.bernoulli(config.second_link_probability)) {
        s.phys_links.push_back(make_link(config, rng, MachineId(i), to));
      }
    }
  }

  // Repair pass: add links until the physical digraph is strongly connected
  // (§5.1 guarantees strong connectivity). Random graphs with out-degree >= 4
  // on <= 12 nodes almost never need it.
  while (true) {
    const std::vector<bool> fwd = reachable(s.machines.size(), s.phys_links, false);
    if (std::find(fwd.begin(), fwd.end(), false) != fwd.end()) {
      s.phys_links.push_back(make_link(config, rng, pick_where(rng, fwd, true),
                                       pick_where(rng, fwd, false)));
      continue;
    }
    const std::vector<bool> rev = reachable(s.machines.size(), s.phys_links, true);
    if (std::find(rev.begin(), rev.end(), false) != rev.end()) {
      s.phys_links.push_back(make_link(config, rng, pick_where(rng, rev, false),
                                       pick_where(rng, rev, true)));
      continue;
    }
    break;
  }
}

void generate_virtual_links(const GeneratorConfig& config, Rng& rng, Scenario& s) {
  DS_ASSERT(!config.virtual_link_durations.empty());
  for (std::size_t p = 0; p < s.phys_links.size(); ++p) {
    const PhysicalLink& pl = s.phys_links[p];

    const SimDuration duration = rng.pick(std::span<const SimDuration>(
        config.virtual_link_durations.data(), config.virtual_link_durations.size()));
    const std::int32_t percent =
        10 * rng.uniform_i32(config.min_available_percent / 10,
                             config.max_available_percent / 10);
    const SimDuration available = SimDuration::from_usec(
        config.day.usec() / 100 * percent);

    std::int64_t nl = available.usec() / duration.usec();
    if (nl < 1) nl = 1;  // degenerate configs: at least one window
    const SimDuration unavailable =
        max(SimDuration::zero(), config.day - duration * nl);

    // Lead-in before the first window: U[0, unavailable/3] (§5.3), then the
    // remaining unavailable time is cut into the inter-window gaps; the tail
    // after the last window absorbs the rest of the day.
    const SimDuration lead =
        rng.uniform_duration(SimDuration::zero(), unavailable / 3);
    const SimDuration gap_budget = unavailable - lead;

    std::vector<SimDuration> gaps;
    if (nl > 1) {
      std::vector<std::int64_t> cuts;
      cuts.reserve(static_cast<std::size_t>(nl - 1));
      for (std::int64_t g = 0; g < nl - 1; ++g) {
        cuts.push_back(rng.uniform_i64(0, gap_budget.usec()));
      }
      std::sort(cuts.begin(), cuts.end());
      std::int64_t prev = 0;
      for (const std::int64_t cut : cuts) {
        gaps.push_back(SimDuration::from_usec(cut - prev));
        prev = cut;
      }
    }

    SimTime t = SimTime::zero() + lead;
    for (std::int64_t w = 0; w < nl; ++w) {
      const Interval window{t, t + duration};
      const bool keep = config.keep_links_before == SimTime::zero() ||
                        window.begin < config.keep_links_before;
      if (keep) {
        s.virt_links.push_back(VirtualLink{PhysLinkId(static_cast<std::int32_t>(p)),
                                           pl.from, pl.to, pl.bandwidth_bps,
                                           pl.latency, window});
      }
      t = window.end;
      if (w < nl - 1) t = t + gaps[static_cast<std::size_t>(w)];
    }
  }
}

// Scale-tier item generation: expected-O(picks) rejection sampling against a
// per-item epoch mark instead of the paper path's O(m) eligibility scan and
// pool shuffles per item (O(items * machines) overall — minutes at 5k
// machines / 500k requests). Separate function so the paper path's RNG
// stream stays byte-identical.
void generate_items_scalable(const GeneratorConfig& config, Rng& rng, Scenario& s) {
  const auto m = static_cast<std::int32_t>(s.machines.size());
  DS_ASSERT_MSG(m >= 2, "need at least two machines for sources and destinations");

  const double raw_total =
      static_cast<double>(rng.uniform_i32(config.min_requests_per_machine,
                                          config.max_requests_per_machine)) *
      static_cast<double>(m) * config.load_multiplier;
  const auto total_requests =
      std::max<std::int64_t>(1, std::llround(raw_total));

  std::vector<std::int64_t> reserved(static_cast<std::size_t>(m), 0);
  // mark[i] == epoch: machine i is already a source or destination of the
  // item being built. Epoch bump replaces clearing an O(m) bool vector.
  std::vector<std::int32_t> mark(static_cast<std::size_t>(m), 0);
  std::int32_t epoch = 0;
  std::int64_t assigned = 0;
  std::int32_t index = 0;

  std::vector<std::int32_t> sources;
  std::vector<std::int32_t> dests;
  std::vector<std::int32_t> eligible;

  while (assigned < total_requests) {
    std::int64_t size = rng.uniform_i64(config.min_item_bytes, config.max_item_bytes);
    ++epoch;

    const std::int32_t want_sources = rng.uniform_i32(1, config.max_sources);
    // Keep at least one machine free of sources so destinations exist.
    const std::int32_t source_cap = std::min(want_sources, m - 1);
    sources.clear();
    // Expected one draw per pick while storage is plentiful; the budget
    // bounds the pathological case before the deterministic scan fallback.
    std::int64_t budget = 16 * static_cast<std::int64_t>(source_cap) + 64;
    while (static_cast<std::int32_t>(sources.size()) < source_cap && budget > 0) {
      --budget;
      const auto c = static_cast<std::size_t>(rng.uniform_i32(0, m - 1));
      if (mark[c] == epoch) continue;
      if (s.machines[c].capacity_bytes - reserved[c] < size) continue;
      mark[c] = epoch;
      sources.push_back(static_cast<std::int32_t>(c));
    }
    if (sources.empty()) {
      // Budget exhausted without a single hit: storage is tight. Mirror the
      // paper path — full eligibility scan at the drawn size, then at the
      // minimum size, then give up.
      const auto scan = [&](std::int64_t sz) {
        eligible.clear();
        for (std::int32_t i = 0; i < m; ++i) {
          if (s.machines[static_cast<std::size_t>(i)].capacity_bytes -
                  reserved[static_cast<std::size_t>(i)] >=
              sz) {
            eligible.push_back(i);
          }
        }
      };
      scan(size);
      if (eligible.empty()) {
        size = config.min_item_bytes;
        scan(size);
      }
      if (eligible.empty()) {
        log_warn("generator: storage exhausted, stopping at " +
                 std::to_string(assigned) + "/" + std::to_string(total_requests) +
                 " requests");
        break;
      }
      rng.shuffle(eligible);
      const auto take = std::min(static_cast<std::size_t>(source_cap), eligible.size());
      for (std::size_t j = 0; j < take; ++j) {
        mark[static_cast<std::size_t>(eligible[j])] = epoch;
        sources.push_back(eligible[j]);
      }
    }

    DataItem item;
    item.name = "d" + std::to_string(index);
    item.size_bytes = size;
    const SimTime start =
        SimTime::zero() + rng.uniform_duration(SimDuration::zero(), config.max_item_start);
    for (const std::int32_t machine : sources) {
      item.sources.push_back(SourceLocation{MachineId(machine), start});
      reserved[static_cast<std::size_t>(machine)] += size;
    }

    const std::int32_t want_dests = rng.uniform_i32(1, config.max_destinations);
    const std::int64_t dest_cap = std::min<std::int64_t>(
        {want_dests, m - static_cast<std::int64_t>(sources.size()),
         total_requests - assigned});
    dests.clear();
    budget = 16 * dest_cap + 64;
    while (static_cast<std::int64_t>(dests.size()) < dest_cap && budget > 0) {
      --budget;
      const auto c = static_cast<std::size_t>(rng.uniform_i32(0, m - 1));
      if (mark[c] == epoch) continue;  // source or already a destination
      mark[c] = epoch;
      dests.push_back(static_cast<std::int32_t>(c));
    }
    if (dests.empty()) {
      // dest_cap >= 1 (source_cap <= m-1 leaves a non-source machine), so a
      // scan always finds one; ascending order is fine for this rare path.
      for (std::int32_t i = 0;
           i < m && static_cast<std::int64_t>(dests.size()) < dest_cap; ++i) {
        if (mark[static_cast<std::size_t>(i)] != epoch) {
          mark[static_cast<std::size_t>(i)] = epoch;
          dests.push_back(i);
        }
      }
    }
    DS_ASSERT(!dests.empty());

    for (const std::int32_t d : dests) {
      Request request;
      request.destination = MachineId(d);
      request.deadline = start + rng.uniform_duration(config.min_deadline_offset,
                                                      config.max_deadline_offset);
      request.priority = rng.uniform_i32(0, config.priority_classes - 1);
      item.requests.push_back(request);
    }
    assigned += static_cast<std::int64_t>(dests.size());
    s.items.push_back(std::move(item));
    ++index;
  }
}

void generate_items(const GeneratorConfig& config, Rng& rng, Scenario& s) {
  const auto m = static_cast<std::int32_t>(s.machines.size());
  DS_ASSERT_MSG(m >= 2, "need at least two machines for sources and destinations");

  const double raw_total =
      static_cast<double>(rng.uniform_i32(config.min_requests_per_machine,
                                          config.max_requests_per_machine)) *
      static_cast<double>(m) * config.load_multiplier;
  const auto total_requests =
      std::max<std::int64_t>(1, std::llround(raw_total));

  std::vector<std::int64_t> reserved(static_cast<std::size_t>(m), 0);
  std::int64_t assigned = 0;
  std::int32_t index = 0;

  while (assigned < total_requests) {
    std::int64_t size = rng.uniform_i64(config.min_item_bytes, config.max_item_bytes);

    // Source machines must be able to store their initial copy.
    std::vector<std::int32_t> eligible;
    for (std::int32_t i = 0; i < m; ++i) {
      if (s.machines[static_cast<std::size_t>(i)].capacity_bytes -
              reserved[static_cast<std::size_t>(i)] >=
          size) {
        eligible.push_back(i);
      }
    }
    if (eligible.empty()) {
      // All machines are tight; retry with the smallest admissible size once,
      // then give up on further items (extremely overloaded configs only).
      size = config.min_item_bytes;
      for (std::int32_t i = 0; i < m; ++i) {
        if (s.machines[static_cast<std::size_t>(i)].capacity_bytes -
                reserved[static_cast<std::size_t>(i)] >=
            size) {
          eligible.push_back(i);
        }
      }
      if (eligible.empty()) {
        log_warn("generator: storage exhausted, stopping at " +
                 std::to_string(assigned) + "/" + std::to_string(total_requests) +
                 " requests");
        break;
      }
    }

    rng.shuffle(eligible);
    const auto want_sources =
        static_cast<std::size_t>(rng.uniform_i32(1, config.max_sources));
    // Keep at least one machine free of sources so destinations exist.
    const std::size_t n_sources = std::min(
        {want_sources, eligible.size(), static_cast<std::size_t>(m - 1)});

    DataItem item;
    item.name = "d" + std::to_string(index);
    item.size_bytes = size;
    const SimTime start =
        SimTime::zero() + rng.uniform_duration(SimDuration::zero(), config.max_item_start);
    std::vector<bool> is_source(static_cast<std::size_t>(m), false);
    for (std::size_t j = 0; j < n_sources; ++j) {
      const std::int32_t machine = eligible[j];
      item.sources.push_back(SourceLocation{MachineId(machine), start});
      is_source[static_cast<std::size_t>(machine)] = true;
      reserved[static_cast<std::size_t>(machine)] += size;
    }

    std::vector<std::int32_t> dest_pool;
    for (std::int32_t i = 0; i < m; ++i) {
      if (!is_source[static_cast<std::size_t>(i)]) dest_pool.push_back(i);
    }
    rng.shuffle(dest_pool);
    const auto want_dests =
        static_cast<std::size_t>(rng.uniform_i32(1, config.max_destinations));
    const std::size_t n_dests =
        std::min({want_dests, dest_pool.size(),
                  static_cast<std::size_t>(total_requests - assigned)});
    DS_ASSERT(n_dests >= 1);

    for (std::size_t j = 0; j < n_dests; ++j) {
      Request request;
      request.destination = MachineId(dest_pool[j]);
      request.deadline = start + rng.uniform_duration(config.min_deadline_offset,
                                                      config.max_deadline_offset);
      request.priority = rng.uniform_i32(0, config.priority_classes - 1);
      item.requests.push_back(request);
    }
    assigned += static_cast<std::int64_t>(n_dests);
    s.items.push_back(std::move(item));
    ++index;
  }
}

}  // namespace

GeneratorConfig GeneratorConfig::light() {
  GeneratorConfig config;
  config.min_machines = 8;
  config.max_machines = 10;
  config.min_requests_per_machine = 5;
  config.max_requests_per_machine = 8;
  return config;
}

GeneratorConfig GeneratorConfig::congested() {
  GeneratorConfig config;
  config.load_multiplier = 2.0;
  config.min_deadline_offset = SimDuration::minutes(8);
  config.max_deadline_offset = SimDuration::minutes(30);
  return config;
}

GeneratorConfig GeneratorConfig::huge() {
  GeneratorConfig config;
  config.min_machines = 5000;
  config.max_machines = 5000;
  // Plentiful storage: the scale tier stresses the scheduler and the network,
  // not the storage-exhaustion fallbacks.
  config.min_capacity_bytes = std::int64_t{10} * 1024 * 1024 * 1024;  // 10 GB
  config.max_capacity_bytes = std::int64_t{50} * 1024 * 1024 * 1024;  // 50 GB
  config.min_out_degree = 8;  // fat-tree-ish fan-out
  config.max_out_degree = 16;
  config.min_requests_per_machine = 100;  // 500k requests total
  config.max_requests_per_machine = 100;
  config.max_sources = 3;
  config.min_item_bytes = 10 * 1024;         // 10 KB
  config.max_item_bytes = 10 * 1024 * 1024;  // 10 MB
  config.scalable_sampling = true;
  return config;
}

std::vector<std::string> GeneratorConfig::validation_errors() const {
  std::vector<std::string> errors;
  const auto check = [&](bool ok, const char* msg) {
    if (!ok) errors.emplace_back(msg);
  };

  check(min_machines <= max_machines, "min_machines > max_machines");
  check(min_machines >= 2,
        "min_machines must be >= 2 (sources and destinations are distinct machines)");
  check(min_capacity_bytes <= max_capacity_bytes,
        "min_capacity_bytes > max_capacity_bytes");
  check(min_capacity_bytes >= 1, "min_capacity_bytes must be >= 1");
  check(min_out_degree <= max_out_degree, "min_out_degree > max_out_degree");
  check(min_out_degree >= 1, "min_out_degree must be >= 1 (graph must be connectable)");
  check(min_bandwidth_bps <= max_bandwidth_bps, "min_bandwidth_bps > max_bandwidth_bps");
  check(min_bandwidth_bps >= 1, "min_bandwidth_bps must be >= 1");
  check(min_latency <= max_latency, "min_latency > max_latency");
  check(min_latency >= SimDuration::zero(), "min_latency must be >= 0");
  check(!virtual_link_durations.empty(), "virtual_link_durations is empty");
  for (const SimDuration d : virtual_link_durations) {
    if (d <= SimDuration::zero()) {
      errors.emplace_back("virtual_link_durations entries must be > 0");
      break;
    }
  }
  check(day > SimDuration::zero(), "day must be > 0");
  check(min_available_percent <= max_available_percent,
        "min_available_percent > max_available_percent");
  check(min_available_percent >= 0 && max_available_percent <= 100,
        "available_percent must lie in [0, 100]");
  check(min_requests_per_machine <= max_requests_per_machine,
        "min_requests_per_machine > max_requests_per_machine");
  check(min_requests_per_machine >= 1, "min_requests_per_machine must be >= 1");
  check(load_multiplier > 0.0, "load_multiplier must be > 0");
  check(max_sources >= 1, "max_sources must be >= 1");
  check(max_destinations >= 1, "max_destinations must be >= 1");
  check(min_item_bytes <= max_item_bytes, "min_item_bytes > max_item_bytes");
  check(min_item_bytes >= 1, "min_item_bytes must be >= 1");
  check(min_deadline_offset <= max_deadline_offset,
        "min_deadline_offset > max_deadline_offset");
  check(priority_classes >= 1, "priority_classes must be >= 1");

  // Derived products must fit the repo's 32-bit ids. Evaluate in 64-bit (and
  // in double where load_multiplier participates) so the check itself cannot
  // overflow — the old code wrapped silently inside the generator loop.
  constexpr std::int64_t kIdMax = std::numeric_limits<std::int32_t>::max();
  if (min_machines <= max_machines && min_machines >= 2 &&
      min_requests_per_machine <= max_requests_per_machine &&
      min_requests_per_machine >= 1 && load_multiplier > 0.0) {
    const std::int64_t worst_requests = static_cast<std::int64_t>(max_machines) *
                                        static_cast<std::int64_t>(max_requests_per_machine);
    check(worst_requests <= kIdMax &&
              static_cast<double>(worst_requests) * load_multiplier <=
                  static_cast<double>(kIdMax),
          "machines x requests_per_machine x load_multiplier overflows 32-bit "
          "request ids");
  }
  if (min_out_degree <= max_out_degree && min_out_degree >= 1) {
    // Two parallel links per neighbor pair at most, plus the connectivity
    // repair pass (bounded by machines).
    const std::int64_t worst_links =
        static_cast<std::int64_t>(max_machines) *
            (2 * static_cast<std::int64_t>(max_out_degree)) +
        static_cast<std::int64_t>(max_machines);
    check(worst_links <= kIdMax, "machines x out_degree overflows 32-bit link ids");
  }
  return errors;
}

void GeneratorConfig::validate_or_die() const {
  const std::vector<std::string> errors = validation_errors();
  if (errors.empty()) return;
  for (const std::string& error : errors) {
    std::fprintf(stderr, "invalid generator config: %s\n", error.c_str());
  }
  std::exit(2);
}

Scenario generate_scenario(const GeneratorConfig& config, Rng& rng) {
  config.validate_or_die();

  Scenario s;
  s.horizon = config.horizon;
  s.gc_gamma = config.gc_gamma;

  const std::int32_t m = rng.uniform_i32(config.min_machines, config.max_machines);
  generate_machines(config, rng, s, m);
  generate_physical_links(config, rng, s);
  generate_virtual_links(config, rng, s);
  if (config.scalable_sampling) {
    generate_items_scalable(config, rng, s);
  } else {
    generate_items(config, rng, s);
  }

  s.check_valid();
  DS_ASSERT(Topology(s).strongly_connected());
  return s;
}

std::vector<Scenario> generate_cases(const GeneratorConfig& config, std::uint64_t seed,
                                     std::size_t count) {
  std::vector<Scenario> cases;
  cases.reserve(count);
  // Each case draws from its own stream split off the root by case index:
  // adding cases never perturbs the earlier ones, and case i is identical no
  // matter how many cases are generated, in what order, or on which thread.
  const Rng root(seed);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng = root.split(i);
    cases.push_back(generate_scenario(config, rng));
  }
  return cases;
}

}  // namespace datastage
