#include "gen/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "net/topology.hpp"
#include "util/assert.hpp"
#include "util/log.hpp"

namespace datastage {
namespace {

std::vector<bool> reachable(std::size_t m, const std::vector<PhysicalLink>& links,
                            bool reverse) {
  std::vector<std::vector<std::int32_t>> adj(m);
  for (const PhysicalLink& pl : links) {
    if (reverse) {
      adj[pl.to.index()].push_back(pl.from.value());
    } else {
      adj[pl.from.index()].push_back(pl.to.value());
    }
  }
  std::vector<bool> seen(m, false);
  std::vector<std::int32_t> stack{0};
  seen[0] = true;
  while (!stack.empty()) {
    const auto u = static_cast<std::size_t>(stack.back());
    stack.pop_back();
    for (const std::int32_t w : adj[u]) {
      if (!seen[static_cast<std::size_t>(w)]) {
        seen[static_cast<std::size_t>(w)] = true;
        stack.push_back(w);
      }
    }
  }
  return seen;
}

MachineId pick_where(Rng& rng, const std::vector<bool>& mask, bool value) {
  std::vector<std::int32_t> pool;
  for (std::size_t i = 0; i < mask.size(); ++i) {
    if (mask[i] == value) pool.push_back(static_cast<std::int32_t>(i));
  }
  DS_ASSERT(!pool.empty());
  return MachineId(pool[static_cast<std::size_t>(
      rng.uniform_i64(0, static_cast<std::int64_t>(pool.size()) - 1))]);
}

PhysicalLink make_link(const GeneratorConfig& config, Rng& rng, MachineId from,
                       MachineId to) {
  PhysicalLink pl;
  pl.from = from;
  pl.to = to;
  pl.bandwidth_bps = rng.uniform_i64(config.min_bandwidth_bps, config.max_bandwidth_bps);
  pl.latency = rng.uniform_duration(config.min_latency, config.max_latency);
  return pl;
}

void generate_machines(const GeneratorConfig& config, Rng& rng, Scenario& s,
                       std::int32_t m) {
  s.machines.reserve(static_cast<std::size_t>(m));
  for (std::int32_t i = 0; i < m; ++i) {
    Machine machine;
    machine.name = "M" + std::to_string(i);
    machine.capacity_bytes =
        rng.uniform_i64(config.min_capacity_bytes, config.max_capacity_bytes);
    s.machines.push_back(std::move(machine));
  }
}

void generate_physical_links(const GeneratorConfig& config, Rng& rng, Scenario& s) {
  const auto m = static_cast<std::int32_t>(s.machines.size());
  for (std::int32_t i = 0; i < m; ++i) {
    const std::int32_t degree = std::min(
        m - 1, rng.uniform_i32(config.min_out_degree, config.max_out_degree));
    std::vector<std::int32_t> others;
    for (std::int32_t j = 0; j < m; ++j) {
      if (j != i) others.push_back(j);
    }
    rng.shuffle(others);
    for (std::int32_t d = 0; d < degree; ++d) {
      const MachineId to(others[static_cast<std::size_t>(d)]);
      s.phys_links.push_back(make_link(config, rng, MachineId(i), to));
      if (rng.bernoulli(config.second_link_probability)) {
        s.phys_links.push_back(make_link(config, rng, MachineId(i), to));
      }
    }
  }

  // Repair pass: add links until the physical digraph is strongly connected
  // (§5.1 guarantees strong connectivity). Random graphs with out-degree >= 4
  // on <= 12 nodes almost never need it.
  while (true) {
    const std::vector<bool> fwd = reachable(s.machines.size(), s.phys_links, false);
    if (std::find(fwd.begin(), fwd.end(), false) != fwd.end()) {
      s.phys_links.push_back(make_link(config, rng, pick_where(rng, fwd, true),
                                       pick_where(rng, fwd, false)));
      continue;
    }
    const std::vector<bool> rev = reachable(s.machines.size(), s.phys_links, true);
    if (std::find(rev.begin(), rev.end(), false) != rev.end()) {
      s.phys_links.push_back(make_link(config, rng, pick_where(rng, rev, false),
                                       pick_where(rng, rev, true)));
      continue;
    }
    break;
  }
}

void generate_virtual_links(const GeneratorConfig& config, Rng& rng, Scenario& s) {
  DS_ASSERT(!config.virtual_link_durations.empty());
  for (std::size_t p = 0; p < s.phys_links.size(); ++p) {
    const PhysicalLink& pl = s.phys_links[p];

    const SimDuration duration = rng.pick(std::span<const SimDuration>(
        config.virtual_link_durations.data(), config.virtual_link_durations.size()));
    const std::int32_t percent =
        10 * rng.uniform_i32(config.min_available_percent / 10,
                             config.max_available_percent / 10);
    const SimDuration available = SimDuration::from_usec(
        config.day.usec() / 100 * percent);

    std::int64_t nl = available.usec() / duration.usec();
    if (nl < 1) nl = 1;  // degenerate configs: at least one window
    const SimDuration unavailable =
        max(SimDuration::zero(), config.day - duration * nl);

    // Lead-in before the first window: U[0, unavailable/3] (§5.3), then the
    // remaining unavailable time is cut into the inter-window gaps; the tail
    // after the last window absorbs the rest of the day.
    const SimDuration lead =
        rng.uniform_duration(SimDuration::zero(), unavailable / 3);
    const SimDuration gap_budget = unavailable - lead;

    std::vector<SimDuration> gaps;
    if (nl > 1) {
      std::vector<std::int64_t> cuts;
      cuts.reserve(static_cast<std::size_t>(nl - 1));
      for (std::int64_t g = 0; g < nl - 1; ++g) {
        cuts.push_back(rng.uniform_i64(0, gap_budget.usec()));
      }
      std::sort(cuts.begin(), cuts.end());
      std::int64_t prev = 0;
      for (const std::int64_t cut : cuts) {
        gaps.push_back(SimDuration::from_usec(cut - prev));
        prev = cut;
      }
    }

    SimTime t = SimTime::zero() + lead;
    for (std::int64_t w = 0; w < nl; ++w) {
      const Interval window{t, t + duration};
      const bool keep = config.keep_links_before == SimTime::zero() ||
                        window.begin < config.keep_links_before;
      if (keep) {
        s.virt_links.push_back(VirtualLink{PhysLinkId(static_cast<std::int32_t>(p)),
                                           pl.from, pl.to, pl.bandwidth_bps,
                                           pl.latency, window});
      }
      t = window.end;
      if (w < nl - 1) t = t + gaps[static_cast<std::size_t>(w)];
    }
  }
}

void generate_items(const GeneratorConfig& config, Rng& rng, Scenario& s) {
  const auto m = static_cast<std::int32_t>(s.machines.size());
  DS_ASSERT_MSG(m >= 2, "need at least two machines for sources and destinations");

  const double raw_total =
      static_cast<double>(rng.uniform_i32(config.min_requests_per_machine,
                                          config.max_requests_per_machine)) *
      static_cast<double>(m) * config.load_multiplier;
  const auto total_requests =
      std::max<std::int64_t>(1, std::llround(raw_total));

  std::vector<std::int64_t> reserved(static_cast<std::size_t>(m), 0);
  std::int64_t assigned = 0;
  std::int32_t index = 0;

  while (assigned < total_requests) {
    std::int64_t size = rng.uniform_i64(config.min_item_bytes, config.max_item_bytes);

    // Source machines must be able to store their initial copy.
    std::vector<std::int32_t> eligible;
    for (std::int32_t i = 0; i < m; ++i) {
      if (s.machines[static_cast<std::size_t>(i)].capacity_bytes -
              reserved[static_cast<std::size_t>(i)] >=
          size) {
        eligible.push_back(i);
      }
    }
    if (eligible.empty()) {
      // All machines are tight; retry with the smallest admissible size once,
      // then give up on further items (extremely overloaded configs only).
      size = config.min_item_bytes;
      for (std::int32_t i = 0; i < m; ++i) {
        if (s.machines[static_cast<std::size_t>(i)].capacity_bytes -
                reserved[static_cast<std::size_t>(i)] >=
            size) {
          eligible.push_back(i);
        }
      }
      if (eligible.empty()) {
        log_warn("generator: storage exhausted, stopping at " +
                 std::to_string(assigned) + "/" + std::to_string(total_requests) +
                 " requests");
        break;
      }
    }

    rng.shuffle(eligible);
    const auto want_sources =
        static_cast<std::size_t>(rng.uniform_i32(1, config.max_sources));
    // Keep at least one machine free of sources so destinations exist.
    const std::size_t n_sources = std::min(
        {want_sources, eligible.size(), static_cast<std::size_t>(m - 1)});

    DataItem item;
    item.name = "d" + std::to_string(index);
    item.size_bytes = size;
    const SimTime start =
        SimTime::zero() + rng.uniform_duration(SimDuration::zero(), config.max_item_start);
    std::vector<bool> is_source(static_cast<std::size_t>(m), false);
    for (std::size_t j = 0; j < n_sources; ++j) {
      const std::int32_t machine = eligible[j];
      item.sources.push_back(SourceLocation{MachineId(machine), start});
      is_source[static_cast<std::size_t>(machine)] = true;
      reserved[static_cast<std::size_t>(machine)] += size;
    }

    std::vector<std::int32_t> dest_pool;
    for (std::int32_t i = 0; i < m; ++i) {
      if (!is_source[static_cast<std::size_t>(i)]) dest_pool.push_back(i);
    }
    rng.shuffle(dest_pool);
    const auto want_dests =
        static_cast<std::size_t>(rng.uniform_i32(1, config.max_destinations));
    const std::size_t n_dests =
        std::min({want_dests, dest_pool.size(),
                  static_cast<std::size_t>(total_requests - assigned)});
    DS_ASSERT(n_dests >= 1);

    for (std::size_t j = 0; j < n_dests; ++j) {
      Request request;
      request.destination = MachineId(dest_pool[j]);
      request.deadline = start + rng.uniform_duration(config.min_deadline_offset,
                                                      config.max_deadline_offset);
      request.priority = rng.uniform_i32(0, config.priority_classes - 1);
      item.requests.push_back(request);
    }
    assigned += static_cast<std::int64_t>(n_dests);
    s.items.push_back(std::move(item));
    ++index;
  }
}

}  // namespace

GeneratorConfig GeneratorConfig::light() {
  GeneratorConfig config;
  config.min_machines = 8;
  config.max_machines = 10;
  config.min_requests_per_machine = 5;
  config.max_requests_per_machine = 8;
  return config;
}

GeneratorConfig GeneratorConfig::congested() {
  GeneratorConfig config;
  config.load_multiplier = 2.0;
  config.min_deadline_offset = SimDuration::minutes(8);
  config.max_deadline_offset = SimDuration::minutes(30);
  return config;
}

Scenario generate_scenario(const GeneratorConfig& config, Rng& rng) {
  Scenario s;
  s.horizon = config.horizon;
  s.gc_gamma = config.gc_gamma;

  const std::int32_t m = rng.uniform_i32(config.min_machines, config.max_machines);
  generate_machines(config, rng, s, m);
  generate_physical_links(config, rng, s);
  generate_virtual_links(config, rng, s);
  generate_items(config, rng, s);

  s.check_valid();
  DS_ASSERT(Topology(s).strongly_connected());
  return s;
}

std::vector<Scenario> generate_cases(const GeneratorConfig& config, std::uint64_t seed,
                                     std::size_t count) {
  std::vector<Scenario> cases;
  cases.reserve(count);
  // Each case draws from its own stream split off the root by case index:
  // adding cases never perturbs the earlier ones, and case i is identical no
  // matter how many cases are generated, in what order, or on which thread.
  const Rng root(seed);
  for (std::size_t i = 0; i < count; ++i) {
    Rng rng = root.split(i);
    cases.push_back(generate_scenario(config, rng));
  }
  return cases;
}

}  // namespace datastage
