// Seeded random fault generation, mirroring gen/generator for scenarios.
//
// One `intensity` knob in [0, 1] scales everything: the probability that a
// link suffers an outage or a brownout, the length of the windows, and the
// probability that an item loses a staged source copy. intensity == 0 always
// yields an empty FaultSpec, so a zero-intensity sweep point is byte-
// identical to a fault-free run. All randomness flows through the caller's
// Rng — same scenario + config + rng state => same FaultSpec — and
// degradation factors are pre-quantized to the serialization resolution, so
// an in-memory spec and its write -> read image behave identically.
#pragma once

#include "model/fault.hpp"
#include "model/scenario.hpp"
#include "util/rng.hpp"

namespace datastage {

struct FaultGenConfig {
  /// Master fault-intensity knob in [0, 1].
  double intensity = 0.2;

  /// Per-link outage probability = min(1, intensity * outage_prob_scale).
  double outage_prob_scale = 1.0;
  /// Outage length fraction of the horizon: uniform in
  /// [outage_min_frac, outage_min_frac + intensity * outage_span_frac].
  double outage_min_frac = 0.02;
  double outage_span_frac = 0.25;

  /// Per-link brownout probability = min(1, intensity * degrade_prob_scale).
  double degrade_prob_scale = 0.75;
  double degrade_min_frac = 0.05;
  double degrade_span_frac = 0.35;
  /// Degraded bandwidth factor: uniform in [factor_min, factor_max].
  double factor_min = 0.15;
  double factor_max = 0.70;

  /// Per-item source-copy-loss probability = min(1, intensity * loss_prob_scale).
  /// Only items with at least two sources lose a copy, so recovery always
  /// has somewhere to re-stage from.
  double loss_prob_scale = 0.75;
};

/// Draws a FaultSpec for `scenario`. Deterministic in (scenario, config, rng
/// state); the result passes FaultSpec::validate for the scenario.
FaultSpec generate_faults(const Scenario& scenario, const FaultGenConfig& config,
                          Rng& rng);

}  // namespace datastage
