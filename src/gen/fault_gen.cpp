#include "gen/fault_gen.hpp"

#include <algorithm>

#include "model/fault_io.hpp"
#include "util/assert.hpp"

namespace datastage {
namespace {

// A window of `frac` of the horizon placed uniformly inside it. Fractions
// are resolved to µs before drawing so the result is pure integer math on
// the Rng stream.
Interval place_window(SimTime horizon, double frac, Rng& rng) {
  const std::int64_t h = horizon.usec();
  std::int64_t len = static_cast<std::int64_t>(static_cast<double>(h) * frac);
  len = std::clamp<std::int64_t>(len, 1, h);
  const std::int64_t begin = rng.uniform_i64(0, h - len);
  return Interval{SimTime::from_usec(begin), SimTime::from_usec(begin + len)};
}

double window_frac(double min_frac, double span_frac, double intensity, Rng& rng) {
  const double span = span_frac * intensity;
  return min_frac + span * rng.uniform_double();
}

}  // namespace

FaultSpec generate_faults(const Scenario& scenario, const FaultGenConfig& config,
                          Rng& rng) {
  DS_ASSERT_MSG(config.intensity >= 0.0 && config.intensity <= 1.0,
                "fault intensity must lie in [0, 1]");
  FaultSpec faults;
  if (config.intensity <= 0.0) return faults;
  const double x = config.intensity;

  // Links are visited in index order and items in scenario order; each draw
  // is independent, so the spec is a pure function of (scenario, config, rng
  // state).
  for (std::size_t p = 0; p < scenario.phys_links.size(); ++p) {
    if (!rng.bernoulli(std::min(1.0, x * config.outage_prob_scale))) continue;
    const double frac =
        window_frac(config.outage_min_frac, config.outage_span_frac, x, rng);
    faults.outages.push_back(LinkOutage{PhysLinkId(static_cast<std::int32_t>(p)),
                                        place_window(scenario.horizon, frac, rng)});
  }

  for (std::size_t p = 0; p < scenario.phys_links.size(); ++p) {
    if (!rng.bernoulli(std::min(1.0, x * config.degrade_prob_scale))) continue;
    const double frac =
        window_frac(config.degrade_min_frac, config.degrade_span_frac, x, rng);
    const Interval window = place_window(scenario.horizon, frac, rng);
    const double factor =
        config.factor_min +
        (config.factor_max - config.factor_min) * rng.uniform_double();
    faults.degradations.push_back(
        LinkDegradation{PhysLinkId(static_cast<std::int32_t>(p)), window,
                        quantize_factor(factor)});
  }

  for (const DataItem& item : scenario.items) {
    // Losing the only source would make the item unschedulable from the
    // start rather than exercising recovery; require a surviving source.
    if (item.sources.size() < 2) continue;
    if (!rng.bernoulli(std::min(1.0, x * config.loss_prob_scale))) continue;
    const std::size_t pick = static_cast<std::size_t>(
        rng.uniform_i64(0, static_cast<std::int64_t>(item.sources.size()) - 1));
    const SourceLocation& src = item.sources[pick];
    // The loss must hit while the copy exists and inside the horizon.
    const std::int64_t lo = src.available_at.usec();
    const std::int64_t hi =
        std::max(lo, min(src.hold_until, scenario.horizon).usec() - 1);
    const SimTime at = SimTime::from_usec(rng.uniform_i64(lo, hi));
    faults.copy_losses.push_back(CopyLoss{item.name, src.machine, at});
  }

  return faults;
}

}  // namespace datastage
