#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/assert.hpp"

namespace datastage {

void Accumulator::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Accumulator::mean() const {
  DS_ASSERT(count_ > 0);
  return mean_;
}

double Accumulator::variance() const {
  DS_ASSERT(count_ > 0);
  if (count_ == 1) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const {
  DS_ASSERT(count_ > 0);
  return min_;
}

double Accumulator::max() const {
  DS_ASSERT(count_ > 0);
  return max_;
}

double percentile(std::vector<double> sample, double p) {
  DS_ASSERT(!sample.empty());
  DS_ASSERT(p >= 0.0 && p <= 100.0);
  std::sort(sample.begin(), sample.end());
  if (sample.size() == 1) return sample[0];
  const double rank = p / 100.0 * static_cast<double>(sample.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

std::string format_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace datastage
