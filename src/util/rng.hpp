// Deterministic random number generation.
//
// The experiments in the paper average 40 randomly generated test cases; for
// a reproduction the stream must be platform-independent and stable across
// compiler versions, which rules out std::mt19937 + std::uniform_*
// (distribution algorithms are implementation-defined). We implement
// xoshiro256++ seeded through SplitMix64 and our own rejection-sampling
// uniform distributions.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "util/assert.hpp"
#include "util/time.hpp"

namespace datastage {

/// xoshiro256++ 1.0 (Blackman & Vigna), public-domain reference algorithm.
class Rng {
 public:
  /// Seeds the four state words from `seed` via SplitMix64, guaranteeing a
  /// nonzero state for any seed value.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi);
  std::int32_t uniform_i32(std::int32_t lo, std::int32_t hi);

  /// Uniform double in [0, 1).
  double uniform_double();

  /// Uniform duration in [lo, hi] inclusive (microsecond granularity).
  SimDuration uniform_duration(SimDuration lo, SimDuration hi);

  /// True with probability p.
  bool bernoulli(double p);

  /// Uniformly chosen element of a non-empty span.
  template <class T>
  const T& pick(std::span<const T> options) {
    DS_ASSERT(!options.empty());
    return options[static_cast<std::size_t>(
        uniform_i64(0, static_cast<std::int64_t>(options.size()) - 1))];
  }

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_i64(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator by *advancing* this one: the
  /// child depends on how many values the parent has produced so far. This
  /// is the old, order-dependent semantics — fine for nested generation
  /// inside a single stream, wrong for anything evaluated in parallel or in
  /// varying order. New code constructing per-case streams should use
  /// split(stream_id) below.
  Rng split();

  /// Derives an independent child generator for `stream_id` WITHOUT
  /// advancing or otherwise touching this one. The child depends only on
  /// (parent state, stream_id), so `parent.split(i)` yields the same stream
  /// no matter how many other splits happened before, in what order, or on
  /// which thread — the property the parallel executor's determinism
  /// contract relies on. Distinct stream ids give decorrelated streams
  /// (SplitMix64 over the state words and the id).
  Rng split(std::uint64_t stream_id) const;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace datastage
