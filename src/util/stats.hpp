// Streaming summary statistics used by the experiment harness to aggregate
// per-test-case results (mean over the 40 cases, plus min/max/stddev for the
// dispersion data the technical report version of the paper tabulates).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace datastage {

/// Welford-style accumulator: numerically stable mean and variance.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  double variance() const;  ///< sample variance (n-1 denominator)
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Exact percentile over a stored sample (linear interpolation between ranks).
double percentile(std::vector<double> sample, double p);

std::string format_double(double v, int precision = 2);

}  // namespace datastage
