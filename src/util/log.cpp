#include "util/log.hpp"

#include <atomic>
#include <cstdio>

namespace datastage {
namespace {

LogLevel g_level = LogLevel::kWarn;
std::atomic<std::size_t> g_warnings_emitted{0};
std::atomic<std::size_t> g_errors_emitted{0};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

bool log_enabled(LogLevel level) { return level >= g_level; }

void log_message(LogLevel level, const std::string& msg) {
  if (!log_enabled(level)) return;
  if (level == LogLevel::kWarn) {
    g_warnings_emitted.fetch_add(1, std::memory_order_relaxed);
  } else if (level == LogLevel::kError) {
    g_errors_emitted.fetch_add(1, std::memory_order_relaxed);
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), msg.c_str());
}

std::size_t log_warnings_emitted() {
  return g_warnings_emitted.load(std::memory_order_relaxed);
}

std::size_t log_errors_emitted() {
  return g_errors_emitted.load(std::memory_order_relaxed);
}

void reset_log_emission_counts() {
  g_warnings_emitted.store(0, std::memory_order_relaxed);
  g_errors_emitted.store(0, std::memory_order_relaxed);
}

}  // namespace datastage
