// Leveled stderr logging. Deliberately tiny: the library itself logs nothing
// on hot paths; logging exists for the generator, harness and examples to
// narrate what they are doing at --verbose.
//
// Messages that cost something to build (string concatenation, formatted
// numbers) should use the lazy callable overloads: the callable runs only
// when the level passes the threshold, so verbose-only formatting is never
// paid at the default kWarn level.
#pragma once

#include <concepts>
#include <cstddef>
#include <string>
#include <utility>

namespace datastage {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// library users see nothing unless they opt in.
void set_log_level(LogLevel level);
LogLevel log_level();

/// True iff a message at `level` would currently be emitted.
bool log_enabled(LogLevel level);

void log_message(LogLevel level, const std::string& msg);

/// Constrains the lazy overloads to callables producing a string, so plain
/// string/char* arguments keep resolving to the eager overload above.
template <typename F>
concept LogMessageFn = std::invocable<F&> &&
    std::convertible_to<std::invoke_result_t<F&>, std::string>;

/// Lazy overload: `make_msg` is invoked — and its message formatted — only
/// when `level` passes the threshold.
template <LogMessageFn F>
void log_message(LogLevel level, F&& make_msg) {
  if (!log_enabled(level)) return;
  log_message(level, std::string(std::forward<F>(make_msg)()));
}

inline void log_debug(const std::string& msg) { log_message(LogLevel::kDebug, msg); }
inline void log_info(const std::string& msg) { log_message(LogLevel::kInfo, msg); }
inline void log_warn(const std::string& msg) { log_message(LogLevel::kWarn, msg); }
inline void log_error(const std::string& msg) { log_message(LogLevel::kError, msg); }

template <LogMessageFn F>
void log_debug(F&& make_msg) { log_message(LogLevel::kDebug, std::forward<F>(make_msg)); }
template <LogMessageFn F>
void log_info(F&& make_msg) { log_message(LogLevel::kInfo, std::forward<F>(make_msg)); }
template <LogMessageFn F>
void log_warn(F&& make_msg) { log_message(LogLevel::kWarn, std::forward<F>(make_msg)); }
template <LogMessageFn F>
void log_error(F&& make_msg) { log_message(LogLevel::kError, std::forward<F>(make_msg)); }

/// Process-wide emission counters: warnings/errors actually written to
/// stderr (suppressed messages are not counted). The observability layer
/// snapshots these into a MetricsRegistry (obs::record_log_metrics).
std::size_t log_warnings_emitted();
std::size_t log_errors_emitted();
/// Resets both emission counters (tests; per-run metric snapshots).
void reset_log_emission_counts();

}  // namespace datastage
