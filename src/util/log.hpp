// Leveled stderr logging. Deliberately tiny: the library itself logs nothing
// on hot paths; logging exists for the generator, harness and examples to
// narrate what they are doing at --verbose.
#pragma once

#include <string>

namespace datastage {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Defaults to kWarn so
/// library users see nothing unless they opt in.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

inline void log_debug(const std::string& msg) { log_message(LogLevel::kDebug, msg); }
inline void log_info(const std::string& msg) { log_message(LogLevel::kInfo, msg); }
inline void log_warn(const std::string& msg) { log_message(LogLevel::kWarn, msg); }
inline void log_error(const std::string& msg) { log_message(LogLevel::kError, msg); }

}  // namespace datastage
