// Fixed-size worker pool for fanning out independent jobs.
//
// Deliberately minimal — no futures, no task queue, no work stealing. One
// batch of `job_count` indexed jobs runs at a time: workers claim index
// chunks from a shared counter, so scheduling is dynamic but *results* are
// attached to indices, never to threads. Callers that store `result[i] =
// f(i)` and reduce in index order therefore get bit-identical output for any
// thread count (see harness/parallel.hpp for that contract).
//
// Three entry points share the batch machinery:
//   * run_indexed()   — the original blocking form, `job(index)`;
//   * parallel_for()  — blocking, `job(worker, index)` with chunked index
//     claiming; the worker id (0..thread_count-1) lets callers keep
//     per-worker scratch (Dijkstra workspaces) without thread-locals;
//   * begin()/join()  — the asynchronous pair behind the engine's
//     speculative refresh: begin() dispatches the batch and returns
//     immediately, join() blocks until it drains. Exactly one batch may be
//     in flight; the pool owns the job function between begin and join.
//
// Exceptions thrown by jobs are captured and the one with the lowest job
// index is rethrown from the blocking call (or join()) after the batch
// drains — again independent of thread scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace datastage {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);
  /// Joins all workers. Must not be called while a batch is in flight
  /// (asserted) — callers that used begin() must join() first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs job(0) .. job(job_count-1) across the workers and blocks until all
  /// complete. If any job throws, the exception with the smallest job index
  /// is rethrown here once the batch has drained (remaining jobs still run).
  /// Not reentrant: one batch at a time per pool (enforced with a mutex).
  void run_indexed(std::size_t job_count, const std::function<void(std::size_t)>& job);

  /// Blocking parallel for over [0, job_count): runs job(worker, index) with
  /// `worker` in [0, thread_count()). Workers claim contiguous index chunks
  /// (size auto-derived from job_count and the worker count) from a shared
  /// counter, so dispatch cost is O(chunks), not O(jobs), while load still
  /// balances dynamically. job_count == 0 is a no-op. Exceptions: lowest
  /// job index wins, rethrown after the batch drains.
  void parallel_for(std::size_t job_count,
                    const std::function<void(std::size_t, std::size_t)>& job);

  /// Dispatches a batch asynchronously and returns immediately; the pool
  /// takes ownership of `job` until the matching join(). At most one batch
  /// may be in flight (asserted) — including against the blocking entry
  /// points. begin(0, ...) records an empty batch; join() is still required
  /// and returns immediately.
  void begin(std::size_t job_count, std::function<void(std::size_t, std::size_t)> job);

  /// Blocks until the batch dispatched by begin() drains, releases the job,
  /// and rethrows the lowest-index exception, if any. No-op without a
  /// matching begin().
  void join();

  /// True between begin() and join().
  bool batch_in_flight() const;

  /// std::thread::hardware_concurrency with a floor of 1 (the function may
  /// return 0 on platforms that cannot report it).
  static std::size_t hardware_jobs();

 private:
  void start_batch_locked(std::size_t job_count,
                          const std::function<void(std::size_t, std::size_t)>* job);
  void wait_batch_and_rethrow();
  void worker_loop(std::size_t worker);

  std::vector<std::thread> workers_;

  std::mutex batch_mutex_;  ///< serializes blocking (run_indexed/parallel_for) callers

  mutable std::mutex mutex_;  ///< guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t, std::size_t)>* job_ = nullptr;
  /// Owned storage for asynchronous batches; `job_` points here after begin().
  std::function<void(std::size_t, std::size_t)> owned_job_;
  bool async_in_flight_ = false;
  std::size_t job_count_ = 0;
  std::size_t chunk_ = 1;      ///< indices claimed per lock acquisition
  std::size_t next_index_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t batch_id_ = 0;  ///< bumped per batch so workers wake exactly once
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::size_t first_error_index_ = 0;
};

}  // namespace datastage
