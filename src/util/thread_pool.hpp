// Fixed-size worker pool for fanning out independent jobs.
//
// Deliberately minimal — no futures, no task queue, no work stealing. One
// batch of `job_count` indexed jobs runs at a time: workers claim indices
// from a shared counter, so scheduling is dynamic but *results* are attached
// to indices, never to threads. Callers that store `result[i] = f(i)` and
// reduce in index order therefore get bit-identical output for any thread
// count (see harness/parallel.hpp for that contract).
//
// Exceptions thrown by jobs are captured and the one with the lowest job
// index is rethrown from run_indexed() after the batch drains — again
// independent of thread scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace datastage {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least one).
  explicit ThreadPool(std::size_t threads);
  /// Joins all workers. Must not be called while a batch is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Runs job(0) .. job(job_count-1) across the workers and blocks until all
  /// complete. If any job throws, the exception with the smallest job index
  /// is rethrown here once the batch has drained (remaining jobs still run).
  /// Not reentrant: one batch at a time per pool (enforced with a mutex).
  void run_indexed(std::size_t job_count, const std::function<void(std::size_t)>& job);

  /// std::thread::hardware_concurrency with a floor of 1 (the function may
  /// return 0 on platforms that cannot report it).
  static std::size_t hardware_jobs();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;

  std::mutex batch_mutex_;  ///< serializes run_indexed callers

  std::mutex mutex_;  ///< guards everything below
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::size_t job_count_ = 0;
  std::size_t next_index_ = 0;
  std::size_t completed_ = 0;
  std::uint64_t batch_id_ = 0;  ///< bumped per batch so workers wake exactly once
  bool stop_ = false;
  std::exception_ptr first_error_;
  std::size_t first_error_index_ = 0;
};

}  // namespace datastage
