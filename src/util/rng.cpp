#include "util/rng.hpp"

namespace datastage {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
  // SplitMix64 never yields four zero words for distinct invocations, but be
  // defensive: an all-zero xoshiro state is a fixed point.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x853c49e6748fea9bULL;
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) {
  DS_ASSERT(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling for an exactly uniform result.
  const std::uint64_t limit = std::uint64_t(-1) - (std::uint64_t(-1) % range);
  std::uint64_t value = next_u64();
  while (value >= limit) value = next_u64();
  return lo + static_cast<std::int64_t>(value % range);
}

std::int32_t Rng::uniform_i32(std::int32_t lo, std::int32_t hi) {
  return static_cast<std::int32_t>(uniform_i64(lo, hi));
}

double Rng::uniform_double() {
  // 53 top bits -> [0, 1) with full double precision.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

SimDuration Rng::uniform_duration(SimDuration lo, SimDuration hi) {
  return SimDuration::from_usec(uniform_i64(lo.usec(), hi.usec()));
}

bool Rng::bernoulli(double p) {
  DS_ASSERT(p >= 0.0 && p <= 1.0);
  return uniform_double() < p;
}

Rng Rng::split(std::uint64_t stream_id) const {
  // Fold the four state words and the stream id through SplitMix64 into one
  // seed; the Rng constructor then expands it back to a full 256-bit state.
  // Const: the parent stream is left exactly where it was.
  std::uint64_t h = 0x9e3779b97f4a7c15ULL * (stream_id + 1);
  for (const std::uint64_t word : state_) {
    std::uint64_t x = h ^ word;
    h = splitmix64(x);
  }
  return Rng(h);
}

Rng Rng::split() {
  Rng child(0);
  for (auto& word : child.state_) word = next_u64();
  if (child.state_[0] == 0 && child.state_[1] == 0 && child.state_[2] == 0 &&
      child.state_[3] == 0) {
    child.state_[0] = 1;
  }
  return child;
}

}  // namespace datastage
