#include "util/cli.hpp"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <system_error>

namespace datastage {

bool CliFlags::parse(int argc, const char* const* argv,
                     const std::vector<std::string>& known) {
  auto is_known = [&](const std::string& name) {
    return std::find(known.begin(), known.end(), name) != known.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // `--flag value` form when the next token is not itself a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!is_known(name)) {
      std::fprintf(stderr, "unknown flag --%s; known flags:", name.c_str());
      for (const auto& k : known) std::fprintf(stderr, " --%s", k.c_str());
      std::fprintf(stderr, "\n");
      return false;
    }
    values_[name] = value;
  }
  return true;
}

bool CliFlags::has(const std::string& name) const { return values_.count(name) != 0; }

std::string CliFlags::get_string(const std::string& name,
                                 const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

namespace {

// Strict whole-string numeric parsing. std::from_chars rejects leading
// whitespace and stray signs on its own; requiring the entire value to be
// consumed catches trailing junk ("--jobs=8x") that strtoll/strtod silently
// accepted.
template <class T>
T parse_numeric_or_die(const std::string& name, const std::string& value,
                       const char* kind) {
  T parsed{};
  const char* last = value.data() + value.size();
  const auto [ptr, ec] = std::from_chars(value.data(), last, parsed);
  if (ec == std::errc::result_out_of_range) {
    std::fprintf(stderr, "invalid value for --%s: '%s' (out of range for %s)\n",
                 name.c_str(), value.c_str(), kind);
    std::exit(2);
  }
  if (ec != std::errc() || ptr != last || value.empty()) {
    std::fprintf(stderr, "invalid value for --%s: '%s' (expected %s)\n", name.c_str(),
                 value.c_str(), kind);
    std::exit(2);
  }
  return parsed;
}

}  // namespace

std::int64_t CliFlags::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return parse_numeric_or_die<std::int64_t>(name, it->second, "an integer");
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return parse_numeric_or_die<double>(name, it->second, "a number");
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace datastage
