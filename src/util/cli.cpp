#include "util/cli.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace datastage {

bool CliFlags::parse(int argc, const char* const* argv,
                     const std::vector<std::string>& known) {
  auto is_known = [&](const std::string& name) {
    return std::find(known.begin(), known.end(), name) != known.end();
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg.erase(0, 2);
    std::string name;
    std::string value;
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      // `--flag value` form when the next token is not itself a flag.
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    if (!is_known(name)) {
      std::fprintf(stderr, "unknown flag --%s; known flags:", name.c_str());
      for (const auto& k : known) std::fprintf(stderr, " --%s", k.c_str());
      std::fprintf(stderr, "\n");
      return false;
    }
    values_[name] = value;
  }
  return true;
}

bool CliFlags::has(const std::string& name) const { return values_.count(name) != 0; }

std::string CliFlags::get_string(const std::string& name,
                                 const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t CliFlags::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtoll(it->second.c_str(), nullptr, 10);
}

double CliFlags::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
}

bool CliFlags::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace datastage
