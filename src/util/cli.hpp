// Minimal command-line flag parsing for examples and bench binaries.
//
// Supports `--name=value`, `--name value` and boolean `--name`. Unrecognized
// flags are an error so typos surface immediately; positional arguments are
// collected for callers that want them.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace datastage {

class CliFlags {
 public:
  /// Parses argv. On error prints a message to stderr and returns false.
  bool parse(int argc, const char* const* argv, const std::vector<std::string>& known);

  bool has(const std::string& name) const;
  std::string get_string(const std::string& name, const std::string& fallback) const;
  /// Numeric getters parse strictly (whole value, no trailing junk). A present
  /// but malformed or out-of-range value prints a clear error and exits with
  /// status 2 — a typo like `--jobs=8x` or `--seed=abc` must never silently
  /// run with a different configuration than the user asked for.
  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace datastage
