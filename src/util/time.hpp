// Fixed-point simulation time.
//
// All scheduling decisions in this library are made on integer microseconds so
// that runs are bit-for-bit deterministic across platforms and so that
// interval arithmetic (link windows, storage hold windows) has exact
// comparisons. `SimTime` is a point on the simulation clock; `SimDuration` is
// a signed difference of two points. Both are strong types: they do not
// implicitly convert to or from raw integers.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "util/assert.hpp"

namespace datastage {

class SimDuration;

/// A point in simulation time, in microseconds since the start of the
/// scheduling period (the paper's time 0, e.g. midnight).
class SimTime {
 public:
  constexpr SimTime() = default;

  /// Named constructors. Prefer these over raw microsecond counts.
  static constexpr SimTime from_usec(std::int64_t usec) { return SimTime(usec); }
  static constexpr SimTime zero() { return SimTime(0); }
  /// A time later than any reachable schedule time; used as "never / end of
  /// simulation" for storage holds at sources and destinations.
  static constexpr SimTime infinity() {
    return SimTime(std::numeric_limits<std::int64_t>::max() / 4);
  }

  constexpr std::int64_t usec() const { return usec_; }
  constexpr double seconds() const { return static_cast<double>(usec_) / 1e6; }

  constexpr bool is_infinite() const { return usec_ >= infinity().usec(); }

  friend constexpr bool operator==(SimTime a, SimTime b) { return a.usec_ == b.usec_; }
  friend constexpr auto operator<=>(SimTime a, SimTime b) { return a.usec_ <=> b.usec_; }

  constexpr SimTime operator+(SimDuration d) const;
  constexpr SimTime operator-(SimDuration d) const;
  constexpr SimDuration operator-(SimTime other) const;

  /// "hh:mm:ss.mmm" rendering for logs and reports.
  std::string to_string() const;

 private:
  explicit constexpr SimTime(std::int64_t usec) : usec_(usec) {}
  std::int64_t usec_ = 0;
};

/// A signed span of simulation time, in microseconds.
class SimDuration {
 public:
  constexpr SimDuration() = default;

  static constexpr SimDuration from_usec(std::int64_t usec) { return SimDuration(usec); }
  static constexpr SimDuration zero() { return SimDuration(0); }
  static constexpr SimDuration milliseconds(std::int64_t ms) {
    return SimDuration(ms * 1'000);
  }
  static constexpr SimDuration seconds(std::int64_t s) {
    return SimDuration(s * 1'000'000);
  }
  static constexpr SimDuration minutes(std::int64_t m) { return seconds(m * 60); }
  static constexpr SimDuration hours(std::int64_t h) { return minutes(h * 60); }

  constexpr std::int64_t usec() const { return usec_; }
  constexpr double as_seconds() const { return static_cast<double>(usec_) / 1e6; }

  friend constexpr bool operator==(SimDuration a, SimDuration b) {
    return a.usec_ == b.usec_;
  }
  friend constexpr auto operator<=>(SimDuration a, SimDuration b) {
    return a.usec_ <=> b.usec_;
  }

  constexpr SimDuration operator+(SimDuration o) const {
    return SimDuration(usec_ + o.usec_);
  }
  constexpr SimDuration operator-(SimDuration o) const {
    return SimDuration(usec_ - o.usec_);
  }
  constexpr SimDuration operator-() const { return SimDuration(-usec_); }
  constexpr SimDuration operator*(std::int64_t k) const { return SimDuration(usec_ * k); }
  constexpr SimDuration operator/(std::int64_t k) const { return SimDuration(usec_ / k); }

  std::string to_string() const;

 private:
  explicit constexpr SimDuration(std::int64_t usec) : usec_(usec) {}
  std::int64_t usec_ = 0;
};

constexpr SimTime SimTime::operator+(SimDuration d) const {
  return SimTime(usec_ + d.usec());
}
constexpr SimTime SimTime::operator-(SimDuration d) const {
  return SimTime(usec_ - d.usec());
}
constexpr SimDuration SimTime::operator-(SimTime other) const {
  return SimDuration::from_usec(usec_ - other.usec_);
}

/// Monotonic host-clock nanoseconds since an arbitrary process-local origin.
/// This is the library's only sanctioned access to a real-time clock
/// (ds-lint DS002): host time feeds wall-clock *measurement* (phase timers,
/// cost tables) and must never feed a scheduling decision, which would break
/// run-to-run determinism.
std::int64_t steady_clock_nanos();

constexpr SimTime min(SimTime a, SimTime b) { return a < b ? a : b; }
constexpr SimTime max(SimTime a, SimTime b) { return a < b ? b : a; }
constexpr SimDuration min(SimDuration a, SimDuration b) { return a < b ? a : b; }
constexpr SimDuration max(SimDuration a, SimDuration b) { return a < b ? b : a; }

/// Transfer time of `bytes` over a link of `bits_per_sec`, rounded up to the
/// next microsecond. This is the D[i,j][k](|d|) term of the paper's model
/// minus the additive latency component (the caller adds link latency).
constexpr SimDuration transfer_duration(std::int64_t bytes, std::int64_t bits_per_sec) {
  DS_ASSERT(bytes >= 0);
  DS_ASSERT(bits_per_sec > 0);
  const std::int64_t bits = bytes * 8;
  // ceil(bits * 1e6 / bits_per_sec) without overflow for bytes <= ~1TB.
  const std::int64_t usec = (bits * 1'000'000 + bits_per_sec - 1) / bits_per_sec;
  return SimDuration::from_usec(usec);
}

}  // namespace datastage
