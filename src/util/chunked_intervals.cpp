#include "util/chunked_intervals.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {

std::pair<std::size_t, std::size_t> ChunkedIntervalSet::first_ending_after(
    SimTime t) const {
  const auto it = std::upper_bound(
      chunks_.begin(), chunks_.end(), t,
      [](SimTime value, const Chunk& c) { return value < c.max_end; });
  if (it == chunks_.end()) return {chunks_.size(), 0};
  const auto jt = std::upper_bound(
      it->items.begin(), it->items.end(), t,
      [](SimTime value, const Interval& iv) { return value < iv.end; });
  // max_end > t guarantees at least one member of this chunk ends after t.
  return {static_cast<std::size_t>(it - chunks_.begin()),
          static_cast<std::size_t>(jt - it->items.begin())};
}

bool ChunkedIntervalSet::overlaps(const Interval& iv) const {
  if (iv.empty()) return false;
  const auto [ci, ii] = first_ending_after(iv.begin);
  return ci < chunks_.size() && chunks_[ci].items[ii].begin < iv.end;
}

void ChunkedIntervalSet::insert_disjoint(const Interval& iv) {
  DS_ASSERT_MSG(!iv.empty(), "cannot reserve an empty interval");
  DS_ASSERT_MSG(!overlaps(iv), "reservation overlaps an existing reservation");
  ++size_;
  if (chunks_.empty()) {
    chunks_.push_back(Chunk{{iv}, iv.end});
    return;
  }
  const auto [ci, ii] = first_ending_after(iv.begin);
  if (ci == chunks_.size()) {
    // Past every member: append to the last chunk (the common case — link
    // reservations mostly arrive in ascending time order).
    Chunk& last = chunks_.back();
    last.items.push_back(iv);
    last.max_end = iv.end;
    maybe_split(chunks_.size() - 1);
    return;
  }
  Chunk& chunk = chunks_[ci];
  chunk.items.insert(chunk.items.begin() + static_cast<std::ptrdiff_t>(ii), iv);
  chunk.max_end = chunk.items.back().end;
  maybe_split(ci);
}

void ChunkedIntervalSet::maybe_split(std::size_t chunk) {
  Chunk& full = chunks_[chunk];
  if (full.items.size() < 2 * kChunk) return;
  Chunk right;
  right.items.assign(full.items.begin() + static_cast<std::ptrdiff_t>(kChunk),
                     full.items.end());
  right.max_end = right.items.back().end;
  full.items.resize(kChunk);
  full.max_end = full.items.back().end;
  chunks_.insert(chunks_.begin() + static_cast<std::ptrdiff_t>(chunk) + 1,
                 std::move(right));
}

std::optional<SimTime> ChunkedIntervalSet::earliest_fit(SimTime not_before,
                                                        SimDuration length,
                                                        const Interval& window) const {
  DS_ASSERT(length >= SimDuration::zero());
  SimTime start = max(not_before, window.begin);
  if (start + length > window.end) return std::nullopt;

  auto [ci, ii] = first_ending_after(start);
  while (true) {
    const SimTime candidate_end = start + length;
    if (candidate_end > window.end) return std::nullopt;
    if (ci >= chunks_.size()) return start;
    const Interval& busy = chunks_[ci].items[ii];
    if (candidate_end <= busy.begin) {
      return start;  // fits before the next busy interval
    }
    // Collision; restart after it.
    start = max(start, busy.end);
    if (++ii == chunks_[ci].items.size()) {
      ++ci;
      ii = 0;
    }
  }
}

std::vector<Interval> ChunkedIntervalSet::to_vector() const {
  std::vector<Interval> out;
  out.reserve(size_);
  for (const Chunk& chunk : chunks_) {
    out.insert(out.end(), chunk.items.begin(), chunk.items.end());
  }
  return out;
}

}  // namespace datastage
