// Strong integer identifiers for the entities of the data-staging model.
//
// Using distinct types for machine / item / request / link indices turns a
// whole class of "passed the wrong index" bugs into compile errors. IDs are
// dense indices into the owning container (Scenario / Topology), which keeps
// lookups O(1) without hash maps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

namespace datastage {

/// CRTP-free strong index. `Tag` differentiates unrelated ID spaces.
template <class Tag>
class StrongId {
 public:
  constexpr StrongId() = default;
  explicit constexpr StrongId(std::int32_t value) : value_(value) {}

  static constexpr StrongId invalid() { return StrongId(-1); }
  constexpr bool valid() const { return value_ >= 0; }

  constexpr std::int32_t value() const { return value_; }
  /// Index form for container subscripting; asserts nothing, callers index
  /// containers whose size they control.
  constexpr std::size_t index() const { return static_cast<std::size_t>(value_); }

  friend constexpr bool operator==(StrongId a, StrongId b) { return a.value_ == b.value_; }
  friend constexpr auto operator<=>(StrongId a, StrongId b) { return a.value_ <=> b.value_; }

 private:
  std::int32_t value_ = -1;
};

struct MachineTag {};
struct ItemTag {};
struct PhysLinkTag {};
struct VirtLinkTag {};

/// A machine M[i] of the communication system.
using MachineId = StrongId<MachineTag>;
/// A requested data item Rq[i] (only requested items are modeled; items that
/// nobody requests never move and are irrelevant to the schedule).
using ItemId = StrongId<ItemTag>;
/// A physical unidirectional transmission link.
using PhysLinkId = StrongId<PhysLinkTag>;
/// A virtual link L[i,j][k]: one availability window of a physical link.
using VirtLinkId = StrongId<VirtLinkTag>;

/// A request is addressed by (item, k-th request of that item), mirroring the
/// paper's Request[j, k] notation.
struct RequestRef {
  ItemId item;
  std::int32_t k = -1;

  friend constexpr bool operator==(const RequestRef&, const RequestRef&) = default;
  friend constexpr auto operator<=>(const RequestRef&, const RequestRef&) = default;
};

}  // namespace datastage

template <class Tag>
struct std::hash<datastage::StrongId<Tag>> {
  std::size_t operator()(datastage::StrongId<Tag> id) const noexcept {
    return std::hash<std::int32_t>()(id.value());
  }
};
