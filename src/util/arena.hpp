// Pooled buffer arena for per-round container churn.
//
// The scheduling engine rebuilds plan-local containers (candidate destination
// groups, route-tree paths) every refresh round. Destroying and reallocating
// those vectors dominates small-scenario rounds and fragments the heap at the
// huge scale tier. A VectorPool recycles the *storage*: release() parks a
// vector's buffer, acquire() hands it back empty with its capacity intact, so
// steady-state rounds perform no allocator traffic at all.
//
// Pools are deterministic by construction — they only affect where bytes
// live, never what values code observes — and deliberately not thread-safe:
// the engine keeps one pool per worker (in RefreshWorkspace), matching the
// rule that the parallel compute phase touches only worker-local scratch.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace datastage {

/// A pool of std::vector<T> buffers. acquire() returns an empty vector,
/// reusing a recycled buffer's capacity when one is available; release()
/// returns a buffer to the pool (its elements are destroyed, the capacity is
/// kept). Not thread-safe — one pool per worker.
template <typename T>
class VectorPool {
 public:
  std::vector<T> acquire() {
    if (free_.empty()) return {};
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    v.clear();
    return v;
  }

  void release(std::vector<T>&& v) {
    if (v.capacity() == 0) return;  // nothing worth keeping
    v.clear();
    free_.push_back(std::move(v));
  }

  /// Buffers currently parked in the pool.
  std::size_t pooled() const { return free_.size(); }

 private:
  std::vector<std::vector<T>> free_;
};

}  // namespace datastage
