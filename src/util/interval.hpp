// Half-open time intervals and sorted disjoint interval sets.
//
// IntervalSet is the workhorse behind link reservations: each virtual link
// keeps the set of busy intervals, and routing asks "what is the earliest
// start >= t at which a transfer of length d fits inside the link window and
// outside every busy interval?".
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace datastage {

/// Half-open interval [begin, end). An interval with begin == end is empty.
struct Interval {
  SimTime begin;
  SimTime end;

  constexpr bool empty() const { return begin >= end; }
  constexpr SimDuration length() const { return end - begin; }

  constexpr bool contains(SimTime t) const { return begin <= t && t < end; }
  constexpr bool contains(const Interval& other) const {
    return begin <= other.begin && other.end <= end;
  }
  constexpr bool overlaps(const Interval& other) const {
    return begin < other.end && other.begin < end;
  }

  friend constexpr bool operator==(const Interval&, const Interval&) = default;

  std::string to_string() const;
};

/// A set of pairwise-disjoint, sorted, non-empty intervals.
class IntervalSet {
 public:
  IntervalSet() = default;

  bool empty() const { return intervals_.empty(); }
  std::size_t size() const { return intervals_.size(); }
  const std::vector<Interval>& intervals() const { return intervals_; }

  /// True iff `iv` overlaps any member interval.
  bool overlaps(const Interval& iv) const;

  /// Inserts a non-empty interval that must not overlap any existing member
  /// (reservations are exclusive by construction). Adjacent intervals are
  /// kept separate; only overlap is forbidden.
  void insert_disjoint(const Interval& iv);

  /// Inserts an interval, merging with any overlapping/adjacent members.
  /// Used by accounting code where double-covering is legal.
  void insert_merge(const Interval& iv);

  /// Removes `iv` from the covered set, trimming and splitting members as
  /// needed. Used by the dynamic extension to consume link availability.
  void subtract(const Interval& iv);

  /// Earliest start >= `not_before` such that [start, start + length) lies
  /// inside `window` and overlaps no member interval. nullopt if none exists.
  std::optional<SimTime> earliest_fit(SimTime not_before, SimDuration length,
                                      const Interval& window) const;

  /// Total covered duration within `window`.
  SimDuration covered_within(const Interval& window) const;

 private:
  // Index of the first interval with end > t (candidate container of t).
  std::size_t first_ending_after(SimTime t) const;

  std::vector<Interval> intervals_;
};

}  // namespace datastage
