#include "util/time.hpp"

#include <chrono>  // util/time is DS002's scope carve-out: the sanctioned clock accessor lives here
#include <cinttypes>
#include <cstdio>

namespace datastage {

std::string SimTime::to_string() const {
  if (is_infinite()) return "inf";
  std::int64_t u = usec_;
  const char* sign = "";
  if (u < 0) {
    sign = "-";
    u = -u;
  }
  const std::int64_t ms = (u / 1'000) % 1'000;
  const std::int64_t s = (u / 1'000'000) % 60;
  const std::int64_t m = (u / 60'000'000) % 60;
  const std::int64_t h = u / 3'600'000'000;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s%02" PRId64 ":%02" PRId64 ":%02" PRId64 ".%03" PRId64,
                sign, h, m, s, ms);
  return buf;
}

std::string SimDuration::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3fs", as_seconds());
  return buf;
}

std::int64_t steady_clock_nanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace datastage
