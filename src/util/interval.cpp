#include "util/interval.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {

std::string Interval::to_string() const {
  return "[" + begin.to_string() + ", " + end.to_string() + ")";
}

std::size_t IntervalSet::first_ending_after(SimTime t) const {
  const auto it = std::upper_bound(
      intervals_.begin(), intervals_.end(), t,
      [](SimTime value, const Interval& iv) { return value < iv.end; });
  return static_cast<std::size_t>(it - intervals_.begin());
}

bool IntervalSet::overlaps(const Interval& iv) const {
  if (iv.empty()) return false;
  const std::size_t i = first_ending_after(iv.begin);
  return i < intervals_.size() && intervals_[i].begin < iv.end;
}

void IntervalSet::insert_disjoint(const Interval& iv) {
  DS_ASSERT_MSG(!iv.empty(), "cannot reserve an empty interval");
  DS_ASSERT_MSG(!overlaps(iv), "reservation overlaps an existing reservation");
  const std::size_t i = first_ending_after(iv.begin);
  intervals_.insert(intervals_.begin() + static_cast<std::ptrdiff_t>(i), iv);
}

void IntervalSet::insert_merge(const Interval& iv) {
  if (iv.empty()) return;
  std::size_t i = first_ending_after(iv.begin);
  // An interval ending exactly at iv.begin is adjacent: merge it too.
  if (i > 0 && intervals_[i - 1].end == iv.begin) --i;
  Interval merged = iv;
  std::size_t j = i;
  while (j < intervals_.size() && intervals_[j].begin <= merged.end) {
    merged.begin = min(merged.begin, intervals_[j].begin);
    merged.end = max(merged.end, intervals_[j].end);
    ++j;
  }
  intervals_.erase(intervals_.begin() + static_cast<std::ptrdiff_t>(i),
                   intervals_.begin() + static_cast<std::ptrdiff_t>(j));
  intervals_.insert(intervals_.begin() + static_cast<std::ptrdiff_t>(i), merged);
}

void IntervalSet::subtract(const Interval& iv) {
  if (iv.empty()) return;
  std::size_t i = first_ending_after(iv.begin);
  std::vector<Interval> pieces;
  std::size_t j = i;
  while (j < intervals_.size() && intervals_[j].begin < iv.end) {
    const Interval& member = intervals_[j];
    if (member.begin < iv.begin) pieces.push_back(Interval{member.begin, iv.begin});
    if (member.end > iv.end) pieces.push_back(Interval{iv.end, member.end});
    ++j;
  }
  if (i == j) return;  // nothing overlapped
  intervals_.erase(intervals_.begin() + static_cast<std::ptrdiff_t>(i),
                   intervals_.begin() + static_cast<std::ptrdiff_t>(j));
  intervals_.insert(intervals_.begin() + static_cast<std::ptrdiff_t>(i),
                    pieces.begin(), pieces.end());
}

std::optional<SimTime> IntervalSet::earliest_fit(SimTime not_before, SimDuration length,
                                                 const Interval& window) const {
  DS_ASSERT(length >= SimDuration::zero());
  SimTime start = max(not_before, window.begin);
  if (start + length > window.end) return std::nullopt;

  std::size_t i = first_ending_after(start);
  while (true) {
    const SimTime candidate_end = start + length;
    if (candidate_end > window.end) return std::nullopt;
    if (i >= intervals_.size() || candidate_end <= intervals_[i].begin) {
      return start;  // fits before the next busy interval (or none left)
    }
    // Collision with intervals_[i]; restart after it.
    start = max(start, intervals_[i].end);
    ++i;
  }
}

SimDuration IntervalSet::covered_within(const Interval& window) const {
  SimDuration total = SimDuration::zero();
  for (std::size_t i = first_ending_after(window.begin); i < intervals_.size(); ++i) {
    if (intervals_[i].begin >= window.end) break;
    const SimTime lo = max(intervals_[i].begin, window.begin);
    const SimTime hi = min(intervals_[i].end, window.end);
    if (lo < hi) total = total + (hi - lo);
  }
  return total;
}

}  // namespace datastage
