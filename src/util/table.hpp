// Tabular output: the bench binaries regenerate the paper's figures as data
// series, rendered both as aligned text tables (for terminals) and CSV (for
// replotting). One renderer keeps every bench binary's output uniform.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace datastage {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  std::size_t rows() const { return rows_.size(); }

  /// Aligned, pipe-separated text rendering.
  std::string to_text() const;
  /// RFC-4180-ish CSV (fields with commas/quotes are quoted).
  std::string to_csv() const;

  void write_text(std::ostream& os) const;
  void write_csv_file(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace datastage
