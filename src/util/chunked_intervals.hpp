// Chunked storage for sorted disjoint interval sets.
//
// Same contract as IntervalSet's insert_disjoint/overlaps/earliest_fit, but
// the intervals live in a sequence of bounded chunks instead of one
// contiguous vector. A mid-set insert shifts at most one chunk (<= 2 *
// kChunk elements) plus an occasional chunk split, instead of memmoving the
// whole tail — insert_disjoint drops from O(n) to amortized O(kChunk) per
// commit, which is what LinkSchedule needs on heavily shared links at the
// huge scale tier. Queries stay logarithmic: binary search over the chunk
// summaries, then within the chunk.
//
// tests/util/interval_property_test.cpp runs this container and IntervalSet
// against the same naive reference; they must agree exactly.
#pragma once

#include <optional>
#include <utility>
#include <vector>

#include "util/interval.hpp"
#include "util/time.hpp"

namespace datastage {

/// A set of pairwise-disjoint, sorted, non-empty intervals in chunked
/// storage. API subset of IntervalSet (the reservation workload never
/// merges or subtracts).
class ChunkedIntervalSet {
 public:
  ChunkedIntervalSet() = default;

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  /// True iff `iv` overlaps any member interval.
  bool overlaps(const Interval& iv) const;

  /// Inserts a non-empty interval that must not overlap any existing member
  /// (reservations are exclusive by construction). Adjacent intervals are
  /// kept separate; only overlap is forbidden.
  void insert_disjoint(const Interval& iv);

  /// Earliest start >= `not_before` such that [start, start + length) lies
  /// inside `window` and overlaps no member interval. nullopt if none exists.
  std::optional<SimTime> earliest_fit(SimTime not_before, SimDuration length,
                                      const Interval& window) const;

  /// All members in ascending order, materialized (tests/debugging).
  std::vector<Interval> to_vector() const;

 private:
  // Split threshold 2 * kChunk keeps every chunk in [kChunk, 2 * kChunk)
  // after its first split: small enough that the insert memmove is cheap,
  // large enough that the chunk directory stays short.
  static constexpr std::size_t kChunk = 32;

  struct Chunk {
    std::vector<Interval> items;  // sorted, disjoint, non-empty
    SimTime max_end;              // == items.back().end
  };

  // Position of the first member with end > t, as (chunk, index-in-chunk);
  // (chunks_.size(), 0) when no such member exists.
  std::pair<std::size_t, std::size_t> first_ending_after(SimTime t) const;
  void maybe_split(std::size_t chunk);

  std::vector<Chunk> chunks_;  // globally sorted: chunk i precedes chunk i+1
  std::size_t size_ = 0;
};

}  // namespace datastage
