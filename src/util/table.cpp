#include "util/table.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/assert.hpp"

namespace datastage {
namespace {

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  DS_ASSERT(!header_.empty());
}

void Table::add_row(std::vector<std::string> row) {
  DS_ASSERT_MSG(row.size() == header_.size(), "row width must match header");
  rows_.push_back(std::move(row));
}

std::string Table::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ");
      os << row[c] << std::string(width[c] - row[c].size(), ' ');
    }
    os << " |\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(width[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void Table::write_text(std::ostream& os) const { os << to_text(); }

void Table::write_csv_file(const std::string& path) const {
  std::ofstream out(path);
  DS_ASSERT_MSG(out.good(), "cannot open CSV output file");
  out << to_csv();
}

}  // namespace datastage
