#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(threads, 1);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::hardware_jobs() {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<std::size_t>(reported);
}

void ThreadPool::run_indexed(std::size_t job_count,
                             const std::function<void(std::size_t)>& job) {
  if (job_count == 0) return;
  std::lock_guard<std::mutex> batch_lock(batch_mutex_);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    DS_ASSERT_MSG(job_ == nullptr, "batch already in flight");
    job_ = &job;
    job_count_ = job_count;
    next_index_ = 0;
    completed_ = 0;
    first_error_ = nullptr;
    first_error_index_ = 0;
    ++batch_id_;
  }
  work_cv_.notify_all();

  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return completed_ == job_count_; });
    job_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_batch = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && batch_id_ != seen_batch);
      });
      if (stop_) return;
      seen_batch = batch_id_;
      job = job_;
    }
    // Claim and run indices until the batch is exhausted.
    for (;;) {
      std::size_t index;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        // The batch we joined may have completed (and a new one started)
        // since we last held the lock; claiming an index from a later batch
        // here would run it with the previous batch's dangling job pointer.
        if (batch_id_ != seen_batch || next_index_ >= job_count_) break;
        index = next_index_++;
      }
      std::exception_ptr error;
      try {
        (*job)(index);
      } catch (...) {
        error = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if (error != nullptr &&
          (first_error_ == nullptr || index < first_error_index_)) {
        first_error_ = error;
        first_error_index_ = index;
      }
      if (++completed_ == job_count_) done_cv_.notify_all();
    }
  }
}

}  // namespace datastage
