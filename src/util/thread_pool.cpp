#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace datastage {

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t count = std::max<std::size_t>(threads, 1);
  workers_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    DS_ASSERT_MSG(job_ == nullptr && !async_in_flight_,
                  "destroying ThreadPool with a batch in flight (missing join)");
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::size_t ThreadPool::hardware_jobs() {
  const unsigned reported = std::thread::hardware_concurrency();
  return reported == 0 ? 1 : static_cast<std::size_t>(reported);
}

void ThreadPool::start_batch_locked(
    std::size_t job_count, const std::function<void(std::size_t, std::size_t)>* job) {
  DS_ASSERT_MSG(job_ == nullptr && !async_in_flight_, "batch already in flight");
  job_ = job;
  job_count_ = job_count;
  // One chunk per lock acquisition: big batches claim ranges to keep mutex
  // traffic O(workers), small batches claim single indices so uneven job
  // costs (Dijkstra over different plans) still balance.
  chunk_ = std::max<std::size_t>(1, job_count / (workers_.size() * 16));
  next_index_ = 0;
  completed_ = 0;
  first_error_ = nullptr;
  first_error_index_ = 0;
  ++batch_id_;
}

void ThreadPool::wait_batch_and_rethrow() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return completed_ == job_count_; });
    job_ = nullptr;
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error != nullptr) std::rethrow_exception(error);
}

void ThreadPool::run_indexed(std::size_t job_count,
                             const std::function<void(std::size_t)>& job) {
  if (job_count == 0) return;
  const std::function<void(std::size_t, std::size_t)> adapter =
      [&job](std::size_t, std::size_t index) { job(index); };
  parallel_for(job_count, adapter);
}

void ThreadPool::parallel_for(
    std::size_t job_count, const std::function<void(std::size_t, std::size_t)>& job) {
  if (job_count == 0) return;
  std::lock_guard<std::mutex> batch_lock(batch_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    start_batch_locked(job_count, &job);
  }
  work_cv_.notify_all();
  wait_batch_and_rethrow();
}

void ThreadPool::begin(std::size_t job_count,
                       std::function<void(std::size_t, std::size_t)> job) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (job_count == 0) {
      DS_ASSERT_MSG(job_ == nullptr && !async_in_flight_, "batch already in flight");
      async_in_flight_ = true;  // empty batch: nothing dispatched, join is a no-op
      return;
    }
    owned_job_ = std::move(job);
    start_batch_locked(job_count, &owned_job_);
    async_in_flight_ = true;
  }
  work_cv_.notify_all();
}

void ThreadPool::join() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!async_in_flight_) return;
    if (job_ == nullptr) {  // empty batch recorded by begin(0, ...)
      async_in_flight_ = false;
      return;
    }
  }
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return completed_ == job_count_; });
    job_ = nullptr;
    async_in_flight_ = false;
    error = first_error_;
    first_error_ = nullptr;
  }
  owned_job_ = nullptr;  // release captures outside the lock
  if (error != nullptr) std::rethrow_exception(error);
}

bool ThreadPool::batch_in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return async_in_flight_ || job_ != nullptr;
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen_batch = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] {
        return stop_ || (job_ != nullptr && batch_id_ != seen_batch);
      });
      if (stop_) return;
      seen_batch = batch_id_;
      job = job_;
    }
    // Claim and run index chunks until the batch is exhausted.
    for (;;) {
      std::size_t begin_index;
      std::size_t end_index;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        // The batch we joined may have completed (and a new one started)
        // since we last held the lock; claiming an index from a later batch
        // here would run it with the previous batch's dangling job pointer.
        if (batch_id_ != seen_batch || next_index_ >= job_count_) break;
        begin_index = next_index_;
        end_index = std::min(job_count_, begin_index + chunk_);
        next_index_ = end_index;
      }
      for (std::size_t index = begin_index; index < end_index; ++index) {
        std::exception_ptr error;
        try {
          (*job)(worker, index);
        } catch (...) {
          error = std::current_exception();
        }
        if (error != nullptr) {
          std::lock_guard<std::mutex> lock(mutex_);
          if (first_error_ == nullptr || index < first_error_index_) {
            first_error_ = error;
            first_error_index_ = index;
          }
        }
      }
      std::lock_guard<std::mutex> lock(mutex_);
      if ((completed_ += end_index - begin_index) == job_count_) {
        done_cv_.notify_all();
      }
    }
  }
}

}  // namespace datastage
