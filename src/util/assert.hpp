// Lightweight always-on assertion macros for invariant checking.
//
// DS_ASSERT is kept enabled in release builds: the schedulers in this library
// maintain nontrivial resource-accounting invariants and silently corrupting
// a schedule is far worse than aborting. The hot paths were profiled with the
// checks on; they are not measurable against Dijkstra + timeline costs.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace datastage {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line,
                                     const char* msg) {
  std::fprintf(stderr, "datastage assertion failed: %s\n  at %s:%d\n  %s\n", expr, file,
               line, msg == nullptr ? "" : msg);
  std::abort();
}

}  // namespace datastage

#define DS_ASSERT(expr)                                                     \
  do {                                                                      \
    if (!(expr)) ::datastage::assert_fail(#expr, __FILE__, __LINE__, nullptr); \
  } while (false)

#define DS_ASSERT_MSG(expr, msg)                                          \
  do {                                                                    \
    if (!(expr)) ::datastage::assert_fail(#expr, __FILE__, __LINE__, msg); \
  } while (false)

// DS_UNREACHABLE marks logically impossible branches.
#define DS_UNREACHABLE(msg) ::datastage::assert_fail("unreachable", __FILE__, __LINE__, msg)
