// §5.4 priority-first comparison: the cost-guided heuristic/criterion pairs
// against the simplified scheme that schedules strictly by priority class.
// Each heuristic/C4 pair is swept over the paper's E-U axis and reported at
// its best ratio (the paper's comparison point); the tuning-free C3 pairs are
// included as well. The paper reports the heuristic/criterion combinations
// beat the simplified scheme — including on the number of *highest-priority*
// requests received.
#include "bench_common.hpp"

namespace {

using namespace datastage;

struct Evaluation {
  double value = 0.0;
  double high = 0.0;
};

Evaluation evaluate(const CaseSet& cases, const PriorityWeighting& weighting,
                    const SchedulerSpec& spec, const EUWeights& eu) {
  Evaluation eval;
  EngineOptions options;
  options.weighting = weighting;
  options.eu = eu;
  for (const CaseResult& result : run_cases(cases, spec, options)) {
    eval.value += result.weighted_value;
    eval.high += static_cast<double>(result.by_class[2]);
  }
  const auto n = static_cast<double>(cases.scenarios.size());
  eval.value /= n;
  eval.high /= n;
  return eval;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace datastage;
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup)) return 1;
  benchtool::print_header(
      "Priority-first comparison — heuristics at their best E-U ratio vs the "
      "schedule-all-high-first scheme",
      setup);

  const CaseSet cases = build_cases(setup.config);
  Table table({"scheduler", "best log10(E-U)", "weighted value",
               "high-priority satisfied"});

  for (const HeuristicKind kind :
       {HeuristicKind::kPartial, HeuristicKind::kFullOne, HeuristicKind::kFullAll}) {
    // C4 swept over the axis; reported at its best ratio.
    {
      const SchedulerSpec spec{kind, CostCriterion::kC4};
      Evaluation best;
      double best_ratio = 0.0;
      for (const double ratio : paper_eu_axis()) {
        const Evaluation eval =
            evaluate(cases, setup.weighting, spec, EUWeights::from_log10_ratio(ratio));
        if (eval.value > best.value) {
          best = eval;
          best_ratio = ratio;
        }
      }
      table.add_row({spec.name(), eu_axis_label(best_ratio),
                     format_double(best.value, 1), format_double(best.high, 2)});
    }
    // C3 needs no ratio at all.
    {
      const SchedulerSpec spec{kind, CostCriterion::kC3};
      const Evaluation eval =
          evaluate(cases, setup.weighting, spec, EUWeights::from_log10_ratio(0.0));
      table.add_row({spec.name(), "n/a", format_double(eval.value, 1),
                     format_double(eval.high, 2)});
    }
  }

  {
    Evaluation pf;
    Evaluation edf;
    for (const Scenario& scenario : cases.scenarios) {
      const StagingResult a = run_priority_first(scenario, setup.weighting);
      pf.value += weighted_value(scenario, setup.weighting, a.outcomes);
      pf.high += static_cast<double>(satisfied_by_class(scenario, 3, a.outcomes)[2]);
      const StagingResult b = run_earliest_deadline_first(scenario, setup.weighting);
      edf.value += weighted_value(scenario, setup.weighting, b.outcomes);
      edf.high += static_cast<double>(satisfied_by_class(scenario, 3, b.outcomes)[2]);
    }
    const auto n = static_cast<double>(cases.scenarios.size());
    table.add_row({"priority_first", "n/a", format_double(pf.value / n, 1),
                   format_double(pf.high / n, 2)});
    table.add_row({"earliest_deadline_first", "n/a", format_double(edf.value / n, 1),
                   format_double(edf.high / n, 2)});
  }

  std::printf("%s\n", table.to_text().c_str());
  if (!setup.csv_path.empty()) {
    table.write_csv_file(setup.csv_path);
    std::printf("(CSV written to %s)\n", setup.csv_path.c_str());
  }
  return 0;
}
