// Figure 2: upper/lower bounds vs the best cost criterion (C4) for each of
// the three heuristics, across the E-U ratio axis (1,10,100 weighting).
//
// Paper series: upper_bound, possible_satisfy, partial, full_one, full_all,
// random_Dijkstra, single_Dij_random.
// With --minmax, additionally prints the per-case dispersion (min / max /
// stddev over the cases) of the three C4 series — the data the TR companion
// of the paper tabulates alongside Figure 2.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace datastage;
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup, {"minmax"})) return 1;
  CliFlags minmax_flags;
  const bool want_minmax =
      minmax_flags.parse(argc, argv,
                         {"cases", "seed", "weighting", "csv", "verbose", "minmax"}) &&
      minmax_flags.get_bool("minmax", false);
  benchtool::print_header(
      "Figure 2 — heuristics' best criterion (C4) vs upper and lower bounds",
      setup);

  const CaseSet cases = build_cases(setup.config);

  const std::vector<SchedulerSpec> pairs{
      {HeuristicKind::kPartial, CostCriterion::kC4},
      {HeuristicKind::kFullOne, CostCriterion::kC4},
      {HeuristicKind::kFullAll, CostCriterion::kC4},
  };
  SweepResult sweep =
      sweep_pairs(cases, setup.weighting, pairs, paper_eu_axis(), setup.verbose);

  const AveragedBounds bounds = average_bounds(cases, setup.weighting);
  add_flat_series(sweep, "upper_bound", bounds.upper_bound);
  add_flat_series(sweep, "possible_satisfy", bounds.possible_satisfy);
  add_flat_series(sweep, "random_Dijkstra",
                  average_random_dijkstra(cases, setup.weighting));
  add_flat_series(sweep, "single_Dij_random",
                  average_single_dijkstra_random(cases, setup.weighting));

  print_sweep("Weighted sum of satisfied priorities (mean over cases):", sweep,
              setup.csv_path);

  if (want_minmax) {
    Table dispersion({"series @ log10(E-U)", "mean", "min", "max", "stddev"});
    for (const SchedulerSpec& spec : pairs) {
      for (const double ratio : {0.0, 2.0}) {
        const ValueStats stats = pair_value_stats(
            cases, setup.weighting, spec, EUWeights::from_log10_ratio(ratio));
        dispersion.add_row({spec.name() + " @ " + eu_axis_label(ratio),
                            format_double(stats.mean, 1), format_double(stats.min, 1),
                            format_double(stats.max, 1),
                            format_double(stats.stddev, 1)});
      }
    }
    std::printf("Per-case dispersion (TR companion data):\n%s\n",
                dispersion.to_text().c_str());
  }
  return 0;
}
