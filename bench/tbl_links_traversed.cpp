// TR companion data (§5.4 mentions it was collected): average number of
// links traversed — scheduled communication steps per satisfied request —
// plus Dijkstra executions and scheduling iterations for every pair. The
// full_all heuristic exists precisely to reduce Dijkstra executions (§4.7);
// this table shows that effect.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace datastage;
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup)) return 1;
  benchtool::print_header(
      "Links traversed & heuristic work per pair (E-U ratio 10^1)", setup);

  const CaseSet cases = build_cases(setup.config);
  const auto n = static_cast<double>(cases.scenarios.size());

  Table table({"pair", "steps/satisfied", "steps", "satisfied", "dijkstra runs",
               "iterations"});
  for (const SchedulerSpec& spec : paper_pairs()) {
    EngineOptions options;
    options.weighting = setup.weighting;
    options.eu = EUWeights::from_log10_ratio(1.0);
    double steps = 0.0;
    double satisfied = 0.0;
    double dijkstra = 0.0;
    double iterations = 0.0;
    for (const CaseResult& result : run_cases(cases, spec, options)) {
      steps += static_cast<double>(result.staging.schedule.size());
      satisfied += static_cast<double>(result.satisfied);
      dijkstra += static_cast<double>(result.staging.dijkstra_runs);
      iterations += static_cast<double>(result.staging.iterations);
    }
    const double per = satisfied > 0.0 ? steps / satisfied : 0.0;
    table.add_row({spec.name(), format_double(per, 3), format_double(steps / n, 1),
                   format_double(satisfied / n, 1), format_double(dijkstra / n, 1),
                   format_double(iterations / n, 1)});
  }

  std::printf("%s\n", table.to_text().c_str());
  if (!setup.csv_path.empty()) {
    table.write_csv_file(setup.csv_path);
    std::printf("(CSV written to %s)\n", setup.csv_path.c_str());
  }
  return 0;
}
