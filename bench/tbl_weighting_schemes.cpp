// §5.4 weighting comparison: per-priority-class satisfaction under the
// 1,5,10 and 1,10,100 weightings for each heuristic with C4 (its best
// criterion). The paper reports that 1,10,100 satisfies more high-priority
// and fewer medium/low-priority requests than 1,5,10.
#include "bench_common.hpp"

namespace {

using namespace datastage;

struct ClassMeans {
  double low = 0.0;
  double medium = 0.0;
  double high = 0.0;
  double value = 0.0;
};

ClassMeans evaluate(const CaseSet& cases, const PriorityWeighting& weighting,
                    const SchedulerSpec& spec, const EUWeights& eu) {
  ClassMeans means;
  EngineOptions options;
  options.weighting = weighting;
  options.eu = eu;
  for (const CaseResult& result : run_cases(cases, spec, options)) {
    means.low += static_cast<double>(result.by_class[0]);
    means.medium += static_cast<double>(result.by_class[1]);
    means.high += static_cast<double>(result.by_class[2]);
    means.value += result.weighted_value;
  }
  const auto n = static_cast<double>(cases.scenarios.size());
  means.low /= n;
  means.medium /= n;
  means.high /= n;
  means.value /= n;
  return means;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace datastage;
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup)) return 1;
  benchtool::print_header(
      "Weighting-scheme comparison — satisfied requests per priority class "
      "(heuristic/C4, E-U ratio 10^1)",
      setup);

  const CaseSet cases = build_cases(setup.config);
  const EUWeights eu = EUWeights::from_log10_ratio(1.0);

  Table table({"heuristic", "weighting", "high", "medium", "low", "weighted value"});
  for (const HeuristicKind kind :
       {HeuristicKind::kPartial, HeuristicKind::kFullOne, HeuristicKind::kFullAll}) {
    const SchedulerSpec spec{kind, CostCriterion::kC4};
    for (const PriorityWeighting& weighting :
         {PriorityWeighting::w_1_5_10(), PriorityWeighting::w_1_10_100()}) {
      const ClassMeans means = evaluate(cases, weighting, spec, eu);
      table.add_row({heuristic_name(kind), weighting.to_string(),
                     format_double(means.high, 2), format_double(means.medium, 2),
                     format_double(means.low, 2), format_double(means.value, 1)});
    }
  }
  std::printf("%s\n", table.to_text().c_str());
  if (!setup.csv_path.empty()) {
    table.write_csv_file(setup.csv_path);
    std::printf("(CSV written to %s)\n", setup.csv_path.c_str());
  }
  return 0;
}
