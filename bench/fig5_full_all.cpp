// Figure 5: the full path/all destinations heuristic under the admissible
// cost criteria C2-C4 across the E-U ratio axis (1,10,100 weighting). C1 is
// excluded — it cannot express multi-destination transfers (§4.8).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace datastage;
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup)) return 1;
  benchtool::print_header(
      "Figure 5 — full path/all destinations heuristic, criteria C2-C4", setup);

  const CaseSet cases = build_cases(setup.config);
  const SweepResult sweep = sweep_pairs(cases, setup.weighting,
                                        pairs_for(HeuristicKind::kFullAll),
                                        paper_eu_axis(), setup.verbose);
  print_sweep("Weighted sum of satisfied priorities (mean over cases):", sweep,
              setup.csv_path);
  return 0;
}
