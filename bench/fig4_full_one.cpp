// Figure 4: the full path/one destination heuristic under all four cost
// criteria across the E-U ratio axis (1,10,100 weighting).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace datastage;
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup)) return 1;
  benchtool::print_header(
      "Figure 4 — full path/one destination heuristic, criteria C1-C4", setup);

  const CaseSet cases = build_cases(setup.config);
  const SweepResult sweep = sweep_pairs(cases, setup.weighting,
                                        pairs_for(HeuristicKind::kFullOne),
                                        paper_eu_axis(), setup.verbose);
  print_sweep("Weighted sum of satisfied priorities (mean over cases):", sweep,
              setup.csv_path);
  return 0;
}
