// Extension experiment (paper §1: "multiple copies of data items ... provide
// more available sources ... [and] an increased level of fault tolerance"):
// the effect of source replication. The generator's max-sources knob is
// swept; for each level the table reports the achievable bound, the
// scheduled value, and the value after the busiest physical link fails
// mid-run (replanned dynamically) — replication both raises throughput and
// blunts outages.
#include "bench_common.hpp"

#include "core/bounds.hpp"
#include "dynamic/stager.hpp"
#include "model/transforms.hpp"

namespace {

using namespace datastage;

/// Physical link carrying the most scheduled busy time.
PhysLinkId busiest_link(const Scenario& scenario, const Schedule& schedule) {
  std::vector<std::int64_t> busy(scenario.phys_links.size(), 0);
  for (const CommStep& step : schedule.steps()) {
    busy[scenario.vlink(step.link).phys.index()] += (step.arrival - step.start).usec();
  }
  std::size_t best = 0;
  for (std::size_t p = 1; p < busy.size(); ++p) {
    if (busy[p] > busy[best]) best = p;
  }
  return PhysLinkId(static_cast<std::int32_t>(best));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace datastage;
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup)) return 1;
  benchtool::print_header(
      "Replication study — max sources per item vs value and outage "
      "resilience (full_one/C4, E-U ratio 10^1; busiest link fails at t=30m)",
      setup);

  const SchedulerSpec spec{HeuristicKind::kFullOne, CostCriterion::kC4};
  EngineOptions options;
  options.weighting = setup.weighting;
  options.eu = EUWeights::from_log10_ratio(1.0);

  Table table({"max sources", "possible_satisfy", "value", "value under outage",
               "outage retention %"});

  // One case set, truncated to k sources per row: the workload is identical
  // across rows, isolating the replication effect.
  const CaseSet cases = build_cases(setup.config);

  for (const std::size_t max_sources : {std::size_t{1}, std::size_t{2},
                                        std::size_t{3}, std::size_t{5}}) {
    struct CaseEval {
      double possible = 0.0;
      double value = 0.0;
      double outage_value = 0.0;
    };
    const std::vector<CaseEval> evals = default_executor().map<CaseEval>(
        cases.scenarios.size(), [&](std::size_t i) {
          const Scenario scenario = limit_sources(cases.scenarios[i], max_sources);
          CaseEval eval;
          eval.possible = compute_bounds(scenario, setup.weighting).possible_satisfy;
          const CaseResult result = run_case(spec, scenario, options);
          eval.value = result.weighted_value;

          // Fail the busiest link of the static plan at minute 30, replan.
          DynamicStager stager(scenario, spec, options);
          stager.on_event(StagingEvent{
              SimTime::zero() + SimDuration::minutes(30),
              LinkOutageEvent{busiest_link(scenario, result.staging.schedule)}});
          const DynamicResult dynamic = stager.finish();
          eval.outage_value = dynamic.weighted_value(setup.weighting);
          return eval;
        });
    double possible = 0.0;
    double value = 0.0;
    double outage_value = 0.0;
    for (const CaseEval& eval : evals) {
      possible += eval.possible;
      value += eval.value;
      outage_value += eval.outage_value;
    }

    const auto n = static_cast<double>(cases.scenarios.size());
    table.add_row({std::to_string(max_sources), format_double(possible / n, 1),
                   format_double(value / n, 1), format_double(outage_value / n, 1),
                   value > 0.0 ? format_double(100.0 * outage_value / value, 1)
                               : "-"});
  }

  std::printf("%s\n", table.to_text().c_str());
  if (!setup.csv_path.empty()) {
    table.write_csv_file(setup.csv_path);
    std::printf("(CSV written to %s)\n", setup.csv_path.c_str());
  }
  return 0;
}
