// Shared plumbing for the figure/table bench binaries.
//
// Every binary regenerating a paper artifact accepts the same flags:
//   --cases=N      test cases to average (paper: 40; default lighter)
//   --seed=S       base RNG seed for case generation
//   --weighting=A  "1,10,100" (default) or "1,5,10"
//   --csv=PATH     also write the data series as CSV
//   --jobs=N       worker threads for the experiment grid (default: hardware
//                  concurrency; output is byte-identical for any value)
//   --verbose      progress logging while sweeping
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "obs/observer.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace datastage::benchtool {

/// Engine cost counters of one scheduler run (observability snapshot); lets
/// the result tables explain *why* heuristics differ in cost, not just by
/// how much. Doubles because google-benchmark counters are doubles.
struct EngineCostSnapshot {
  double iterations = 0.0;
  double recomputes = 0.0;   ///< Dijkstra tree recomputes (cache misses)
  double cache_hits = 0.0;   ///< cached route trees reused
  double candidates = 0.0;   ///< candidates generated and scored
  double steps = 0.0;        ///< communication steps committed
};

/// Runs `spec` once on `scenario` with a metrics observer attached and
/// returns the engine's cost counters. Observation does not change the
/// schedule, so the snapshot describes the same run the timings measure.
inline EngineCostSnapshot snapshot_engine_cost(const SchedulerSpec& spec,
                                               const Scenario& scenario,
                                               EngineOptions options) {
  obs::MetricsRegistry registry;
  obs::RunObserver observer{&registry, nullptr};
  options.observer = &observer;
  run_case(spec, scenario, options);
  const auto value = [&registry](const char* name) {
    return static_cast<double>(registry.counter_value(name));
  };
  EngineCostSnapshot snapshot;
  snapshot.iterations = value("engine.iterations");
  snapshot.recomputes = value("engine.tree_recomputes");
  snapshot.cache_hits = value("engine.cache_hits");
  snapshot.candidates = value("engine.candidates_scored");
  snapshot.steps = value("engine.steps_committed");
  return snapshot;
}

struct BenchSetup {
  ExperimentConfig config;
  PriorityWeighting weighting = PriorityWeighting::w_1_10_100();
  std::string csv_path;
  std::size_t jobs = 0;  ///< resolved worker count (after parse)
  bool verbose = false;
};

inline bool parse_bench_flags(int argc, const char* const* argv, BenchSetup& setup,
                              std::vector<std::string> extra_flags = {}) {
  std::vector<std::string> known{"cases", "seed", "weighting", "csv", "jobs",
                                 "verbose"};
  known.insert(known.end(), extra_flags.begin(), extra_flags.end());
  CliFlags flags;
  if (!flags.parse(argc, argv, known)) return false;

  setup.config.cases = static_cast<std::size_t>(flags.get_int("cases", 40));
  setup.config.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2000));
  setup.csv_path = flags.get_string("csv", "");
  setup.verbose = flags.get_bool("verbose", false);
  if (setup.verbose) set_log_level(LogLevel::kInfo);

  // 0 = hardware concurrency; the harness entry points all fan out through
  // the process-wide executor configured here.
  set_default_jobs(static_cast<std::size_t>(flags.get_int("jobs", 0)));
  setup.jobs = default_jobs();

  const std::string weighting = flags.get_string("weighting", "1,10,100");
  if (weighting == "1,10,100") {
    setup.weighting = PriorityWeighting::w_1_10_100();
  } else if (weighting == "1,5,10") {
    setup.weighting = PriorityWeighting::w_1_5_10();
  } else {
    std::fprintf(stderr, "unknown --weighting '%s' (use 1,10,100 or 1,5,10)\n",
                 weighting.c_str());
    return false;
  }
  return true;
}

inline void print_header(const std::string& title, const BenchSetup& setup) {
  std::printf("%s\n", title.c_str());
  // --jobs intentionally absent: headers must be byte-identical across jobs
  // values (the determinism suite diffs whole stdout captures).
  std::printf("cases=%zu seed=%llu weighting=%s\n\n", setup.config.cases,
              static_cast<unsigned long long>(setup.config.seed),
              setup.weighting.to_string().c_str());
}

}  // namespace datastage::benchtool
