// Engine microbenchmark: incremental candidate selection vs the paper's
// recompute-everything procedure (--paranoid) on a small/medium/large
// scenario grid. For each size it reports wall time and the engine's cost
// counters for both modes, checks the schedules are byte-identical, and
// writes the whole record to BENCH_engine.json — the repo's perf-trajectory
// baseline (see docs/PERFORMANCE.md for how to read it).
//
// Each grid entry also runs an --engine-jobs ablation (parallel plan refresh
// + speculative scoring, docs/PARALLELISM.md) and records it under a
// "parallel" key: wall time, speedup vs the serial engine, the speculation
// commit/abort counters, and whether the schedules stayed byte-identical —
// the bench doubles as a determinism gate for the parallel path.
//
// Extra flags on top of the shared bench set:
//   --out=PATH       JSON output path (default BENCH_engine.json)
//   --grid=G         "small", "medium", "large" or "all" (default all)
//   --engine-jobs=N  thread count for the parallel ablation (default 8;
//                    0 = hardware concurrency)
#include <cinttypes>
#include <cstdio>

#include "bench_common.hpp"
#include "common_flags.hpp"
#include "core/heuristics.hpp"
#include "core/registry.hpp"
#include "core/schedule_io.hpp"
#include "gen/generator.hpp"
#include "obs/json.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"

namespace {

using namespace datastage;

/// The counters BENCH_engine.json records per mode, in output order.
constexpr const char* kCounters[] = {
    "engine.iterations",
    "engine.scoring_rounds",
    "engine.tree_recomputes",
    "engine.cache_hits",
    "engine.candidates_scored",
    "engine.best_rescans",
    "engine.steps_committed",
    "engine.invalidations_link",
    "engine.invalidations_storage",
    "engine.invalidations_self",
    "engine.invalidations_checked",
    "engine.invalidations_scan_equiv",
    "engine.spec_commits",
    "engine.spec_aborts",
    "dijkstra.heap_pops",
    "dijkstra.relaxations",
};

struct ModeResult {
  std::int64_t wall_ns = 0;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::string> schedules;  ///< canonical text, for cross-mode diff

  std::uint64_t counter(std::string_view name) const {
    for (const auto& [key, value] : counters) {
      if (key == name) return value;
    }
    return 0;
  }
};

ModeResult run_mode(const std::vector<Scenario>& cases, const SchedulerSpec& spec,
                    const PriorityWeighting& weighting, bool paranoid,
                    std::size_t engine_jobs = 1) {
  obs::MetricsRegistry registry;
  obs::RunObserver observer{&registry, nullptr};
  EngineOptions options;
  options.weighting = weighting;
  options.criterion = spec.criterion;
  options.eu = EUWeights::from_log10_ratio(1.0);
  options.paranoid = paranoid;
  options.engine_jobs = engine_jobs;
  options.observer = &observer;

  ModeResult result;
  result.schedules.reserve(cases.size());
  const std::int64_t t0 = steady_clock_nanos();
  for (const Scenario& scenario : cases) {
    const StagingResult staged = run_spec(spec, scenario, options);
    result.schedules.push_back(schedule_to_string(staged.schedule));
  }
  result.wall_ns = steady_clock_nanos() - t0;
  for (const char* name : kCounters) {
    result.counters.emplace_back(name, registry.counter_value(name));
  }
  return result;
}

struct GridEntry {
  const char* name;
  GeneratorConfig config;
};

std::vector<GridEntry> build_grid(const std::string& which) {
  GeneratorConfig large = GeneratorConfig::paper();
  large.min_machines = 16;
  large.max_machines = 16;
  large.min_requests_per_machine = 40;
  large.max_requests_per_machine = 40;
  std::vector<GridEntry> grid;
  if (which == "small" || which == "all") {
    grid.push_back({"small", GeneratorConfig::light()});
  }
  if (which == "medium" || which == "all") {
    grid.push_back({"medium", GeneratorConfig::paper()});
  }
  if (which == "large" || which == "all") {
    grid.push_back({"large", large});
  }
  return grid;
}

void write_mode_json(std::FILE* f, const char* key, const ModeResult& mode) {
  std::fprintf(f, "      \"%s\": {\n        \"wall_ns\": %" PRId64
                  ",\n        \"counters\": {",
               key, mode.wall_ns);
  bool first = true;
  for (const auto& [name, value] : mode.counters) {
    std::fprintf(f, "%s\n          \"%s\": %llu", first ? "" : ",", name.c_str(),
                 static_cast<unsigned long long>(value));
    first = false;
  }
  std::fprintf(f, "\n        }\n      }");
}

}  // namespace

int main(int argc, char** argv) {
  benchtool::BenchSetup setup;
  std::vector<std::string> extra{"out", "grid"};
  CliFlags flags;  // re-parse only the extra flags; shared ones go to setup
  if (!benchtool::parse_bench_flags(argc, argv, setup, extra)) return 1;
  if (!flags.parse(argc, argv,
                   {"cases", "seed", "weighting", "csv", "jobs", "verbose", "out",
                    "grid", "engine-jobs"})) {
    return 1;
  }
  const std::string out_path = flags.get_string("out", "BENCH_engine.json");
  const auto engine_jobs_flag =
      static_cast<std::size_t>(flags.get_int("engine-jobs", 8));
  const std::size_t engine_jobs =
      engine_jobs_flag == 0 ? ThreadPool::hardware_jobs() : engine_jobs_flag;
  const std::string grid_name = flags.get_string("grid", "all");
  const std::vector<GridEntry> grid = build_grid(grid_name);
  if (grid.empty()) {
    std::fprintf(stderr, "unknown --grid '%s' (use small, medium, large or all)\n",
                 grid_name.c_str());
    return 1;
  }

  // Lighter default than the figure benches: each size runs twice (modes) and
  // the paranoid large runs are the expensive part being measured.
  if (setup.config.cases == 40) setup.config.cases = 4;
  benchtool::print_header("Engine cost: incremental vs paranoid (full_one/C4)",
                          setup);

  const SchedulerSpec spec{HeuristicKind::kFullOne, CostCriterion::kC4};

  Table table({"size", "incr ms", "paranoid ms", "speedup", "inval reduction",
               "ej ms", "ej speedup", "spec abort", "identical"});

  std::FILE* f = toolflags::open_output_cfile(out_path, "bench output");
  if (f == nullptr) return 2;
  std::fprintf(f,
               "{\n  \"bench\": \"perf_engine\",\n  \"scheduler\": \"%s\",\n"
               "  \"cases\": %zu,\n  \"seed\": %llu,\n  \"grid\": [\n",
               spec.name().c_str(), setup.config.cases,
               static_cast<unsigned long long>(setup.config.seed));

  bool all_identical = true;
  for (std::size_t g = 0; g < grid.size(); ++g) {
    const GridEntry& entry = grid[g];
    const std::vector<Scenario> cases =
        generate_cases(entry.config, setup.config.seed, setup.config.cases);

    const ModeResult incremental = run_mode(cases, spec, setup.weighting, false);
    const ModeResult paranoid = run_mode(cases, spec, setup.weighting, true);
    const ModeResult parallel =
        run_mode(cases, spec, setup.weighting, false, engine_jobs);
    const bool identical = incremental.schedules == paranoid.schedules;
    const bool parallel_identical = incremental.schedules == parallel.schedules;
    all_identical = all_identical && identical && parallel_identical;

    const double incr_ms = static_cast<double>(incremental.wall_ns) / 1e6;
    const double par_ms = static_cast<double>(paranoid.wall_ns) / 1e6;
    const double speedup = incremental.wall_ns > 0 ? par_ms / incr_ms : 0.0;
    const auto checked =
        static_cast<double>(incremental.counter("engine.invalidations_checked"));
    const auto scan_equiv =
        static_cast<double>(incremental.counter("engine.invalidations_scan_equiv"));
    const double reduction = checked > 0.0 ? scan_equiv / checked : 0.0;
    const double ej_ms = static_cast<double>(parallel.wall_ns) / 1e6;
    const double ej_speedup = parallel.wall_ns > 0 ? incr_ms / ej_ms : 0.0;
    const auto spec_commits =
        static_cast<double>(parallel.counter("engine.spec_commits"));
    const auto spec_aborts =
        static_cast<double>(parallel.counter("engine.spec_aborts"));
    const double spec_total = spec_commits + spec_aborts;
    const double spec_abort_rate = spec_total > 0.0 ? spec_aborts / spec_total : 0.0;

    table.add_row({entry.name, format_double(incr_ms, 1), format_double(par_ms, 1),
                   format_double(speedup, 2), format_double(reduction, 2),
                   format_double(ej_ms, 1), format_double(ej_speedup, 2),
                   format_double(spec_abort_rate, 2),
                   identical && parallel_identical ? "yes" : "NO"});

    std::fprintf(f,
                 "    {\n      \"size\": \"%s\",\n      \"machines\": [%d, %d],\n"
                 "      \"requests_per_machine\": [%d, %d],\n",
                 entry.name, entry.config.min_machines, entry.config.max_machines,
                 entry.config.min_requests_per_machine,
                 entry.config.max_requests_per_machine);
    write_mode_json(f, "incremental", incremental);
    std::fprintf(f, ",\n");
    write_mode_json(f, "paranoid", paranoid);
    std::fprintf(f, ",\n");
    write_mode_json(f, "parallel", parallel);
    std::fprintf(f,
                 ",\n      \"parallel_ablation\": {\n"
                 "        \"engine_jobs\": %zu,\n"
                 "        \"speedup_vs_serial\": %s,\n"
                 "        \"spec_abort_rate\": %s,\n"
                 "        \"schedules_identical\": %s\n      },\n",
                 engine_jobs, obs::json_number(ej_speedup).c_str(),
                 obs::json_number(spec_abort_rate).c_str(),
                 parallel_identical ? "true" : "false");
    std::fprintf(f,
                 "      \"schedules_identical\": %s,\n"
                 "      \"speedup_wall\": %s,\n"
                 "      \"invalidation_scan_reduction\": %s\n    }%s\n",
                 identical ? "true" : "false",
                 obs::json_number(speedup).c_str(),
                 obs::json_number(reduction).c_str(),
                 g + 1 < grid.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);

  std::printf("%s\n", table.to_text().c_str());
  std::printf("(JSON written to %s)\n", out_path.c_str());
  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: schedules differ across modes — the route cache or the "
                 "parallel refresh path is unsound\n");
    return 1;
  }
  return 0;
}
