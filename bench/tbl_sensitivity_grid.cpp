// Extension experiment: sensitivity of full_one/C4 to bandwidth and deadline
// tightness. Uses the model/transforms library to perturb the same cases in
// both dimensions and reports the fraction of the (per-cell) possible_satisfy
// bound retained — a map of where the heuristic's operating regime lies.
#include "bench_common.hpp"

#include "core/bounds.hpp"
#include "model/transforms.hpp"

int main(int argc, char** argv) {
  using namespace datastage;
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup)) return 1;
  benchtool::print_header(
      "Sensitivity grid — full_one/C4 (E-U ratio 10^1), weighted value as % "
      "of possible_satisfy, bandwidth factor x deadline factor",
      setup);

  const CaseSet cases = build_cases(setup.config);
  const std::vector<double> bandwidth_factors{0.25, 0.5, 1.0, 2.0, 4.0};
  const std::vector<double> deadline_factors{0.5, 0.75, 1.0, 1.5, 2.0};

  std::vector<std::string> header{"bandwidth \\ deadline"};
  for (const double df : deadline_factors) header.push_back("x" + format_double(df, 2));
  Table table(std::move(header));

  const SchedulerSpec spec{HeuristicKind::kFullOne, CostCriterion::kC4};
  EngineOptions options;
  options.weighting = setup.weighting;
  options.eu = EUWeights::from_log10_ratio(1.0);

  for (const double bf : bandwidth_factors) {
    std::vector<std::string> row{"x" + format_double(bf, 2)};
    for (const double df : deadline_factors) {
      double value = 0.0;
      double possible = 0.0;
      for (const Scenario& base : cases.scenarios) {
        const Scenario perturbed = scale_deadlines(scale_bandwidth(base, bf), df);
        const StagingResult result = run_spec(spec, perturbed, options);
        value += weighted_value(perturbed, setup.weighting, result.outcomes);
        possible += compute_bounds(perturbed, setup.weighting).possible_satisfy;
      }
      row.push_back(possible > 0.0 ? format_double(100.0 * value / possible, 1)
                                   : "-");
    }
    table.add_row(std::move(row));
  }

  std::printf("%s\n", table.to_text().c_str());
  if (!setup.csv_path.empty()) {
    table.write_csv_file(setup.csv_path);
    std::printf("(CSV written to %s)\n", setup.csv_path.c_str());
  }
  return 0;
}
