// Extension experiment: sensitivity of full_one/C4 to bandwidth and deadline
// tightness. Uses the model/transforms library to perturb the same cases in
// both dimensions and reports the fraction of the (per-cell) possible_satisfy
// bound retained — a map of where the heuristic's operating regime lies.
#include "bench_common.hpp"

#include "core/bounds.hpp"
#include "model/transforms.hpp"

int main(int argc, char** argv) {
  using namespace datastage;
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup)) return 1;
  benchtool::print_header(
      "Sensitivity grid — full_one/C4 (E-U ratio 10^1), weighted value as % "
      "of possible_satisfy, bandwidth factor x deadline factor",
      setup);

  const CaseSet cases = build_cases(setup.config);
  const std::vector<double> bandwidth_factors{0.25, 0.5, 1.0, 2.0, 4.0};
  const std::vector<double> deadline_factors{0.5, 0.75, 1.0, 1.5, 2.0};

  std::vector<std::string> header{"bandwidth \\ deadline"};
  for (const double df : deadline_factors) header.push_back("x" + format_double(df, 2));
  Table table(std::move(header));

  const SchedulerSpec spec{HeuristicKind::kFullOne, CostCriterion::kC4};
  EngineOptions options;
  options.weighting = setup.weighting;
  options.eu = EUWeights::from_log10_ratio(1.0);

  // One grid cell per (bandwidth factor, deadline factor, case); every cell
  // perturbs its own copy of the case, so all cells fan out independently.
  struct CellValue {
    double value = 0.0;
    double possible = 0.0;
  };
  const std::size_t n = cases.scenarios.size();
  const std::size_t cells_per_row = deadline_factors.size() * n;
  const std::vector<CellValue> cell_values =
      default_executor().map<CellValue>(
          bandwidth_factors.size() * cells_per_row, [&](std::size_t i) {
            const double bf = bandwidth_factors[i / cells_per_row];
            const double df = deadline_factors[(i % cells_per_row) / n];
            const Scenario& base = cases.scenarios[i % n];
            const Scenario perturbed = scale_deadlines(scale_bandwidth(base, bf), df);
            CellValue cell;
            cell.value = run_case(spec, perturbed, options).weighted_value;
            cell.possible =
                compute_bounds(perturbed, setup.weighting).possible_satisfy;
            return cell;
          });

  std::size_t next_cell = 0;
  for (const double bf : bandwidth_factors) {
    std::vector<std::string> row{"x" + format_double(bf, 2)};
    for (std::size_t d = 0; d < deadline_factors.size(); ++d) {
      double value = 0.0;
      double possible = 0.0;
      for (std::size_t c = 0; c < n; ++c) {
        value += cell_values[next_cell].value;
        possible += cell_values[next_cell].possible;
        ++next_cell;
      }
      row.push_back(possible > 0.0 ? format_double(100.0 * value / possible, 1)
                                   : "-");
    }
    table.add_row(std::move(row));
  }

  std::printf("%s\n", table.to_text().c_str());
  if (!setup.csv_path.empty()) {
    table.write_csv_file(setup.csv_path);
    std::printf("(CSV written to %s)\n", setup.csv_path.c_str());
  }
  return 0;
}
