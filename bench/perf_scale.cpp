// Scale-tier benchmark: wall time and peak memory of generation + scheduling
// as scenario size grows from the paper's grids to the `huge` preset
// (5000 machines, 500k requests). Produces BENCH_scale.json — the committed
// curve CI's perf-smoke job benchdiffs against (warn-only) — and a human
// table on stdout.
//
// Tiers run in ascending size order, each on one generated case with the
// serial engine (engine_jobs=1) so wall times are comparable run to run.
// Peak RSS is read from /proc/self/status VmHWM, which is monotone over the
// process lifetime; with ascending tiers the recorded value is the running
// peak, dominated by the tier itself once sizes grow past the predecessors
// (the huge tier's number is the real footprint).
//
// Extra flags on top of the shared bench set:
//   --out=PATH   JSON output path (default BENCH_scale.json)
//   --tier=T     "small", "medium", "large", "xlarge", "huge" or "all"
//                (default all; CI's perf-smoke runs --tier=small)
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "bench_common.hpp"
#include "common_flags.hpp"
#include "core/registry.hpp"
#include "core/satisfaction.hpp"
#include "gen/generator.hpp"
#include "util/time.hpp"

namespace {

using namespace datastage;

/// Reads a kB-valued field (VmHWM, VmRSS) from /proc/self/status; 0 when the
/// field or the file is unavailable (non-Linux builds still run the bench,
/// they just report no memory numbers).
std::int64_t read_status_kb(const char* field) {
#if defined(__linux__)
  std::FILE* f = std::fopen(  // ds-lint: allow(DS013 reads /proc, no output)
      "/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::int64_t value = 0;
  const std::size_t field_len = std::strlen(field);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, field, field_len) == 0 && line[field_len] == ':') {
      std::sscanf(line + field_len + 1, "%" SCNd64, &value);
      break;
    }
  }
  std::fclose(f);
  return value;
#else
  (void)field;
  return 0;
#endif
}

struct Tier {
  const char* name;
  GeneratorConfig config;
};

std::vector<Tier> build_tiers(const std::string& which) {
  // large: the paper's topology shape pushed to 64 machines (legacy sampling,
  // like every pre-scale grid). xlarge: first scalable-sampling tier — the
  // huge preset's shape at 1/5 the machine count.
  GeneratorConfig large = GeneratorConfig::paper();
  large.min_machines = 64;
  large.max_machines = 64;
  large.min_requests_per_machine = 40;
  large.max_requests_per_machine = 40;

  GeneratorConfig xlarge = GeneratorConfig::huge();
  xlarge.min_machines = 1000;
  xlarge.max_machines = 1000;
  xlarge.min_requests_per_machine = 50;
  xlarge.max_requests_per_machine = 50;

  std::vector<Tier> tiers;
  const auto want = [&which](const char* name) {
    return which == name || which == "all";
  };
  if (want("small")) tiers.push_back({"small", GeneratorConfig::light()});
  if (want("medium")) tiers.push_back({"medium", GeneratorConfig::paper()});
  if (want("large")) tiers.push_back({"large", large});
  if (want("xlarge")) tiers.push_back({"xlarge", xlarge});
  if (want("huge")) tiers.push_back({"huge", GeneratorConfig::huge()});
  return tiers;
}

}  // namespace

int main(int argc, char** argv) {
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup, {"out", "tier"})) return 1;
  CliFlags flags;
  if (!flags.parse(argc, argv, {"cases", "seed", "weighting", "csv", "jobs",
                                "verbose", "out", "tier"})) {
    return 1;
  }
  const std::string out_path = flags.get_string("out", "BENCH_scale.json");
  const std::string tier_name = flags.get_string("tier", "all");
  const std::vector<Tier> tiers = build_tiers(tier_name);
  if (tiers.empty()) {
    std::fprintf(stderr,
                 "unknown --tier '%s' (use small, medium, large, xlarge, huge "
                 "or all)\n",
                 tier_name.c_str());
    return 1;
  }

  setup.config.cases = 1;  // one case per tier; size, not repetition, varies
  benchtool::print_header("Scale curve: generation + scheduling (full_one/C4)",
                          setup);
  const SchedulerSpec spec{HeuristicKind::kFullOne, CostCriterion::kC4};

  EngineOptions options;
  options.weighting = setup.weighting;
  options.criterion = spec.criterion;
  options.eu = EUWeights::from_log10_ratio(1.0);
  options.engine_jobs = 1;

  Table table({"tier", "machines", "requests", "gen ms", "sched ms", "steps",
               "satisfied", "peak rss MB"});

  std::FILE* f = toolflags::open_output_cfile(out_path, "bench output");
  if (f == nullptr) return 2;
  std::fprintf(f,
               "{\n  \"bench\": \"perf_scale\",\n  \"scheduler\": \"%s\",\n"
               "  \"seed\": %llu,\n  \"tiers\": [\n",
               spec.name().c_str(),
               static_cast<unsigned long long>(setup.config.seed));

  for (std::size_t t = 0; t < tiers.size(); ++t) {
    const Tier& tier = tiers[t];

    const std::int64_t gen_t0 = steady_clock_nanos();
    std::vector<Scenario> cases = generate_cases(tier.config, setup.config.seed, 1);
    const std::int64_t gen_ns = steady_clock_nanos() - gen_t0;
    const Scenario& scenario = cases.front();

    const std::int64_t run_t0 = steady_clock_nanos();
    const StagingResult staged = run_spec(spec, scenario, options);
    const std::int64_t run_ns = steady_clock_nanos() - run_t0;

    const std::size_t satisfied = satisfied_count(staged.outcomes);
    const std::int64_t vm_hwm_kb = read_status_kb("VmHWM");
    const std::int64_t vm_rss_kb = read_status_kb("VmRSS");

    table.add_row({tier.name, std::to_string(scenario.machine_count()),
                   std::to_string(scenario.request_count()),
                   format_double(static_cast<double>(gen_ns) / 1e6, 1),
                   format_double(static_cast<double>(run_ns) / 1e6, 1),
                   std::to_string(staged.schedule.size()),
                   std::to_string(satisfied),
                   format_double(static_cast<double>(vm_hwm_kb) / 1024.0, 0)});

    std::fprintf(
        f,
        "    {\n"
        "      \"tier\": \"%s\",\n"
        "      \"machines\": %zu,\n"
        "      \"phys_links\": %zu,\n"
        "      \"virt_links\": %zu,\n"
        "      \"items\": %zu,\n"
        "      \"requests\": %zu,\n"
        "      \"gen_wall_ns\": %" PRId64 ",\n"
        "      \"schedule_wall_ns\": %" PRId64 ",\n"
        "      \"steps\": %zu,\n"
        "      \"iterations\": %zu,\n"
        "      \"dijkstra_runs\": %zu,\n"
        "      \"satisfied\": %zu,\n"
        "      \"peak_rss_kb\": %" PRId64 ",\n"
        "      \"rss_kb\": %" PRId64 "\n"
        "    }%s\n",
        tier.name, scenario.machine_count(), scenario.phys_links.size(),
        scenario.virt_links.size(), scenario.item_count(),
        scenario.request_count(), gen_ns, run_ns, staged.schedule.size(),
        staged.iterations, staged.dijkstra_runs, satisfied, vm_hwm_kb, vm_rss_kb,
        t + 1 < tiers.size() ? "," : "");
  }

  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("%s\nwrote %s\n", table.to_text().c_str(), out_path.c_str());
  return 0;
}
