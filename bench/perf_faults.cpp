// Fault-robustness benchmark: degradation curves for the primary heuristics.
//
// Runs the fault-intensity sweep (harness/fault_sweep) over a generated case
// set for partial/C4 and full_one/C4, prints the curve table and writes the
// whole record — per-point planned/realized/recovered/clairvoyant values plus
// the stager's faults.* recovery counters — to BENCH_faults.json, the repo's
// robustness-trajectory baseline (see docs/ROBUSTNESS.md for how to read it).
//
// Extra flags on top of the shared bench set:
//   --out=PATH       JSON output path (default BENCH_faults.json)
//   --fault-seed=N   seed of the fault draw (default 9000)
#include <cinttypes>
#include <cstdio>

#include "bench_common.hpp"
#include "common_flags.hpp"
#include "harness/fault_sweep.hpp"
#include "util/time.hpp"

namespace {

using namespace datastage;

/// The recovery counters BENCH_faults.json records, in output order.
constexpr const char* kFaultCounters[] = {
    "faults.outages",
    "faults.restores",
    "faults.degrades",
    "faults.copy_losses",
    "faults.copy_losses_noop",
    "faults.inflight_dropped",
    "faults.requeued_requests",
};

void write_point_json(std::FILE* f, const FaultSweepPoint& point, bool last) {
  std::fprintf(f,
               "        {\"intensity\": %s, \"outage_fraction\": %s, "
               "\"planned\": %s, \"realized\": %s, \"recovered\": %s, "
               "\"clairvoyant\": %s}%s\n",
               format_double(point.intensity, 2).c_str(),
               format_double(point.outage_fraction, 6).c_str(),
               format_double(point.planned, 3).c_str(),
               format_double(point.realized, 3).c_str(),
               format_double(point.recovered, 3).c_str(),
               format_double(point.clairvoyant, 3).c_str(), last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup, {"out", "fault-seed"}))
    return 1;
  CliFlags flags;  // re-parse only the extra flags; shared ones go to setup
  if (!flags.parse(argc, argv,
                   {"cases", "seed", "weighting", "csv", "jobs", "verbose", "out",
                    "fault-seed"})) {
    return 1;
  }
  const std::string out_path = flags.get_string("out", "BENCH_faults.json");

  // Lighter default than the figure benches: every (scheduler, intensity,
  // case) cell runs four schedulers' worth of work (plan + replay + dynamic
  // recovery + clairvoyant replan).
  if (setup.config.cases == 40) setup.config.cases = 8;
  benchtool::print_header("Fault robustness: planned vs realized vs recovered",
                          setup);

  const CaseSet cases = build_cases(setup.config);
  const std::vector<SchedulerSpec> specs{
      SchedulerSpec{HeuristicKind::kPartial, CostCriterion::kC4},
      SchedulerSpec{HeuristicKind::kFullOne, CostCriterion::kC4}};

  FaultSweepConfig config;
  config.fault_seed = static_cast<std::uint64_t>(flags.get_int("fault-seed", 9000));

  EngineOptions options;
  options.weighting = setup.weighting;
  options.eu = EUWeights::from_log10_ratio(1.0);

  obs::MetricsRegistry registry;
  const std::int64_t t0 = steady_clock_nanos();
  const FaultSweepResult sweep =
      run_fault_sweep(cases, specs, config, options, &registry);
  const std::int64_t wall_ns = steady_clock_nanos() - t0;

  Table table({"scheduler", "intensity", "outage_frac", "planned", "realized",
               "recovered", "clairvoyant"});
  for (const FaultSweepSeries& series : sweep.series) {
    for (const FaultSweepPoint& point : series.points) {
      table.add_row({series.spec.name(), format_double(point.intensity, 2),
                     format_double(point.outage_fraction, 4),
                     format_double(point.planned, 3),
                     format_double(point.realized, 3),
                     format_double(point.recovered, 3),
                     format_double(point.clairvoyant, 3)});
    }
  }
  std::fputs(table.to_text().c_str(), stdout);

  if (!setup.csv_path.empty()) {
    std::FILE* csv = toolflags::open_output_cfile(setup.csv_path, "sweep CSV");
    if (csv == nullptr) return 2;
    std::fputs(sweep.to_csv().c_str(), csv);
    std::fclose(csv);
    std::printf("CSV written to %s\n", setup.csv_path.c_str());
  }

  std::FILE* f = toolflags::open_output_cfile(out_path, "bench output");
  if (f == nullptr) return 2;
  std::fprintf(f,
               "{\n  \"bench\": \"perf_faults\",\n  \"cases\": %zu,\n"
               "  \"seed\": %llu,\n  \"fault_seed\": %llu,\n"
               "  \"wall_ns\": %" PRId64 ",\n  \"series\": [\n",
               setup.config.cases,
               static_cast<unsigned long long>(setup.config.seed),
               static_cast<unsigned long long>(config.fault_seed), wall_ns);
  for (std::size_t s = 0; s < sweep.series.size(); ++s) {
    const FaultSweepSeries& series = sweep.series[s];
    std::fprintf(f, "    {\n      \"scheduler\": \"%s\",\n      \"points\": [\n",
                 series.spec.name().c_str());
    for (std::size_t p = 0; p < series.points.size(); ++p) {
      write_point_json(f, series.points[p], p + 1 == series.points.size());
    }
    std::fprintf(f, "      ]\n    }%s\n",
                 s + 1 == sweep.series.size() ? "" : ",");
  }
  std::fprintf(f, "  ],\n  \"counters\": {");
  bool first = true;
  for (const char* name : kFaultCounters) {
    std::fprintf(f, "%s\n    \"%s\": %llu", first ? "" : ",", name,
                 static_cast<unsigned long long>(registry.counter_value(name)));
    first = false;
  }
  std::fprintf(f, "\n  }\n}\n");
  std::fclose(f);
  std::printf("record written to %s\n", out_path.c_str());
  return 0;
}
