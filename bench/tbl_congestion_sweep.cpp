// §6 future work, implemented as an extension: performance of the
// heuristic/C4 pairs while varying network congestion. The request volume is
// scaled by a load multiplier; reported both as absolute weighted value and
// as a fraction of the (load-dependent) possible_satisfy bound.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace datastage;
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup)) return 1;
  benchtool::print_header(
      "Congestion sweep — heuristic/C4 under scaled request load "
      "(E-U ratio 10^1)",
      setup);

  Table table({"load x", "possible_satisfy", "partial/C4", "full_one/C4",
               "full_all/C4", "partial %", "full_one %", "full_all %"});

  for (const double load : {0.5, 1.0, 2.0, 4.0}) {
    ExperimentConfig config = setup.config;
    config.gen.load_multiplier = load;
    const CaseSet cases = build_cases(config);
    const AveragedBounds bounds = average_bounds(cases, setup.weighting);

    std::vector<double> values;
    for (const HeuristicKind kind :
         {HeuristicKind::kPartial, HeuristicKind::kFullOne, HeuristicKind::kFullAll}) {
      values.push_back(average_pair_value(cases, setup.weighting,
                                          SchedulerSpec{kind, CostCriterion::kC4},
                                          EUWeights::from_log10_ratio(1.0)));
    }
    auto pct = [&](double v) {
      return bounds.possible_satisfy > 0.0
                 ? format_double(100.0 * v / bounds.possible_satisfy, 1)
                 : std::string("-");
    };
    table.add_row({format_double(load, 1), format_double(bounds.possible_satisfy, 1),
                   format_double(values[0], 1), format_double(values[1], 1),
                   format_double(values[2], 1), pct(values[0]), pct(values[1]),
                   pct(values[2])});
  }

  std::printf("%s\n", table.to_text().c_str());
  if (!setup.csv_path.empty()) {
    table.write_csv_file(setup.csv_path);
    std::printf("(CSV written to %s)\n", setup.csv_path.c_str());
  }
  return 0;
}
