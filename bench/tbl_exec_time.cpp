// TR companion data (§5.4 mentions execution time was collected): wall-clock
// microbenchmarks of every heuristic/criterion pair and the baselines on one
// fixed generated scenario, via google-benchmark.
// Next to the wall-clock numbers, each heuristic/criterion benchmark reports
// the engine's cost counters (iterations, Dijkstra recomputes, route-cache
// hits) as google-benchmark counters, so the table explains *why* the pairs
// differ in cost, not just by how much.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/bounds.hpp"
#include "core/heuristics.hpp"
#include "core/registry.hpp"
#include "gen/generator.hpp"

namespace {

using namespace datastage;

const Scenario& bench_scenario() {
  static const Scenario scenario = [] {
    GeneratorConfig config;
    // Paper-shaped but lighter so the full matrix of timings stays quick.
    config.min_machines = 10;
    config.max_machines = 10;
    config.min_requests_per_machine = 10;
    config.max_requests_per_machine = 10;
    Rng rng(2000);
    return generate_scenario(config, rng);
  }();
  return scenario;
}

EngineOptions bench_options(CostCriterion criterion) {
  EngineOptions options;
  options.criterion = criterion;
  options.eu = EUWeights::from_log10_ratio(1.0);
  return options;
}

void BM_Pair(benchmark::State& state, SchedulerSpec spec) {
  const Scenario& scenario = bench_scenario();
  for (auto _ : state) {
    const StagingResult result =
        run_spec(spec, scenario, bench_options(spec.criterion));
    benchmark::DoNotOptimize(result.schedule.size());
  }
  const benchtool::EngineCostSnapshot snap =
      benchtool::snapshot_engine_cost(spec, scenario, bench_options(spec.criterion));
  state.counters["iters"] = snap.iterations;
  state.counters["recomputes"] = snap.recomputes;
  state.counters["cache_hits"] = snap.cache_hits;
  state.counters["candidates"] = snap.candidates;
}

void BM_SingleDijkstraRandom(benchmark::State& state) {
  const Scenario& scenario = bench_scenario();
  for (auto _ : state) {
    Rng rng(7);
    const StagingResult result =
        run_single_dijkstra_random(scenario, PriorityWeighting::w_1_10_100(), rng);
    benchmark::DoNotOptimize(result.schedule.size());
  }
}

void BM_RandomDijkstra(benchmark::State& state) {
  const Scenario& scenario = bench_scenario();
  for (auto _ : state) {
    Rng rng(7);
    const StagingResult result =
        run_random_dijkstra(scenario, PriorityWeighting::w_1_10_100(), rng);
    benchmark::DoNotOptimize(result.schedule.size());
  }
}

void BM_PriorityFirst(benchmark::State& state) {
  const Scenario& scenario = bench_scenario();
  for (auto _ : state) {
    const StagingResult result =
        run_priority_first(scenario, PriorityWeighting::w_1_10_100());
    benchmark::DoNotOptimize(result.schedule.size());
  }
}

void BM_Bounds(benchmark::State& state) {
  const Scenario& scenario = bench_scenario();
  for (auto _ : state) {
    const BoundsReport report =
        compute_bounds(scenario, PriorityWeighting::w_1_10_100());
    benchmark::DoNotOptimize(report.possible_satisfy);
  }
}

/// The paper recomputes every Dijkstra each iteration; the engine caches.
/// This pair of benchmarks quantifies the cache's speedup (ablation).
void BM_PartialC4_Paranoid(benchmark::State& state) {
  const Scenario& scenario = bench_scenario();
  EngineOptions options = bench_options(CostCriterion::kC4);
  options.paranoid = true;
  for (auto _ : state) {
    const StagingResult result = run_partial_path(scenario, options);
    benchmark::DoNotOptimize(result.dijkstra_runs);
  }
  const benchtool::EngineCostSnapshot snap = benchtool::snapshot_engine_cost(
      {HeuristicKind::kPartial, CostCriterion::kC4}, scenario, options);
  state.counters["iters"] = snap.iterations;
  state.counters["recomputes"] = snap.recomputes;
  state.counters["cache_hits"] = snap.cache_hits;  // 0: the ablation's point
}

const int kRegistered = [] {
  for (const SchedulerSpec& spec : paper_pairs()) {
    benchmark::RegisterBenchmark(spec.name().c_str(),
                                 [spec](benchmark::State& s) { BM_Pair(s, spec); });
  }
  benchmark::RegisterBenchmark("single_Dij_random", BM_SingleDijkstraRandom);
  benchmark::RegisterBenchmark("random_Dijkstra", BM_RandomDijkstra);
  benchmark::RegisterBenchmark("priority_first", BM_PriorityFirst);
  benchmark::RegisterBenchmark("bounds", BM_Bounds);
  benchmark::RegisterBenchmark("partial/C4 (paranoid ablation)",
                               BM_PartialC4_Paranoid);
  return 0;
}();

}  // namespace

BENCHMARK_MAIN();
