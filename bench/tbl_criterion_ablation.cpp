// Extension experiment (§5.4 future work): "Future cost criteria might be
// designed to capture the original intent" of C3 — relating each request's
// priority to its urgency without letting a near-zero slack dominate.
// C5 = Σ −Efp / max(slack, 60 s) implements that. This ablation compares,
// per heuristic: C3 (raw ratio), C4 at its best E-U ratio (the paper's best
// tuned criterion), and C5 (ratio with a slack floor; tuning-free like C3).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace datastage;
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup)) return 1;
  benchtool::print_header(
      "Criterion ablation — C3 (raw ratio) vs C4 (best tuned) vs C5 "
      "(floored ratio, tuning-free)",
      setup);

  const CaseSet cases = build_cases(setup.config);
  Table table({"heuristic", "C3", "C4 @ best ratio", "best ratio", "C5"});

  for (const HeuristicKind kind :
       {HeuristicKind::kPartial, HeuristicKind::kFullOne, HeuristicKind::kFullAll}) {
    const double c3 = average_pair_value(cases, setup.weighting,
                                         {kind, CostCriterion::kC3},
                                         EUWeights::from_log10_ratio(0.0));
    double c4_best = 0.0;
    double c4_ratio = 0.0;
    for (const double ratio : paper_eu_axis()) {
      const double value = average_pair_value(cases, setup.weighting,
                                              {kind, CostCriterion::kC4},
                                              EUWeights::from_log10_ratio(ratio));
      if (value > c4_best) {
        c4_best = value;
        c4_ratio = ratio;
      }
    }
    const double c5 = average_pair_value(cases, setup.weighting,
                                         {kind, CostCriterion::kC5},
                                         EUWeights::from_log10_ratio(0.0));
    table.add_row({heuristic_name(kind), format_double(c3, 1),
                   format_double(c4_best, 1), eu_axis_label(c4_ratio),
                   format_double(c5, 1)});
  }

  std::printf("%s\n", table.to_text().c_str());
  if (!setup.csv_path.empty()) {
    table.write_csv_file(setup.csv_path);
    std::printf("(CSV written to %s)\n", setup.csv_path.c_str());
  }
  return 0;
}
