// Extension experiment: optimality gap on tiny instances.
//
// The paper brackets the heuristics with loose bounds because exhaustive
// search is intractable at its scale (§5.1). On tiny instances (~6 machines,
// ~6 requests) the branch-and-bound envelope over the candidate-step decision
// space IS tractable; this table reports how much of that envelope each
// heuristic/criterion pair captures — i.e. how much room a better cost
// criterion could still buy — alongside the possible_satisfy bound for
// context.
#include "bench_common.hpp"

#include "core/bounds.hpp"
#include "core/exact.hpp"

int main(int argc, char** argv) {
  using namespace datastage;
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup)) return 1;
  benchtool::print_header(
      "Optimality gap on tiny instances — heuristics vs exhaustive "
      "candidate-step envelope (E-U ratio 10^2)",
      setup);

  // Tiny but *contended*: a sparse, slow network with large items and tight
  // deadlines, so schedulers genuinely have to choose what to sacrifice.
  ExperimentConfig config = setup.config;
  config.gen.min_machines = 5;
  config.gen.max_machines = 5;
  config.gen.min_out_degree = 1;
  config.gen.max_out_degree = 2;
  config.gen.second_link_probability = 0.0;
  config.gen.min_bandwidth_bps = 80'000;
  config.gen.max_bandwidth_bps = 150'000;
  config.gen.min_item_bytes = 4 * 1024 * 1024;   // ~4-13 min per transfer
  config.gen.max_item_bytes = 10 * 1024 * 1024;
  config.gen.min_deadline_offset = SimDuration::minutes(12);
  config.gen.max_deadline_offset = SimDuration::minutes(25);
  // Everything becomes available almost simultaneously, so deadline windows
  // overlap on the bottleneck links.
  config.gen.max_item_start = SimDuration::minutes(5);
  config.gen.min_requests_per_machine = 1;
  config.gen.max_requests_per_machine = 2;
  config.gen.max_sources = 2;
  config.gen.max_destinations = 3;
  const CaseSet cases = build_cases(config);

  double envelope_total = 0.0;
  double possible_total = 0.0;
  double beam_total = 0.0;
  std::size_t complete = 0;
  std::vector<double> pair_totals(paper_pairs().size(), 0.0);

  // Per-case fan-out: the exhaustive envelope dominates the cost, so each
  // case (envelope + beam + all pairs) is one parallel job; totals reduce
  // sequentially in case order below.
  struct CaseEval {
    bool complete = false;
    double envelope = 0.0;
    double possible = 0.0;
    double beam = 0.0;
    std::vector<double> pair_values;
  };
  const auto pairs = paper_pairs();
  const std::vector<CaseEval> evals = default_executor().map<CaseEval>(
      cases.scenarios.size(), [&](std::size_t i) {
        const Scenario& scenario = cases.scenarios[i];
        CaseEval eval;
        SearchOptions search;
        search.weighting = setup.weighting;
        search.max_nodes = 500'000;
        const SearchReport report = exhaustive_step_search(scenario, search);
        eval.complete = report.complete;
        eval.envelope = report.best_value;
        eval.possible = compute_bounds(scenario, setup.weighting).possible_satisfy;

        BeamOptions beam;
        beam.weighting = setup.weighting;
        beam.width = 8;
        eval.beam = weighted_value(scenario, setup.weighting,
                                   run_beam_search(scenario, beam).outcomes);

        EngineOptions options;
        options.weighting = setup.weighting;
        options.eu = EUWeights::from_log10_ratio(2.0);
        eval.pair_values.reserve(pairs.size());
        for (const SchedulerSpec& pair : pairs) {
          eval.pair_values.push_back(run_case(pair, scenario, options).weighted_value);
        }
        return eval;
      });
  for (const CaseEval& eval : evals) {
    if (eval.complete) ++complete;
    envelope_total += eval.envelope;
    possible_total += eval.possible;
    beam_total += eval.beam;
    for (std::size_t p = 0; p < pairs.size(); ++p) {
      pair_totals[p] += eval.pair_values[p];
    }
  }

  const auto n = static_cast<double>(cases.scenarios.size());
  std::printf("envelope search complete on %zu/%zu cases\n\n", complete,
              cases.scenarios.size());

  Table table({"scheduler", "mean value", "% of envelope"});
  auto pct = [&](double v) {
    return envelope_total > 0.0 ? format_double(100.0 * v / envelope_total, 1)
                                : std::string("-");
  };
  table.add_row({"possible_satisfy (bound)", format_double(possible_total / n, 1),
                 pct(possible_total)});
  table.add_row({"exhaustive envelope", format_double(envelope_total / n, 1),
                 "100.0"});
  table.add_row({"beam search (width 8)", format_double(beam_total / n, 1),
                 pct(beam_total)});
  for (std::size_t p = 0; p < pairs.size(); ++p) {
    table.add_row({pairs[p].name(), format_double(pair_totals[p] / n, 1),
                   pct(pair_totals[p])});
  }
  std::printf("%s\n", table.to_text().c_str());
  if (!setup.csv_path.empty()) {
    table.write_csv_file(setup.csv_path);
    std::printf("(CSV written to %s)\n", setup.csv_path.c_str());
  }
  return 0;
}
