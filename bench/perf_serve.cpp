// Serving-path benchmark: online admission throughput and decision latency.
//
// For each generated oversubscribed (congested) scenario, half of every
// item's requests stay in the batch scenario and the other half is submitted
// online through SchedulerService, one admission decision each. The two
// modes compare the ISSUE's two-stage admission path against always paying
// the full replan:
//
//   quick  — stage-1 estimate enabled (ServiceOptions::quick_admission)
//   full   — every submit goes straight to the bounded incremental replan
//
// Reported per mode: admissions/sec, p50/p99 decision latency (from the
// admission.decision_usec histogram), outcome counts, replans. The admitted
// set must be identical across modes — the quick estimate may only reject
// requests the full replan would reject too. Written to BENCH_serve.json
// (the serving perf baseline; CI diffs it warn-only via datastage_benchdiff).
//
// Extra flags on top of the shared bench set:
//   --out=PATH   JSON output path (default BENCH_serve.json)
#include <cinttypes>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "common_flags.hpp"
#include "gen/generator.hpp"
#include "obs/json.hpp"
#include "serve/scheduler_service.hpp"
#include "util/time.hpp"

namespace {

using namespace datastage;

/// One online submission carved out of a generated scenario.
struct OnlineSubmit {
  std::string item;
  Request request;
};

/// Splits `scenario` into a batch base (first half of every item's requests)
/// and the online tail submitted through the service. Every item keeps at
/// least one batch request — scenario validation requires it.
std::vector<OnlineSubmit> strip_online_requests(Scenario& scenario) {
  std::vector<OnlineSubmit> online;
  for (DataItem& item : scenario.items) {
    const std::size_t keep = item.requests.size() <= 1
                                 ? item.requests.size()
                                 : item.requests.size() / 2;
    for (std::size_t r = keep; r < item.requests.size(); ++r) {
      online.push_back({item.name, item.requests[r]});
    }
    item.requests.resize(keep);
  }
  return online;
}

struct ModeResult {
  std::int64_t wall_ns = 0;
  std::size_t decisions = 0;
  std::size_t admitted = 0;
  std::size_t already_satisfied = 0;
  std::size_t quick_rejects = 0;
  std::size_t full_rejects = 0;
  std::size_t replans = 0;
  double p50_usec = 0.0;
  double p99_usec = 0.0;
  double mean_usec = 0.0;
  /// Admit/reject verdict per submission, across all cases in order — the
  /// cross-mode soundness check for the quick path.
  std::vector<bool> verdicts;

  double admissions_per_sec() const {
    return wall_ns > 0
               ? static_cast<double>(decisions) * 1e9 / static_cast<double>(wall_ns)
               : 0.0;
  }
};

ModeResult run_mode(const std::vector<Scenario>& cases,
                    const PriorityWeighting& weighting, bool quick) {
  obs::MetricsRegistry registry;
  obs::RunObserver observer{&registry, nullptr};

  ModeResult result;
  for (const Scenario& base : cases) {
    Scenario batch = base;
    const std::vector<OnlineSubmit> online = strip_online_requests(batch);

    ServiceOptions options;
    options.engine.weighting = weighting;
    options.engine.eu = EUWeights::from_log10_ratio(1.0);
    options.engine.observer = &observer;
    options.quick_admission = quick;
    SchedulerService service(batch, options);

    const std::int64_t t0 = steady_clock_nanos();
    for (const OnlineSubmit& submit : online) {
      SubmitRequest request;
      request.at = SimTime::zero();
      request.item_name = submit.item;
      request.request = submit.request;
      const AdmissionDecision decision = service.submit(request);
      result.verdicts.push_back(decision.admitted());
    }
    result.wall_ns += steady_clock_nanos() - t0;

    const ServiceSnapshot snap = service.snapshot();
    result.decisions += snap.submits;
    result.admitted += snap.admitted;
    result.already_satisfied += snap.already_satisfied;
    result.quick_rejects += snap.quick_rejects;
    result.full_rejects += snap.full_rejects;
    result.replans += snap.replans;
  }
  if (const obs::Histogram* h =
          registry.find_histogram("admission.decision_usec")) {
    result.p50_usec = h->p50();
    result.p99_usec = h->p99();
    result.mean_usec = h->mean();
  }
  return result;
}

void write_mode_json(std::FILE* f, const char* key, const ModeResult& mode) {
  std::fprintf(
      f,
      "    \"%s\": {\n      \"wall_ns\": %" PRId64
      ",\n      \"decisions\": %zu,\n      \"admitted\": %zu,\n"
      "      \"already_satisfied\": %zu,\n      \"quick_rejects\": %zu,\n"
      "      \"full_rejects\": %zu,\n      \"replans\": %zu,\n"
      "      \"admissions_per_sec\": %s,\n      \"decision_usec_p50\": %s,\n"
      "      \"decision_usec_p99\": %s,\n      \"decision_usec_mean\": %s\n"
      "    }",
      key, mode.wall_ns, mode.decisions, mode.admitted, mode.already_satisfied,
      mode.quick_rejects, mode.full_rejects, mode.replans,
      obs::json_number(mode.admissions_per_sec()).c_str(),
      obs::json_number(mode.p50_usec).c_str(),
      obs::json_number(mode.p99_usec).c_str(),
      obs::json_number(mode.mean_usec).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup, {"out"})) return 1;
  CliFlags flags;
  if (!flags.parse(argc, argv,
                   {"cases", "seed", "weighting", "csv", "jobs", "verbose",
                    "out"})) {
    return 1;
  }
  const std::string out_path = flags.get_string("out", "BENCH_serve.json");

  // Lighter default than the figure benches: every stripped request costs a
  // full replan in "full" mode, on the oversubscribed preset.
  if (setup.config.cases == 40) setup.config.cases = 3;
  benchtool::print_header(
      "Serving admission: two-stage (quick) vs full-replan-only", setup);

  const std::vector<Scenario> cases = generate_cases(
      GeneratorConfig::congested(), setup.config.seed, setup.config.cases);

  const ModeResult quick = run_mode(cases, setup.weighting, true);
  const ModeResult full = run_mode(cases, setup.weighting, false);
  const bool identical = quick.verdicts == full.verdicts;

  Table table({"mode", "decisions", "admitted", "rejected", "adm/s",
               "p50 us", "p99 us", "replans"});
  const auto add_row = [&table](const char* name, const ModeResult& mode) {
    table.add_row({name, std::to_string(mode.decisions),
                   std::to_string(mode.admitted),
                   std::to_string(mode.quick_rejects + mode.full_rejects),
                   format_double(mode.admissions_per_sec(), 0),
                   format_double(mode.p50_usec, 1),
                   format_double(mode.p99_usec, 1),
                   std::to_string(mode.replans)});
  };
  add_row("quick", quick);
  add_row("full", full);
  std::printf("%s\n", table.to_text().c_str());
  std::printf("verdicts identical across modes: %s\n",
              identical ? "yes" : "NO");

  std::FILE* f = toolflags::open_output_cfile(out_path, "bench output");
  if (f == nullptr) return 2;
  std::fprintf(f,
               "{\n  \"bench\": \"perf_serve\",\n  \"preset\": \"congested\",\n"
               "  \"cases\": %zu,\n  \"seed\": %llu,\n  \"modes\": {\n",
               setup.config.cases,
               static_cast<unsigned long long>(setup.config.seed));
  write_mode_json(f, "quick", quick);
  std::fprintf(f, ",\n");
  write_mode_json(f, "full", full);
  std::fprintf(f, "\n  },\n  \"verdicts_identical\": %s\n}\n",
               identical ? "true" : "false");
  std::fclose(f);
  std::printf("(JSON written to %s)\n", out_path.c_str());

  if (!identical) {
    std::fprintf(stderr,
                 "FAIL: quick-admission mode changed admit/reject verdicts — "
                 "the stage-1 estimate is not a safe relaxation\n");
    return 1;
  }
  return 0;
}
