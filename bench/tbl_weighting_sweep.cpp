// Extension experiment (§6 future work: "additional priority weighting
// schemes"): how the per-class satisfaction shifts as the weighting scheme
// steepens, from nearly flat {1,2,4} to extreme {1,100,10000}. Uses the
// ratio-free C3 criterion so no E-U tuning interacts with the weight scale.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace datastage;
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup)) return 1;
  benchtool::print_header(
      "Weighting-scheme sweep — per-class satisfaction under full_one/C3",
      setup);

  const CaseSet cases = build_cases(setup.config);
  const SchedulerSpec spec{HeuristicKind::kFullOne, CostCriterion::kC3};

  Table table({"weighting", "high", "medium", "low", "total satisfied"});
  for (const PriorityWeighting& weighting :
       {PriorityWeighting({1.0, 2.0, 4.0}), PriorityWeighting::w_1_5_10(),
        PriorityWeighting::w_1_10_100(),
        PriorityWeighting({1.0, 100.0, 10000.0})}) {
    double high = 0.0;
    double medium = 0.0;
    double low = 0.0;
    EngineOptions options;
    options.weighting = weighting;
    options.eu = EUWeights::from_log10_ratio(0.0);
    for (const CaseResult& result : run_cases(cases, spec, options)) {
      low += static_cast<double>(result.by_class[0]);
      medium += static_cast<double>(result.by_class[1]);
      high += static_cast<double>(result.by_class[2]);
    }
    const auto n = static_cast<double>(cases.scenarios.size());
    table.add_row({weighting.to_string(), format_double(high / n, 2),
                   format_double(medium / n, 2), format_double(low / n, 2),
                   format_double((high + medium + low) / n, 2)});
  }

  std::printf("%s\n", table.to_text().c_str());
  if (!setup.csv_path.empty()) {
    table.write_csv_file(setup.csv_path);
    std::printf("(CSV written to %s)\n", setup.csv_path.c_str());
  }
  return 0;
}
