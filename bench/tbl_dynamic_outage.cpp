// Extension experiment (paper §6 future work): value retained under link
// outages, comparing three policies on identical outage traces:
//   clairvoyant — one static heuristic pass on the *effective* availability
//                (knows every outage in advance; a reference point, not an
//                upper bound — replanning can beat a single greedy pass),
//   dynamic    — event-driven replanning (dynamic/stager),
//   no-replan  — the original static plan executed obliviously: transfers
//                that lost their link or their input are dropped.
#include "bench_common.hpp"

#include "dynamic/stager.hpp"
#include "net/network_state.hpp"
#include "util/rng.hpp"

namespace {

using namespace datastage;

/// Executes a static plan against the effective availability: each step is
/// kept iff its exact reservation still fits and its sender holds the item
/// (cascading drops), mirroring how an oblivious executor would fail.
double oblivious_value(const Scenario& base, const Scenario& effective,
                       const Schedule& plan, const PriorityWeighting& weighting) {
  NetworkState state(effective);
  OutcomeTracker tracker(effective);
  std::vector<CommStep> steps(plan.steps().begin(), plan.steps().end());
  std::stable_sort(steps.begin(), steps.end(),
                   [](const CommStep& a, const CommStep& b) { return a.start < b.start; });
  for (const CommStep& step : steps) {
    // The step's virtual link id refers to the *base* scenario; the effective
    // scenario keeps the same physical ids, so locate the surviving window of
    // the same physical link that still contains the reservation.
    const PhysLinkId phys = base.vlink(step.link).phys;
    VirtLinkId link = VirtLinkId::invalid();
    for (std::size_t v = 0; v < effective.virt_links.size(); ++v) {
      const VirtualLink& vl = effective.virt_links[v];
      if (vl.phys == phys &&
          vl.window.contains(Interval{step.start, step.arrival})) {
        link = VirtLinkId(static_cast<std::int32_t>(v));
        break;
      }
    }
    if (!link.valid()) continue;
    if (!state.can_apply(step.item, link, step.start)) continue;
    const AppliedTransfer applied = state.apply_transfer(step.item, link, step.start);
    tracker.note_arrival(step.item, step.to, applied.arrival);
  }
  return weighted_value(effective, weighting, tracker.outcomes());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace datastage;
  benchtool::BenchSetup setup;
  if (!benchtool::parse_bench_flags(argc, argv, setup)) return 1;
  benchtool::print_header(
      "Dynamic outage study — clairvoyant static pass vs event-driven "
      "replanning vs oblivious execution (full_one/C4, E-U ratio 10^1; "
      "outages hit random links at random times, half restore 15 min later)",
      setup);

  const SchedulerSpec spec{HeuristicKind::kFullOne, CostCriterion::kC4};
  EngineOptions options;
  options.weighting = setup.weighting;
  options.eu = EUWeights::from_log10_ratio(1.0);

  const CaseSet cases = build_cases(setup.config);
  Table table({"outages", "clairvoyant", "dynamic", "no-replan",
               "dynamic % of clairvoyant", "no-replan % of clairvoyant"});

  for (const int outage_count : {0, 1, 2, 4, 8}) {
    // Per-case outage traces split off (base seed, outage count, case index):
    // the trace for case c is the same for any job count or case order.
    const Rng trace_root = Rng(setup.config.seed)
                               .split(0xabcdef12345ULL +
                                      static_cast<std::uint64_t>(
                                          static_cast<unsigned>(outage_count)));
    struct CaseEval {
      double oracle = 0.0;
      double dynamic_value = 0.0;
      double oblivious = 0.0;
    };
    const std::vector<CaseEval> evals = default_executor().map<CaseEval>(
        cases.scenarios.size(), [&](std::size_t c) {
      const Scenario& scenario = cases.scenarios[c];
      Rng rng = trace_root.split(c);

      // Build the outage trace: distinct links, times in (0, 90) minutes.
      std::vector<StagingEvent> events;
      std::vector<std::int32_t> links(scenario.phys_links.size());
      for (std::size_t i = 0; i < links.size(); ++i) {
        links[i] = static_cast<std::int32_t>(i);
      }
      rng.shuffle(links);
      for (int k = 0; k < outage_count && k < static_cast<int>(links.size()); ++k) {
        const SimTime at = SimTime::zero() +
                           rng.uniform_duration(SimDuration::minutes(1),
                                                SimDuration::minutes(90));
        events.push_back(StagingEvent{at, LinkOutageEvent{PhysLinkId(links[static_cast<std::size_t>(k)])}});
        if (k % 2 == 0) {  // half the outages recover 15 minutes later
          events.push_back(StagingEvent{
              at + SimDuration::minutes(15),
              LinkRestoreEvent{PhysLinkId(links[static_cast<std::size_t>(k)])}});
        }
      }
      std::stable_sort(events.begin(), events.end(),
                       [](const StagingEvent& a, const StagingEvent& b) {
                         return a.at < b.at;
                       });

      CaseEval eval;

      // Dynamic replanning.
      DynamicStager stager(scenario, spec, options);
      for (const StagingEvent& event : events) stager.on_event(event);
      const Scenario effective = stager.effective_scenario();
      const DynamicResult dynamic = stager.finish();
      eval.dynamic_value = dynamic.weighted_value(setup.weighting);

      // Clairvoyant: one static pass on the effective availability.
      // (run_spec, not run_case: the value must be computed against the
      // *effective* scenario's requests.)
      const StagingResult clairvoyant = run_spec(spec, effective, options);
      eval.oracle = weighted_value(effective, setup.weighting, clairvoyant.outcomes);

      // Oblivious: original static plan executed against reality.
      const StagingResult naive = run_spec(spec, scenario, options);
      eval.oblivious =
          oblivious_value(scenario, effective, naive.schedule, setup.weighting);
      return eval;
    });

    double oracle_total = 0.0;
    double dynamic_total = 0.0;
    double oblivious_total = 0.0;
    for (const CaseEval& eval : evals) {
      oracle_total += eval.oracle;
      dynamic_total += eval.dynamic_value;
      oblivious_total += eval.oblivious;
    }

    const auto n = static_cast<double>(cases.scenarios.size());
    auto pct = [&](double v) {
      return oracle_total > 0.0 ? format_double(100.0 * v / oracle_total, 1)
                                : std::string("-");
    };
    table.add_row({std::to_string(outage_count), format_double(oracle_total / n, 1),
                   format_double(dynamic_total / n, 1),
                   format_double(oblivious_total / n, 1), pct(dynamic_total),
                   pct(oblivious_total)});
  }

  std::printf("%s\n", table.to_text().c_str());
  if (!setup.csv_path.empty()) {
    table.write_csv_file(setup.csv_path);
    std::printf("(CSV written to %s)\n", setup.csv_path.c_str());
  }
  return 0;
}
