#!/bin/sh
# End-to-end smoke test of the CLI tool chain:
#   datastage_gen -> datastage_run (save schedule) -> datastage_verify.
# Invoked by CTest with the build's tools directory as $1.
set -eu

TOOLS_DIR="$1"
WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

"$TOOLS_DIR/datastage_gen" --seed=5 --preset=light --quiet \
    --out="$WORK_DIR/case.ds"
test -s "$WORK_DIR/case.ds"

"$TOOLS_DIR/datastage_gen" --seed=5 --preset=light --quiet --stats \
    | grep -q "demand/supply ratio"

"$TOOLS_DIR/datastage_run" "$WORK_DIR/case.ds" --scheduler=full_one/C4 \
    --ratio=2 --save="$WORK_DIR/plan.dss" | grep -q "replay:           clean"
test -s "$WORK_DIR/plan.dss"

"$TOOLS_DIR/datastage_verify" "$WORK_DIR/case.ds" "$WORK_DIR/plan.dss" \
    | grep -q "verdict:        VALID"

# The baselines and the report path must run too.
"$TOOLS_DIR/datastage_run" "$WORK_DIR/case.ds" --scheduler=priority_first \
    --report > /dev/null
"$TOOLS_DIR/datastage_run" "$WORK_DIR/case.ds" --scheduler=random_dijkstra \
    --seed=9 > /dev/null

# Observability: --metrics-out writes valid JSON with nonzero cache counters,
# --trace-out writes valid JSON-lines, and --paranoid reports zero cache hits
# while producing the exact same schedule.
"$TOOLS_DIR/datastage_run" "$WORK_DIR/case.ds" --scheduler=full_one/C4 \
    --metrics-out="$WORK_DIR/metrics.json" --trace-out="$WORK_DIR/trace.jsonl" \
    --save="$WORK_DIR/cached.dss" > /dev/null
"$TOOLS_DIR/datastage_run" "$WORK_DIR/case.ds" --scheduler=full_one/C4 \
    --paranoid --metrics-out="$WORK_DIR/metrics_paranoid.json" \
    --save="$WORK_DIR/paranoid.dss" > /dev/null
cmp -s "$WORK_DIR/cached.dss" "$WORK_DIR/paranoid.dss"
python3 - "$WORK_DIR/metrics.json" "$WORK_DIR/metrics_paranoid.json" \
    "$WORK_DIR/trace.jsonl" <<'PYEOF'
import json, sys
cached = json.load(open(sys.argv[1]))["counters"]
paranoid = json.load(open(sys.argv[2]))["counters"]
assert cached["engine.cache_hits"] > 0, cached
assert cached["engine.tree_recomputes"] > 0, cached
assert paranoid["engine.cache_hits"] == 0, paranoid
assert paranoid["engine.tree_recomputes"] > cached["engine.tree_recomputes"]
events = [json.loads(line) for line in open(sys.argv[3])]
assert events, "empty trace"
assert [e["seq"] for e in events] == list(range(len(events)))
types = {e["type"] for e in events}
for required in ("recompute", "round", "commit", "finish"):
    assert required in types, (required, types)
# Cache hits are reported as an aggregate field on round events (the engine
# no longer emits a per-plan cache_hit event).
assert any(e.get("cache_hits", 0) > 0 for e in events if e["type"] == "round")
commits = sum(1 for e in events if e["type"] == "commit")
assert commits == cached["engine.steps_committed"], (commits, cached)
PYEOF

# Request-lifecycle tracing + explain: on a congested case every heuristic
# leaves requests unsatisfied, each must carry a structured loss reason, and
# datastage_explain must replay that reason from the trace alone.
"$TOOLS_DIR/datastage_gen" --seed=7 --preset=congested --quiet \
    --out="$WORK_DIR/congested.ds"
for sched in partial/C4 full_one/C4 full_all/C4; do
  name=$(echo "$sched" | tr '/' '_')
  "$TOOLS_DIR/datastage_run" "$WORK_DIR/congested.ds" --scheduler="$sched" \
      --trace-out="$WORK_DIR/$name.jsonl" > /dev/null
  "$TOOLS_DIR/datastage_explain" "$WORK_DIR/$name.jsonl" --summary \
      > "$WORK_DIR/$name.summary.txt"
  grep -q "loss reason" "$WORK_DIR/$name.summary.txt"
  # Pick one unsatisfied request from the trace; --request must show why.
  python3 - "$WORK_DIR/$name.jsonl" > "$WORK_DIR/$name.lost" <<'PYEOF'
import json, sys
for line in open(sys.argv[1]):
    e = json.loads(line)
    if e.get("type") == "request" and not e["satisfied"] and "reason" in e:
        print(e["item"], e["k"], e["reason"])
        break
else:
    sys.exit("no unsatisfied request with a structured reason in the trace")
PYEOF
  read -r item k reason < "$WORK_DIR/$name.lost"
  "$TOOLS_DIR/datastage_explain" "$WORK_DIR/$name.jsonl" \
      --request="$item:$k" > "$WORK_DIR/$name.request.txt"
  grep -q "$reason" "$WORK_DIR/$name.request.txt"
done

# Chrome trace export must be loadable Trace Event JSON, and
# --metrics-format=openmetrics must produce a well-formed text exposition.
"$TOOLS_DIR/datastage_run" "$WORK_DIR/case.ds" --scheduler=full_one/C4 \
    --chrome-trace-out="$WORK_DIR/run.chrome.json" \
    --metrics-out="$WORK_DIR/metrics.om" --metrics-format=openmetrics \
    | grep -q "chrome trace written"
grep -q "_total" "$WORK_DIR/metrics.om"
grep -q "# EOF" "$WORK_DIR/metrics.om"
python3 - "$WORK_DIR/run.chrome.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["displayTimeUnit"] == "ms", doc.keys()
events = doc["traceEvents"]
assert any(e["ph"] == "X" and e["pid"] == 1 for e in events), "no sim slices"
for e in events:
    assert {"name", "ph", "pid", "tid"} <= e.keys(), e
    if e["ph"] != "M":
        assert "ts" in e, e
    if e["ph"] == "X":
        assert "dur" in e, e
PYEOF

# benchdiff: a document diffed against itself is clean, a perturbed counter
# trips the threshold (exit 1), and --warn-only downgrades that to exit 0.
python3 - "$WORK_DIR/metrics.json" "$WORK_DIR/metrics_perturbed.json" <<'PYEOF'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["counters"]["engine.tree_recomputes"] *= 10
json.dump(doc, open(sys.argv[2], "w"))
PYEOF
"$TOOLS_DIR/datastage_benchdiff" "$WORK_DIR/metrics.json" "$WORK_DIR/metrics.json" \
    > /dev/null
status=0
"$TOOLS_DIR/datastage_benchdiff" "$WORK_DIR/metrics.json" \
    "$WORK_DIR/metrics_perturbed.json" > "$WORK_DIR/benchdiff.txt" || status=$?
test "$status" -eq 1
grep -q "engine.tree_recomputes" "$WORK_DIR/benchdiff.txt"
"$TOOLS_DIR/datastage_benchdiff" "$WORK_DIR/metrics.json" \
    "$WORK_DIR/metrics_perturbed.json" --warn-only > /dev/null

# A bad output path must fail eagerly with exit 2 and name the path.
for flag in --metrics-out --trace-out --chrome-trace-out; do
  status=0
  "$TOOLS_DIR/datastage_run" "$WORK_DIR/case.ds" --scheduler=full_one/C4 \
      "$flag=$WORK_DIR/no-such-dir/out.file" \
      > /dev/null 2> "$WORK_DIR/err.txt" || status=$?
  test "$status" -eq 2
  grep -q "no-such-dir" "$WORK_DIR/err.txt"
done

# Fault chain: seeded fault generation, replay + recovery under a fault
# spec, and the fault-intensity sweep with its CSV.
"$TOOLS_DIR/datastage_gen" --seed=5 --preset=light \
    --out="$WORK_DIR/fcase.ds" --faults-out="$WORK_DIR/case.dsf" \
    --fault-intensity=0.4 --fault-seed=17 2>&1 | grep -q "faults:"
test -s "$WORK_DIR/case.dsf"
grep -q "datastage-faults" "$WORK_DIR/case.dsf"

"$TOOLS_DIR/datastage_run" "$WORK_DIR/fcase.ds" --scheduler=full_one/C4 \
    --faults="$WORK_DIR/case.dsf" > "$WORK_DIR/faults.txt"
grep -q "realized value" "$WORK_DIR/faults.txt"
grep -q "recovered value" "$WORK_DIR/faults.txt"

"$TOOLS_DIR/datastage_run" "$WORK_DIR/fcase.ds" --fault-sweep \
    --csv="$WORK_DIR/fault_sweep.csv" > "$WORK_DIR/fault_sweep.txt"
grep -q "clairvoyant" "$WORK_DIR/fault_sweep.txt"
head -1 "$WORK_DIR/fault_sweep.csv" | grep -q "scheduler,intensity"

# The one-shot reproduction tool must emit every figure and write CSVs.
"$TOOLS_DIR/datastage_repro" --cases=1 --outdir="$WORK_DIR/results" \
    > "$WORK_DIR/repro.txt"
grep -q "Figure 2" "$WORK_DIR/repro.txt"
grep -q "Figure 5" "$WORK_DIR/repro.txt"
grep -q "Engine cost metrics" "$WORK_DIR/repro.txt"
test -s "$WORK_DIR/results/fig2.csv"
test -s "$WORK_DIR/results/priority_first.csv"
test -s "$WORK_DIR/results/engine_cost.csv"

# Online serving: a scripted datastage_serve session must answer every
# command line (including a malformed one) with one response line, mirror
# them into --decision-log, and admit a fresh new-item submission.
cat > "$WORK_DIR/serve_script.txt" <<'EOF'
{"v":1,"cmd":"stats"}
{"v":1,"cmd":"submit","id":"s1","t_usec":0,"item":"smoke_item","dest":"M1","deadline_usec":7200000000,"priority":2,"new_item":{"size_bytes":4096,"sources":[{"machine":"M0","available_at_usec":0}]}}
{"v":1,"cmd":"query","id":"s1"}
{"v":1,"cmd":"advance","to_usec":3600000000}
{"v":1,"cmd":"cancel","id":"s1","t_usec":3600000000}
not even json
{"v":1,"cmd":"shutdown"}
EOF
"$TOOLS_DIR/datastage_serve" --scenario="$WORK_DIR/case.ds" \
    --script="$WORK_DIR/serve_script.txt" \
    --decision-log="$WORK_DIR/serve.log" > "$WORK_DIR/serve.out"
cmp -s "$WORK_DIR/serve.log" "$WORK_DIR/serve.out"
python3 - "$WORK_DIR/serve.out" <<'PYEOF'
import json, sys
lines = [json.loads(l) for l in open(sys.argv[1])]
assert len(lines) == 7, len(lines)
assert all(l["v"] == 1 for l in lines), lines
submit = lines[1]
assert submit["ok"] and submit["cmd"] == "submit", submit
assert submit["admitted"] and submit["outcome"] == "admitted", submit
assert lines[2]["status"] in ("pending", "satisfied"), lines[2]
bad = lines[5]
assert not bad["ok"] and bad["error"] == "bad_json", bad
finish = lines[6]
assert finish["ok"] and finish["cmd"] == "shutdown", finish
assert finish["requests"] > 0 and finish["satisfied"] > 0, finish
PYEOF

# A bad --decision-log path fails eagerly with exit 2, like every sink flag.
status=0
"$TOOLS_DIR/datastage_serve" --scenario="$WORK_DIR/case.ds" \
    --script="$WORK_DIR/serve_script.txt" \
    --decision-log="$WORK_DIR/no-such-dir/serve.log" \
    > /dev/null 2> "$WORK_DIR/err.txt" || status=$?
test "$status" -eq 2
grep -q "no-such-dir" "$WORK_DIR/err.txt"

# Corrupting the schedule must be detected — an INVALID verdict is exit 1
# (a lint-style "findings" exit), distinct from usage/load errors (exit 2).
printf 'step 0 0 1 0 0 1\n' >> "$WORK_DIR/plan.dss"
status=0
"$TOOLS_DIR/datastage_verify" "$WORK_DIR/case.ds" "$WORK_DIR/plan.dss" \
    > "$WORK_DIR/verdict.txt" 2>&1 || status=$?
test "$status" -eq 1
grep -q "INVALID" "$WORK_DIR/verdict.txt"

# Usage and load errors exit 2: missing operands, unreadable scenario.
status=0
"$TOOLS_DIR/datastage_verify" > /dev/null 2>&1 || status=$?
test "$status" -eq 2
status=0
"$TOOLS_DIR/datastage_verify" "$WORK_DIR/no-such.ds" "$WORK_DIR/plan.dss" \
    > /dev/null 2> "$WORK_DIR/verify_err.txt" || status=$?
test "$status" -eq 2
grep -q "cannot load scenario" "$WORK_DIR/verify_err.txt"

echo "tools smoke test passed"
