// Unit tests for the datastage_lint include-graph builder: edge parsing,
// resolution order, the layer manifest, SCC cycle detection and finding
// rendering. These back the whole-program DS010 rule.
#include "include_graph.hpp"

#include <gtest/gtest.h>

#include "findings.hpp"
#include "source_view.hpp"

namespace lint {
namespace {

ScanFile make_file(const std::string& rel, const std::string& content) {
  ScanFile f;
  f.rel = rel;
  f.is_header = rel.size() > 4 && rel.compare(rel.size() - 4, 4, ".hpp") == 0;
  f.views = preprocess(content);
  for (const std::string& raw : f.views.raw) {
    f.annotations.push_back(parse_annotations(raw));
  }
  return f;
}

TEST(ParseIncludeEdges, QuotedOnlyWithLineNumbers) {
  const ScanFile f = make_file("src/core/engine.cpp",
                               "#include \"core/engine.hpp\"\n"
                               "#include <vector>\n"
                               "  #  include \"util/rng.hpp\"\n");
  const std::vector<IncludeEdge> edges = parse_include_edges(f);
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0].target, "core/engine.hpp");
  EXPECT_EQ(edges[0].line, 1u);
  EXPECT_EQ(edges[1].target, "util/rng.hpp");
  EXPECT_EQ(edges[1].line, 3u);
  EXPECT_EQ(edges[0].from, "src/core/engine.cpp");
}

TEST(ParseIncludeEdges, ImmuneToCommentsAndStrings) {
  const ScanFile f = make_file(
      "src/a.cpp",
      "// #include \"commented/out.hpp\"\n"
      "/* #include \"blocked/out.hpp\" */\n"
      "const char* s = \"#include \\\"quoted/out.hpp\\\"\";\n"
      "#include \"real/one.hpp\"  // trailing comment fine\n");
  const std::vector<IncludeEdge> edges = parse_include_edges(f);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].target, "real/one.hpp");
  EXPECT_EQ(edges[0].line, 4u);
}

TEST(ResolveIncludeEdges, ResolutionOrderIncluderDirThenSrcThenToolsThenRoot) {
  const std::set<std::string> tree = {
      "src/core/local.hpp", "src/net/local.hpp", "src/shared.hpp",
      "tools/common_flags.hpp", "bench/kit.hpp"};
  std::vector<IncludeEdge> edges = {
      {"src/core/engine.cpp", 1, "local.hpp", ""},        // includer-dir wins
      {"src/core/engine.cpp", 2, "net/local.hpp", ""},    // then src/
      {"src/core/engine.cpp", 3, "common_flags.hpp", ""}, // then tools/
      {"src/core/engine.cpp", 4, "bench/kit.hpp", ""},    // then root-relative
      {"src/core/engine.cpp", 5, "no/such.hpp", ""},      // unresolved
      {"src/core/engine.cpp", 6, "../shared.hpp", ""},    // dot-dot normalized
  };
  resolve_include_edges(edges, tree);
  EXPECT_EQ(edges[0].resolved, "src/core/local.hpp");
  EXPECT_EQ(edges[1].resolved, "src/net/local.hpp");
  EXPECT_EQ(edges[2].resolved, "tools/common_flags.hpp");
  EXPECT_EQ(edges[3].resolved, "bench/kit.hpp");
  EXPECT_EQ(edges[4].resolved, "");
  EXPECT_EQ(edges[5].resolved, "src/shared.hpp");
}

TEST(LayerManifest, ParseAndLongestPrefixWins) {
  const LayerManifest m = parse_layer_manifest({
      "# comment",
      "layer util src/util/",
      "layer core src/core/ src/core_ext/",
      "allow core util",
  });
  EXPECT_TRUE(m.errors.empty());
  ASSERT_EQ(m.layers.size(), 2u);
  ASSERT_NE(m.layer_of("src/core/engine.cpp"), nullptr);
  EXPECT_EQ(m.layer_of("src/core/engine.cpp")->name, "core");
  EXPECT_EQ(m.layer_of("src/core_ext/x.cpp")->name, "core");
  EXPECT_EQ(m.layer_of("src/util/rng.cpp")->name, "util");
  EXPECT_EQ(m.layer_of("tests/foo.cpp"), nullptr);
  EXPECT_EQ(m.layer_of("src/core/engine.cpp")->allowed.count("util"), 1u);
}

TEST(LayerManifest, ReportsErrorsWithLines) {
  const LayerManifest m = parse_layer_manifest({
      "layer util src/util/",
      "layer util src/util2/",   // duplicate
      "layer empty",             // no prefix
      "allow ghost util",        // undeclared layer
      "allow util phantom",      // undeclared dep
      "frobnicate util",         // unknown directive
  });
  ASSERT_EQ(m.errors.size(), 5u);
  EXPECT_EQ(m.errors[0].first, 2u);
  EXPECT_NE(m.errors[0].second.find("duplicate layer 'util'"), std::string::npos);
  EXPECT_EQ(m.errors[1].first, 3u);
  EXPECT_EQ(m.errors[2].first, 6u);  // parse-phase error for unknown directive
  EXPECT_EQ(m.errors[3].first, 4u);
  EXPECT_NE(m.errors[3].second.find("undeclared layer 'ghost'"), std::string::npos);
  EXPECT_EQ(m.errors[4].first, 5u);
  EXPECT_NE(m.errors[4].second.find("'phantom'"), std::string::npos);
}

TEST(IncludeCycles, FindsTwoCycleRotatedToSmallest) {
  const std::vector<IncludeEdge> edges = {
      {"src/b.hpp", 1, "a.hpp", "src/a.hpp"},
      {"src/a.hpp", 1, "b.hpp", "src/b.hpp"},
      {"src/c.hpp", 1, "a.hpp", "src/a.hpp"},  // not part of the cycle
  };
  const auto cycles = find_include_cycles(edges);
  ASSERT_EQ(cycles.size(), 1u);
  const std::vector<std::string> want = {"src/a.hpp", "src/b.hpp", "src/a.hpp"};
  EXPECT_EQ(cycles[0], want);
}

TEST(IncludeCycles, FindsThreeCycleAndSelfLoop) {
  const std::vector<IncludeEdge> edges = {
      {"src/x.hpp", 1, "y.hpp", "src/y.hpp"},
      {"src/y.hpp", 1, "z.hpp", "src/z.hpp"},
      {"src/z.hpp", 1, "x.hpp", "src/x.hpp"},
      {"src/self.hpp", 2, "self.hpp", "src/self.hpp"},
  };
  const auto cycles = find_include_cycles(edges);
  ASSERT_EQ(cycles.size(), 2u);
  const std::vector<std::string> self_loop = {"src/self.hpp", "src/self.hpp"};
  const std::vector<std::string> tri = {"src/x.hpp", "src/y.hpp", "src/z.hpp",
                                        "src/x.hpp"};
  EXPECT_EQ(cycles[0], self_loop);
  EXPECT_EQ(cycles[1], tri);
}

TEST(IncludeCycles, AcyclicGraphHasNone) {
  const std::vector<IncludeEdge> edges = {
      {"src/a.cpp", 1, "b.hpp", "src/b.hpp"},
      {"src/b.hpp", 1, "c.hpp", "src/c.hpp"},
      {"src/a.cpp", 2, "c.hpp", "src/c.hpp"},  // diamond, no cycle
  };
  EXPECT_TRUE(find_include_cycles(edges).empty());
}

TEST(RenderIncludeChain, ArrowSeparated) {
  EXPECT_EQ(render_include_chain({"a.hpp", "b.hpp", "a.hpp"}),
            "a.hpp -> b.hpp -> a.hpp");
  EXPECT_EQ(render_include_chain({"solo.hpp"}), "solo.hpp");
  EXPECT_EQ(render_include_chain({}), "");
}

TEST(CheckIncludeGraph, ViolationNamesLayersAndChain) {
  const LayerManifest m = parse_layer_manifest({
      "layer util src/util/",
      "layer core src/core/",
      "allow core util",
  });
  const std::vector<IncludeEdge> edges = {
      {"src/util/low.cpp", 7, "core/high.hpp", "src/core/high.hpp"},
      {"src/core/fine.cpp", 3, "util/rng.hpp", "src/util/rng.hpp"},
  };
  const std::vector<Finding> findings =
      check_include_graph(m, "tools/lint/layers.txt", edges);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "DS010");
  EXPECT_EQ(findings[0].path, "src/util/low.cpp");
  EXPECT_EQ(findings[0].line, 7u);
  EXPECT_NE(findings[0].message.find("layer 'util' may not include layer 'core'"),
            std::string::npos);
  EXPECT_NE(findings[0].message.find("src/util/low.cpp -> src/core/high.hpp"),
            std::string::npos);
}

TEST(CheckIncludeGraph, UnlayeredIncluderSkippedUnlayeredTargetFlagged) {
  const LayerManifest m = parse_layer_manifest({
      "layer core src/core/",
  });
  const std::vector<IncludeEdge> edges = {
      // tests/ is outside the layered surface: no finding.
      {"tests/core/engine_test.cpp", 1, "core/engine.hpp", "src/core/engine.hpp"},
      // A layered file including an unlayered one is a finding.
      {"src/core/engine.cpp", 2, "scripts/x.hpp", "scripts/x.hpp"},
  };
  const std::vector<Finding> findings =
      check_include_graph(m, "tools/lint/layers.txt", edges);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "src/core/engine.cpp");
  EXPECT_NE(findings[0].message.find("outside every declared layer"),
            std::string::npos);
}

TEST(CheckIncludeGraph, LayerDagCycleReported) {
  const LayerManifest m = parse_layer_manifest({
      "layer a src/a/",
      "layer b src/b/",
      "allow a b",
      "allow b a",
  });
  const std::vector<Finding> findings =
      check_include_graph(m, "tools/lint/layers.txt", {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "tools/lint/layers.txt");
  EXPECT_NE(findings[0].message.find("layer DAG cycle"), std::string::npos);
  EXPECT_NE(findings[0].message.find("a -> b -> a"), std::string::npos);
}

TEST(CheckIncludeGraph, ManifestErrorsReportedAgainstManifest) {
  const LayerManifest m = parse_layer_manifest({"layer broken"});
  const std::vector<Finding> findings =
      check_include_graph(m, "tools/lint/layers.txt", {});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].path, "tools/lint/layers.txt");
  EXPECT_EQ(findings[0].line, 1u);
  EXPECT_NE(findings[0].message.find("layer manifest error"), std::string::npos);
}

}  // namespace
}  // namespace lint
