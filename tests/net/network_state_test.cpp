#include "net/network_state.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "routing/dijkstra.hpp"
#include "testing/builders.hpp"

namespace datastage {
namespace {

using testing::at_min;
using testing::at_sec;
using testing::ScenarioBuilder;

constexpr std::int64_t kGB = 1 << 30;
const Interval kAlways{SimTime::zero(), at_min(120)};

TEST(NetworkStateTest, InitialCopiesChargedAtSources) {
  const Scenario s = testing::chain_scenario();
  const NetworkState state(s);
  ASSERT_EQ(state.copies(ItemId(0)).size(), 1u);
  EXPECT_EQ(state.copies(ItemId(0))[0].machine, MachineId(0));
  EXPECT_EQ(state.copies(ItemId(0))[0].available_at, SimTime::zero());
  EXPECT_TRUE(state.has_copy(ItemId(0), MachineId(0)));
  EXPECT_FALSE(state.has_copy(ItemId(0), MachineId(1)));
  // Source storage is charged forever.
  EXPECT_EQ(state.storage(MachineId(0))
                .max_usage(Interval{SimTime::zero(), SimTime::infinity()}),
            1'000'000);
  EXPECT_EQ(state.storage(MachineId(1))
                .max_usage(Interval{SimTime::zero(), SimTime::infinity()}),
            0);
}

TEST(NetworkStateTest, RolesDriveHoldEnd) {
  const Scenario s = testing::chain_scenario();  // A source, B relay, C dest
  const NetworkState state(s);
  EXPECT_TRUE(state.hold_end(ItemId(0), MachineId(0)).is_infinite());  // source
  EXPECT_EQ(state.hold_end(ItemId(0), MachineId(1)),
            s.gc_time(ItemId(0)));  // intermediate -> gc
  EXPECT_TRUE(state.hold_end(ItemId(0), MachineId(2)).is_infinite());  // dest
}

TEST(NetworkStateTest, ApplyTransferMovesCopyAndChargesStorage) {
  const Scenario s = testing::chain_scenario();
  NetworkState state(s);
  const AppliedTransfer applied =
      state.apply_transfer(ItemId(0), VirtLinkId(0), SimTime::zero());
  EXPECT_EQ(applied.arrival, at_sec(1));
  EXPECT_EQ(applied.link, VirtLinkId(0));
  EXPECT_EQ(applied.link_busy, (Interval{SimTime::zero(), at_sec(1)}));
  ASSERT_TRUE(applied.storage_interval.has_value());
  EXPECT_EQ(applied.storage_interval->begin, SimTime::zero());
  EXPECT_EQ(applied.storage_interval->end, s.gc_time(ItemId(0)));

  EXPECT_TRUE(state.has_copy(ItemId(0), MachineId(1)));
  EXPECT_EQ(*state.copy_available_at(ItemId(0), MachineId(1)), at_sec(1));
  EXPECT_EQ(state.transfer_count(), 1u);
  // Intermediate storage: charged during hold, free after gc.
  const StorageTimeline& st = state.storage(MachineId(1));
  EXPECT_EQ(st.usage_at(at_min(1)), 1'000'000);
  EXPECT_EQ(st.usage_at(s.gc_time(ItemId(0))), 0);
}

TEST(NetworkStateTest, GarbageCollectionFreesIntermediateOnly) {
  const Scenario s = testing::chain_scenario();
  NetworkState state(s);
  state.apply_transfer(ItemId(0), VirtLinkId(0), SimTime::zero());   // A->B
  state.apply_transfer(ItemId(0), VirtLinkId(1), at_sec(1));         // B->C
  // C is a destination: holds forever.
  EXPECT_EQ(state.storage(MachineId(2)).usage_at(at_min(119)), 1'000'000);
  // B is an intermediate: freed at gc (deadline 30min + γ 6min).
  EXPECT_EQ(state.storage(MachineId(1)).usage_at(at_min(35)), 1'000'000);
  EXPECT_EQ(state.storage(MachineId(1)).usage_at(at_min(37)), 0);
}

TEST(NetworkStateTest, CanApplyChecksEverything) {
  const Scenario s = testing::chain_scenario();
  NetworkState state(s);
  // Sender holds copy from t=0: ok at 0.
  EXPECT_TRUE(state.can_apply(ItemId(0), VirtLinkId(0), SimTime::zero()));
  // B->C before B has the copy: rejected.
  EXPECT_FALSE(state.can_apply(ItemId(0), VirtLinkId(1), SimTime::zero()));
  state.apply_transfer(ItemId(0), VirtLinkId(0), SimTime::zero());
  // Now B has it from t=1s.
  EXPECT_FALSE(state.can_apply(ItemId(0), VirtLinkId(1), at_sec(0)));
  EXPECT_TRUE(state.can_apply(ItemId(0), VirtLinkId(1), at_sec(1)));
  // Link 0 busy during [0,1s): overlapping second transfer rejected.
  EXPECT_FALSE(state.can_apply(ItemId(0), VirtLinkId(0),
                               SimTime::zero() + SimDuration::milliseconds(500)));
}

TEST(NetworkStateTest, CanHoldRejectsTightReceiver) {
  const Scenario s = ScenarioBuilder()
                         .machine(kGB)
                         .machine(1'000'000)  // exactly one item
                         .link(0, 1, 8'000'000, kAlways)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30))
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(40))
                         .build();
  NetworkState state(s);
  EXPECT_TRUE(state.can_hold(ItemId(0), MachineId(1), SimTime::zero()));
  state.apply_transfer(ItemId(0), VirtLinkId(0), SimTime::zero());
  // M1 is a destination: holds item 0 forever, so item 1 never fits.
  EXPECT_FALSE(state.can_hold(ItemId(1), MachineId(1), at_min(1)));
  EXPECT_FALSE(state.can_apply(ItemId(1), VirtLinkId(0), at_min(1)));
}

TEST(NetworkStateTest, EarlierArrivalExtendsExistingHold) {
  // Two windows: a late fast one was used first; then an earlier transfer
  // lands the copy sooner and only the extension is charged.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(3'000'000)
                         .link(0, 1, 8'000'000, Interval{SimTime::zero(), at_min(60)})
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30))
                         .build();
  NetworkState state(s);
  state.apply_transfer(ItemId(0), VirtLinkId(0), at_min(10));
  EXPECT_EQ(*state.copy_available_at(ItemId(0), MachineId(1)),
            at_min(10) + SimDuration::seconds(1));
  const std::int64_t usage_before =
      state.storage(MachineId(1)).usage_at(at_min(5));
  EXPECT_EQ(usage_before, 0);

  const AppliedTransfer earlier =
      state.apply_transfer(ItemId(0), VirtLinkId(0), SimTime::zero());
  EXPECT_EQ(earlier.arrival, at_sec(1));
  ASSERT_TRUE(earlier.storage_interval.has_value());
  EXPECT_EQ(earlier.storage_interval->end, at_min(10));  // extension only
  EXPECT_EQ(*state.copy_available_at(ItemId(0), MachineId(1)), at_sec(1));
  // Still exactly one copy record and single-item usage, not double.
  EXPECT_EQ(state.copies(ItemId(0)).size(), 2u);  // source + receiver
  EXPECT_EQ(state.storage(MachineId(1)).usage_at(at_min(5)), 1'000'000);
  EXPECT_EQ(state.storage(MachineId(1))
                .max_usage(Interval{SimTime::zero(), SimTime::infinity()}),
            1'000'000);
}

TEST(NetworkStateTest, FiniteSourceHoldExpires) {
  // A staged-copy source (finite hold, as dynamic residuals create) frees its
  // storage at hold_until and cannot send after it.
  Scenario s = testing::chain_scenario();
  s.items[0].sources[0].hold_until = at_min(10);
  s.check_valid();
  NetworkState state(s);
  // Storage charged only during the hold window.
  EXPECT_EQ(state.storage(MachineId(0)).usage_at(at_min(5)), 1'000'000);
  EXPECT_EQ(state.storage(MachineId(0)).usage_at(at_min(11)), 0);
  EXPECT_EQ(state.hold_end(ItemId(0), MachineId(0)), at_min(10));
  // Sending before expiry works; after expiry it must be rejected.
  EXPECT_TRUE(state.can_apply(ItemId(0), VirtLinkId(0), at_min(9)));
  EXPECT_FALSE(state.can_apply(ItemId(0), VirtLinkId(0), at_min(10)));
  EXPECT_FALSE(state.can_apply(ItemId(0), VirtLinkId(0), at_min(11)));
}

TEST(NetworkStateTest, DijkstraRespectsExpiringSource) {
  Scenario s = testing::chain_scenario();
  // The only copy expires before the second hop's link ever opens.
  s.items[0].sources[0].hold_until = at_min(10);
  s.virt_links.clear();
  const PhysicalLink& p0 = s.phys_links[0];
  const PhysicalLink& p1 = s.phys_links[1];
  s.virt_links.push_back(VirtualLink{PhysLinkId(0), p0.from, p0.to,
                                     p0.bandwidth_bps, p0.latency,
                                     Interval{at_min(15), at_min(60)}});
  s.virt_links.push_back(VirtualLink{PhysLinkId(1), p1.from, p1.to,
                                     p1.bandwidth_bps, p1.latency,
                                     Interval{at_min(15), at_min(60)}});
  s.check_valid();
  Topology topo(s);
  NetworkState state(s);
  const RouteTree tree = compute_route_tree(state, topo, ItemId(0));
  EXPECT_FALSE(tree.reached(MachineId(1)));  // copy expired before window
}

TEST(NetworkStateDeathTest, SenderWithoutCopyAborts) {
  const Scenario s = testing::chain_scenario();
  NetworkState state(s);
  EXPECT_DEATH(state.apply_transfer(ItemId(0), VirtLinkId(1), SimTime::zero()),
               "sender");
}

TEST(NetworkStateDeathTest, InitialCopiesMustFit) {
  const Scenario s = ScenarioBuilder()
                         .machine(100)  // too small for the item
                         .machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .item(1'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30))
                         .build_unchecked();
  EXPECT_DEATH(NetworkState{s}, "initial source copies");
}

}  // namespace
}  // namespace datastage
