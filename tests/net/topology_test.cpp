#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <set>

#include "gen/generator.hpp"
#include "testing/builders.hpp"
#include "util/rng.hpp"

namespace datastage {
namespace {

using testing::at_min;
using testing::ScenarioBuilder;

constexpr std::int64_t kGB = 1 << 30;
const Interval kAlways{SimTime::zero(), at_min(120)};

TEST(TopologyTest, OutgoingLinksGroupedPerMachine) {
  const Scenario s = testing::chain_scenario();
  const Topology topo(s);
  EXPECT_EQ(topo.machine_count(), 3u);
  EXPECT_EQ(topo.outgoing(MachineId(0)).size(), 1u);
  EXPECT_EQ(topo.outgoing(MachineId(1)).size(), 1u);
  EXPECT_TRUE(topo.outgoing(MachineId(2)).empty());
  EXPECT_EQ(s.vlink(topo.outgoing(MachineId(0))[0]).to, MachineId(1));
}

TEST(TopologyTest, OutgoingSortedByDestinationThenWindow) {
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB).machine(kGB)
                         .link(0, 2, 1000, Interval{at_min(10), at_min(20)})
                         .link(0, 1, 1000, Interval{at_min(30), at_min(40)})
                         .window(Interval{at_min(0), at_min(5)})
                         .build_unchecked();
  const Topology topo(s);
  const auto out = topo.outgoing(MachineId(0));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(s.vlink(out[0]).to, MachineId(1));
  EXPECT_EQ(s.vlink(out[0]).window.begin, at_min(0));
  EXPECT_EQ(s.vlink(out[1]).to, MachineId(1));
  EXPECT_EQ(s.vlink(out[1]).window.begin, at_min(30));
  EXPECT_EQ(s.vlink(out[2]).to, MachineId(2));
}

TEST(TopologyTest, OutDegreeCountsDistinctNeighbors) {
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB).machine(kGB)
                         .link(0, 1, 1000, kAlways)
                         .link(0, 1, 2000, kAlways)  // second parallel link
                         .link(0, 2, 1000, kAlways)
                         .build_unchecked();
  const Topology topo(s);
  EXPECT_EQ(topo.out_degree(MachineId(0)), 2);
  EXPECT_EQ(topo.out_degree(MachineId(1)), 0);
}

// Regression for the flat-vector out_degree rewrite: on generated scenarios
// the precomputed degrees must be identical to the old std::set-per-query
// computation, and the adjacency structure must be byte-identical to what a
// freshly built Topology reports (construction is deterministic).
TEST(TopologyTest, OutDegreeMatchesNaiveSetOnGeneratedScenarios) {
  const std::vector<Scenario> cases =
      generate_cases(GeneratorConfig::light(), 71, 4);
  for (const Scenario& s : cases) {
    const Topology topo(s);
    const Topology again(s);
    for (std::size_t m = 0; m < s.machine_count(); ++m) {
      const MachineId id(static_cast<std::int32_t>(m));
      std::set<std::int32_t> naive;
      for (const PhysicalLink& pl : s.phys_links) {
        if (pl.from == id) naive.insert(pl.to.value());
      }
      EXPECT_EQ(topo.out_degree(id), static_cast<std::int32_t>(naive.size()));
      EXPECT_EQ(again.out_degree(id), topo.out_degree(id));
      const auto out_a = topo.outgoing(id);
      const auto out_b = again.outgoing(id);
      ASSERT_EQ(out_a.size(), out_b.size());
      for (std::size_t i = 0; i < out_a.size(); ++i) {
        EXPECT_EQ(out_a[i], out_b[i]);
      }
    }
  }
}

TEST(TopologyTest, ChainIsNotStronglyConnected) {
  // Topology keeps a pointer to the scenario: it must outlive the topology.
  const Scenario s = testing::chain_scenario();
  const Topology topo(s);
  EXPECT_FALSE(topo.strongly_connected());
}

TEST(TopologyTest, CycleIsStronglyConnected) {
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB).machine(kGB)
                         .link(0, 1, 1000, kAlways)
                         .link(1, 2, 1000, kAlways)
                         .link(2, 0, 1000, kAlways)
                         .build_unchecked();
  EXPECT_TRUE(Topology(s).strongly_connected());
}

TEST(TopologyTest, TwoDisjointCyclesAreNotStronglyConnected) {
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB).machine(kGB).machine(kGB)
                         .link(0, 1, 1000, kAlways)
                         .link(1, 0, 1000, kAlways)
                         .link(2, 3, 1000, kAlways)
                         .link(3, 2, 1000, kAlways)
                         .build_unchecked();
  EXPECT_FALSE(Topology(s).strongly_connected());
}

TEST(TopologyTest, SingleMachineIsStronglyConnected) {
  const Scenario s = ScenarioBuilder().machine(kGB).build_unchecked();
  EXPECT_TRUE(Topology(s).strongly_connected());
}

TEST(TopologyTest, ReachableButNotReturnable) {
  // 0 reaches everything, nothing returns to 0.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB).machine(kGB)
                         .link(0, 1, 1000, kAlways)
                         .link(0, 2, 1000, kAlways)
                         .link(1, 2, 1000, kAlways)
                         .build_unchecked();
  EXPECT_FALSE(Topology(s).strongly_connected());
}

}  // namespace
}  // namespace datastage
