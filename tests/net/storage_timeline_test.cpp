#include "net/storage_timeline.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace datastage {
namespace {

Interval iv(std::int64_t a, std::int64_t b) {
  return Interval{SimTime::from_usec(a), SimTime::from_usec(b)};
}

TEST(StorageTimelineTest, StartsEmpty) {
  const StorageTimeline st(100);
  EXPECT_EQ(st.capacity(), 100);
  EXPECT_EQ(st.usage_at(SimTime::zero()), 0);
  EXPECT_EQ(st.max_usage(iv(0, 1'000'000)), 0);
  EXPECT_EQ(st.min_free(iv(0, 1'000'000)), 100);
}

TEST(StorageTimelineTest, SingleAllocation) {
  StorageTimeline st(100);
  st.allocate(30, iv(10, 50));
  EXPECT_EQ(st.usage_at(SimTime::from_usec(9)), 0);
  EXPECT_EQ(st.usage_at(SimTime::from_usec(10)), 30);
  EXPECT_EQ(st.usage_at(SimTime::from_usec(49)), 30);
  EXPECT_EQ(st.usage_at(SimTime::from_usec(50)), 0);  // half-open release
  EXPECT_EQ(st.max_usage(iv(0, 10)), 0);
  EXPECT_EQ(st.max_usage(iv(0, 11)), 30);
  EXPECT_EQ(st.max_usage(iv(50, 60)), 0);
}

TEST(StorageTimelineTest, OverlappingAllocationsStack) {
  StorageTimeline st(100);
  st.allocate(30, iv(10, 50));
  st.allocate(40, iv(30, 80));
  EXPECT_EQ(st.max_usage(iv(0, 100)), 70);
  EXPECT_EQ(st.usage_at(SimTime::from_usec(30)), 70);
  EXPECT_EQ(st.usage_at(SimTime::from_usec(50)), 40);
  EXPECT_TRUE(st.fits(30, iv(0, 100)));
  EXPECT_FALSE(st.fits(31, iv(0, 100)));
  EXPECT_TRUE(st.fits(60, iv(50, 100)));  // after the first release
}

TEST(StorageTimelineTest, InfiniteHoldWindows) {
  StorageTimeline st(100);
  st.allocate(60, Interval{SimTime::from_usec(5), SimTime::infinity()});
  EXPECT_EQ(st.max_usage(Interval{SimTime::zero(), SimTime::infinity()}), 60);
  EXPECT_FALSE(st.fits(50, Interval{SimTime::from_usec(7), SimTime::infinity()}));
  EXPECT_TRUE(st.fits(40, Interval{SimTime::from_usec(7), SimTime::infinity()}));
  EXPECT_TRUE(st.fits(100, iv(0, 5)));  // before the hold begins
}

TEST(StorageTimelineTest, ExactCapacityFits) {
  StorageTimeline st(100);
  st.allocate(100, iv(0, 10));
  EXPECT_EQ(st.max_usage(iv(0, 10)), 100);
  EXPECT_TRUE(st.fits(100, iv(10, 20)));
  EXPECT_FALSE(st.fits(1, iv(5, 15)));
}

TEST(StorageTimelineTest, EmptyIntervalAndZeroBytesAreNoOps) {
  StorageTimeline st(10);
  st.allocate(5, iv(7, 7));
  st.allocate(0, iv(0, 100));
  EXPECT_EQ(st.max_usage(iv(0, 100)), 0);
  EXPECT_EQ(st.max_usage(iv(5, 5)), 0);  // empty query
}

TEST(StorageTimelineTest, ManyAdjacentAllocations) {
  StorageTimeline st(1000);
  for (std::int64_t i = 0; i < 10; ++i) {
    st.allocate(10, iv(i * 10, i * 10 + 10));
  }
  // Adjacent, never overlapping: max stays 10.
  EXPECT_EQ(st.max_usage(iv(0, 100)), 10);
  st.allocate(5, iv(0, 100));
  EXPECT_EQ(st.max_usage(iv(0, 100)), 15);
}

// Oracle for the flat-vector + pending-overlay layout: every query must give
// the same answer as a brute-force sum over the raw allocation list, across
// enough allocations to cross the batch-compaction threshold several times.
TEST(StorageTimelineTest, RandomAllocationsMatchBruteForce) {
  constexpr std::int64_t kDomain = 500;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    StorageTimeline st(std::int64_t{1} << 40);
    std::vector<std::pair<Interval, std::int64_t>> raw;
    const auto brute_at = [&](std::int64_t t) {
      std::int64_t total = 0;
      for (const auto& [alloc_iv, bytes] : raw) {
        if (alloc_iv.contains(SimTime::from_usec(t))) total += bytes;
      }
      return total;
    };
    for (int step = 0; step < 120; ++step) {
      const std::int64_t a = rng.uniform_i64(0, kDomain);
      const std::int64_t b = a + rng.uniform_i64(1, 60);
      const std::int64_t bytes = rng.uniform_i64(1, 1000);
      st.allocate(bytes, iv(a, b));
      raw.emplace_back(iv(a, b), bytes);

      const std::int64_t t = rng.uniform_i64(0, kDomain);
      EXPECT_EQ(st.usage_at(SimTime::from_usec(t)), brute_at(t))
          << "seed " << seed << " step " << step << " t " << t;

      const std::int64_t qa = rng.uniform_i64(0, kDomain);
      const std::int64_t qb = qa + rng.uniform_i64(0, 80);
      std::int64_t best = 0;
      for (std::int64_t u = qa; u < qb; ++u) best = std::max(best, brute_at(u));
      EXPECT_EQ(st.max_usage(iv(qa, qb)), best)
          << "seed " << seed << " step " << step << " [" << qa << "," << qb << ")";
    }
  }
}

TEST(StorageTimelineDeathTest, OverCapacityAllocationAborts) {
  StorageTimeline st(100);
  st.allocate(80, iv(0, 50));
  EXPECT_DEATH(st.allocate(30, iv(40, 60)), "capacity");
}

}  // namespace
}  // namespace datastage
