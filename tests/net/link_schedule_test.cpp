#include "net/link_schedule.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace datastage {
namespace {

using testing::at_min;
using testing::at_sec;
using testing::ScenarioBuilder;

constexpr std::int64_t kGB = 1 << 30;

// One link, 8 Mbit/s, window [0, 10 min), 100 ms latency.
Scenario one_link_scenario() {
  return ScenarioBuilder()
      .machine(kGB).machine(kGB)
      .link(0, 1, 8'000'000, Interval{SimTime::zero(), at_min(10)},
            SimDuration::milliseconds(100))
      .item(1'000'000)
      .source(0, SimTime::zero())
      .request(1, at_min(30))
      .build();
}

TEST(LinkScheduleTest, OccupancyIncludesLatency) {
  const Scenario s = one_link_scenario();
  const LinkSchedule schedule(s);
  // 1 MB at 8 Mbit/s = 1 s, plus 100 ms latency.
  EXPECT_EQ(schedule.occupancy(VirtLinkId(0), 1'000'000),
            SimDuration::seconds(1) + SimDuration::milliseconds(100));
}

TEST(LinkScheduleTest, EarliestFitOnEmptyLink) {
  const Scenario s = one_link_scenario();
  const LinkSchedule schedule(s);
  const auto fit = schedule.earliest_fit(VirtLinkId(0), 1'000'000, at_sec(5));
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->start, at_sec(5));
  EXPECT_EQ(fit->arrival, at_sec(6) + SimDuration::milliseconds(100));
}

TEST(LinkScheduleTest, ReservationsSerializeTransfers) {
  const Scenario s = one_link_scenario();
  LinkSchedule schedule(s);
  schedule.reserve(VirtLinkId(0), 1'000'000, SimTime::zero());
  const auto fit = schedule.earliest_fit(VirtLinkId(0), 1'000'000, SimTime::zero());
  ASSERT_TRUE(fit.has_value());
  // Must wait for the first transfer to release the link.
  EXPECT_EQ(fit->start, at_sec(1) + SimDuration::milliseconds(100));
  EXPECT_TRUE(schedule.busy_overlaps(VirtLinkId(0),
                                     Interval{at_sec(0), at_sec(1)}));
  EXPECT_FALSE(schedule.busy_overlaps(
      VirtLinkId(0), Interval{at_sec(2), at_sec(3)}));
}

TEST(LinkScheduleTest, NoFitWhenWindowRemainderTooShort) {
  const Scenario s = one_link_scenario();
  const LinkSchedule schedule(s);
  // Ready 0.5 s before window end: a 1.1 s occupancy cannot fit.
  const SimTime late = at_min(10) - SimDuration::milliseconds(500);
  EXPECT_FALSE(schedule.earliest_fit(VirtLinkId(0), 1'000'000, late).has_value());
}

TEST(LinkScheduleTest, FitSnugAgainstWindowEnd) {
  const Scenario s = one_link_scenario();
  const LinkSchedule schedule(s);
  const SimTime snug = at_min(10) - SimDuration::seconds(1) -
                       SimDuration::milliseconds(100);
  const auto fit = schedule.earliest_fit(VirtLinkId(0), 1'000'000, snug);
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->start, snug);
  EXPECT_EQ(fit->arrival, at_min(10));
}

TEST(LinkScheduleTest, TotalReservedAccumulates) {
  const Scenario s = one_link_scenario();
  LinkSchedule schedule(s);
  EXPECT_EQ(schedule.total_reserved(), SimDuration::zero());
  schedule.reserve(VirtLinkId(0), 1'000'000, SimTime::zero());
  schedule.reserve(VirtLinkId(0), 1'000'000, at_sec(10));
  EXPECT_EQ(schedule.total_reserved(),
            (SimDuration::seconds(1) + SimDuration::milliseconds(100)) * 2);
}

TEST(LinkScheduleDeathTest, ReserveOutsideWindowAborts) {
  const Scenario s = one_link_scenario();
  LinkSchedule schedule(s);
  EXPECT_DEATH(schedule.reserve(VirtLinkId(0), 1'000'000,
                                at_min(10) - SimDuration::milliseconds(1)),
               "window");
}

TEST(LinkScheduleDeathTest, DoubleReserveAborts) {
  const Scenario s = one_link_scenario();
  LinkSchedule schedule(s);
  schedule.reserve(VirtLinkId(0), 1'000'000, SimTime::zero());
  EXPECT_DEATH(schedule.reserve(VirtLinkId(0), 1'000'000, at_sec(1)), "overlaps");
}

}  // namespace
}  // namespace datastage
