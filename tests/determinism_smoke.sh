#!/bin/sh
# End-to-end determinism check for the parallel executor: every artifact a
# tool produces — stdout tables, per-figure CSVs, the merged metrics JSON and
# saved schedules — must be byte-identical for --jobs=1 and --jobs=8, and
# likewise for the intra-engine refresh parallelism under --engine-jobs.
# Invoked by CTest with the build's tools directory as $1 and the bench
# directory as $2.
set -eu

TOOLS_DIR="$1"
BENCH_DIR="$2"
WORK_DIR="$(mktemp -d)"
trap 'rm -rf "$WORK_DIR"' EXIT

# datastage_repro: identical output directories. The runs use the same
# relative paths (cwd-switched) so even the "written to ..." lines match.
mkdir "$WORK_DIR/serial" "$WORK_DIR/parallel"
(cd "$WORK_DIR/serial" && "$TOOLS_DIR/datastage_repro" --cases=4 --jobs=1 \
    --outdir=out --metrics-out=metrics.json > stdout.txt)
(cd "$WORK_DIR/parallel" && "$TOOLS_DIR/datastage_repro" --cases=4 --jobs=8 \
    --outdir=out --metrics-out=metrics.json > stdout.txt)
diff -r "$WORK_DIR/serial" "$WORK_DIR/parallel"

# The merged metrics JSON must be non-trivial (engine counters present).
grep -q "engine." "$WORK_DIR/serial/metrics.json"

# datastage_run --sweep: table, CSV and schedule byte-equality.
"$TOOLS_DIR/datastage_gen" --seed=5 --preset=light --quiet \
    --out="$WORK_DIR/case.ds"
(cd "$WORK_DIR" && "$TOOLS_DIR/datastage_run" case.ds --sweep --jobs=1 \
    --csv=sweep1.csv > sweep1.txt)
(cd "$WORK_DIR" && "$TOOLS_DIR/datastage_run" case.ds --sweep --jobs=8 \
    --csv=sweep8.csv > sweep8.txt)
cmp -s "$WORK_DIR/sweep1.csv" "$WORK_DIR/sweep8.csv"
# stdout differs only in the CSV filename it echoes.
sed 's/sweep[18]\.csv//' "$WORK_DIR/sweep1.txt" > "$WORK_DIR/sweep1.norm"
sed 's/sweep[18]\.csv//' "$WORK_DIR/sweep8.txt" > "$WORK_DIR/sweep8.norm"
cmp -s "$WORK_DIR/sweep1.norm" "$WORK_DIR/sweep8.norm"

# datastage_run --fault-sweep: the degradation-curve CSV must be
# byte-identical across job counts (faults are drawn per grid cell from the
# fault seed, never from scheduler or thread state).
(cd "$WORK_DIR" && "$TOOLS_DIR/datastage_run" case.ds --fault-sweep --jobs=1 \
    --csv=faults1.csv > faults1.txt)
(cd "$WORK_DIR" && "$TOOLS_DIR/datastage_run" case.ds --fault-sweep --jobs=8 \
    --csv=faults8.csv > faults8.txt)
cmp -s "$WORK_DIR/faults1.csv" "$WORK_DIR/faults8.csv"
sed 's/faults[18]\.csv//' "$WORK_DIR/faults1.txt" > "$WORK_DIR/faults1.norm"
sed 's/faults[18]\.csv//' "$WORK_DIR/faults8.txt" > "$WORK_DIR/faults8.norm"
cmp -s "$WORK_DIR/faults1.norm" "$WORK_DIR/faults8.norm"

# Saved schedules are jobs-independent too (the single-run path does not fan
# out, but the flag must be accepted and harmless everywhere).
"$TOOLS_DIR/datastage_run" "$WORK_DIR/case.ds" --scheduler=full_one/C4 \
    --jobs=1 --save="$WORK_DIR/plan1.dss" > /dev/null
"$TOOLS_DIR/datastage_run" "$WORK_DIR/case.ds" --scheduler=full_one/C4 \
    --jobs=8 --save="$WORK_DIR/plan8.dss" > /dev/null
cmp -s "$WORK_DIR/plan1.dss" "$WORK_DIR/plan8.dss"

# A bench binary: stdout (with its jobs-independent header) and CSV must
# match across job counts.
(cd "$WORK_DIR" && "$BENCH_DIR/tbl_links_traversed" --cases=3 --jobs=1 \
    --csv=links1.csv > links1.txt)
(cd "$WORK_DIR" && "$BENCH_DIR/tbl_links_traversed" --cases=3 --jobs=8 \
    --csv=links8.csv > links8.txt)
cmp -s "$WORK_DIR/links1.csv" "$WORK_DIR/links8.csv"
sed 's/links[18]\.csv//' "$WORK_DIR/links1.txt" > "$WORK_DIR/links1.norm"
sed 's/links[18]\.csv//' "$WORK_DIR/links8.txt" > "$WORK_DIR/links8.norm"
cmp -s "$WORK_DIR/links1.norm" "$WORK_DIR/links8.norm"

# datastage_serve: replaying a recorded command script must produce a
# byte-identical decision log across runs and --jobs settings (the serving
# determinism contract — wall-clock latency is measured but never logged).
cat > "$WORK_DIR/serve_script.txt" <<'EOF'
{"v":1,"cmd":"stats"}
{"v":1,"cmd":"submit","id":"s1","t_usec":0,"item":"serve_item","dest":"M1","deadline_usec":7200000000,"priority":2,"new_item":{"size_bytes":4096,"sources":[{"machine":"M0","available_at_usec":0}]}}
{"v":1,"cmd":"advance","to_usec":1800000000}
{"v":1,"cmd":"query","id":"s1"}
{"v":1,"cmd":"stats"}
{"v":1,"cmd":"shutdown"}
EOF
"$TOOLS_DIR/datastage_serve" --scenario="$WORK_DIR/case.ds" --jobs=1 \
    --script="$WORK_DIR/serve_script.txt" \
    --decision-log="$WORK_DIR/serve1.log" > /dev/null
"$TOOLS_DIR/datastage_serve" --scenario="$WORK_DIR/case.ds" --jobs=1 \
    --script="$WORK_DIR/serve_script.txt" \
    --decision-log="$WORK_DIR/serve1b.log" > /dev/null
"$TOOLS_DIR/datastage_serve" --scenario="$WORK_DIR/case.ds" --jobs=8 \
    --script="$WORK_DIR/serve_script.txt" \
    --decision-log="$WORK_DIR/serve8.log" > /dev/null
cmp -s "$WORK_DIR/serve1.log" "$WORK_DIR/serve1b.log"
cmp -s "$WORK_DIR/serve1.log" "$WORK_DIR/serve8.log"

# --engine-jobs: the parallel plan-refresh path inside one engine must be
# byte-identical to the serial engine in every artifact — the saved schedule,
# the structured trace stream, the repro output tree, and the serve decision
# log. (The tier-1 ctest grid covers the same contract at unit level; this
# exercises the real CLI plumbing.)
"$TOOLS_DIR/datastage_run" "$WORK_DIR/case.ds" --scheduler=full_one/C4 \
    --engine-jobs=1 --save="$WORK_DIR/eplan1.dss" \
    --trace-out="$WORK_DIR/etrace1.jsonl" > /dev/null
"$TOOLS_DIR/datastage_run" "$WORK_DIR/case.ds" --scheduler=full_one/C4 \
    --engine-jobs=8 --save="$WORK_DIR/eplan8.dss" \
    --trace-out="$WORK_DIR/etrace8.jsonl" > /dev/null
cmp -s "$WORK_DIR/eplan1.dss" "$WORK_DIR/eplan8.dss"
cmp -s "$WORK_DIR/etrace1.jsonl" "$WORK_DIR/etrace8.jsonl"

mkdir "$WORK_DIR/eserial" "$WORK_DIR/eparallel"
(cd "$WORK_DIR/eserial" && "$TOOLS_DIR/datastage_repro" --cases=2 --jobs=1 \
    --engine-jobs=1 --outdir=out --metrics-out=metrics.json > stdout.txt)
(cd "$WORK_DIR/eparallel" && "$TOOLS_DIR/datastage_repro" --cases=2 --jobs=1 \
    --engine-jobs=8 --outdir=out --metrics-out=metrics.json > stdout.txt)
diff -r "$WORK_DIR/eserial" "$WORK_DIR/eparallel"

"$TOOLS_DIR/datastage_serve" --scenario="$WORK_DIR/case.ds" --engine-jobs=8 \
    --script="$WORK_DIR/serve_script.txt" \
    --decision-log="$WORK_DIR/serve_ej8.log" > /dev/null
cmp -s "$WORK_DIR/serve1.log" "$WORK_DIR/serve_ej8.log"

echo "determinism smoke test passed"
