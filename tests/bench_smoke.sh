#!/bin/sh
# Smoke test: every figure/table bench binary must run to completion with a
# tiny case count and produce a table. Invoked by CTest with the build's
# bench directory as $1.
set -eu

BENCH_DIR="$1"
failures=0

for bench in "$BENCH_DIR"/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  case "$name" in
    tbl_exec_time)
      # google-benchmark binary: run one quick repetition.
      if ! "$bench" --benchmark_min_time=0.01 --benchmark_filter='bounds' \
          > /dev/null 2>&1; then
        echo "FAILED: $name" >&2
        failures=$((failures + 1))
      fi
      ;;
    perf_scale)
      # The default tier set ends at `huge` (500k requests) — far past a
      # smoke budget. The small tier exercises the same code path.
      out="$("$bench" --tier=small --out=/dev/null 2>&1)" || {
        echo "FAILED: $name" >&2
        echo "$out" >&2
        failures=$((failures + 1))
        continue
      }
      echo "$out" | grep -q '|' || {
        echo "FAILED (no table): $name" >&2
        failures=$((failures + 1))
      }
      ;;
    *)
      out="$("$bench" --cases=1 2>&1)" || {
        echo "FAILED: $name" >&2
        echo "$out" >&2
        failures=$((failures + 1))
        continue
      }
      # Every table bench prints at least one pipe-framed row.
      echo "$out" | grep -q '|' || {
        echo "FAILED (no table): $name" >&2
        failures=$((failures + 1))
      }
      ;;
  esac
done

[ "$failures" -eq 0 ] && echo "bench smoke test passed"
exit "$failures"
