// Fault-intensity sweeps: the zero-intensity anchor, determinism across
// thread counts, and the faults.* counter merge.
#include "harness/fault_sweep.hpp"

#include <gtest/gtest.h>

#include "harness/parallel.hpp"
#include "obs/metrics.hpp"

namespace datastage {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.cases = 2;
  config.seed = 77;
  config.gen.min_machines = 8;
  config.gen.max_machines = 8;
  config.gen.min_requests_per_machine = 4;
  config.gen.max_requests_per_machine = 6;
  return config;
}

EngineOptions sweep_options() {
  EngineOptions options;
  options.weighting = PriorityWeighting::w_1_10_100();
  options.eu = EUWeights::from_log10_ratio(1.0);
  return options;
}

FaultSweepConfig tiny_sweep() {
  FaultSweepConfig config;
  config.intensities = {0.0, 0.5};
  config.fault_seed = 4321;
  return config;
}

std::vector<SchedulerSpec> one_spec() {
  return {{HeuristicKind::kFullOne, CostCriterion::kC4}};
}

// The default executor is process-wide state; restore it after each test.
class FaultSweepTest : public ::testing::Test {
 protected:
  ~FaultSweepTest() override { set_default_jobs(0); }
};

TEST_F(FaultSweepTest, ZeroIntensityAnchorMatchesCleanRun) {
  const CaseSet cases = build_cases(tiny_config());
  const FaultSweepResult result =
      run_fault_sweep(cases, one_spec(), tiny_sweep(), sweep_options());

  ASSERT_EQ(result.series.size(), 1u);
  ASSERT_EQ(result.series[0].points.size(), 2u);
  const FaultSweepPoint& anchor = result.series[0].points[0];
  // No faults: all four scores collapse to the nominal plan's value.
  EXPECT_EQ(anchor.intensity, 0.0);
  EXPECT_EQ(anchor.outage_fraction, 0.0);
  EXPECT_EQ(anchor.realized, anchor.planned);
  EXPECT_EQ(anchor.recovered, anchor.planned);
  EXPECT_EQ(anchor.clairvoyant, anchor.planned);
  EXPECT_GT(anchor.planned, 0.0);

  // Faults bite at intensity 0.5: the blind replay can only lose value.
  const FaultSweepPoint& faulty = result.series[0].points[1];
  EXPECT_LE(faulty.realized, faulty.planned);
}

TEST_F(FaultSweepTest, BitIdenticalAcrossJobCounts) {
  const CaseSet cases = build_cases(tiny_config());

  set_default_jobs(1);
  obs::MetricsRegistry serial_metrics;
  const FaultSweepResult serial = run_fault_sweep(
      cases, one_spec(), tiny_sweep(), sweep_options(), &serial_metrics);
  set_default_jobs(4);
  obs::MetricsRegistry parallel_metrics;
  const FaultSweepResult parallel = run_fault_sweep(
      cases, one_spec(), tiny_sweep(), sweep_options(), &parallel_metrics);

  EXPECT_EQ(serial.to_csv(), parallel.to_csv());
  EXPECT_EQ(serial_metrics.to_json(), parallel_metrics.to_json());
}

TEST_F(FaultSweepTest, MergedRegistryCollectsFaultCounters) {
  const CaseSet cases = build_cases(tiny_config());
  obs::MetricsRegistry metrics;
  run_fault_sweep(cases, one_spec(), tiny_sweep(), sweep_options(), &metrics);
  // Intensity 0.5 over generated cases draws at least one fault of some
  // kind; the recovery counters flow into the merged registry.
  const std::uint64_t seen = metrics.counter_value("faults.outages") +
                             metrics.counter_value("faults.degrades") +
                             metrics.counter_value("faults.copy_losses");
  EXPECT_GT(seen, 0u);
}

}  // namespace
}  // namespace datastage
