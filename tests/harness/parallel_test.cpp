// Determinism suite for the parallel experiment executor: every harness
// aggregate must be bit-identical no matter how many worker threads run it.
#include "harness/parallel.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "harness/experiment.hpp"
#include "harness/sweep.hpp"
#include "obs/metrics.hpp"

namespace datastage {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.cases = 3;
  config.seed = 77;
  config.gen.min_machines = 8;
  config.gen.max_machines = 8;
  config.gen.min_requests_per_machine = 4;
  config.gen.max_requests_per_machine = 6;
  return config;
}

// The default executor is process-wide state; restore it after each test so
// the rest of the suite sees the normal default.
class ParallelDeterminismTest : public ::testing::Test {
 protected:
  ~ParallelDeterminismTest() override { set_default_jobs(0); }
};

TEST(ParallelExecutorTest, MapStoresResultsByIndex) {
  const ParallelExecutor executor(8);
  const std::vector<std::size_t> results =
      executor.map<std::size_t>(50, [](std::size_t i) { return i * i; });
  ASSERT_EQ(results.size(), 50u);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ParallelExecutorTest, SingleJobRunsInline) {
  const ParallelExecutor executor(1);
  const std::thread::id caller = std::this_thread::get_id();
  executor.for_each(4, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
  });
}

TEST(ParallelExecutorTest, ZeroJobsResolvesToHardware) {
  const ParallelExecutor executor(0);
  EXPECT_GE(executor.jobs(), 1u);
}

TEST_F(ParallelDeterminismTest, DefaultJobsConfigurable) {
  set_default_jobs(3);
  EXPECT_EQ(default_jobs(), 3u);
  set_default_jobs(0);
  EXPECT_GE(default_jobs(), 1u);
}

TEST_F(ParallelDeterminismTest, SweepIsBitIdenticalAcrossJobCounts) {
  const CaseSet cases = build_cases(tiny_config());
  const PriorityWeighting weighting = PriorityWeighting::w_1_10_100();
  const std::vector<SchedulerSpec> pairs = paper_pairs();
  const std::vector<double> axis = paper_eu_axis();

  set_default_jobs(1);
  const SweepResult serial = sweep_pairs(cases, weighting, pairs, axis);
  set_default_jobs(8);
  const SweepResult parallel = sweep_pairs(cases, weighting, pairs, axis);

  ASSERT_EQ(serial.series.size(), parallel.series.size());
  for (std::size_t s = 0; s < serial.series.size(); ++s) {
    EXPECT_EQ(serial.series[s].name, parallel.series[s].name);
    ASSERT_EQ(serial.series[s].values.size(), parallel.series[s].values.size());
    for (std::size_t p = 0; p < serial.series[s].values.size(); ++p) {
      // Exact equality, not near: reductions run sequentially in index
      // order, so even the floating-point rounding must match.
      EXPECT_EQ(serial.series[s].values[p], parallel.series[s].values[p])
          << serial.series[s].name << " @ axis point " << p;
    }
  }
}

TEST_F(ParallelDeterminismTest, RunCasesAndMergedMetricsBitIdentical) {
  const CaseSet cases = build_cases(tiny_config());
  EngineOptions options;
  options.weighting = PriorityWeighting::w_1_10_100();
  options.eu = EUWeights::from_log10_ratio(1.0);
  const SchedulerSpec spec{HeuristicKind::kFullOne, CostCriterion::kC4};

  set_default_jobs(1);
  obs::MetricsRegistry serial_metrics;
  const std::vector<CaseResult> serial = run_cases(cases, spec, options, &serial_metrics);
  set_default_jobs(8);
  obs::MetricsRegistry parallel_metrics;
  const std::vector<CaseResult> parallel =
      run_cases(cases, spec, options, &parallel_metrics);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].weighted_value, parallel[i].weighted_value);
    EXPECT_EQ(serial[i].satisfied, parallel[i].satisfied);
    EXPECT_EQ(serial[i].by_class, parallel[i].by_class);
    EXPECT_EQ(serial[i].staging.schedule.size(), parallel[i].staging.schedule.size());
  }
  EXPECT_FALSE(serial_metrics.empty());
  EXPECT_EQ(serial_metrics.to_json(), parallel_metrics.to_json());
}

TEST_F(ParallelDeterminismTest, CostTableAndBaselinesBitIdentical) {
  const CaseSet cases = build_cases(tiny_config());
  const PriorityWeighting weighting = PriorityWeighting::w_1_10_100();
  const EUWeights eu = EUWeights::from_log10_ratio(1.0);
  const std::vector<SchedulerSpec> pairs = pairs_for(HeuristicKind::kFullOne);

  set_default_jobs(1);
  obs::MetricsRegistry serial_metrics;
  const std::string serial_table =
      scheduler_cost_table(cases, weighting, eu, pairs, &serial_metrics).to_text();
  const double serial_random = average_random_dijkstra(cases, weighting);
  const double serial_single = average_single_dijkstra_random(cases, weighting);
  const double serial_priority = average_priority_first(cases, weighting);

  set_default_jobs(8);
  obs::MetricsRegistry parallel_metrics;
  const std::string parallel_table =
      scheduler_cost_table(cases, weighting, eu, pairs, &parallel_metrics).to_text();

  EXPECT_EQ(serial_table, parallel_table);
  EXPECT_EQ(serial_metrics.to_json(), parallel_metrics.to_json());
  EXPECT_EQ(serial_random, average_random_dijkstra(cases, weighting));
  EXPECT_EQ(serial_single, average_single_dijkstra_random(cases, weighting));
  EXPECT_EQ(serial_priority, average_priority_first(cases, weighting));
}

}  // namespace
}  // namespace datastage
