#include <gtest/gtest.h>

#include <cmath>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"

namespace datastage {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.cases = 2;
  config.seed = 77;
  config.gen.min_machines = 8;
  config.gen.max_machines = 8;
  config.gen.min_requests_per_machine = 4;
  config.gen.max_requests_per_machine = 6;
  return config;
}

TEST(ExperimentTest, BuildCasesRespectsCountAndSeed) {
  const CaseSet cases = build_cases(tiny_config());
  EXPECT_EQ(cases.scenarios.size(), 2u);
  EXPECT_EQ(cases.seed, 77u);
  const CaseSet again = build_cases(tiny_config());
  EXPECT_EQ(cases.scenarios[0].request_count(), again.scenarios[0].request_count());
}

TEST(ExperimentTest, AveragesAreWithinBounds) {
  const CaseSet cases = build_cases(tiny_config());
  const PriorityWeighting weighting = PriorityWeighting::w_1_10_100();
  const AveragedBounds bounds = average_bounds(cases, weighting);
  EXPECT_GT(bounds.upper_bound, 0.0);
  EXPECT_LE(bounds.possible_satisfy, bounds.upper_bound);

  const double value =
      average_pair_value(cases, weighting,
                         {HeuristicKind::kFullOne, CostCriterion::kC4},
                         EUWeights::from_log10_ratio(1.0));
  EXPECT_GE(value, 0.0);
  EXPECT_LE(value, bounds.possible_satisfy);

  EXPECT_LE(average_single_dijkstra_random(cases, weighting),
            bounds.possible_satisfy);
  EXPECT_LE(average_random_dijkstra(cases, weighting), bounds.possible_satisfy);
  EXPECT_LE(average_priority_first(cases, weighting), bounds.possible_satisfy);
}

TEST(SweepTest, PaperAxisShape) {
  const auto axis = paper_eu_axis();
  ASSERT_EQ(axis.size(), 11u);
  EXPECT_TRUE(std::isinf(axis.front()));
  EXPECT_LT(axis.front(), 0.0);
  EXPECT_TRUE(std::isinf(axis.back()));
  EXPECT_GT(axis.back(), 0.0);
  EXPECT_DOUBLE_EQ(axis[1], -3.0);
  EXPECT_DOUBLE_EQ(axis[9], 5.0);
}

TEST(SweepTest, AxisLabels) {
  EXPECT_EQ(eu_axis_label(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(eu_axis_label(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(eu_axis_label(-3.0), "-3");
  EXPECT_EQ(eu_axis_label(0.0), "0");
  EXPECT_EQ(eu_axis_label(2.5), "2.50");
}

TEST(SweepTest, SweepProducesOneValuePerAxisPoint) {
  const CaseSet cases = build_cases(tiny_config());
  const std::vector<double> axis{-1.0, 1.0, 3.0};
  const SweepResult result =
      sweep_pairs(cases, PriorityWeighting::w_1_10_100(),
                  {{HeuristicKind::kPartial, CostCriterion::kC4},
                   {HeuristicKind::kPartial, CostCriterion::kC3}},
                  axis);
  ASSERT_EQ(result.series.size(), 2u);
  for (const SweepSeries& series : result.series) {
    EXPECT_EQ(series.values.size(), axis.size());
  }
  // C3 is E-U independent: a flat line.
  const SweepSeries& c3 = result.series[1];
  EXPECT_EQ(c3.name, "partial/C3");
  EXPECT_DOUBLE_EQ(c3.values[0], c3.values[1]);
  EXPECT_DOUBLE_EQ(c3.values[1], c3.values[2]);
}

TEST(SweepTest, AddFlatSeries) {
  SweepResult result;
  result.axis = {0.0, 1.0};
  add_flat_series(result, "bound", 42.0);
  ASSERT_EQ(result.series.size(), 1u);
  EXPECT_EQ(result.series[0].values, (std::vector<double>{42.0, 42.0}));
}

TEST(ReportTest, SweepTableLayout) {
  SweepResult result;
  result.axis = {-std::numeric_limits<double>::infinity(), 2.0};
  result.series.push_back(SweepSeries{"a", {1.0, 2.0}});
  result.series.push_back(SweepSeries{"b", {3.25, 4.5}});
  const Table table = sweep_table(result);
  const std::string csv = table.to_csv();
  // Note: %.1f rounds 3.25 half-to-even -> "3.2".
  EXPECT_EQ(csv,
            "log10(E-U),a,b\n"
            "-inf,1.0,3.2\n"
            "2,2.0,4.5\n");
}

}  // namespace
}  // namespace datastage
