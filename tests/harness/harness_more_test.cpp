// Additional harness coverage: dispersion statistics, CSV side effects, and
// consistency between the sweep machinery and direct evaluation.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "harness/experiment.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"

namespace datastage {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig config;
  config.cases = 3;
  config.seed = 909;
  config.gen.min_machines = 8;
  config.gen.max_machines = 8;
  config.gen.min_requests_per_machine = 3;
  config.gen.max_requests_per_machine = 5;
  return config;
}

TEST(HarnessMoreTest, ValueStatsBracketTheMean) {
  const CaseSet cases = build_cases(tiny_config());
  const PriorityWeighting weighting = PriorityWeighting::w_1_10_100();
  const ValueStats stats =
      pair_value_stats(cases, weighting, {HeuristicKind::kFullOne, CostCriterion::kC4},
                       EUWeights::from_log10_ratio(1.0));
  EXPECT_LE(stats.min, stats.mean);
  EXPECT_LE(stats.mean, stats.max);
  EXPECT_GE(stats.stddev, 0.0);
  // The mean must agree with average_pair_value exactly (same runs).
  const double mean = average_pair_value(cases, weighting,
                                         {HeuristicKind::kFullOne, CostCriterion::kC4},
                                         EUWeights::from_log10_ratio(1.0));
  EXPECT_DOUBLE_EQ(stats.mean, mean);
}

TEST(HarnessMoreTest, SweepValuesMatchDirectEvaluation) {
  const CaseSet cases = build_cases(tiny_config());
  const PriorityWeighting weighting = PriorityWeighting::w_1_10_100();
  const SchedulerSpec spec{HeuristicKind::kPartial, CostCriterion::kC2};
  const std::vector<double> axis{-1.0, 2.0};
  const SweepResult sweep = sweep_pairs(cases, weighting, {spec}, axis);
  ASSERT_EQ(sweep.series.size(), 1u);
  for (std::size_t x = 0; x < axis.size(); ++x) {
    EXPECT_DOUBLE_EQ(sweep.series[0].values[x],
                     average_pair_value(cases, weighting, spec,
                                        EUWeights::from_log10_ratio(axis[x])));
  }
}

TEST(HarnessMoreTest, PrintSweepWritesCsvFile) {
  SweepResult result;
  result.axis = {0.0, 1.0};
  result.series.push_back(SweepSeries{"s", {1.0, 2.0}});
  const std::string path = ::testing::TempDir() + "/harness_sweep_test.csv";
  ::testing::internal::CaptureStdout();
  print_sweep("caption", result, path);
  const std::string out = ::testing::internal::GetCapturedStdout();
  EXPECT_NE(out.find("caption"), std::string::npos);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "log10(E-U),s");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row, "0,1.0");
  std::remove(path.c_str());
}

TEST(HarnessMoreTest, BaselineAveragesAreDeterministic) {
  const CaseSet cases = build_cases(tiny_config());
  const PriorityWeighting weighting = PriorityWeighting::w_1_10_100();
  EXPECT_DOUBLE_EQ(average_single_dijkstra_random(cases, weighting),
                   average_single_dijkstra_random(cases, weighting));
  EXPECT_DOUBLE_EQ(average_random_dijkstra(cases, weighting),
                   average_random_dijkstra(cases, weighting));
}

TEST(HarnessMoreTest, DifferentSeedsGiveDifferentCases) {
  ExperimentConfig a = tiny_config();
  ExperimentConfig b = tiny_config();
  b.seed = 910;
  const CaseSet ca = build_cases(a);
  const CaseSet cb = build_cases(b);
  // Same counts, different workloads (request totals almost surely differ).
  EXPECT_EQ(ca.scenarios.size(), cb.scenarios.size());
  bool any_difference = false;
  for (std::size_t i = 0; i < ca.scenarios.size(); ++i) {
    any_difference = any_difference || ca.scenarios[i].request_count() !=
                                           cb.scenarios[i].request_count();
  }
  EXPECT_TRUE(any_difference);
}

}  // namespace
}  // namespace datastage
