#include "util/ids.hpp"

#include <gtest/gtest.h>

#include <set>
#include <type_traits>
#include <unordered_set>

namespace datastage {
namespace {

TEST(StrongIdTest, DefaultIsInvalid) {
  const MachineId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, MachineId::invalid());
}

TEST(StrongIdTest, ValueAndIndex) {
  const ItemId id(7);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 7);
  EXPECT_EQ(id.index(), 7u);
}

TEST(StrongIdTest, OrderingAndEquality) {
  EXPECT_LT(MachineId(1), MachineId(2));
  EXPECT_EQ(MachineId(3), MachineId(3));
  EXPECT_NE(MachineId(3), MachineId(4));
}

TEST(StrongIdTest, DistinctTagsAreDistinctTypes) {
  static_assert(!std::is_same_v<MachineId, ItemId>);
  static_assert(!std::is_same_v<PhysLinkId, VirtLinkId>);
}

TEST(StrongIdTest, Hashable) {
  std::unordered_set<MachineId> set;
  set.insert(MachineId(1));
  set.insert(MachineId(2));
  set.insert(MachineId(1));
  EXPECT_EQ(set.size(), 2u);
}

TEST(RequestRefTest, CompositeOrdering) {
  const RequestRef a{ItemId(0), 1};
  const RequestRef b{ItemId(0), 2};
  const RequestRef c{ItemId(1), 0};
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
  EXPECT_EQ(a, (RequestRef{ItemId(0), 1}));
  std::set<RequestRef> refs{c, a, b};
  EXPECT_EQ(refs.size(), 3u);
  EXPECT_EQ(*refs.begin(), a);
}

}  // namespace
}  // namespace datastage
