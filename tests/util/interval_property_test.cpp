// Randomized property suite: IntervalSet vs an independent naive reference.
//
// The reference implements the documented contract with linear scans and
// full-vector rebuilds — no binary search, no clever in-place surgery — so
// any agreement between the two is evidence about the contract, not shared
// code. This suite is the oracle for the chunked-storage rewrite: it pins
// the exact member layout (adjacency preserved by insert_disjoint, merged by
// insert_merge) and the earliest_fit boundary semantics (window edges,
// zero-length requests, zero-length windows) before the layout changes.
#include "util/interval.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <vector>

#include "util/chunked_intervals.hpp"
#include "util/rng.hpp"

namespace datastage {
namespace {

SimTime at(std::int64_t usec) { return SimTime::zero() + SimDuration::from_usec(usec); }

// Naive reference: a sorted vector of disjoint members, every operation a
// linear pass.
class NaiveSet {
 public:
  const std::vector<Interval>& members() const { return members_; }

  bool overlaps(const Interval& iv) const {
    if (iv.empty()) return false;
    return std::any_of(members_.begin(), members_.end(),
                       [&](const Interval& m) { return m.overlaps(iv); });
  }

  void insert_disjoint(const Interval& iv) {
    members_.push_back(iv);
    sort();
  }

  void insert_merge(const Interval& iv) {
    if (iv.empty()) return;
    Interval merged = iv;
    std::vector<Interval> rest;
    for (const Interval& m : members_) {
      // Overlapping or exactly adjacent members coalesce into the new one.
      if (m.overlaps(merged) || m.end == merged.begin || merged.end == m.begin) {
        merged.begin = min(merged.begin, m.begin);
        merged.end = max(merged.end, m.end);
      } else {
        rest.push_back(m);
      }
    }
    rest.push_back(merged);
    members_ = std::move(rest);
    sort();
  }

  void subtract(const Interval& iv) {
    if (iv.empty()) return;
    std::vector<Interval> rest;
    for (const Interval& m : members_) {
      if (!m.overlaps(iv)) {
        rest.push_back(m);
        continue;
      }
      if (m.begin < iv.begin) rest.push_back(Interval{m.begin, iv.begin});
      if (iv.end < m.end) rest.push_back(Interval{iv.end, m.end});
    }
    members_ = std::move(rest);
    sort();
  }

  std::optional<SimTime> earliest_fit(SimTime not_before, SimDuration length,
                                      const Interval& window) const {
    SimTime start = max(not_before, window.begin);
    while (true) {
      if (start + length > window.end) return std::nullopt;
      const Interval candidate{start, start + length};
      // A zero-length candidate is blocked only strictly inside a member
      // (start == member.begin fits; Interval::overlaps agrees: an empty
      // interval at m.begin does not overlap m).
      std::optional<SimTime> bump;
      for (const Interval& m : members_) {
        const bool blocked = candidate.empty()
                                 ? (m.begin < start && start < m.end)
                                 : m.overlaps(candidate);
        if (blocked && (!bump.has_value() || m.end < *bump)) bump = m.end;
      }
      if (!bump.has_value()) return start;
      start = *bump;
    }
  }

  SimDuration covered_within(const Interval& window) const {
    SimDuration total = SimDuration::zero();
    for (const Interval& m : members_) {
      const SimTime lo = max(m.begin, window.begin);
      const SimTime hi = min(m.end, window.end);
      if (lo < hi) total = total + (hi - lo);
    }
    return total;
  }

 private:
  void sort() {
    std::sort(members_.begin(), members_.end(),
              [](const Interval& a, const Interval& b) { return a.begin < b.begin; });
  }

  std::vector<Interval> members_;
};

Interval random_interval(Rng& rng, std::int64_t domain) {
  const std::int64_t a = rng.uniform_i64(0, domain);
  const std::int64_t len = rng.uniform_i64(1, domain / 8 + 1);
  return Interval{at(a), at(a + len)};
}

void expect_same_members(const IntervalSet& real, const NaiveSet& naive,
                         std::uint64_t seed, int step) {
  ASSERT_EQ(real.intervals().size(), naive.members().size())
      << "seed " << seed << " step " << step;
  for (std::size_t i = 0; i < naive.members().size(); ++i) {
    EXPECT_EQ(real.intervals()[i], naive.members()[i])
        << "seed " << seed << " step " << step << " member " << i;
  }
}

// Random op soup: every mutation applied to both, full member-list equality
// and query agreement checked after each step.
TEST(IntervalPropertyTest, RandomOperationsAgreeWithNaiveReference) {
  constexpr std::int64_t kDomain = 240;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed);
    IntervalSet real;
    NaiveSet naive;
    for (int step = 0; step < 160; ++step) {
      const std::int64_t op = rng.uniform_i64(0, 3);
      const Interval iv = random_interval(rng, kDomain);
      switch (op) {
        case 0:  // insert_disjoint where legal, otherwise a query
          if (!naive.overlaps(iv)) {
            ASSERT_FALSE(real.overlaps(iv));
            real.insert_disjoint(iv);
            naive.insert_disjoint(iv);
          } else {
            EXPECT_TRUE(real.overlaps(iv));
          }
          break;
        case 1:
          real.insert_merge(iv);
          naive.insert_merge(iv);
          break;
        case 2:
          real.subtract(iv);
          naive.subtract(iv);
          break;
        default:
          EXPECT_EQ(real.overlaps(iv), naive.overlaps(iv));
          break;
      }
      ASSERT_NO_FATAL_FAILURE(expect_same_members(real, naive, seed, step));

      // Query agreement on a random probe each step.
      const Interval window = random_interval(rng, kDomain);
      const SimTime nb = at(rng.uniform_i64(0, kDomain));
      const SimDuration len = SimDuration::from_usec(rng.uniform_i64(0, 24));
      EXPECT_EQ(real.earliest_fit(nb, len, window),
                naive.earliest_fit(nb, len, window))
          << "seed " << seed << " step " << step;
      EXPECT_EQ(real.covered_within(window), naive.covered_within(window))
          << "seed " << seed << " step " << step;
    }
  }
}

// Dense adjacency stress: many touching members from alternating disjoint
// inserts and subtracts, then exhaustive earliest_fit probes at every
// boundary-adjacent start. Catches off-by-ones a random probe rarely hits.
TEST(IntervalPropertyTest, ExhaustiveBoundaryProbesOnAdjacentMembers) {
  IntervalSet real;
  NaiveSet naive;
  // [10,20) [20,30) [40,50) [50,52) plus merge-made [60,80).
  for (const Interval iv : {Interval{at(10), at(20)}, Interval{at(20), at(30)},
                            Interval{at(40), at(50)}, Interval{at(50), at(52)}}) {
    real.insert_disjoint(iv);
    naive.insert_disjoint(iv);
  }
  real.insert_merge(Interval{at(60), at(70)});
  naive.insert_merge(Interval{at(60), at(70)});
  real.insert_merge(Interval{at(70), at(80)});
  naive.insert_merge(Interval{at(70), at(80)});
  real.subtract(Interval{at(44), at(46)});
  naive.subtract(Interval{at(44), at(46)});
  expect_same_members(real, naive, 0, 0);

  for (std::int64_t wb = 0; wb <= 90; wb += 5) {
    for (std::int64_t we = wb; we <= 90; we += 5) {  // includes empty windows
      const Interval window{at(wb), at(we)};
      for (std::int64_t nb = 0; nb <= 90; nb += 3) {
        for (const std::int64_t len : {0, 1, 2, 5, 10, 30}) {
          EXPECT_EQ(real.earliest_fit(at(nb), SimDuration::from_usec(len), window),
                    naive.earliest_fit(at(nb), SimDuration::from_usec(len), window))
              << "window [" << wb << "," << we << ") nb " << nb << " len " << len;
        }
      }
    }
  }
}

// Reservation workload (insert_disjoint only — what LinkSchedule does)
// replayed against IntervalSet, ChunkedIntervalSet, and the naive reference:
// member lists and every query must agree across all three. Enough inserts
// per trial to force repeated chunk splits and mid-chunk shifts.
TEST(IntervalPropertyTest, ChunkedSetMatchesFlatSetOnReservationWorkloads) {
  constexpr std::int64_t kDomain = 20'000;
  // Short intervals, like link reservations: long draws saturate the domain
  // after a couple dozen inserts and never split a chunk.
  const auto random_reservation = [](Rng& rng) {
    const std::int64_t a = rng.uniform_i64(0, kDomain);
    const std::int64_t len = rng.uniform_i64(1, 24);
    return Interval{at(a), at(a + len)};
  };
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    IntervalSet flat;
    ChunkedIntervalSet chunked;
    NaiveSet naive;
    int inserted = 0;
    for (int step = 0; step < 900; ++step) {
      const Interval iv = random_reservation(rng);
      ASSERT_EQ(flat.overlaps(iv), naive.overlaps(iv)) << "seed " << seed;
      ASSERT_EQ(chunked.overlaps(iv), naive.overlaps(iv)) << "seed " << seed;
      if (!naive.overlaps(iv)) {
        flat.insert_disjoint(iv);
        chunked.insert_disjoint(iv);
        naive.insert_disjoint(iv);
        ++inserted;
      }

      const Interval window = random_interval(rng, kDomain);
      const SimTime nb = at(rng.uniform_i64(0, kDomain));
      const SimDuration len = SimDuration::from_usec(rng.uniform_i64(0, 400));
      const auto expected = naive.earliest_fit(nb, len, window);
      ASSERT_EQ(flat.earliest_fit(nb, len, window), expected)
          << "seed " << seed << " step " << step;
      ASSERT_EQ(chunked.earliest_fit(nb, len, window), expected)
          << "seed " << seed << " step " << step;
    }
    // The workload must actually exercise chunk splits (64+ members).
    ASSERT_GT(inserted, 200) << "seed " << seed;
    EXPECT_EQ(chunked.size(), naive.members().size());
    EXPECT_EQ(chunked.to_vector(), naive.members());
    EXPECT_EQ(flat.intervals(), naive.members());
  }
}

// Ascending-order inserts follow the append fast path; interleave a few
// out-of-order ones to hit mid-chunk shifts right after appends.
TEST(IntervalPropertyTest, ChunkedSetAppendFastPathStaysSorted) {
  ChunkedIntervalSet chunked;
  NaiveSet naive;
  // 0..199 ascending with gaps, then fill some gaps out of order.
  for (std::int64_t i = 0; i < 200; ++i) {
    const Interval iv{at(i * 10), at(i * 10 + 6)};
    chunked.insert_disjoint(iv);
    naive.insert_disjoint(iv);
  }
  for (std::int64_t i = 190; i >= 0; i -= 7) {
    const Interval iv{at(i * 10 + 7), at(i * 10 + 9)};
    chunked.insert_disjoint(iv);
    naive.insert_disjoint(iv);
  }
  EXPECT_EQ(chunked.to_vector(), naive.members());
  const Interval window{at(0), at(2'000)};
  for (std::int64_t nb = 0; nb < 2'000; nb += 13) {
    for (const std::int64_t len : {0, 1, 3, 7}) {
      EXPECT_EQ(chunked.earliest_fit(at(nb), SimDuration::from_usec(len), window),
                naive.earliest_fit(at(nb), SimDuration::from_usec(len), window))
          << "nb " << nb << " len " << len;
    }
  }
}

// --- directed boundary cases the rewrite must preserve ---------------------

TEST(IntervalPropertyTest, EarliestFitExactlyFillsTheWindowTail) {
  IntervalSet set;
  set.insert_disjoint(Interval{at(0), at(90)});
  const Interval window{at(0), at(100)};
  EXPECT_EQ(set.earliest_fit(at(0), SimDuration::from_usec(10), window), at(90));
  EXPECT_EQ(set.earliest_fit(at(0), SimDuration::from_usec(11), window), std::nullopt);
}

TEST(IntervalPropertyTest, EarliestFitAtTheWindowBegin) {
  IntervalSet set;
  set.insert_disjoint(Interval{at(0), at(10)});
  const Interval window{at(10), at(30)};
  // The busy interval ends exactly at the window begin: fits immediately.
  EXPECT_EQ(set.earliest_fit(at(0), SimDuration::from_usec(20), window), at(10));
}

TEST(IntervalPropertyTest, ZeroLengthWindowAdmitsOnlyZeroLengthFits) {
  const IntervalSet set;
  const Interval window{at(50), at(50)};
  EXPECT_EQ(set.earliest_fit(at(0), SimDuration::zero(), window), at(50));
  EXPECT_EQ(set.earliest_fit(at(0), SimDuration::from_usec(1), window), std::nullopt);
  // not_before past the (empty) window: nothing fits, not even zero length.
  EXPECT_EQ(set.earliest_fit(at(51), SimDuration::zero(), window), std::nullopt);
}

TEST(IntervalPropertyTest, ZeroLengthFitSkipsStrictInteriorsButNotSeams) {
  IntervalSet set;
  set.insert_disjoint(Interval{at(10), at(20)});
  set.insert_disjoint(Interval{at(20), at(30)});  // adjacent, kept separate
  const Interval window{at(0), at(100)};
  // Strictly inside the first member: bumped to its end — which is the seam
  // between the two members, and a zero-length fit at a seam is legal.
  EXPECT_EQ(set.earliest_fit(at(15), SimDuration::zero(), window), at(20));
  EXPECT_EQ(set.earliest_fit(at(10), SimDuration::zero(), window), at(10));
}

TEST(IntervalPropertyTest, CoveredWithinClipsPartialOverlaps) {
  IntervalSet set;
  set.insert_merge(Interval{at(0), at(10)});
  set.insert_merge(Interval{at(20), at(30)});
  EXPECT_EQ(set.covered_within(Interval{at(5), at(25)}),
            SimDuration::from_usec(10));
  EXPECT_EQ(set.covered_within(Interval{at(12), at(18)}), SimDuration::zero());
  EXPECT_EQ(set.covered_within(Interval{at(30), at(30)}), SimDuration::zero());
}

}  // namespace
}  // namespace datastage
