// Directed tests for IntervalSet::subtract (the fuzz suite covers it
// statistically; these pin the exact split/trim/merge behaviors) and for
// Interval rendering.
#include <gtest/gtest.h>

#include "util/interval.hpp"

namespace datastage {
namespace {

Interval iv(std::int64_t a, std::int64_t b) {
  return Interval{SimTime::from_usec(a), SimTime::from_usec(b)};
}

TEST(IntervalSubtractTest, NoOverlapIsNoOp) {
  IntervalSet set;
  set.insert_disjoint(iv(10, 20));
  set.subtract(iv(30, 40));
  set.subtract(iv(0, 10));   // touching left
  set.subtract(iv(20, 25));  // touching right
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], iv(10, 20));
}

TEST(IntervalSubtractTest, SplitsMiddle) {
  IntervalSet set;
  set.insert_disjoint(iv(10, 50));
  set.subtract(iv(20, 30));
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0], iv(10, 20));
  EXPECT_EQ(set.intervals()[1], iv(30, 50));
}

TEST(IntervalSubtractTest, TrimsEdges) {
  IntervalSet set;
  set.insert_disjoint(iv(10, 50));
  set.subtract(iv(0, 20));
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], iv(20, 50));
  set.subtract(iv(40, 60));
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], iv(20, 40));
}

TEST(IntervalSubtractTest, RemovesWholeMembers) {
  IntervalSet set;
  set.insert_disjoint(iv(10, 20));
  set.insert_disjoint(iv(30, 40));
  set.insert_disjoint(iv(50, 60));
  set.subtract(iv(15, 55));
  ASSERT_EQ(set.size(), 2u);
  EXPECT_EQ(set.intervals()[0], iv(10, 15));
  EXPECT_EQ(set.intervals()[1], iv(55, 60));
}

TEST(IntervalSubtractTest, ExactMemberVanishes) {
  IntervalSet set;
  set.insert_disjoint(iv(10, 20));
  set.subtract(iv(10, 20));
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSubtractTest, EmptySubtrahendIsNoOp) {
  IntervalSet set;
  set.insert_disjoint(iv(10, 20));
  set.subtract(iv(15, 15));
  ASSERT_EQ(set.size(), 1u);
}

TEST(IntervalSubtractTest, SubtractFromEmptySet) {
  IntervalSet set;
  set.subtract(iv(0, 100));
  EXPECT_TRUE(set.empty());
}

TEST(IntervalToStringTest, RendersBothEnds) {
  const Interval window{SimTime::zero() + SimDuration::minutes(90),
                        SimTime::infinity()};
  const std::string text = window.to_string();
  EXPECT_NE(text.find("01:30:00.000"), std::string::npos);
  EXPECT_NE(text.find("inf"), std::string::npos);
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text.back(), ')');
}

}  // namespace
}  // namespace datastage
