#include "util/interval.hpp"

#include <gtest/gtest.h>

namespace datastage {
namespace {

Interval iv(std::int64_t a, std::int64_t b) {
  return Interval{SimTime::from_usec(a), SimTime::from_usec(b)};
}

TEST(IntervalTest, BasicPredicates) {
  EXPECT_TRUE(iv(5, 5).empty());
  EXPECT_FALSE(iv(5, 6).empty());
  EXPECT_EQ(iv(2, 10).length(), SimDuration::from_usec(8));
  EXPECT_TRUE(iv(2, 10).contains(SimTime::from_usec(2)));
  EXPECT_FALSE(iv(2, 10).contains(SimTime::from_usec(10)));  // half-open
  EXPECT_TRUE(iv(0, 10).contains(iv(3, 7)));
  EXPECT_TRUE(iv(0, 10).contains(iv(0, 10)));
  EXPECT_FALSE(iv(0, 10).contains(iv(3, 11)));
}

TEST(IntervalTest, OverlapIsHalfOpen) {
  EXPECT_TRUE(iv(0, 5).overlaps(iv(4, 8)));
  EXPECT_FALSE(iv(0, 5).overlaps(iv(5, 8)));  // touching is not overlap
  EXPECT_FALSE(iv(5, 8).overlaps(iv(0, 5)));
  EXPECT_TRUE(iv(0, 10).overlaps(iv(3, 4)));
}

TEST(IntervalSetTest, DisjointInsertAndOverlapQuery) {
  IntervalSet set;
  set.insert_disjoint(iv(10, 20));
  set.insert_disjoint(iv(30, 40));
  set.insert_disjoint(iv(0, 5));  // out-of-order insert keeps sortedness
  EXPECT_EQ(set.size(), 3u);
  EXPECT_TRUE(set.overlaps(iv(15, 16)));
  EXPECT_TRUE(set.overlaps(iv(19, 31)));
  EXPECT_FALSE(set.overlaps(iv(20, 30)));  // exactly the gap
  EXPECT_FALSE(set.overlaps(iv(5, 10)));
  EXPECT_EQ(set.intervals()[0], iv(0, 5));
  EXPECT_EQ(set.intervals()[2], iv(30, 40));
}

TEST(IntervalSetTest, InsertMergeCoalesces) {
  IntervalSet set;
  set.insert_merge(iv(0, 10));
  set.insert_merge(iv(20, 30));
  set.insert_merge(iv(5, 25));  // bridges both
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], iv(0, 30));
  set.insert_merge(iv(30, 35));  // adjacent merges too
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.intervals()[0], iv(0, 35));
}

TEST(IntervalSetTest, EarliestFitEmptySet) {
  const IntervalSet set;
  const auto fit = set.earliest_fit(SimTime::from_usec(3), SimDuration::from_usec(4),
                                    iv(0, 100));
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->usec(), 3);
}

TEST(IntervalSetTest, EarliestFitRespectsWindowStart) {
  const IntervalSet set;
  const auto fit = set.earliest_fit(SimTime::from_usec(0), SimDuration::from_usec(4),
                                    iv(10, 100));
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->usec(), 10);
}

TEST(IntervalSetTest, EarliestFitSkipsBusyIntervals) {
  IntervalSet set;
  set.insert_disjoint(iv(10, 20));
  set.insert_disjoint(iv(25, 40));
  // Needs 6 units: gap [20,25) too small, first fit is 40.
  const auto fit = set.earliest_fit(SimTime::from_usec(12), SimDuration::from_usec(6),
                                    iv(0, 100));
  ASSERT_TRUE(fit.has_value());
  EXPECT_EQ(fit->usec(), 40);
  // Needs 5 units: gap [20,25) is exactly enough.
  const auto snug = set.earliest_fit(SimTime::from_usec(12), SimDuration::from_usec(5),
                                     iv(0, 100));
  ASSERT_TRUE(snug.has_value());
  EXPECT_EQ(snug->usec(), 20);
}

TEST(IntervalSetTest, EarliestFitFailsWhenWindowTooShort) {
  IntervalSet set;
  set.insert_disjoint(iv(10, 90));
  EXPECT_FALSE(set.earliest_fit(SimTime::from_usec(0), SimDuration::from_usec(20),
                                iv(0, 100))
                   .has_value());
  // Zero-length always fits if the window has room at/after not_before.
  const auto zero = set.earliest_fit(SimTime::from_usec(95), SimDuration::zero(),
                                     iv(0, 100));
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(zero->usec(), 95);
}

TEST(IntervalSetTest, EarliestFitStartAfterWindowEnd) {
  const IntervalSet set;
  EXPECT_FALSE(set.earliest_fit(SimTime::from_usec(101), SimDuration::from_usec(1),
                                iv(0, 100))
                   .has_value());
}

TEST(IntervalSetTest, CoveredWithinClipsToWindow) {
  IntervalSet set;
  set.insert_disjoint(iv(10, 20));
  set.insert_disjoint(iv(30, 50));
  EXPECT_EQ(set.covered_within(iv(0, 100)), SimDuration::from_usec(30));
  EXPECT_EQ(set.covered_within(iv(15, 35)), SimDuration::from_usec(10));
  EXPECT_EQ(set.covered_within(iv(20, 30)), SimDuration::zero());
}

TEST(IntervalSetDeathTest, OverlappingDisjointInsertAborts) {
  IntervalSet set;
  set.insert_disjoint(iv(10, 20));
  EXPECT_DEATH(set.insert_disjoint(iv(15, 25)), "overlaps");
}

}  // namespace
}  // namespace datastage
