#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace datastage {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kJobs = 100;
  std::vector<std::atomic<int>> hits(kJobs);
  pool.run_indexed(kJobs, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ZeroJobBatchReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.run_indexed(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ResultsAttachToIndicesNotThreads) {
  ThreadPool pool(8);
  constexpr std::size_t kJobs = 64;
  std::vector<std::size_t> results(kJobs, 0);
  pool.run_indexed(kJobs, [&](std::size_t i) { results[i] = i * i; });
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ThreadPoolTest, LowestIndexExceptionWinsAndBatchDrains) {
  ThreadPool pool(4);
  constexpr std::size_t kJobs = 32;
  std::atomic<int> completed{0};
  try {
    pool.run_indexed(kJobs, [&](std::size_t i) {
      completed.fetch_add(1);
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Every job throws, so job 0's exception must be the one rethrown —
    // regardless of which worker ran it or in what order jobs finished.
    EXPECT_STREQ(e.what(), "0");
  }
  EXPECT_EQ(completed.load(), static_cast<int>(kJobs));  // remaining jobs still ran
}

TEST(ThreadPoolTest, PoolIsReusableAfterAnException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.run_indexed(8, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  std::atomic<int> sum{0};
  pool.run_indexed(10, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 45);
}

// Regression: a worker that joined batch N late must never claim an index
// from batch N+1 while still holding batch N's job pointer. Hammering many
// small back-to-back batches makes that window wide enough to catch under
// the sanitizers.
TEST(ThreadPoolTest, RapidSequentialBatchesStaySound) {
  ThreadPool pool(8);
  for (int batch = 0; batch < 200; ++batch) {
    std::vector<int> results(3, -1);
    pool.run_indexed(results.size(),
                     [&](std::size_t i) { results[i] = batch; });
    for (const int r : results) ASSERT_EQ(r, batch);
  }
}

TEST(ThreadPoolTest, DestructionWithoutWorkIsClean) {
  for (int i = 0; i < 8; ++i) {
    ThreadPool pool(4);  // spawn and join idle workers repeatedly
  }
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.run_indexed(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, HardwareJobsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_jobs(), 1u);
}

TEST(ThreadPoolParallelForTest, CoversEveryIndexWithValidWorkerIds) {
  ThreadPool pool(4);
  constexpr std::size_t kJobs = 257;  // not a multiple of any chunk size
  std::vector<std::atomic<int>> hits(kJobs);
  std::atomic<bool> worker_in_range{true};
  pool.parallel_for(kJobs, [&](std::size_t worker, std::size_t i) {
    if (worker >= pool.thread_count()) worker_in_range.store(false);
    hits[i].fetch_add(1);
  });
  EXPECT_TRUE(worker_in_range.load());
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolParallelForTest, EmptyRangeIsANoOp) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  EXPECT_FALSE(pool.batch_in_flight());
}

TEST(ThreadPoolParallelForTest, LowestIndexExceptionWins) {
  ThreadPool pool(4);
  try {
    pool.parallel_for(64, [&](std::size_t, std::size_t i) {
      if (i % 2 == 1) throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "1");  // smallest throwing index, not first-to-throw
  }
}

TEST(ThreadPoolParallelForTest, PerWorkerScratchNeverShared) {
  // The worker id exists so callers can keep per-worker scratch buffers; two
  // jobs running concurrently must never see the same worker id.
  ThreadPool pool(4);
  std::vector<std::atomic<int>> in_use(pool.thread_count());
  std::atomic<bool> collision{false};
  pool.parallel_for(400, [&](std::size_t worker, std::size_t) {
    if (in_use[worker].fetch_add(1) != 0) collision.store(true);
    in_use[worker].fetch_sub(1);
  });
  EXPECT_FALSE(collision.load());
}

TEST(ThreadPoolAsyncTest, BeginJoinRunsAllJobs) {
  ThreadPool pool(4);
  constexpr std::size_t kJobs = 50;
  std::vector<std::atomic<int>> hits(kJobs);
  pool.begin(kJobs, [&](std::size_t, std::size_t i) { hits[i].fetch_add(1); });
  EXPECT_TRUE(pool.batch_in_flight());
  pool.join();
  EXPECT_FALSE(pool.batch_in_flight());
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolAsyncTest, EmptyBeginStillRequiresOnlyCheapJoin) {
  ThreadPool pool(2);
  pool.begin(0, [&](std::size_t, std::size_t) { FAIL() << "dispatched a job"; });
  EXPECT_TRUE(pool.batch_in_flight());
  pool.join();
  EXPECT_FALSE(pool.batch_in_flight());
}

TEST(ThreadPoolAsyncTest, JoinWithoutBeginIsANoOp) {
  ThreadPool pool(2);
  pool.join();
  pool.join();
  EXPECT_FALSE(pool.batch_in_flight());
}

TEST(ThreadPoolAsyncTest, JoinRethrowsLowestIndexException) {
  ThreadPool pool(4);
  pool.begin(16, [](std::size_t, std::size_t i) {
    if (i >= 3) throw std::runtime_error(std::to_string(i));
  });
  try {
    pool.join();
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "3");
  }
  EXPECT_FALSE(pool.batch_in_flight());
  // Pool stays usable after an async failure.
  std::atomic<int> sum{0};
  pool.parallel_for(10, [&](std::size_t, std::size_t i) {
    sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolAsyncTest, JobReleasedAfterJoin) {
  // The pool owns the job closure between begin and join; join must release
  // it so captured resources (here a shared_ptr) are freed promptly.
  ThreadPool pool(2);
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  pool.begin(4, [token](std::size_t, std::size_t) {});
  token.reset();
  pool.join();
  EXPECT_TRUE(watch.expired());
}

TEST(ThreadPoolAsyncTest, InterleavedAsyncAndBlockingBatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> async_results(5, -1);
    pool.begin(async_results.size(),
               [&](std::size_t, std::size_t i) { async_results[i] = round; });
    pool.join();
    std::vector<int> sync_results(5, -1);
    pool.parallel_for(sync_results.size(),
                      [&](std::size_t, std::size_t i) { sync_results[i] = round; });
    for (const int r : async_results) ASSERT_EQ(r, round);
    for (const int r : sync_results) ASSERT_EQ(r, round);
  }
}

}  // namespace
}  // namespace datastage
