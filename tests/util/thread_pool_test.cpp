#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace datastage {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kJobs = 100;
  std::vector<std::atomic<int>> hits(kJobs);
  pool.run_indexed(kJobs, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ZeroJobBatchReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.run_indexed(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPoolTest, ResultsAttachToIndicesNotThreads) {
  ThreadPool pool(8);
  constexpr std::size_t kJobs = 64;
  std::vector<std::size_t> results(kJobs, 0);
  pool.run_indexed(kJobs, [&](std::size_t i) { results[i] = i * i; });
  for (std::size_t i = 0; i < kJobs; ++i) EXPECT_EQ(results[i], i * i);
}

TEST(ThreadPoolTest, LowestIndexExceptionWinsAndBatchDrains) {
  ThreadPool pool(4);
  constexpr std::size_t kJobs = 32;
  std::atomic<int> completed{0};
  try {
    pool.run_indexed(kJobs, [&](std::size_t i) {
      completed.fetch_add(1);
      throw std::runtime_error(std::to_string(i));
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    // Every job throws, so job 0's exception must be the one rethrown —
    // regardless of which worker ran it or in what order jobs finished.
    EXPECT_STREQ(e.what(), "0");
  }
  EXPECT_EQ(completed.load(), static_cast<int>(kJobs));  // remaining jobs still ran
}

TEST(ThreadPoolTest, PoolIsReusableAfterAnException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.run_indexed(8, [](std::size_t) { throw std::runtime_error("boom"); }),
      std::runtime_error);
  std::atomic<int> sum{0};
  pool.run_indexed(10, [&](std::size_t i) { sum.fetch_add(static_cast<int>(i)); });
  EXPECT_EQ(sum.load(), 45);
}

// Regression: a worker that joined batch N late must never claim an index
// from batch N+1 while still holding batch N's job pointer. Hammering many
// small back-to-back batches makes that window wide enough to catch under
// the sanitizers.
TEST(ThreadPoolTest, RapidSequentialBatchesStaySound) {
  ThreadPool pool(8);
  for (int batch = 0; batch < 200; ++batch) {
    std::vector<int> results(3, -1);
    pool.run_indexed(results.size(),
                     [&](std::size_t i) { results[i] = batch; });
    for (const int r : results) ASSERT_EQ(r, batch);
  }
}

TEST(ThreadPoolTest, DestructionWithoutWorkIsClean) {
  for (int i = 0; i < 8; ++i) {
    ThreadPool pool(4);  // spawn and join idle workers repeatedly
  }
}

TEST(ThreadPoolTest, SingleThreadPoolStillCompletes) {
  ThreadPool pool(1);
  std::vector<std::size_t> order;
  pool.run_indexed(5, [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, HardwareJobsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_jobs(), 1u);
}

}  // namespace
}  // namespace datastage
