#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace datastage {
namespace {

TEST(AccumulatorTest, SingleValue) {
  Accumulator acc;
  acc.add(5.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), 5.0);
  EXPECT_DOUBLE_EQ(acc.max(), 5.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 5.0);
}

TEST(AccumulatorTest, KnownSample) {
  // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, sample variance 32/7.
  Accumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(acc.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(AccumulatorTest, NegativeValues) {
  Accumulator acc;
  acc.add(-3.0);
  acc.add(3.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.min(), -3.0);
  EXPECT_DOUBLE_EQ(acc.max(), 3.0);
}

TEST(AccumulatorTest, NumericallyStableAroundLargeOffset) {
  // Welford's method must not catastrophically cancel.
  Accumulator acc;
  const double offset = 1e12;
  for (const double x : {offset + 1.0, offset + 2.0, offset + 3.0}) acc.add(x);
  EXPECT_NEAR(acc.mean(), offset + 2.0, 1e-3);
  EXPECT_NEAR(acc.variance(), 1.0, 1e-6);
}

TEST(PercentileTest, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(PercentileTest, EndpointsAndMedian) {
  const std::vector<double> v{4.0, 1.0, 3.0, 2.0};  // unsorted on purpose
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(v, 50.0), 2.5);  // interpolated median
}

TEST(PercentileTest, Interpolation) {
  const std::vector<double> v{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(v, 25.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(v, 75.0), 7.5);
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(3.14159, 0), "3");
  EXPECT_EQ(format_double(-1.5, 1), "-1.5");
  EXPECT_EQ(format_double(2.0), "2.00");  // default precision 2
}

}  // namespace
}  // namespace datastage
