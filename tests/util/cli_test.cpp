#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace datastage {
namespace {

bool parse(CliFlags& flags, std::vector<const char*> argv,
           std::vector<std::string> known) {
  argv.insert(argv.begin(), "prog");
  return flags.parse(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(CliFlagsTest, EqualsSyntax) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--cases=12", "--name=hello"}, {"cases", "name"}));
  EXPECT_EQ(flags.get_int("cases", 0), 12);
  EXPECT_EQ(flags.get_string("name", ""), "hello");
}

TEST(CliFlagsTest, SpaceSyntax) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--cases", "7"}, {"cases"}));
  EXPECT_EQ(flags.get_int("cases", 0), 7);
}

TEST(CliFlagsTest, BareBooleanFlag) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--verbose"}, {"verbose"}));
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_TRUE(flags.has("verbose"));
  EXPECT_FALSE(flags.has("other"));
}

TEST(CliFlagsTest, BooleanBeforeAnotherFlagStaysBoolean) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--verbose", "--cases=3"}, {"verbose", "cases"}));
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_int("cases", 0), 3);
}

TEST(CliFlagsTest, UnknownFlagFails) {
  CliFlags flags;
  EXPECT_FALSE(parse(flags, {"--bogus=1"}, {"cases"}));
}

TEST(CliFlagsTest, PositionalArguments) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"input.txt", "--cases=1", "more"}, {"cases"}));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "more");
}

TEST(CliFlagsTest, FallbacksWhenAbsent) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {}, {"cases"}));
  EXPECT_EQ(flags.get_int("cases", 42), 42);
  EXPECT_EQ(flags.get_string("cases", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(flags.get_double("cases", 1.5), 1.5);
  EXPECT_TRUE(flags.get_bool("cases", true));
}

TEST(CliFlagsTest, DoubleParsing) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--ratio=-2.5"}, {"ratio"}));
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 0.0), -2.5);
}

TEST(CliFlagsTest, BoolValueVariants) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--a=true", "--b=1", "--c=yes", "--d=no"},
                    {"a", "b", "c", "d"}));
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_TRUE(flags.get_bool("b", false));
  EXPECT_TRUE(flags.get_bool("c", false));
  EXPECT_FALSE(flags.get_bool("d", true));
}

}  // namespace
}  // namespace datastage
