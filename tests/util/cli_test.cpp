#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

namespace datastage {
namespace {

bool parse(CliFlags& flags, std::vector<const char*> argv,
           std::vector<std::string> known) {
  argv.insert(argv.begin(), "prog");
  return flags.parse(static_cast<int>(argv.size()), argv.data(), known);
}

TEST(CliFlagsTest, EqualsSyntax) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--cases=12", "--name=hello"}, {"cases", "name"}));
  EXPECT_EQ(flags.get_int("cases", 0), 12);
  EXPECT_EQ(flags.get_string("name", ""), "hello");
}

TEST(CliFlagsTest, SpaceSyntax) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--cases", "7"}, {"cases"}));
  EXPECT_EQ(flags.get_int("cases", 0), 7);
}

TEST(CliFlagsTest, BareBooleanFlag) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--verbose"}, {"verbose"}));
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_TRUE(flags.has("verbose"));
  EXPECT_FALSE(flags.has("other"));
}

TEST(CliFlagsTest, BooleanBeforeAnotherFlagStaysBoolean) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--verbose", "--cases=3"}, {"verbose", "cases"}));
  EXPECT_TRUE(flags.get_bool("verbose", false));
  EXPECT_EQ(flags.get_int("cases", 0), 3);
}

TEST(CliFlagsTest, UnknownFlagFails) {
  CliFlags flags;
  EXPECT_FALSE(parse(flags, {"--bogus=1"}, {"cases"}));
}

TEST(CliFlagsTest, PositionalArguments) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"input.txt", "--cases=1", "more"}, {"cases"}));
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.txt");
  EXPECT_EQ(flags.positional()[1], "more");
}

TEST(CliFlagsTest, FallbacksWhenAbsent) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {}, {"cases"}));
  EXPECT_EQ(flags.get_int("cases", 42), 42);
  EXPECT_EQ(flags.get_string("cases", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(flags.get_double("cases", 1.5), 1.5);
  EXPECT_TRUE(flags.get_bool("cases", true));
}

TEST(CliFlagsTest, DoubleParsing) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--ratio=-2.5"}, {"ratio"}));
  EXPECT_DOUBLE_EQ(flags.get_double("ratio", 0.0), -2.5);
}

TEST(CliFlagsTest, IntParsingAcceptsFullRange) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags,
                    {"--lo=-9223372036854775808", "--hi=9223372036854775807", "--z=0"},
                    {"lo", "hi", "z"}));
  EXPECT_EQ(flags.get_int("lo", 0), std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(flags.get_int("hi", 0), std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(flags.get_int("z", 7), 0);
}

TEST(CliFlagsDeathTest, TrailingJunkOnIntExits) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--jobs=8x"}, {"jobs"}));
  EXPECT_EXIT(flags.get_int("jobs", 1), testing::ExitedWithCode(2),
              "invalid value for --jobs: '8x' \\(expected an integer\\)");
}

TEST(CliFlagsDeathTest, NonNumericIntExits) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--seed=abc"}, {"seed"}));
  EXPECT_EXIT(flags.get_int("seed", 0), testing::ExitedWithCode(2),
              "invalid value for --seed: 'abc' \\(expected an integer\\)");
}

TEST(CliFlagsDeathTest, ValuelessNumericFlagExits) {
  // `--cases` with no value parses as boolean "true", which is not a number.
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--cases"}, {"cases"}));
  EXPECT_EXIT(flags.get_int("cases", 3), testing::ExitedWithCode(2),
              "invalid value for --cases: 'true' \\(expected an integer\\)");
}

TEST(CliFlagsDeathTest, IntOverflowExits) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--cases=99999999999999999999"}, {"cases"}));
  EXPECT_EXIT(flags.get_int("cases", 0), testing::ExitedWithCode(2),
              "invalid value for --cases: '99999999999999999999' "
              "\\(out of range for an integer\\)");
}

TEST(CliFlagsDeathTest, FloatValueForIntExits) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--jobs=2.5"}, {"jobs"}));
  EXPECT_EXIT(flags.get_int("jobs", 1), testing::ExitedWithCode(2),
              "expected an integer");
}

TEST(CliFlagsDeathTest, TrailingJunkOnDoubleExits) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--ratio=1.5e"}, {"ratio"}));
  EXPECT_EXIT(flags.get_double("ratio", 0.0), testing::ExitedWithCode(2),
              "invalid value for --ratio: '1.5e' \\(expected a number\\)");
}

TEST(CliFlagsDeathTest, NonNumericDoubleExits) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--ratio=fast"}, {"ratio"}));
  EXPECT_EXIT(flags.get_double("ratio", 0.0), testing::ExitedWithCode(2),
              "invalid value for --ratio: 'fast' \\(expected a number\\)");
}

TEST(CliFlagsDeathTest, DoubleOverflowExits) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--ratio=1e999"}, {"ratio"}));
  EXPECT_EXIT(flags.get_double("ratio", 0.0), testing::ExitedWithCode(2),
              "out of range for a number");
}

TEST(CliFlagsDeathTest, LeadingWhitespaceRejected) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--cases= 5"}, {"cases"}));
  EXPECT_EXIT(flags.get_int("cases", 0), testing::ExitedWithCode(2),
              "expected an integer");
}

TEST(CliFlagsTest, BoolValueVariants) {
  CliFlags flags;
  ASSERT_TRUE(parse(flags, {"--a=true", "--b=1", "--c=yes", "--d=no"},
                    {"a", "b", "c", "d"}));
  EXPECT_TRUE(flags.get_bool("a", false));
  EXPECT_TRUE(flags.get_bool("b", false));
  EXPECT_TRUE(flags.get_bool("c", false));
  EXPECT_FALSE(flags.get_bool("d", true));
}

}  // namespace
}  // namespace datastage
