#include "util/time.hpp"

#include <gtest/gtest.h>

namespace datastage {
namespace {

TEST(SimDurationTest, NamedConstructorsAgree) {
  EXPECT_EQ(SimDuration::seconds(1).usec(), 1'000'000);
  EXPECT_EQ(SimDuration::milliseconds(1).usec(), 1'000);
  EXPECT_EQ(SimDuration::minutes(2), SimDuration::seconds(120));
  EXPECT_EQ(SimDuration::hours(1), SimDuration::minutes(60));
}

TEST(SimDurationTest, Arithmetic) {
  const SimDuration a = SimDuration::seconds(90);
  const SimDuration b = SimDuration::seconds(30);
  EXPECT_EQ(a + b, SimDuration::minutes(2));
  EXPECT_EQ(a - b, SimDuration::minutes(1));
  EXPECT_EQ(-b, SimDuration::seconds(-30));
  EXPECT_EQ(b * 4, SimDuration::minutes(2));
  EXPECT_EQ(a / 3, SimDuration::seconds(30));
}

TEST(SimTimeTest, PointDurationAlgebra) {
  const SimTime t = SimTime::zero() + SimDuration::minutes(10);
  EXPECT_EQ((t + SimDuration::minutes(5)) - t, SimDuration::minutes(5));
  EXPECT_EQ(t - SimDuration::minutes(10), SimTime::zero());
  EXPECT_LT(SimTime::zero(), t);
  EXPECT_LT(t, SimTime::infinity());
}

TEST(SimTimeTest, InfinityIsSticky) {
  EXPECT_TRUE(SimTime::infinity().is_infinite());
  EXPECT_TRUE((SimTime::infinity() + SimDuration::hours(1000)).is_infinite());
  EXPECT_FALSE(SimTime::zero().is_infinite());
}

TEST(SimTimeTest, MinMax) {
  const SimTime a = SimTime::from_usec(5);
  const SimTime b = SimTime::from_usec(9);
  EXPECT_EQ(min(a, b), a);
  EXPECT_EQ(max(a, b), b);
}

TEST(SimTimeTest, ToStringFormatsHMS) {
  const SimTime t = SimTime::zero() + SimDuration::hours(1) +
                    SimDuration::minutes(2) + SimDuration::seconds(3) +
                    SimDuration::milliseconds(45);
  EXPECT_EQ(t.to_string(), "01:02:03.045");
  EXPECT_EQ(SimTime::infinity().to_string(), "inf");
}

TEST(TransferDurationTest, ExactDivision) {
  // 1000 bytes = 8000 bits over 8000 bits/s -> exactly 1 second.
  EXPECT_EQ(transfer_duration(1000, 8000), SimDuration::seconds(1));
}

TEST(TransferDurationTest, RoundsUp) {
  // 1 byte = 8 bits over 3 bits/s -> ceil(8/3 * 1e6) usec.
  EXPECT_EQ(transfer_duration(1, 3).usec(), (8 * 1'000'000 + 2) / 3);
}

TEST(TransferDurationTest, ZeroBytesIsInstant) {
  EXPECT_EQ(transfer_duration(0, 1000), SimDuration::zero());
}

TEST(TransferDurationTest, PaperScaleValues) {
  // 100 MB over 10 Kbit/s: the oversubscription extreme of §5.3 — far beyond
  // any deadline (~22.2 hours).
  const SimDuration d = transfer_duration(100 * 1024 * 1024, 10'000);
  EXPECT_GT(d, SimDuration::hours(22));
  EXPECT_LT(d, SimDuration::hours(24));
  // 10 KB over 1.5 Mbit/s: the fast extreme (~55 ms).
  const SimDuration f = transfer_duration(10 * 1024, 1'500'000);
  EXPECT_GT(f, SimDuration::milliseconds(50));
  EXPECT_LT(f, SimDuration::milliseconds(60));
}

}  // namespace
}  // namespace datastage
