#include "util/table.hpp"

#include <gtest/gtest.h>

namespace datastage {
namespace {

TEST(TableTest, TextRenderingAlignsColumns) {
  Table table({"name", "v"});
  table.add_row({"a", "1"});
  table.add_row({"longer", "22"});
  const std::string text = table.to_text();
  EXPECT_EQ(text,
            "| name   | v  |\n"
            "|--------|----|\n"
            "| a      | 1  |\n"
            "| longer | 22 |\n");
}

TEST(TableTest, HeaderWiderThanCells) {
  Table table({"wide-header"});
  table.add_row({"x"});
  EXPECT_EQ(table.to_text(),
            "| wide-header |\n"
            "|-------------|\n"
            "| x           |\n");
}

TEST(TableTest, CsvPlainFields) {
  Table table({"a", "b"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "a,b\n1,2\n");
}

TEST(TableTest, CsvEscapesSpecialCharacters) {
  Table table({"field"});
  table.add_row({"with,comma"});
  table.add_row({"with\"quote"});
  table.add_row({"with\nnewline"});
  EXPECT_EQ(table.to_csv(),
            "field\n\"with,comma\"\n\"with\"\"quote\"\n\"with\nnewline\"\n");
}

TEST(TableTest, RowCount) {
  Table table({"x"});
  EXPECT_EQ(table.rows(), 0u);
  table.add_row({"1"});
  table.add_row({"2"});
  EXPECT_EQ(table.rows(), 2u);
}

TEST(TableDeathTest, MismatchedRowWidthAborts) {
  Table table({"a", "b"});
  EXPECT_DEATH(table.add_row({"only-one"}), "width");
}

}  // namespace
}  // namespace datastage
