// Death-behavior coverage for the invariant-checking macros. These are kept
// enabled in release builds (see util/assert.hpp), so the exact abort
// behavior and diagnostic text are part of the library's contract.
#include "util/assert.hpp"

#include <gtest/gtest.h>

namespace datastage {
namespace {

TEST(AssertTest, PassingAssertIsSilent) {
  DS_ASSERT(1 + 1 == 2);
  DS_ASSERT_MSG(2 * 2 == 4, "arithmetic still works");
}

TEST(AssertTest, AssertEvaluatesExpressionExactlyOnce) {
  int calls = 0;
  DS_ASSERT([&] {
    ++calls;
    return true;
  }());
  EXPECT_EQ(calls, 1);
}

TEST(AssertDeathTest, FailingAssertAbortsWithExpression) {
  EXPECT_DEATH(DS_ASSERT(1 == 2),
               "datastage assertion failed: 1 == 2\n  at .*assert_test\\.cpp");
}

TEST(AssertDeathTest, FailingAssertMsgAbortsWithMessage) {
  EXPECT_DEATH(DS_ASSERT_MSG(false, "the schedule would be corrupt"),
               "datastage assertion failed: false\n"
               "  at .*assert_test\\.cpp:[0-9]+\n"
               "  the schedule would be corrupt");
}

TEST(AssertDeathTest, UnreachableAbortsWithMessage) {
  EXPECT_DEATH(DS_UNREACHABLE("bad enum value"),
               "datastage assertion failed: unreachable\n"
               "  at .*assert_test\\.cpp:[0-9]+\n"
               "  bad enum value");
}

TEST(AssertDeathTest, SideEffectsBeforeFailureAreVisible) {
  // The failure path goes through abort(), not exceptions: stderr written
  // before the failing check must still be flushed.
  EXPECT_DEATH(
      {
        std::fprintf(stderr, "about to fail\n");
        DS_ASSERT_MSG(false, "after side effect");
      },
      "about to fail\n.*after side effect");
}

}  // namespace
}  // namespace datastage
