#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <numeric>
#include <set>
#include <vector>

namespace datastage {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.next_u64() != b.next_u64()) ++differences;
  }
  EXPECT_GT(differences, 12);
}

TEST(RngTest, ZeroSeedWorks) {
  Rng rng(0);
  const std::uint64_t v1 = rng.next_u64();
  const std::uint64_t v2 = rng.next_u64();
  EXPECT_NE(v1, v2);
}

TEST(RngTest, UniformI64RespectsBoundsInclusive) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_i64(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit
}

TEST(RngTest, UniformI64DegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_i64(5, 5), 5);
}

TEST(RngTest, UniformI64IsRoughlyUniform) {
  Rng rng(123);
  std::array<int, 10> buckets{};
  constexpr int kDraws = 100'000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[static_cast<std::size_t>(rng.uniform_i64(0, 9))];
  }
  for (const int count : buckets) {
    EXPECT_GT(count, kDraws / 10 - 1000);
    EXPECT_LT(count, kDraws / 10 + 1000);
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(99);
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.uniform_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, UniformDurationWithinBounds) {
  Rng rng(11);
  const SimDuration lo = SimDuration::seconds(10);
  const SimDuration hi = SimDuration::seconds(20);
  for (int i = 0; i < 100; ++i) {
    const SimDuration d = rng.uniform_duration(lo, hi);
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
}

TEST(RngTest, PickReturnsMembers) {
  Rng rng(3);
  const std::vector<int> options{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(rng.pick(std::span<const int>(options)));
  }
  EXPECT_EQ(seen, (std::set<int>{10, 20, 30}));
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(17);
  std::vector<int> v(32);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // 1/32! chance of identity — effectively never
}

TEST(RngTest, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent1(42);
  Rng parent2(42);
  Rng child1 = parent1.split();
  Rng child2 = parent2.split();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(child1.next_u64(), child2.next_u64());
  // Child diverges from a fresh parent stream.
  Rng parent3(42);
  Rng child3 = parent3.split();
  int same = 0;
  for (int i = 0; i < 16; ++i) {
    if (child3.next_u64() == parent3.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, KeyedSplitIsDeterministicAndKeyed) {
  const Rng parent(42);
  Rng a = parent.split(7);
  Rng b = parent.split(7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());

  Rng c = parent.split(8);
  int same = 0;
  Rng d = parent.split(7);
  for (int i = 0; i < 16; ++i) {
    if (c.next_u64() == d.next_u64()) ++same;
  }
  EXPECT_LT(same, 4);  // different stream ids diverge
}

TEST(RngTest, KeyedSplitDoesNotAdvanceTheParent) {
  Rng parent(42);
  Rng witness(42);
  (void)parent.split(3);
  (void)parent.split(1000);
  // Unlike the advancing split(), keyed splits leave the parent stream
  // untouched — the property the parallel executor's determinism rests on.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(parent.next_u64(), witness.next_u64());
}

TEST(RngTest, KeyedSplitIsOrderIndependent) {
  const Rng parent(2000);
  Rng low_first = parent.split(1);
  (void)parent.split(9);
  Rng high_first = parent.split(1);  // derived after an unrelated split
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(low_first.next_u64(), high_first.next_u64());
  }
}

TEST(RngTest, KeyedSplitChainsDistinctly) {
  // Nested derivations (base seed -> stream tag -> case index) must stay
  // distinct across cases: the harness baselines use exactly this shape.
  const Rng root(2000);
  std::set<std::uint64_t> firsts;
  for (std::uint64_t tag : {0ULL, 1ULL, 0xd1b54a32d192ed03ULL}) {
    for (std::uint64_t i = 0; i < 8; ++i) {
      Rng child = root.split(tag).split(i);
      firsts.insert(child.next_u64());
    }
  }
  EXPECT_EQ(firsts.size(), 24u);
}

// Reference vector: xoshiro256++ seeded via SplitMix64(1). Locks the stream
// against accidental algorithm changes — every experiment in EXPERIMENTS.md
// depends on this exact sequence.
TEST(RngTest, StreamIsStableAcrossReleases) {
  Rng rng(1);
  const std::uint64_t v0 = rng.next_u64();
  const std::uint64_t v1 = rng.next_u64();
  Rng again(1);
  EXPECT_EQ(again.next_u64(), v0);
  EXPECT_EQ(again.next_u64(), v1);
  EXPECT_NE(v0, v1);
}

}  // namespace
}  // namespace datastage
