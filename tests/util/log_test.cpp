#include "util/log.hpp"

#include <gtest/gtest.h>

namespace datastage {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, DefaultLevelIsWarn) {
  // Other tests may have changed it; this asserts the documented default via
  // a fresh set/reset rather than global state.
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(LogTest, LevelThresholdFilters) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Messages below the threshold are dropped silently; messages at or above
  // are emitted to stderr. The functional contract here is that neither path
  // crashes and the threshold is observable.
  ::testing::internal::CaptureStderr();
  log_debug("dropped");
  log_info("dropped");
  log_warn("dropped");
  log_error("emitted");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("dropped"), std::string::npos);
  EXPECT_NE(err.find("emitted"), std::string::npos);
  EXPECT_NE(err.find("[ERROR]"), std::string::npos);
}

TEST(LogTest, OffSilencesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  log_error("nope");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(LogTest, DebugLevelEmitsAll) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  log_debug("a");
  log_info("b");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[DEBUG] a"), std::string::npos);
  EXPECT_NE(err.find("[INFO] b"), std::string::npos);
}

TEST(LogTest, LogEnabledMatchesThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kDebug));
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  EXPECT_TRUE(log_enabled(LogLevel::kError));
  set_log_level(LogLevel::kOff);
  EXPECT_FALSE(log_enabled(LogLevel::kError));
}

TEST(LogTest, LazyCallableNotInvokedBelowThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  int calls = 0;
  log_debug([&calls] {
    ++calls;
    return std::string("expensive debug message");
  });
  log_info([&calls] {
    ++calls;
    return std::string("expensive info message");
  });
  EXPECT_EQ(calls, 0);
}

TEST(LogTest, LazyCallableInvokedAtOrAboveThreshold) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  int calls = 0;
  ::testing::internal::CaptureStderr();
  log_info([&calls] {
    ++calls;
    return std::string("built lazily");
  });
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(calls, 1);
  EXPECT_NE(err.find("[INFO] built lazily"), std::string::npos);
}

TEST(LogTest, EmissionCountersCountOnlyEmittedWarningsAndErrors) {
  LogLevelGuard guard;
  reset_log_emission_counts();
  EXPECT_EQ(log_warnings_emitted(), 0u);
  EXPECT_EQ(log_errors_emitted(), 0u);

  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  log_warn("w1");
  log_warn([] { return std::string("w2"); });
  log_error("e1");
  log_info("suppressed: below threshold, not counted");
  set_log_level(LogLevel::kOff);
  log_warn("suppressed: level off, not counted");
  log_error("suppressed: level off, not counted");
  ::testing::internal::GetCapturedStderr();

  EXPECT_EQ(log_warnings_emitted(), 2u);
  EXPECT_EQ(log_errors_emitted(), 1u);

  reset_log_emission_counts();
  EXPECT_EQ(log_warnings_emitted(), 0u);
  EXPECT_EQ(log_errors_emitted(), 0u);
}

}  // namespace
}  // namespace datastage
