#include "util/log.hpp"

#include <gtest/gtest.h>

namespace datastage {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(LogTest, DefaultLevelIsWarn) {
  // Other tests may have changed it; this asserts the documented default via
  // a fresh set/reset rather than global state.
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

TEST(LogTest, LevelThresholdFilters) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kError);
  // Messages below the threshold are dropped silently; messages at or above
  // are emitted to stderr. The functional contract here is that neither path
  // crashes and the threshold is observable.
  ::testing::internal::CaptureStderr();
  log_debug("dropped");
  log_info("dropped");
  log_warn("dropped");
  log_error("emitted");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("dropped"), std::string::npos);
  EXPECT_NE(err.find("emitted"), std::string::npos);
  EXPECT_NE(err.find("[ERROR]"), std::string::npos);
}

TEST(LogTest, OffSilencesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  log_error("nope");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(LogTest, DebugLevelEmitsAll) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  log_debug("a");
  log_info("b");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("[DEBUG] a"), std::string::npos);
  EXPECT_NE(err.find("[INFO] b"), std::string::npos);
}

}  // namespace
}  // namespace datastage
