#include "core/exact.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/registry.hpp"
#include "gen/generator.hpp"
#include "sim/simulator.hpp"
#include "testing/builders.hpp"

namespace datastage {
namespace {

using testing::at_min;
using testing::at_sec;
using testing::ScenarioBuilder;

constexpr std::int64_t kGB = 1 << 30;
const Interval kAlways{SimTime::zero(), at_min(120)};

TEST(ExhaustiveSearchTest, TrivialChainIsSolvedExactly) {
  const Scenario s = testing::chain_scenario();
  const SearchReport report = exhaustive_step_search(s);
  EXPECT_TRUE(report.complete);
  EXPECT_DOUBLE_EQ(report.best_value, 100.0);
  EXPECT_TRUE(report.best.outcomes[0][0].satisfied);
  EXPECT_EQ(report.best.schedule.size(), 2u);
}

TEST(ExhaustiveSearchTest, EmptyFrontierYieldsZero) {
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB)
                         .link(0, 1, 10'000, kAlways)
                         .item(100 * 1024 * 1024)  // hopeless
                         .source(0, SimTime::zero())
                         .request(1, at_min(30))
                         .build();
  const SearchReport report = exhaustive_step_search(s);
  EXPECT_TRUE(report.complete);
  EXPECT_DOUBLE_EQ(report.best_value, 0.0);
  EXPECT_TRUE(report.best.schedule.empty());
}

TEST(ExhaustiveSearchTest, FindsSacrificeThatGreedyPriorityMisses) {
  // One window fits exactly one 1 s transfer. A single high request competes
  // with two medium requests behind parallel links. With 1,10,100 weights
  // the two mediums (20) beat the high (hmm: high=100 > 20) — flip: use one
  // medium vs two low? medium=10 vs two lows=2: medium wins. Use weights
  // where the pair wins: two mediums (2x10=20) vs one... Use 1,5,10: two
  // mediums = 10 equals one high = 10. Instead: three lows on parallel links
  // vs one medium on the contended link under 1,5,10: 3 > 5? No.
  // Simplest crisp case: one link, two items, equal priority, but item A's
  // transfer occupies the whole window while two item-B transfers (smaller)
  // both fit. Exhaustive must pick the two smaller ones.
  const Scenario s =
      ScenarioBuilder()
          .machine(kGB).machine(kGB)
          // Window fits 2.2 s of traffic.
          .link(0, 1, 8'000'000,
                Interval{SimTime::zero(), at_sec(2) + SimDuration::milliseconds(200)})
          .item(2'000'000)  // 2 s transfer: leaves no room for the others
          .source(0, SimTime::zero())
          .request(1, at_sec(3), kPriorityHigh)
          .item(1'000'000)  // 1 s
          .source(0, SimTime::zero())
          .request(1, at_sec(3), kPriorityHigh)
          .item(1'000'000)  // 1 s
          .source(0, SimTime::zero())
          .request(1, at_sec(3), kPriorityHigh)
          .build();
  const SearchReport report = exhaustive_step_search(s);
  EXPECT_TRUE(report.complete);
  // Two 1 s transfers (200) beat the single 2 s transfer (100).
  EXPECT_DOUBLE_EQ(report.best_value, 200.0);
}

TEST(ExhaustiveSearchTest, EnvelopeDominatesEveryHeuristicPair) {
  GeneratorConfig config;
  config.min_machines = 6;
  config.max_machines = 6;
  config.min_out_degree = 2;
  config.max_out_degree = 3;
  config.min_requests_per_machine = 1;
  config.max_requests_per_machine = 1;  // ~6 requests: tiny
  Rng rng(2024);
  const Scenario s = generate_scenario(config, rng);
  const PriorityWeighting weighting = PriorityWeighting::w_1_10_100();

  SearchOptions options;
  options.weighting = weighting;
  const SearchReport report = exhaustive_step_search(s, options);
  ASSERT_TRUE(report.complete);

  // The envelope's own schedule must replay cleanly and match its value.
  const SimReport replay = simulate(s, report.best.schedule);
  ASSERT_TRUE(replay.ok) << replay.issues.front();
  EXPECT_DOUBLE_EQ(weighted_value(s, weighting, replay.outcomes),
                   report.best_value);

  // No heuristic/criterion pair may beat the exhaustive envelope, and the
  // envelope may not beat possible_satisfy.
  const BoundsReport bounds = compute_bounds(s, weighting);
  EXPECT_LE(report.best_value, bounds.possible_satisfy + 1e-9);
  for (const SchedulerSpec& spec : paper_pairs()) {
    for (const double ratio : {-1.0, 1.0, 3.0}) {
      EngineOptions engine_options;
      engine_options.weighting = weighting;
      engine_options.eu = EUWeights::from_log10_ratio(ratio);
      const StagingResult result = run_spec(spec, s, engine_options);
      EXPECT_LE(weighted_value(s, weighting, result.outcomes),
                report.best_value + 1e-9)
          << spec.name() << " at ratio " << ratio;
    }
  }
}

TEST(BeamSearchTest, SolvesTrivialChain) {
  const Scenario s = testing::chain_scenario();
  const StagingResult result = run_beam_search(s);
  EXPECT_TRUE(result.outcomes[0][0].satisfied);
  const SimReport replay = simulate(s, result.schedule);
  EXPECT_TRUE(replay.ok);
}

TEST(BeamSearchTest, FindsTheSacrificeGreedyValueMisses) {
  // Same fixture as the exhaustive test: two 1 s transfers beat one 2 s
  // transfer. A beam of width >= 2 must find the 200-value plan.
  const Scenario s =
      ScenarioBuilder()
          .machine(kGB).machine(kGB)
          .link(0, 1, 8'000'000,
                Interval{SimTime::zero(), at_sec(2) + SimDuration::milliseconds(200)})
          .item(2'000'000)
          .source(0, SimTime::zero())
          .request(1, at_sec(3), kPriorityHigh)
          .item(1'000'000)
          .source(0, SimTime::zero())
          .request(1, at_sec(3), kPriorityHigh)
          .item(1'000'000)
          .source(0, SimTime::zero())
          .request(1, at_sec(3), kPriorityHigh)
          .build();
  BeamOptions options;
  options.width = 3;
  const StagingResult result = run_beam_search(s, options);
  EXPECT_DOUBLE_EQ(
      weighted_value(s, PriorityWeighting::w_1_10_100(), result.outcomes), 200.0);
}

TEST(BeamSearchTest, DominatedByEnvelopeAndDominatesNothingInvalid) {
  GeneratorConfig config;
  config.min_machines = 6;
  config.max_machines = 6;
  config.min_out_degree = 2;
  config.max_out_degree = 3;
  config.min_requests_per_machine = 1;
  config.max_requests_per_machine = 1;
  Rng rng(77);
  const Scenario s = generate_scenario(config, rng);
  const PriorityWeighting weighting = PriorityWeighting::w_1_10_100();

  SearchOptions exhaustive_options;
  exhaustive_options.weighting = weighting;
  const SearchReport envelope = exhaustive_step_search(s, exhaustive_options);
  ASSERT_TRUE(envelope.complete);

  BeamOptions beam_options;
  beam_options.weighting = weighting;
  beam_options.width = 4;
  const StagingResult beam = run_beam_search(s, beam_options);
  const double beam_value = weighted_value(s, weighting, beam.outcomes);
  EXPECT_LE(beam_value, envelope.best_value + 1e-9);

  const SimReport replay = simulate(s, beam.schedule);
  ASSERT_TRUE(replay.ok) << replay.issues.front();
  EXPECT_EQ(replay.outcomes, beam.outcomes);
}

TEST(BeamSearchTest, WiderBeamsNeverScoreWorseOnAverage) {
  // Not guaranteed per instance (beam search is not monotone in width), but
  // over a handful of seeds the totals must be nondecreasing enough that a
  // width-4 beam never loses to width-1 overall.
  const PriorityWeighting weighting = PriorityWeighting::w_1_10_100();
  double narrow_total = 0.0;
  double wide_total = 0.0;
  for (std::uint64_t seed = 50; seed < 54; ++seed) {
    GeneratorConfig config;
    config.min_machines = 6;
    config.max_machines = 6;
    config.min_out_degree = 2;
    config.max_out_degree = 2;
    config.min_requests_per_machine = 1;
    config.max_requests_per_machine = 2;
    Rng rng(seed);
    const Scenario s = generate_scenario(config, rng);
    BeamOptions narrow;
    narrow.width = 1;
    BeamOptions wide;
    wide.width = 4;
    narrow_total += weighted_value(s, weighting, run_beam_search(s, narrow).outcomes);
    wide_total += weighted_value(s, weighting, run_beam_search(s, wide).outcomes);
  }
  EXPECT_GE(wide_total, narrow_total);
}

TEST(ExhaustiveSearchTest, NodeCapTruncatesButStaysValid) {
  GeneratorConfig config;
  config.min_machines = 8;
  config.max_machines = 8;
  config.min_requests_per_machine = 3;
  config.max_requests_per_machine = 3;
  Rng rng(7);
  const Scenario s = generate_scenario(config, rng);

  SearchOptions options;
  options.max_nodes = 50;  // far too small to finish
  const SearchReport report = exhaustive_step_search(s, options);
  EXPECT_FALSE(report.complete);
  EXPECT_EQ(report.nodes, 50u);
  const SimReport replay = simulate(s, report.best.schedule);
  EXPECT_TRUE(replay.ok);
}

}  // namespace
}  // namespace datastage
