// Property-style parameterized sweeps over the cost criteria: structural
// guarantees that must hold for ANY destination evaluations, checked over
// randomized inputs for every criterion.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/cost.hpp"
#include "util/rng.hpp"

namespace datastage {
namespace {

constexpr double kWeightChoices[] = {1.0, 5.0, 10.0, 100.0};

std::vector<DestinationEval> random_evals(Rng& rng, std::size_t n,
                                          bool force_one_sat = true) {
  std::vector<DestinationEval> evals;
  for (std::size_t i = 0; i < n; ++i) {
    DestinationEval e;
    e.k = static_cast<std::int32_t>(i);
    e.sat = rng.bernoulli(0.7) || (force_one_sat && i == 0);
    e.weight = rng.pick(std::span<const double>(kWeightChoices));
    e.slack_seconds = e.sat ? rng.uniform_double() * 3600.0 : 0.0;
    e.deadline_seconds = 60.0 + rng.uniform_double() * 7200.0;
    evals.push_back(e);
  }
  return evals;
}

class CriterionPropertyTest : public ::testing::TestWithParam<CostCriterion> {};

// Raising the priority weight of a satisfiable destination never increases
// the cost (the step never becomes less attractive). EDF ignores priority
// entirely, so there the cost must be unchanged.
TEST_P(CriterionPropertyTest, MonotoneInPriorityWeight) {
  Rng rng(42 + static_cast<std::uint64_t>(GetParam()));
  const bool per_dest = is_per_destination(GetParam());
  const EUWeights eu{2.0, 1.0};
  for (int trial = 0; trial < 200; ++trial) {
    auto evals = random_evals(rng, per_dest ? 1 : 4);
    const double before = evaluate_cost(GetParam(), eu, evals);
    // Boost a satisfiable destination's weight.
    for (DestinationEval& e : evals) {
      if (e.sat) {
        e.weight *= 10.0;
        break;
      }
    }
    const double after = evaluate_cost(GetParam(), eu, evals);
    if (GetParam() == CostCriterion::kEdf) {
      EXPECT_DOUBLE_EQ(after, before);
    } else {
      EXPECT_LE(after, before) << "trial " << trial;
    }
  }
}

// Flipping a destination from unsatisfiable to satisfiable never increases
// the cost: serving more is never worse. (Exception: C4's summed urgency
// rewards the flip only net of the new slack term — the paper's formula
// indeed allows a satisfiable-but-very-loose destination to make a step less
// attractive, so C4 is exempted; see EXPERIMENTS.md D1.)
TEST_P(CriterionPropertyTest, SatisfiabilityFlipNeverHurtsExceptC4) {
  if (GetParam() == CostCriterion::kC4) GTEST_SKIP();
  if (is_per_destination(GetParam())) GTEST_SKIP();  // group criteria only
  Rng rng(97 + static_cast<std::uint64_t>(GetParam()));
  const EUWeights eu{1.0, 1.0};
  for (int trial = 0; trial < 200; ++trial) {
    auto evals = random_evals(rng, 4);
    bool flipped = false;
    auto flipped_evals = evals;
    for (DestinationEval& e : flipped_evals) {
      if (!e.sat) {
        e.sat = true;
        e.slack_seconds = rng.uniform_double() * 600.0;
        flipped = true;
        break;
      }
    }
    if (!flipped) continue;
    EXPECT_LE(evaluate_cost(GetParam(), eu, flipped_evals),
              evaluate_cost(GetParam(), eu, evals))
        << "trial " << trial;
  }
}

// Costs must be finite for any input the engine can produce.
TEST_P(CriterionPropertyTest, AlwaysFinite) {
  Rng rng(7 + static_cast<std::uint64_t>(GetParam()));
  const bool per_dest = is_per_destination(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    auto evals = random_evals(rng, per_dest ? 1 : 5, /*force_one_sat=*/false);
    for (const EUWeights& eu :
         {EUWeights{1.0, 1.0}, EUWeights::priority_only(), EUWeights::urgency_only(),
          EUWeights::from_log10_ratio(5.0), EUWeights::from_log10_ratio(-3.0)}) {
      const double cost = evaluate_cost(GetParam(), eu, evals);
      EXPECT_TRUE(std::isfinite(cost)) << cost_name(GetParam());
    }
  }
}

// Duplicating the whole group must not change which of two groups is
// preferred under scale-invariant criteria... but C2's max-urgency and the
// per-destination criteria trivially hold too: we check the weaker, universal
// property that a duplicated group is never *worse* than the original for
// aggregate sums (C4, C3, C5: superadditive in destinations).
TEST_P(CriterionPropertyTest, DuplicatedDestinationsNeverWorseForSums) {
  const CostCriterion c = GetParam();
  if (c != CostCriterion::kC3 && c != CostCriterion::kC4 && c != CostCriterion::kC5) {
    GTEST_SKIP();
  }
  Rng rng(123);
  const EUWeights eu{1.0, 0.0};  // priority term only: slack duplication noise off
  for (int trial = 0; trial < 100; ++trial) {
    auto evals = random_evals(rng, 3);
    auto doubled = evals;
    doubled.insert(doubled.end(), evals.begin(), evals.end());
    EXPECT_LE(evaluate_cost(c, eu, doubled), evaluate_cost(c, eu, evals));
  }
}

INSTANTIATE_TEST_SUITE_P(AllCriteria, CriterionPropertyTest,
                         ::testing::Values(CostCriterion::kC1, CostCriterion::kC2,
                                           CostCriterion::kC3, CostCriterion::kC4,
                                           CostCriterion::kC5,
                                           CostCriterion::kPriorityOnly,
                                           CostCriterion::kEdf),
                         [](const ::testing::TestParamInfo<CostCriterion>& param_info) {
                           std::string name = cost_name(param_info.param);
                           for (char& ch : name) {
                             if (ch == '/' || ch == '-') ch = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace datastage
