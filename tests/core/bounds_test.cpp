#include "core/bounds.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace datastage {
namespace {

using testing::at_min;
using testing::ScenarioBuilder;

constexpr std::int64_t kGB = 1 << 30;
const Interval kAlways{SimTime::zero(), at_min(120)};

TEST(BoundsTest, UpperBoundSumsAllWeights) {
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB).machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .link(0, 2, 8'000'000, kAlways)
                         .item(1'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(10), kPriorityHigh)
                         .request(2, at_min(10), kPriorityLow)
                         .item(1'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(10), kPriorityMedium)
                         .build();
  const BoundsReport report =
      compute_bounds(s, PriorityWeighting::w_1_10_100());
  EXPECT_DOUBLE_EQ(report.upper_bound, 111.0);
  // Everything is trivially satisfiable alone.
  EXPECT_DOUBLE_EQ(report.possible_satisfy, 111.0);
}

TEST(BoundsTest, PossibleSatisfyExcludesHopelessRequests) {
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB)
                         .link(0, 1, 10'000, kAlways)  // 100 MB needs ~22 h
                         .item(100 * 1024 * 1024)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30), kPriorityHigh)
                         .item(10 * 1024)  // 10 KB: ~8 s, easily satisfiable
                         .source(0, SimTime::zero())
                         .request(1, at_min(30), kPriorityLow)
                         .build();
  const BoundsReport report =
      compute_bounds(s, PriorityWeighting::w_1_10_100());
  EXPECT_DOUBLE_EQ(report.upper_bound, 101.0);
  EXPECT_DOUBLE_EQ(report.possible_satisfy, 1.0);
  EXPECT_FALSE(report.alone_outcomes[0][0].satisfied);
  EXPECT_TRUE(report.alone_outcomes[1][0].satisfied);
}

TEST(BoundsTest, AloneOutcomesIgnoreCrossItemContention) {
  // Both items need the same link window that fits only one transfer; alone,
  // each is satisfiable — possible_satisfy counts both (that is what makes
  // it an upper bound, not an achievable schedule).
  const Scenario s =
      ScenarioBuilder()
          .machine(kGB).machine(kGB)
          .link(0, 1, 8'000'000,
                Interval{SimTime::zero(),
                         testing::at_sec(1) + SimDuration::milliseconds(500)})
          .item(1'000'000)
          .source(0, SimTime::zero())
          .request(1, testing::at_sec(2), kPriorityHigh)
          .item(1'000'000)
          .source(0, SimTime::zero())
          .request(1, testing::at_sec(2), kPriorityHigh)
          .build();
  const BoundsReport report =
      compute_bounds(s, PriorityWeighting::w_1_10_100());
  EXPECT_DOUBLE_EQ(report.possible_satisfy, 200.0);
}

TEST(BoundsTest, WeightingChangesValuesNotOutcomes) {
  const Scenario s = testing::chain_scenario();
  const BoundsReport a = compute_bounds(s, PriorityWeighting::w_1_10_100());
  const BoundsReport b = compute_bounds(s, PriorityWeighting::w_1_5_10());
  EXPECT_DOUBLE_EQ(a.upper_bound, 100.0);
  EXPECT_DOUBLE_EQ(b.upper_bound, 10.0);
  EXPECT_EQ(a.alone_outcomes, b.alone_outcomes);
}

}  // namespace
}  // namespace datastage
