#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace datastage {
namespace {

using testing::at_sec;

TEST(ScheduleTest, StartsEmpty) {
  const Schedule schedule;
  EXPECT_TRUE(schedule.empty());
  EXPECT_EQ(schedule.size(), 0u);
  EXPECT_EQ(schedule.total_link_time(), SimDuration::zero());
}

TEST(ScheduleTest, AccumulatesStepsInOrder) {
  Schedule schedule;
  schedule.add(CommStep{ItemId(0), MachineId(0), MachineId(1), VirtLinkId(0),
                        at_sec(5), at_sec(7)});
  schedule.add(CommStep{ItemId(1), MachineId(1), MachineId(2), VirtLinkId(1),
                        at_sec(0), at_sec(1)});
  ASSERT_EQ(schedule.size(), 2u);
  // Insertion order preserved (scheduling order, not time order).
  EXPECT_EQ(schedule.steps()[0].item, ItemId(0));
  EXPECT_EQ(schedule.steps()[1].item, ItemId(1));
  EXPECT_EQ(schedule.total_link_time(), SimDuration::seconds(3));
}

TEST(ScheduleTest, ToStringSortsByStartTime) {
  const Scenario s = testing::chain_scenario();
  Schedule schedule;
  schedule.add(CommStep{ItemId(0), MachineId(1), MachineId(2), VirtLinkId(1),
                        at_sec(1), at_sec(2)});
  schedule.add(CommStep{ItemId(0), MachineId(0), MachineId(1), VirtLinkId(0),
                        SimTime::zero(), at_sec(1)});
  const std::string text = schedule.to_string(s);
  EXPECT_LT(text.find("M0 => M1"), text.find("M1 => M2"));
  EXPECT_NE(text.find("d0"), std::string::npos);
  EXPECT_NE(text.find("vlink 0"), std::string::npos);
}

TEST(CommStepTest, Equality) {
  const CommStep a{ItemId(0), MachineId(0), MachineId(1), VirtLinkId(0),
                   SimTime::zero(), at_sec(1)};
  CommStep b = a;
  EXPECT_EQ(a, b);
  b.start = at_sec(1);
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace datastage
