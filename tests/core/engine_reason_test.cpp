// Request-lifecycle tracing: the engine must explain every unsatisfied
// request with a structured loss reason (no_feasible_route /
// deadline_infeasible / lost_tournament / not_scheduled) instead of silently
// dropping it, and must stamp satisfied requests with their arrival slack.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"
#include "testing/builders.hpp"

namespace datastage {
namespace {

using testing::at_min;
using testing::at_sec;
using testing::ScenarioBuilder;

constexpr std::int64_t kGB = 1 << 30;
const Interval kAlways{SimTime::zero(), at_min(120)};

struct TracedRun {
  StagingResult result;
  std::vector<obs::TraceEvent> events;
  obs::MetricsRegistry registry;
};

TracedRun traced_run(const Scenario& s) {
  TracedRun run;
  std::ostringstream trace_out;
  obs::RunTrace trace(trace_out);
  obs::RunObserver observer{&run.registry, &trace};
  EngineOptions options;
  options.criterion = CostCriterion::kC4;
  options.eu = EUWeights::from_log10_ratio(1.0);
  options.observer = &observer;
  run.result = run_spec({HeuristicKind::kFullOne, CostCriterion::kC4}, s, options);

  std::istringstream in(trace_out.str());
  std::string error;
  const auto events = obs::read_trace(in, &error);
  EXPECT_TRUE(events.has_value()) << error;
  if (events.has_value()) run.events = *events;
  return run;
}

/// The final outcome event of (item, k), or nullptr.
const obs::TraceEvent* final_outcome(const std::vector<obs::TraceEvent>& events,
                                     std::int64_t item, std::int64_t k) {
  for (const obs::TraceEvent& e : events) {
    if (e.type == "request" && e.num("item") == item && e.num("k") == k) return &e;
  }
  return nullptr;
}

bool has_event(const std::vector<obs::TraceEvent>& events, std::string_view type,
               std::int64_t item, std::int64_t k) {
  for (const obs::TraceEvent& e : events) {
    if (e.type == type && e.num("item") == item && e.num("k") == k) return true;
  }
  return false;
}

TEST(EngineReasonTest, ImpossibleDeadlineIsLostAsDeadlineInfeasible) {
  // Request k=0 (one hop, ~1 s) is easy; request k=1 sits two ~1 s hops away
  // but wants the item within 1 s — infeasible from the very first plan.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB).machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .link(1, 2, 8'000'000, kAlways)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30))
                         .request(2, at_sec(1))
                         .build();
  const TracedRun run = traced_run(s);

  EXPECT_TRUE(run.result.outcomes[0][0].satisfied);
  EXPECT_FALSE(run.result.outcomes[0][1].satisfied);

  // The structured rejection fires at classification time...
  EXPECT_TRUE(has_event(run.events, "request_lost", 0, 1));
  // ...and the final outcome event carries the same reason.
  const obs::TraceEvent* outcome = final_outcome(run.events, 0, 1);
  ASSERT_NE(outcome, nullptr);
  EXPECT_FALSE(outcome->flag("satisfied"));
  EXPECT_EQ(outcome->str("reason"), "deadline_infeasible");
  EXPECT_FALSE(outcome->has("lost_to"));  // nobody outcompeted it
  EXPECT_EQ(run.registry.counter_value("engine.lost_deadline_infeasible"), 1u);
  EXPECT_EQ(run.registry.counter_value("engine.lost_tournament"), 0u);
}

TEST(EngineReasonTest, UnreachableDestinationIsLostAsNoFeasibleRoute) {
  // Machine 2 has only an outgoing link — nothing can ever reach it.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB).machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .link(2, 0, 8'000'000, kAlways)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30))
                         .request(2, at_min(30))
                         .build();
  const TracedRun run = traced_run(s);

  EXPECT_TRUE(run.result.outcomes[0][0].satisfied);
  EXPECT_FALSE(run.result.outcomes[0][1].satisfied);

  const obs::TraceEvent* outcome = final_outcome(run.events, 0, 1);
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->str("reason"), "no_feasible_route");
  EXPECT_EQ(run.registry.counter_value("engine.lost_no_feasible_route"), 1u);
}

TEST(EngineReasonTest, OutcompetedRequestIsLostToTheWinningItem) {
  // One always-on link, two equal items, both deadlines allow exactly one
  // transfer: whichever item commits first pushes the other past its
  // deadline. The loser must be reported as lost_tournament with the
  // winner's id in lost_to.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_sec(1))
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_sec(1))
                         .build();
  const TracedRun run = traced_run(s);

  const bool first_won = run.result.outcomes[0][0].satisfied;
  const std::int64_t winner = first_won ? 0 : 1;
  const std::int64_t loser = first_won ? 1 : 0;
  EXPECT_TRUE(run.result.outcomes[static_cast<std::size_t>(winner)][0].satisfied);
  EXPECT_FALSE(run.result.outcomes[static_cast<std::size_t>(loser)][0].satisfied);

  const obs::TraceEvent* outcome = final_outcome(run.events, loser, 0);
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->str("reason"), "lost_tournament");
  EXPECT_EQ(outcome->num("lost_to"), winner);
  // The transition itself was traced with the attribution.
  EXPECT_TRUE(has_event(run.events, "request_lost", loser, 0));
  EXPECT_EQ(run.registry.counter_value("engine.lost_tournament"), 1u);
}

TEST(EngineReasonTest, SatisfiedRequestsEmitSlackAndFeedTheHistogram) {
  const Scenario s = testing::chain_scenario();
  const TracedRun run = traced_run(s);
  ASSERT_TRUE(run.result.outcomes[0][0].satisfied);

  const obs::TraceEvent* satisfied = nullptr;
  for (const obs::TraceEvent& e : run.events) {
    if (e.type == "request_satisfied" && e.num("item") == 0 && e.num("k") == 0) {
      satisfied = &e;
    }
  }
  ASSERT_NE(satisfied, nullptr);
  const SimTime arrival = run.result.outcomes[0][0].arrival;
  EXPECT_EQ(satisfied->num("arrival_usec"), arrival.usec());
  const Request& request = s.items[0].requests[0];
  EXPECT_EQ(satisfied->num("slack_usec"), (request.deadline - arrival).usec());

  const obs::Histogram* slack =
      run.registry.find_histogram("engine.satisfied_slack_seconds");
  ASSERT_NE(slack, nullptr);
  EXPECT_EQ(slack->count(), 1u);
  EXPECT_DOUBLE_EQ(slack->sum(), (request.deadline - arrival).as_seconds());
}

TEST(EngineReasonTest, LifecycleEventsAppearOnlyWhenTracing) {
  // Metrics-only observation must not allocate the lifecycle tracker, so the
  // loss-reason counters stay absent (perf runs attach metrics only).
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_sec(1))
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_sec(1))
                         .build();
  obs::MetricsRegistry registry;
  obs::RunObserver observer{&registry, nullptr};
  EngineOptions options;
  options.criterion = CostCriterion::kC4;
  options.eu = EUWeights::from_log10_ratio(1.0);
  options.observer = &observer;
  run_spec({HeuristicKind::kFullOne, CostCriterion::kC4}, s, options);
  EXPECT_EQ(registry.counter_value("engine.lost_tournament"), 0u);
  EXPECT_EQ(registry.counter_value("engine.lost_deadline_infeasible"), 0u);
  EXPECT_EQ(registry.counter_value("engine.requests_dropped"), 1u);
}

}  // namespace
}  // namespace datastage
