#include "core/metrics.hpp"

#include <gtest/gtest.h>

#include "core/heuristics.hpp"
#include "testing/builders.hpp"

namespace datastage {
namespace {

using testing::at_min;
using testing::at_sec;
using testing::ScenarioBuilder;

constexpr std::int64_t kGB = 1 << 30;
const Interval kAlways{SimTime::zero(), at_min(120)};

Scenario mixed_scenario() {
  return ScenarioBuilder()
      .machine(kGB).machine(kGB).machine(kGB)
      .link(0, 1, 8'000'000, kAlways)
      .link(0, 2, 10'000, kAlways)  // hopeless for the big item
      .item(1'000'000)
      .source(0, SimTime::zero())
      .request(1, at_min(10), kPriorityHigh)
      .item(100 * 1024 * 1024)
      .source(0, SimTime::zero())
      .request(2, at_min(10), kPriorityLow)
      .build();
}

TEST(MetricsTest, ComputesSatisfactionAndQuality) {
  const Scenario s = mixed_scenario();
  EngineOptions options;
  options.eu = EUWeights{1.0, 1.0};
  const StagingResult result = run_full_path_one(s, options);
  const ResultMetrics m =
      compute_metrics(s, PriorityWeighting::w_1_10_100(), result);

  EXPECT_EQ(m.total_requests, 2u);
  EXPECT_EQ(m.satisfied, 1u);
  EXPECT_DOUBLE_EQ(m.weighted_value, 100.0);
  EXPECT_DOUBLE_EQ(m.weighted_total, 101.0);
  ASSERT_EQ(m.satisfied_per_class.size(), 3u);
  EXPECT_EQ(m.satisfied_per_class[2], 1u);
  EXPECT_EQ(m.satisfied_per_class[0], 0u);
  EXPECT_EQ(m.total_per_class[0], 1u);

  // The 1 MB item arrives after 1 s: slack = 10 min − 1 s, response = 1 s.
  EXPECT_DOUBLE_EQ(m.mean_slack_seconds, 600.0 - 1.0);
  EXPECT_DOUBLE_EQ(m.min_slack_seconds, 600.0 - 1.0);
  EXPECT_DOUBLE_EQ(m.mean_response_seconds, 1.0);
  EXPECT_EQ(m.makespan, at_sec(1));

  EXPECT_EQ(m.transfers, 1u);
  EXPECT_DOUBLE_EQ(m.transfers_per_satisfied, 1.0);
  EXPECT_EQ(m.total_link_time, SimDuration::seconds(1));
  EXPECT_NEAR(m.satisfied_fraction(), 0.5, 1e-12);
  EXPECT_NEAR(m.value_fraction(), 100.0 / 101.0, 1e-12);
}

TEST(MetricsTest, EmptyResultIsAllZeros) {
  const Scenario s = mixed_scenario();
  StagingResult empty;
  empty.outcomes.resize(s.item_count());
  for (std::size_t i = 0; i < s.item_count(); ++i) {
    empty.outcomes[i].resize(s.items[i].requests.size());
  }
  const ResultMetrics m = compute_metrics(s, PriorityWeighting::w_1_10_100(), empty);
  EXPECT_EQ(m.satisfied, 0u);
  EXPECT_DOUBLE_EQ(m.weighted_value, 0.0);
  EXPECT_DOUBLE_EQ(m.mean_slack_seconds, 0.0);
  EXPECT_EQ(m.makespan, SimTime::zero());
  EXPECT_DOUBLE_EQ(m.satisfied_fraction(), 0.0);
}

TEST(MetricsTest, TableRendersKeyRows) {
  const Scenario s = mixed_scenario();
  EngineOptions options;
  options.eu = EUWeights{1.0, 1.0};
  const StagingResult result = run_full_path_one(s, options);
  const Table table =
      metrics_table(compute_metrics(s, PriorityWeighting::w_1_10_100(), result));
  const std::string text = table.to_text();
  EXPECT_NE(text.find("requests satisfied"), std::string::npos);
  EXPECT_NE(text.find("1 / 2"), std::string::npos);
  EXPECT_NE(text.find("satisfied high"), std::string::npos);
  EXPECT_NE(text.find("mean slack"), std::string::npos);
  EXPECT_NE(text.find("makespan"), std::string::npos);
}

}  // namespace
}  // namespace datastage
