#include "core/schedule_io.hpp"

#include <gtest/gtest.h>

#include "core/heuristics.hpp"
#include "sim/simulator.hpp"
#include "testing/builders.hpp"

namespace datastage {
namespace {

using testing::at_sec;

Schedule sample_schedule() {
  Schedule schedule;
  schedule.add(CommStep{ItemId(0), MachineId(0), MachineId(1), VirtLinkId(0),
                        SimTime::zero(), at_sec(1)});
  schedule.add(CommStep{ItemId(0), MachineId(1), MachineId(2), VirtLinkId(1),
                        at_sec(1), at_sec(2)});
  return schedule;
}

TEST(ScheduleIoTest, RoundTrip) {
  const Schedule original = sample_schedule();
  std::string error;
  const auto parsed = schedule_from_string(schedule_to_string(original), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->size(), original.size());
  EXPECT_TRUE(std::equal(parsed->steps().begin(), parsed->steps().end(),
                         original.steps().begin()));
}

TEST(ScheduleIoTest, EmptyScheduleRoundTrips) {
  std::string error;
  const auto parsed = schedule_from_string(schedule_to_string(Schedule{}), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_TRUE(parsed->empty());
}

TEST(ScheduleIoTest, CommentsIgnored) {
  std::string text = schedule_to_string(sample_schedule());
  text += "# trailing comment\n\n";
  std::string error;
  const auto parsed = schedule_from_string(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->size(), 2u);
}

TEST(ScheduleIoTest, RejectsBadHeader) {
  std::string error;
  EXPECT_FALSE(schedule_from_string("bogus v1\n", &error).has_value());
  EXPECT_NE(error.find("header"), std::string::npos);
}

TEST(ScheduleIoTest, RejectsMalformedStep) {
  std::string error;
  EXPECT_FALSE(
      schedule_from_string("datastage-schedule v1\nstep 0 1\n", &error).has_value());
  EXPECT_NE(error.find("expected: step"), std::string::npos);
  EXPECT_NE(error.find("line 2"), std::string::npos);
}

TEST(ScheduleIoTest, RejectsArrivalBeforeStart) {
  std::string error;
  EXPECT_FALSE(schedule_from_string(
                   "datastage-schedule v1\nstep 0 0 1 0 100 50\n", &error)
                   .has_value());
  EXPECT_NE(error.find("arrival precedes start"), std::string::npos);
}

TEST(ScheduleIoTest, SavedScheduleReplaysIdentically) {
  const Scenario s = testing::chain_scenario();
  EngineOptions options;
  options.eu = EUWeights{1.0, 1.0};
  const StagingResult result = run_full_path_one(s, options);

  const std::string path = ::testing::TempDir() + "/schedule_io_test.dss";
  save_schedule(path, result.schedule);
  std::string error;
  const auto loaded = load_schedule(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;

  const SimReport replay = simulate(s, *loaded);
  ASSERT_TRUE(replay.ok);
  EXPECT_EQ(replay.outcomes, result.outcomes);
}

TEST(ScheduleIoTest, LoadMissingFileFails) {
  std::string error;
  EXPECT_FALSE(load_schedule("/no/such/file.dss", &error).has_value());
  EXPECT_NE(error.find("cannot open"), std::string::npos);
}

}  // namespace
}  // namespace datastage
