// Seed-grid equivalence suite for the incremental engine (PR: inverted
// resource index + lazy best-candidate heap + Dijkstra workspace reuse).
//
// The engine's incremental mode must be *indistinguishable* from the paper's
// recompute-everything procedure (--paranoid) in every observable output:
// the schedule bytes, the per-request outcomes, and the derived result
// metrics — across all four heuristics and a grid of generated scenarios.
// Separately, the parallel executor must produce byte-identical case results
// for --jobs=1 and --jobs=8.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/heuristics.hpp"
#include "core/metrics.hpp"
#include "core/registry.hpp"
#include "core/schedule_io.hpp"
#include "gen/generator.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"
#include "obs/observer.hpp"

namespace datastage {
namespace {

std::vector<Scenario> grid_scenarios() {
  // Light cases stress retirement and sparse contention; one paper-shaped
  // case stresses dense contention where invalidations actually fire.
  std::vector<Scenario> scenarios =
      generate_cases(GeneratorConfig::light(), 4242, 4);
  std::vector<Scenario> paper = generate_cases(GeneratorConfig::paper(), 77, 1);
  scenarios.insert(scenarios.end(), paper.begin(), paper.end());
  return scenarios;
}

std::string outcomes_to_string(const StagingResult& result) {
  std::ostringstream os;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    for (std::size_t k = 0; k < result.outcomes[i].size(); ++k) {
      const RequestOutcome& o = result.outcomes[i][k];
      os << i << "," << k << "," << o.satisfied << ","
         << (o.arrival.is_infinite() ? -1 : o.arrival.usec()) << "\n";
    }
  }
  return os.str();
}

std::string metrics_to_string(const Scenario& scenario, const StagingResult& result) {
  const ResultMetrics metrics =
      compute_metrics(scenario, PriorityWeighting::w_1_10_100(), result);
  return metrics_table(metrics).to_csv();
}

void expect_equivalent(const Scenario& scenario, const StagingResult& incremental,
                       const StagingResult& paranoid, const std::string& label) {
  EXPECT_EQ(schedule_to_string(incremental.schedule),
            schedule_to_string(paranoid.schedule))
      << label;
  EXPECT_EQ(outcomes_to_string(incremental), outcomes_to_string(paranoid)) << label;
  EXPECT_EQ(metrics_to_string(scenario, incremental),
            metrics_to_string(scenario, paranoid))
      << label;
}

class EngineEquivalenceTest : public ::testing::TestWithParam<SchedulerSpec> {};

TEST_P(EngineEquivalenceTest, IncrementalMatchesParanoidOnSeedGrid) {
  const SchedulerSpec spec = GetParam();
  std::size_t case_index = 0;
  for (const Scenario& scenario : grid_scenarios()) {
    EngineOptions options;
    options.criterion = spec.criterion;
    options.eu = EUWeights::from_log10_ratio(1.0);
    const StagingResult incremental = run_spec(spec, scenario, options);
    options.paranoid = true;
    const StagingResult paranoid = run_spec(spec, scenario, options);
    expect_equivalent(scenario, incremental, paranoid,
                      spec.name() + " case " + std::to_string(case_index));
    ++case_index;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperHeuristics, EngineEquivalenceTest,
    ::testing::Values(SchedulerSpec{HeuristicKind::kPartial, CostCriterion::kC4},
                      SchedulerSpec{HeuristicKind::kFullOne, CostCriterion::kC4},
                      SchedulerSpec{HeuristicKind::kFullAll, CostCriterion::kC4}),
    [](const ::testing::TestParamInfo<SchedulerSpec>& param_info) {
      std::string name = param_info.param.name();
      for (char& c : name) {
        if (c == '/' || c == '-') c = '_';
      }
      return name;
    });

// priority_first drives the engine through the same loop as full_one but with
// the priority-only criterion; run_priority_first does not expose paranoid
// mode, so replicate its loop here with the flag toggled.
StagingResult run_priority_first_mode(const Scenario& scenario, bool paranoid) {
  EngineOptions options;
  options.criterion = CostCriterion::kPriorityOnly;
  options.paranoid = paranoid;
  StagingEngine engine(scenario, options);
  while (std::optional<Candidate> best = engine.best_candidate()) {
    engine.apply_full_path_one(*best);
  }
  return engine.finish();
}

TEST(EngineEquivalencePriorityFirstTest, IncrementalMatchesParanoidOnSeedGrid) {
  std::size_t case_index = 0;
  for (const Scenario& scenario : grid_scenarios()) {
    const StagingResult incremental = run_priority_first_mode(scenario, false);
    const StagingResult paranoid = run_priority_first_mode(scenario, true);
    expect_equivalent(scenario, incremental, paranoid,
                      "priority_first case " + std::to_string(case_index));
    ++case_index;
  }
}

// The harness must give byte-identical case results for any worker count
// (indexed result slots, per-case RNG streams — no scheduling races).
TEST(EngineEquivalenceJobsTest, Jobs1MatchesJobs8) {
  ExperimentConfig config;
  config.cases = 6;
  config.seed = 9001;
  const CaseSet cases = build_cases(config);
  const SchedulerSpec spec{HeuristicKind::kFullOne, CostCriterion::kC4};
  EngineOptions options;
  options.criterion = spec.criterion;
  options.eu = EUWeights::from_log10_ratio(1.0);

  const std::size_t saved_jobs = default_jobs();
  set_default_jobs(1);
  const std::vector<CaseResult> serial = run_cases(cases, spec, options);
  set_default_jobs(8);
  const std::vector<CaseResult> parallel = run_cases(cases, spec, options);
  set_default_jobs(saved_jobs);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(schedule_to_string(serial[i].staging.schedule),
              schedule_to_string(parallel[i].staging.schedule))
        << "case " << i;
    EXPECT_EQ(outcomes_to_string(serial[i].staging),
              outcomes_to_string(parallel[i].staging))
        << "case " << i;
    EXPECT_EQ(serial[i].weighted_value, parallel[i].weighted_value) << "case " << i;
    EXPECT_EQ(serial[i].satisfied, parallel[i].satisfied) << "case " << i;
    EXPECT_EQ(serial[i].by_class, parallel[i].by_class) << "case " << i;
  }
}

// --- Intra-engine parallelism (--engine-jobs) -------------------------------
//
// The parallel refresh path must be *byte-identical* to the serial engine in
// every observable output — not just the schedule and outcomes, but the full
// metrics registry (including the speculation counters, which are defined
// over logical batches) and the structured trace stream. Any divergence means
// the deterministic-merge contract broke.

StagingResult run_observed(const SchedulerSpec& spec, const Scenario& scenario,
                           std::size_t engine_jobs, std::string* metrics_json,
                           std::string* trace_text) {
  EngineOptions options;
  options.criterion = spec.criterion;
  options.eu = EUWeights::from_log10_ratio(1.0);
  options.engine_jobs = engine_jobs;
  obs::MetricsRegistry registry;
  std::ostringstream trace_os;
  obs::RunTrace trace(trace_os);
  obs::RunObserver observer;
  observer.metrics = &registry;
  observer.trace = &trace;
  options.observer = &observer;
  const StagingResult result = run_spec(spec, scenario, options);
  *metrics_json = registry.to_json();
  *trace_text = trace_os.str();
  return result;
}

class EngineParallelEquivalenceTest
    : public ::testing::TestWithParam<SchedulerSpec> {};

TEST_P(EngineParallelEquivalenceTest, EngineJobsMatchSerialOnSeedGrid) {
  const SchedulerSpec spec = GetParam();
  std::size_t case_index = 0;
  for (const Scenario& scenario : grid_scenarios()) {
    std::string serial_metrics;
    std::string serial_trace;
    const StagingResult serial =
        run_observed(spec, scenario, 1, &serial_metrics, &serial_trace);
    for (const std::size_t engine_jobs : {std::size_t{2}, std::size_t{8}}) {
      std::string parallel_metrics;
      std::string parallel_trace;
      const StagingResult parallel = run_observed(
          spec, scenario, engine_jobs, &parallel_metrics, &parallel_trace);
      const std::string label = spec.name() + " case " +
                                std::to_string(case_index) + " engine_jobs=" +
                                std::to_string(engine_jobs);
      expect_equivalent(scenario, parallel, serial, label);
      EXPECT_EQ(parallel_metrics, serial_metrics) << label;
      EXPECT_EQ(parallel_trace, serial_trace) << label;
    }
    ++case_index;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperHeuristics, EngineParallelEquivalenceTest,
    ::testing::Values(SchedulerSpec{HeuristicKind::kPartial, CostCriterion::kC4},
                      SchedulerSpec{HeuristicKind::kFullOne, CostCriterion::kC4},
                      SchedulerSpec{HeuristicKind::kFullAll, CostCriterion::kC4}),
    [](const ::testing::TestParamInfo<SchedulerSpec>& param_info) {
      std::string name = param_info.param.name();
      for (char& c : name) {
        if (c == '/' || c == '-') c = '_';
      }
      return name;
    });

StagingResult run_priority_first_engine_jobs(const Scenario& scenario,
                                             std::size_t engine_jobs) {
  EngineOptions options;
  options.criterion = CostCriterion::kPriorityOnly;
  options.engine_jobs = engine_jobs;
  StagingEngine engine(scenario, options);
  while (std::optional<Candidate> best = engine.best_candidate()) {
    engine.apply_full_path_one(*best);
  }
  return engine.finish();
}

TEST(EngineParallelPriorityFirstTest, EngineJobsMatchSerialOnSeedGrid) {
  std::size_t case_index = 0;
  for (const Scenario& scenario : grid_scenarios()) {
    const StagingResult serial = run_priority_first_engine_jobs(scenario, 1);
    for (const std::size_t engine_jobs : {std::size_t{2}, std::size_t{8}}) {
      expect_equivalent(scenario, run_priority_first_engine_jobs(scenario, engine_jobs),
                        serial,
                        "priority_first case " + std::to_string(case_index) +
                            " engine_jobs=" + std::to_string(engine_jobs));
    }
    ++case_index;
  }
}

// The documented candidate order (cost, item, next machine, first destination
// index) — mirrors the engine's internal candidate_less comparator.
bool candidate_order(const Candidate& a, const Candidate& b) {
  if (a.cost != b.cost) return a.cost < b.cost;
  if (a.item != b.item) return a.item < b.item;
  if (a.hop.to != b.hop.to) return a.hop.to < b.hop.to;
  const std::int32_t ka = a.dests.empty() ? -1 : a.dests.front().k;
  const std::int32_t kb = b.dests.empty() ? -1 : b.dests.front().k;
  return ka < kb;
}

// all_candidates()/candidate_count() share best_candidate()'s refresh path —
// including the merge of a speculative batch launched by the previous commit.
// After every commit (= one invalidation wave) the enumeration must agree
// with the tournament winner and with the maintained count, in both serial
// and parallel modes.
TEST(EngineCandidateParityTest, EnumerationAgreesWithTournamentAfterInvalidations) {
  for (const std::size_t engine_jobs : {std::size_t{1}, std::size_t{8}}) {
    std::size_t case_index = 0;
    for (const Scenario& scenario : grid_scenarios()) {
      EngineOptions options;
      options.criterion = CostCriterion::kC4;
      options.eu = EUWeights::from_log10_ratio(1.0);
      options.engine_jobs = engine_jobs;
      StagingEngine engine(scenario, options);
      const std::string label = "case " + std::to_string(case_index) +
                                " engine_jobs=" + std::to_string(engine_jobs);
      std::size_t rounds = 0;
      for (;;) {
        const std::size_t count = engine.candidate_count();
        const std::vector<Candidate> all = engine.all_candidates();
        ASSERT_EQ(all.size(), count) << label << " round " << rounds;
        const std::optional<Candidate> best = engine.best_candidate();
        if (!best.has_value()) {
          EXPECT_TRUE(all.empty()) << label << " round " << rounds;
          break;
        }
        const Candidate* min = nullptr;
        for (const Candidate& c : all) {
          if (min == nullptr || candidate_order(c, *min)) min = &c;
        }
        ASSERT_NE(min, nullptr) << label << " round " << rounds;
        EXPECT_EQ(min->item, best->item) << label << " round " << rounds;
        EXPECT_EQ(min->hop.to, best->hop.to) << label << " round " << rounds;
        EXPECT_EQ(min->cost, best->cost) << label << " round " << rounds;
        engine.apply_full_path_one(*best);
        ++rounds;
      }
      EXPECT_GT(rounds, 0u) << label;
      ++case_index;
    }
  }
}

}  // namespace
}  // namespace datastage
