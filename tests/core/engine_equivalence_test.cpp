// Seed-grid equivalence suite for the incremental engine (PR: inverted
// resource index + lazy best-candidate heap + Dijkstra workspace reuse).
//
// The engine's incremental mode must be *indistinguishable* from the paper's
// recompute-everything procedure (--paranoid) in every observable output:
// the schedule bytes, the per-request outcomes, and the derived result
// metrics — across all four heuristics and a grid of generated scenarios.
// Separately, the parallel executor must produce byte-identical case results
// for --jobs=1 and --jobs=8.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/heuristics.hpp"
#include "core/metrics.hpp"
#include "core/registry.hpp"
#include "core/schedule_io.hpp"
#include "gen/generator.hpp"
#include "harness/experiment.hpp"
#include "harness/parallel.hpp"

namespace datastage {
namespace {

std::vector<Scenario> grid_scenarios() {
  // Light cases stress retirement and sparse contention; one paper-shaped
  // case stresses dense contention where invalidations actually fire.
  std::vector<Scenario> scenarios =
      generate_cases(GeneratorConfig::light(), 4242, 4);
  std::vector<Scenario> paper = generate_cases(GeneratorConfig::paper(), 77, 1);
  scenarios.insert(scenarios.end(), paper.begin(), paper.end());
  return scenarios;
}

std::string outcomes_to_string(const StagingResult& result) {
  std::ostringstream os;
  for (std::size_t i = 0; i < result.outcomes.size(); ++i) {
    for (std::size_t k = 0; k < result.outcomes[i].size(); ++k) {
      const RequestOutcome& o = result.outcomes[i][k];
      os << i << "," << k << "," << o.satisfied << ","
         << (o.arrival.is_infinite() ? -1 : o.arrival.usec()) << "\n";
    }
  }
  return os.str();
}

std::string metrics_to_string(const Scenario& scenario, const StagingResult& result) {
  const ResultMetrics metrics =
      compute_metrics(scenario, PriorityWeighting::w_1_10_100(), result);
  return metrics_table(metrics).to_csv();
}

void expect_equivalent(const Scenario& scenario, const StagingResult& incremental,
                       const StagingResult& paranoid, const std::string& label) {
  EXPECT_EQ(schedule_to_string(incremental.schedule),
            schedule_to_string(paranoid.schedule))
      << label;
  EXPECT_EQ(outcomes_to_string(incremental), outcomes_to_string(paranoid)) << label;
  EXPECT_EQ(metrics_to_string(scenario, incremental),
            metrics_to_string(scenario, paranoid))
      << label;
}

class EngineEquivalenceTest : public ::testing::TestWithParam<SchedulerSpec> {};

TEST_P(EngineEquivalenceTest, IncrementalMatchesParanoidOnSeedGrid) {
  const SchedulerSpec spec = GetParam();
  std::size_t case_index = 0;
  for (const Scenario& scenario : grid_scenarios()) {
    EngineOptions options;
    options.criterion = spec.criterion;
    options.eu = EUWeights::from_log10_ratio(1.0);
    const StagingResult incremental = run_spec(spec, scenario, options);
    options.paranoid = true;
    const StagingResult paranoid = run_spec(spec, scenario, options);
    expect_equivalent(scenario, incremental, paranoid,
                      spec.name() + " case " + std::to_string(case_index));
    ++case_index;
  }
}

INSTANTIATE_TEST_SUITE_P(
    PaperHeuristics, EngineEquivalenceTest,
    ::testing::Values(SchedulerSpec{HeuristicKind::kPartial, CostCriterion::kC4},
                      SchedulerSpec{HeuristicKind::kFullOne, CostCriterion::kC4},
                      SchedulerSpec{HeuristicKind::kFullAll, CostCriterion::kC4}),
    [](const ::testing::TestParamInfo<SchedulerSpec>& param_info) {
      std::string name = param_info.param.name();
      for (char& c : name) {
        if (c == '/' || c == '-') c = '_';
      }
      return name;
    });

// priority_first drives the engine through the same loop as full_one but with
// the priority-only criterion; run_priority_first does not expose paranoid
// mode, so replicate its loop here with the flag toggled.
StagingResult run_priority_first_mode(const Scenario& scenario, bool paranoid) {
  EngineOptions options;
  options.criterion = CostCriterion::kPriorityOnly;
  options.paranoid = paranoid;
  StagingEngine engine(scenario, options);
  while (std::optional<Candidate> best = engine.best_candidate()) {
    engine.apply_full_path_one(*best);
  }
  return engine.finish();
}

TEST(EngineEquivalencePriorityFirstTest, IncrementalMatchesParanoidOnSeedGrid) {
  std::size_t case_index = 0;
  for (const Scenario& scenario : grid_scenarios()) {
    const StagingResult incremental = run_priority_first_mode(scenario, false);
    const StagingResult paranoid = run_priority_first_mode(scenario, true);
    expect_equivalent(scenario, incremental, paranoid,
                      "priority_first case " + std::to_string(case_index));
    ++case_index;
  }
}

// The harness must give byte-identical case results for any worker count
// (indexed result slots, per-case RNG streams — no scheduling races).
TEST(EngineEquivalenceJobsTest, Jobs1MatchesJobs8) {
  ExperimentConfig config;
  config.cases = 6;
  config.seed = 9001;
  const CaseSet cases = build_cases(config);
  const SchedulerSpec spec{HeuristicKind::kFullOne, CostCriterion::kC4};
  EngineOptions options;
  options.criterion = spec.criterion;
  options.eu = EUWeights::from_log10_ratio(1.0);

  const std::size_t saved_jobs = default_jobs();
  set_default_jobs(1);
  const std::vector<CaseResult> serial = run_cases(cases, spec, options);
  set_default_jobs(8);
  const std::vector<CaseResult> parallel = run_cases(cases, spec, options);
  set_default_jobs(saved_jobs);

  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(schedule_to_string(serial[i].staging.schedule),
              schedule_to_string(parallel[i].staging.schedule))
        << "case " << i;
    EXPECT_EQ(outcomes_to_string(serial[i].staging),
              outcomes_to_string(parallel[i].staging))
        << "case " << i;
    EXPECT_EQ(serial[i].weighted_value, parallel[i].weighted_value) << "case " << i;
    EXPECT_EQ(serial[i].satisfied, parallel[i].satisfied) << "case " << i;
    EXPECT_EQ(serial[i].by_class, parallel[i].by_class) << "case " << i;
  }
}

}  // namespace
}  // namespace datastage
