#include "core/engine.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace datastage {
namespace {

using testing::at_min;
using testing::at_sec;
using testing::ScenarioBuilder;

constexpr std::int64_t kGB = 1 << 30;
const Interval kAlways{SimTime::zero(), at_min(120)};

EngineOptions c4_options() {
  EngineOptions options;
  options.criterion = CostCriterion::kC4;
  options.eu = EUWeights{1.0, 1.0};
  return options;
}

TEST(StagingEngineTest, CandidatesForChain) {
  const Scenario s = testing::chain_scenario();
  StagingEngine engine(s, c4_options());
  const auto candidates = engine.all_candidates();
  ASSERT_EQ(candidates.size(), 1u);
  const Candidate& c = candidates.front();
  EXPECT_EQ(c.item, ItemId(0));
  EXPECT_EQ(c.hop.from, MachineId(0));
  EXPECT_EQ(c.hop.to, MachineId(1));
  ASSERT_EQ(c.dests.size(), 1u);
  EXPECT_TRUE(c.dests[0].sat);
  // Slack: deadline 30 min − arrival 2 s.
  EXPECT_DOUBLE_EQ(c.dests[0].slack_seconds, 30.0 * 60.0 - 2.0);
}

TEST(StagingEngineTest, PerDestinationCriterionSplitsCandidates) {
  // Two destinations behind the same first hop: C1 yields two candidates,
  // C4 groups them into one.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB).machine(kGB).machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .link(1, 2, 8'000'000, kAlways)
                         .link(1, 3, 8'000'000, kAlways)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(2, at_min(30))
                         .request(3, at_min(40))
                         .build();
  EngineOptions c1 = c4_options();
  c1.criterion = CostCriterion::kC1;
  StagingEngine engine_c1(s, c1);
  EXPECT_EQ(engine_c1.all_candidates().size(), 2u);

  StagingEngine engine_c4(s, c4_options());
  const auto grouped = engine_c4.all_candidates();
  ASSERT_EQ(grouped.size(), 1u);
  EXPECT_EQ(grouped.front().dests.size(), 2u);
}

TEST(StagingEngineTest, BestCandidatePicksLowestCost) {
  // Item 1 has higher priority: with priority-dominant weights it must win.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30), kPriorityLow)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30), kPriorityHigh)
                         .build();
  EngineOptions options = c4_options();
  options.eu = EUWeights::priority_only();
  StagingEngine engine(s, options);
  const auto best = engine.best_candidate();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->item, ItemId(1));
}

TEST(StagingEngineTest, ApplyHopCreatesStepAndAdvances) {
  const Scenario s = testing::chain_scenario();
  StagingEngine engine(s, c4_options());
  auto best = engine.best_candidate();
  ASSERT_TRUE(best.has_value());
  engine.apply_hop(*best);
  EXPECT_EQ(engine.iterations(), 1u);
  EXPECT_EQ(engine.network().transfer_count(), 1u);
  EXPECT_EQ(engine.tracker().pending_count(), 1u);  // not at dest yet

  best = engine.best_candidate();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->hop.from, MachineId(1));  // second hop from the new copy
  engine.apply_hop(*best);
  EXPECT_FALSE(engine.best_candidate().has_value());  // all satisfied
  const StagingResult result = engine.finish();
  EXPECT_TRUE(result.outcomes[0][0].satisfied);
  EXPECT_EQ(result.schedule.size(), 2u);
}

TEST(StagingEngineTest, NoCandidatesWhenNothingSatisfiable) {
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB)
                         .link(0, 1, 10'000, kAlways)  // ~22 h for 100 MB
                         .item(100 * 1024 * 1024)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30))
                         .build();
  StagingEngine engine(s, c4_options());
  EXPECT_FALSE(engine.best_candidate().has_value());
  EXPECT_TRUE(engine.all_candidates().empty());
}

TEST(StagingEngineTest, CacheSkipsUnaffectedItems) {
  // Two items on disjoint links: scheduling one must not recompute the other.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB).machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .link(0, 2, 8'000'000, kAlways)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30))
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(2, at_min(30))
                         .build();
  StagingEngine engine(s, c4_options());
  auto best = engine.best_candidate();  // computes both plans (2 runs)
  ASSERT_TRUE(best.has_value());
  const std::size_t runs_before = engine.dijkstra_runs();
  EXPECT_EQ(runs_before, 2u);
  engine.apply_hop(*best);  // satisfies one item on its own link
  best = engine.best_candidate();
  ASSERT_TRUE(best.has_value());
  // Only the scheduled item was dirty, and it is exhausted now; the other
  // item's plan must have been reused.
  EXPECT_EQ(engine.dijkstra_runs(), runs_before);
}

TEST(StagingEngineTest, ConflictingItemsAreInvalidated) {
  // Two items share the single link: scheduling one shifts the other.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30))
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30))
                         .build();
  StagingEngine engine(s, c4_options());
  auto best = engine.best_candidate();
  ASSERT_TRUE(best.has_value());
  engine.apply_hop(*best);
  best = engine.best_candidate();
  ASSERT_TRUE(best.has_value());
  // The second item's transfer must start after the first releases the link.
  EXPECT_EQ(best->hop.start, at_sec(1));
  engine.apply_hop(*best);
  const StagingResult result = engine.finish();
  EXPECT_TRUE(result.outcomes[0][0].satisfied);
  EXPECT_TRUE(result.outcomes[1][0].satisfied);
}

TEST(StagingEngineTest, ParanoidModeMatchesOnChain) {
  const Scenario s = testing::chain_scenario();
  EngineOptions lazy = c4_options();
  EngineOptions paranoid = c4_options();
  paranoid.paranoid = true;

  StagingEngine a(s, lazy);
  StagingEngine b(s, paranoid);
  while (true) {
    const auto ca = a.best_candidate();
    const auto cb = b.best_candidate();
    ASSERT_EQ(ca.has_value(), cb.has_value());
    if (!ca.has_value()) break;
    EXPECT_EQ(ca->hop, cb->hop);
    a.apply_hop(*ca);
    b.apply_hop(*cb);
  }
}

TEST(StagingEngineTest, IterationGuardStopsLoop) {
  const Scenario s = testing::chain_scenario();
  EngineOptions options = c4_options();
  options.max_iterations = 1;
  StagingEngine engine(s, options);
  const auto best = engine.best_candidate();
  ASSERT_TRUE(best.has_value());
  engine.apply_hop(*best);
  EXPECT_TRUE(engine.guard_tripped());
  EXPECT_FALSE(engine.best_candidate().has_value());
}

TEST(StagingEngineTest, PlanTreeExposesRouting) {
  const Scenario s = testing::chain_scenario();
  StagingEngine engine(s, c4_options());
  const RouteTree& tree = engine.plan_tree(ItemId(0));
  EXPECT_EQ(tree.arrival(MachineId(2)), at_sec(2));
}

}  // namespace
}  // namespace datastage
