#include "core/heuristics.hpp"

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "testing/builders.hpp"

namespace datastage {
namespace {

using testing::at_min;
using testing::at_sec;
using testing::ScenarioBuilder;

constexpr std::int64_t kGB = 1 << 30;
const Interval kAlways{SimTime::zero(), at_min(120)};

EngineOptions options_with(CostCriterion criterion,
                           EUWeights eu = EUWeights{1.0, 1.0}) {
  EngineOptions options;
  options.criterion = criterion;
  options.eu = eu;
  return options;
}

TEST(PartialPathTest, DeliversSingleRequestOnChain) {
  const Scenario s = testing::chain_scenario();
  const StagingResult result = run_partial_path(s, options_with(CostCriterion::kC4));
  ASSERT_EQ(result.outcomes.size(), 1u);
  EXPECT_TRUE(result.outcomes[0][0].satisfied);
  EXPECT_EQ(result.outcomes[0][0].arrival, at_sec(2));
  EXPECT_EQ(result.schedule.size(), 2u);  // two hops
  EXPECT_GE(result.iterations, 2u);
}

TEST(PartialPathTest, UnreachableDeadlineGetsNoResources) {
  // 100 MB over 10 Kbit/s takes ~22 h; the 30-minute deadline is hopeless.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB)
                         .link(0, 1, 10'000, kAlways)
                         .item(100 * 1024 * 1024)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30))
                         .build();
  const StagingResult result = run_partial_path(s, options_with(CostCriterion::kC4));
  EXPECT_FALSE(result.outcomes[0][0].satisfied);
  EXPECT_TRUE(result.schedule.empty());  // Sat == 0: the data does not move
}

TEST(PartialPathTest, HigherPriorityWinsLinkContention) {
  // Two items compete for one link window that can carry only one of them in
  // time. With +inf E-U ratio (priority only), the high-priority item wins.
  const Scenario s =
      ScenarioBuilder()
          .machine(kGB).machine(kGB)
          // 1 MB at 8 Mbit/s takes 1 s; window fits one transfer before the
          // tight deadlines.
          .link(0, 1, 8'000'000, Interval{SimTime::zero(), at_sec(2)})
          .item(1'000'000)
          .source(0, SimTime::zero())
          .request(1, at_sec(1), kPriorityLow)
          .item(1'000'000)
          .source(0, SimTime::zero())
          .request(1, at_sec(1), kPriorityHigh)
          .build();
  const StagingResult result =
      run_partial_path(s, options_with(CostCriterion::kC1, EUWeights::priority_only()));
  EXPECT_FALSE(result.outcomes[0][0].satisfied);
  EXPECT_TRUE(result.outcomes[1][0].satisfied);
}

TEST(PartialPathTest, UrgencyOnlyPrefersTighterDeadline) {
  // The window fits only one 1 s transfer (it closes at 1.5 s).
  const Scenario s =
      ScenarioBuilder()
          .machine(kGB).machine(kGB)
          .link(0, 1, 8'000'000,
                Interval{SimTime::zero(), at_sec(1) + SimDuration::milliseconds(500)})
          .item(1'000'000)
          .source(0, SimTime::zero())
          .request(1, at_min(30), kPriorityHigh)  // loose deadline, high prio
          .item(1'000'000)
          .source(0, SimTime::zero())
          .request(1, at_sec(1), kPriorityLow)  // tight deadline, low prio
          .build();
  const StagingResult result =
      run_partial_path(s, options_with(CostCriterion::kC1, EUWeights::urgency_only()));
  // Urgency-only schedules the tight request first; the loose one becomes
  // unsatisfiable because the window closes.
  EXPECT_TRUE(result.outcomes[1][0].satisfied);
  EXPECT_FALSE(result.outcomes[0][0].satisfied);
}

TEST(FullPathOneTest, CompletesWholePathPerIteration) {
  const Scenario s = testing::chain_scenario();
  const StagingResult result = run_full_path_one(s, options_with(CostCriterion::kC4));
  EXPECT_TRUE(result.outcomes[0][0].satisfied);
  EXPECT_EQ(result.schedule.size(), 2u);
  EXPECT_EQ(result.iterations, 1u);  // one decision schedules both hops
}

TEST(FullPathAllTest, ServesAllDestinationsSharingFirstHop) {
  // One source, two destinations behind the same intermediate.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB).machine(kGB).machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .link(1, 2, 8'000'000, kAlways)
                         .link(1, 3, 8'000'000, kAlways)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(2, at_min(30))
                         .request(3, at_min(30))
                         .build();
  const StagingResult result = run_full_path_all(s, options_with(CostCriterion::kC4));
  EXPECT_TRUE(result.outcomes[0][0].satisfied);
  EXPECT_TRUE(result.outcomes[0][1].satisfied);
  // Shared hop 0->1 scheduled once, then 1->2 and 1->3: three steps total in
  // a single iteration.
  EXPECT_EQ(result.schedule.size(), 3u);
  EXPECT_EQ(result.iterations, 1u);
}

TEST(FullPathAllTest, RejectsPerDestinationCriterion) {
  const Scenario s = testing::chain_scenario();
  EXPECT_DEATH(run_full_path_all(s, options_with(CostCriterion::kC1)), "aggregate");
}

TEST(IntermediateDeliveryTest, PathThroughDestinationSatisfiesIt) {
  // C requests the item and also lies on the only path to D: one pass should
  // satisfy both requests.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB).machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .link(1, 2, 8'000'000, kAlways)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30))
                         .request(2, at_min(30))
                         .build();
  const StagingResult result = run_full_path_all(s, options_with(CostCriterion::kC4));
  EXPECT_TRUE(result.outcomes[0][0].satisfied);
  EXPECT_TRUE(result.outcomes[0][1].satisfied);
  EXPECT_EQ(result.schedule.size(), 2u);
}

TEST(SingleDijkstraRandomTest, DeliversOnUncontendedChain) {
  const Scenario s = testing::chain_scenario();
  Rng rng(7);
  const StagingResult result =
      run_single_dijkstra_random(s, PriorityWeighting::w_1_10_100(), rng);
  EXPECT_TRUE(result.outcomes[0][0].satisfied);
  EXPECT_EQ(result.dijkstra_runs, 1u);
}

TEST(RandomDijkstraTest, DeliversOnUncontendedChain) {
  const Scenario s = testing::chain_scenario();
  Rng rng(7);
  const StagingResult result =
      run_random_dijkstra(s, PriorityWeighting::w_1_10_100(), rng);
  EXPECT_TRUE(result.outcomes[0][0].satisfied);
}

TEST(EarliestDeadlineFirstTest, SchedulesByAbsoluteDeadline) {
  // The window fits one transfer; the later-arriving but earlier-deadline
  // request must win regardless of priority.
  const Scenario s =
      ScenarioBuilder()
          .machine(kGB).machine(kGB)
          .link(0, 1, 8'000'000,
                Interval{SimTime::zero(), at_sec(1) + SimDuration::milliseconds(500)})
          .item(1'000'000)
          .source(0, SimTime::zero())
          .request(1, at_min(20), kPriorityHigh)  // later deadline, high prio
          .item(1'000'000)
          .source(0, SimTime::zero())
          .request(1, at_sec(1), kPriorityLow)  // earliest deadline
          .build();
  const StagingResult result =
      run_earliest_deadline_first(s, PriorityWeighting::w_1_10_100());
  EXPECT_TRUE(result.outcomes[1][0].satisfied);
  EXPECT_FALSE(result.outcomes[0][0].satisfied);
}

TEST(EarliestDeadlineFirstTest, DeliversEverythingWhenUncontended) {
  const Scenario s = testing::chain_scenario();
  const StagingResult result =
      run_earliest_deadline_first(s, PriorityWeighting::w_1_10_100());
  EXPECT_TRUE(result.outcomes[0][0].satisfied);
}

TEST(PriorityFirstTest, SchedulesStrictlyByClass) {
  // Same contention fixture as HigherPriorityWinsLinkContention: the
  // priority-first scheme must pick the high-priority request.
  const Scenario s =
      ScenarioBuilder()
          .machine(kGB).machine(kGB)
          .link(0, 1, 8'000'000, Interval{SimTime::zero(), at_sec(2)})
          .item(1'000'000)
          .source(0, SimTime::zero())
          .request(1, at_sec(1), kPriorityLow)
          .item(1'000'000)
          .source(0, SimTime::zero())
          .request(1, at_sec(1), kPriorityHigh)
          .build();
  const StagingResult result =
      run_priority_first(s, PriorityWeighting::w_1_10_100());
  EXPECT_FALSE(result.outcomes[0][0].satisfied);
  EXPECT_TRUE(result.outcomes[1][0].satisfied);
}

}  // namespace
}  // namespace datastage
