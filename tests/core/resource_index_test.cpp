#include "core/resource_index.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "testing/builders.hpp"

namespace datastage {
namespace {

using testing::at_min;

Interval iv(int from_min, int to_min) { return Interval{at_min(from_min), at_min(to_min)}; }

/// Collects the plans a dispatch delivers to.
struct Hits {
  std::vector<std::size_t> plans;
  void operator()(std::size_t plan, const Interval&) { plans.push_back(plan); }
};

TEST(ResourceIndexTest, DispatchesOnlyOverlappingSubscriptions) {
  ResourceIndex index(/*link_count=*/2, /*machine_count=*/2, /*plan_count=*/3);
  index.subscribe_link(0, VirtLinkId(0), iv(0, 10));
  index.subscribe_link(1, VirtLinkId(0), iv(20, 30));
  index.subscribe_link(2, VirtLinkId(1), iv(0, 30));  // other link: never hit

  Hits hits;
  const std::size_t examined =
      index.dispatch_link(VirtLinkId(0), iv(5, 25), /*skip=*/99, hits);
  EXPECT_EQ(examined, 2u);  // only link 0's posting list is walked
  EXPECT_EQ(hits.plans, (std::vector<std::size_t>{0, 1}));

  Hits none;
  index.dispatch_link(VirtLinkId(0), iv(12, 18), /*skip=*/99, none);
  EXPECT_TRUE(none.plans.empty());  // gap between the two subscriptions
}

TEST(ResourceIndexTest, SkipSuppressesTheSchedulingPlan) {
  ResourceIndex index(1, 1, 2);
  index.subscribe_link(0, VirtLinkId(0), iv(0, 10));
  index.subscribe_link(1, VirtLinkId(0), iv(0, 10));

  Hits hits;
  index.dispatch_link(VirtLinkId(0), iv(0, 10), /*skip=*/0, hits);
  EXPECT_EQ(hits.plans, (std::vector<std::size_t>{1}));
}

TEST(ResourceIndexTest, StorageAndLinkNamespacesAreIndependent) {
  ResourceIndex index(1, 1, 2);
  index.subscribe_link(0, VirtLinkId(0), iv(0, 10));
  index.subscribe_storage(1, MachineId(0), iv(0, 10));

  Hits link_hits;
  index.dispatch_link(VirtLinkId(0), iv(0, 10), 99, link_hits);
  EXPECT_EQ(link_hits.plans, (std::vector<std::size_t>{0}));

  Hits storage_hits;
  index.dispatch_storage(MachineId(0), iv(0, 10), 99, storage_hits);
  EXPECT_EQ(storage_hits.plans, (std::vector<std::size_t>{1}));
}

TEST(ResourceIndexTest, UnsubscribeAllKillsEverySubscriptionOfThePlan) {
  ResourceIndex index(2, 2, 2);
  index.subscribe_link(0, VirtLinkId(0), iv(0, 10));
  index.subscribe_link(0, VirtLinkId(1), iv(0, 10));
  index.subscribe_storage(0, MachineId(1), iv(0, 10));
  index.subscribe_link(1, VirtLinkId(0), iv(0, 10));
  EXPECT_EQ(index.live_entries(), 4u);
  EXPECT_EQ(index.plan_entries(0), 3u);

  index.unsubscribe_all(0);
  EXPECT_EQ(index.live_entries(), 1u);
  EXPECT_EQ(index.plan_entries(0), 0u);

  Hits hits;
  const std::size_t examined = index.dispatch_link(VirtLinkId(0), iv(0, 10), 99, hits);
  EXPECT_EQ(hits.plans, (std::vector<std::size_t>{1}));
  EXPECT_EQ(examined, 1u);  // dead entries are not counted as work
}

TEST(ResourceIndexTest, ResubscribeAfterUnsubscribeIsLive) {
  ResourceIndex index(1, 1, 1);
  index.subscribe_link(0, VirtLinkId(0), iv(0, 10));
  index.unsubscribe_all(0);
  index.subscribe_link(0, VirtLinkId(0), iv(20, 30));

  Hits hits;
  index.dispatch_link(VirtLinkId(0), iv(25, 26), 99, hits);
  EXPECT_EQ(hits.plans, (std::vector<std::size_t>{0}));

  Hits old_window;
  index.dispatch_link(VirtLinkId(0), iv(0, 10), 99, old_window);
  EXPECT_TRUE(old_window.plans.empty());  // the pre-unsubscribe interval is gone
}

TEST(ResourceIndexTest, HeavyChurnStaysConsistentAcrossSweeps) {
  // Enough dead entries to cross the sweep threshold several times; after
  // every churn cycle the dispatch result must reflect only live state.
  ResourceIndex index(1, 1, 4);
  for (int cycle = 0; cycle < 100; ++cycle) {
    for (std::size_t plan = 0; plan < 4; ++plan) {
      index.unsubscribe_all(plan);
      index.subscribe_link(plan, VirtLinkId(0), iv(cycle, cycle + 1));
    }
  }
  EXPECT_EQ(index.live_entries(), 4u);
  Hits hits;
  const std::size_t examined = index.dispatch_link(VirtLinkId(0), iv(99, 100), 99, hits);
  EXPECT_EQ(examined, 4u);
  EXPECT_EQ(hits.plans, (std::vector<std::size_t>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace datastage
