// Focused tests of the engine's route-cache invalidation — the one piece of
// machinery the paper does not prescribe. Each test constructs a situation
// where a specific invalidation rule must (or must not) fire, and checks the
// Dijkstra-run counter plus the schedule against paranoid mode.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "core/registry.hpp"
#include "gen/generator.hpp"
#include "testing/builders.hpp"

namespace datastage {
namespace {

using testing::at_min;
using testing::at_sec;
using testing::ScenarioBuilder;

constexpr std::int64_t kGB = 1 << 30;
const Interval kAlways{SimTime::zero(), at_min(120)};

EngineOptions c4_options() {
  EngineOptions options;
  options.criterion = CostCriterion::kC4;
  options.eu = EUWeights{1.0, 1.0};
  return options;
}

TEST(EngineInvalidationTest, StorageConflictInvalidates) {
  // Two items and a tiny intermediate relay that can hold only one of them:
  // scheduling item 0 through the relay must invalidate item 1's plan (its
  // cached tree also went through the relay, whose capacity is now consumed).
  const Scenario s = ScenarioBuilder()
                         .machine(kGB)
                         .machine(1'500'000)  // relay: fits one 1 MB item
                         .machine(kGB)
                         .machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .link(0, 1, 8'000'000, kAlways)  // parallel: no link conflict
                         .link(1, 2, 8'000'000, kAlways)
                         .link(1, 3, 8'000'000, kAlways)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(2, at_min(30))
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(3, at_min(30))
                         .build();
  StagingEngine engine(s, c4_options());
  auto best = engine.best_candidate();
  ASSERT_TRUE(best.has_value());
  engine.apply_full_path_one(*best);

  // Item 1's plan must be recomputed: through the relay is now impossible
  // (the relay is an intermediate, holding item 0 until gc; gc is past item
  // 1's deadline window start... capacity is occupied during the transfer).
  best = engine.best_candidate();
  // With the relay full until gc (36 min) and no alternative route, item 1
  // has no satisfiable path left.
  EXPECT_FALSE(best.has_value());
  const StagingResult result = engine.finish();
  EXPECT_TRUE(result.outcomes[0][0].satisfied);
  EXPECT_FALSE(result.outcomes[1][0].satisfied);
}

TEST(EngineInvalidationTest, DisjointStorageDoesNotInvalidate) {
  // Same shape but a roomy relay: scheduling item 0 must NOT force item 1's
  // recompute — its hold still fits.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB)
                         .machine(kGB)  // roomy relay
                         .machine(kGB)
                         .machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .link(0, 1, 8'000'000, kAlways)
                         .link(1, 2, 8'000'000, kAlways)
                         .link(1, 3, 8'000'000, kAlways)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(2, at_min(30))
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(3, at_min(30))
                         .build();
  StagingEngine engine(s, c4_options());
  auto best = engine.best_candidate();
  ASSERT_TRUE(best.has_value());
  const std::size_t runs_after_first = engine.dijkstra_runs();
  EXPECT_EQ(runs_after_first, 2u);
  engine.apply_full_path_one(*best);

  best = engine.best_candidate();
  ASSERT_TRUE(best.has_value());
  // Only the scheduled item went dirty; it is exhausted, so zero recomputes.
  // The other item's plan was reused — UNLESS its tree shared the first
  // parallel link; parallel links keep the trees disjoint here.
  EXPECT_LE(engine.dijkstra_runs(), runs_after_first + 1);
  engine.apply_full_path_one(*best);
  const StagingResult result = engine.finish();
  EXPECT_TRUE(result.outcomes[0][0].satisfied);
  EXPECT_TRUE(result.outcomes[1][0].satisfied);
}

TEST(EngineInvalidationTest, LinkConflictInvalidatesOnlyOverlapping) {
  // Three items share one link, but their feasible service windows are far
  // apart in time; scheduling one reserves an interval that overlaps only
  // the plans that planned to use that exact interval.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .item(1'000'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(30))
                         .item(1'000'000)
                         .source(0, at_min(40))  // can only plan after minute 40
                         .request(1, at_min(70))
                         .build();
  StagingEngine engine(s, c4_options());
  auto best = engine.best_candidate();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(engine.dijkstra_runs(), 2u);
  EXPECT_EQ(best->item, ItemId(0));  // earlier deadline -> more urgent
  engine.apply_hop(*best);

  // Item 1's plan starts at minute 40; the reservation at t=0 does not
  // overlap it, so no recompute is needed for item 1.
  best = engine.best_candidate();
  ASSERT_TRUE(best.has_value());
  EXPECT_EQ(best->item, ItemId(1));
  EXPECT_EQ(engine.dijkstra_runs(), 2u);  // zero extra runs
}

TEST(EngineInvalidationTest, LazyEqualsParanoidOnDenseContention) {
  // A generated, heavily contended instance: the strongest end-to-end check
  // that the conservative invalidation is exact.
  GeneratorConfig config;
  config.min_machines = 8;
  config.max_machines = 8;
  config.min_requests_per_machine = 8;
  config.max_requests_per_machine = 8;
  config.min_bandwidth_bps = 50'000;
  config.max_bandwidth_bps = 300'000;
  Rng rng(5150);
  const Scenario s = generate_scenario(config, rng);

  for (const SchedulerSpec& spec : paper_pairs()) {
    EngineOptions lazy;
    lazy.criterion = spec.criterion;
    lazy.eu = EUWeights::from_log10_ratio(1.0);
    EngineOptions paranoid = lazy;
    paranoid.paranoid = true;
    const StagingResult a = run_spec(spec, s, lazy);
    const StagingResult b = run_spec(spec, s, paranoid);
    ASSERT_EQ(a.schedule.size(), b.schedule.size()) << spec.name();
    EXPECT_TRUE(std::equal(a.schedule.steps().begin(), a.schedule.steps().end(),
                           b.schedule.steps().begin()))
        << spec.name();
    EXPECT_LT(a.dijkstra_runs, b.dijkstra_runs) << spec.name();
  }
}

}  // namespace
}  // namespace datastage
