#include "core/cost.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace datastage {
namespace {

DestinationEval sat_dest(double weight, double slack_seconds, std::int32_t k = 0) {
  DestinationEval d;
  d.k = k;
  d.sat = true;
  d.weight = weight;
  d.slack_seconds = slack_seconds;
  return d;
}

DestinationEval unsat_dest(double weight, std::int32_t k = 0) {
  DestinationEval d;
  d.k = k;
  d.sat = false;
  d.weight = weight;
  return d;
}

TEST(DestinationEvalTest, EfpAndUrgencyGateOnSat) {
  const DestinationEval s = sat_dest(10.0, 60.0);
  EXPECT_DOUBLE_EQ(s.efp(), 10.0);
  EXPECT_DOUBLE_EQ(s.urgency(), -60.0);
  const DestinationEval u = unsat_dest(10.0);
  EXPECT_DOUBLE_EQ(u.efp(), 0.0);
  EXPECT_DOUBLE_EQ(u.urgency(), 0.0);
}

TEST(EUWeightsTest, FromLog10Ratio) {
  const EUWeights mid = EUWeights::from_log10_ratio(2.0);
  EXPECT_DOUBLE_EQ(mid.we, 100.0);
  EXPECT_DOUBLE_EQ(mid.wu, 1.0);
  const EUWeights neg = EUWeights::from_log10_ratio(-3.0);
  EXPECT_DOUBLE_EQ(neg.we, 0.001);
  const EUWeights pos_inf =
      EUWeights::from_log10_ratio(std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(pos_inf.we, 1.0);
  EXPECT_DOUBLE_EQ(pos_inf.wu, 0.0);
  const EUWeights neg_inf =
      EUWeights::from_log10_ratio(-std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(neg_inf.we, 0.0);
  EXPECT_DOUBLE_EQ(neg_inf.wu, 1.0);
}

TEST(CostC1Test, PrefersHighPriorityAndUrgent) {
  const EUWeights eu{1.0, 1.0};
  // Higher priority -> lower cost.
  EXPECT_LT(cost_c1(eu, sat_dest(100.0, 60.0)), cost_c1(eu, sat_dest(10.0, 60.0)));
  // Smaller slack (more urgent) -> lower cost.
  EXPECT_LT(cost_c1(eu, sat_dest(10.0, 5.0)), cost_c1(eu, sat_dest(10.0, 300.0)));
  // Exact value: -we*efp - wu*urgency = -10 + 60.
  EXPECT_DOUBLE_EQ(cost_c1(eu, sat_dest(10.0, 60.0)), 50.0);
}

TEST(CostC1Test, WeightsScaleTerms) {
  EXPECT_DOUBLE_EQ(cost_c1(EUWeights{2.0, 0.0}, sat_dest(10.0, 60.0)), -20.0);
  EXPECT_DOUBLE_EQ(cost_c1(EUWeights{0.0, 3.0}, sat_dest(10.0, 60.0)), 180.0);
}

TEST(CostC2Test, SumsEfpAndTakesMostUrgent) {
  const EUWeights eu{1.0, 1.0};
  const std::vector<DestinationEval> dests{sat_dest(10.0, 100.0, 0),
                                           sat_dest(100.0, 5.0, 1),
                                           unsat_dest(100.0, 2)};
  // ΣEfp = 110 (unsat contributes 0); most urgent slack = 5.
  EXPECT_DOUBLE_EQ(cost_c2(eu, dests), -110.0 + 5.0);
}

TEST(CostC2Test, UnsatOnlyGroupHasZeroUrgencyTerm) {
  const std::vector<DestinationEval> dests{unsat_dest(10.0)};
  EXPECT_DOUBLE_EQ(cost_c2(EUWeights{1.0, 1.0}, dests), 0.0);
}

TEST(CostC2Test, CannotDistinguishUrgencySpread) {
  // The paper's motivating flaw (§4.8): four urgent dests vs one urgent plus
  // three loose — C2 scores them identically (same ΣEfp, same max urgency).
  const EUWeights eu{1.0, 1.0};
  const std::vector<DestinationEval> all_urgent{
      sat_dest(10.0, 1.0, 0), sat_dest(10.0, 1.0, 1), sat_dest(10.0, 1.0, 2),
      sat_dest(10.0, 1.0, 3)};
  const std::vector<DestinationEval> one_urgent{
      sat_dest(10.0, 1.0, 0), sat_dest(10.0, 900.0, 1), sat_dest(10.0, 900.0, 2),
      sat_dest(10.0, 900.0, 3)};
  EXPECT_DOUBLE_EQ(cost_c2(eu, all_urgent), cost_c2(eu, one_urgent));
  // ...while C4 prefers the all-urgent item (strictly lower cost).
  EXPECT_LT(cost_c4(eu, all_urgent), cost_c4(eu, one_urgent));
}

TEST(CostC3Test, SumsPriorityOverUrgency) {
  // efp/urgency with urgency = -slack: 10/-5 + 100/-50 = -4.
  const std::vector<DestinationEval> dests{sat_dest(10.0, 5.0, 0),
                                           sat_dest(100.0, 50.0, 1)};
  EXPECT_DOUBLE_EQ(cost_c3(dests), -4.0);
}

TEST(CostC3Test, IgnoresUnsatAndClampsZeroSlack) {
  const std::vector<DestinationEval> only_unsat{unsat_dest(100.0)};
  EXPECT_DOUBLE_EQ(cost_c3(only_unsat), 0.0);
  // Zero slack would divide by zero; the clamp makes it very negative
  // (dominant) but finite.
  const std::vector<DestinationEval> zero_slack{sat_dest(10.0, 0.0)};
  EXPECT_TRUE(std::isfinite(cost_c3(zero_slack)));
  EXPECT_LT(cost_c3(zero_slack), -1e6);
}

TEST(CostC3Test, IndependentOfEUWeights) {
  // C3 never reads the weights; evaluate_cost must agree for any EUWeights.
  const std::vector<DestinationEval> dests{sat_dest(10.0, 5.0)};
  const double a = evaluate_cost(CostCriterion::kC3, EUWeights{1.0, 1.0}, dests);
  const double b = evaluate_cost(CostCriterion::kC3, EUWeights{1000.0, 0.001}, dests);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(CostC4Test, SumsBothTerms) {
  const EUWeights eu{1.0, 1.0};
  const std::vector<DestinationEval> dests{sat_dest(10.0, 100.0, 0),
                                           sat_dest(100.0, 5.0, 1),
                                           unsat_dest(50.0, 2)};
  // -ΣEfp + Σslack = -110 + 105.
  EXPECT_DOUBLE_EQ(cost_c4(eu, dests), -5.0);
}

TEST(CostC4Test, MoreSatisfiableDestinationsLowerCost) {
  const EUWeights eu{1.0, 0.0};  // priority term only
  const std::vector<DestinationEval> one{sat_dest(10.0, 10.0, 0)};
  const std::vector<DestinationEval> two{sat_dest(10.0, 10.0, 0),
                                         sat_dest(10.0, 10.0, 1)};
  EXPECT_LT(cost_c4(eu, two), cost_c4(eu, one));
}

TEST(CostPriorityOnlyTest, IgnoresUrgency) {
  EXPECT_DOUBLE_EQ(cost_priority_only(sat_dest(100.0, 1.0)), -100.0);
  EXPECT_DOUBLE_EQ(cost_priority_only(sat_dest(100.0, 10000.0)), -100.0);
}

TEST(CostC5Test, FloorsTinySlacks) {
  // Raw C3 lets a 1 ms slack dominate; C5 clamps it to the 60 s floor.
  const std::vector<DestinationEval> tiny{sat_dest(1.0, 0.001)};
  const std::vector<DestinationEval> minute{sat_dest(1.0, 60.0)};
  EXPECT_DOUBLE_EQ(cost_c5(tiny), cost_c5(minute));
  EXPECT_DOUBLE_EQ(cost_c5(minute), -1.0 / 60.0);
}

TEST(CostC5Test, AboveFloorBehavesLikeC3) {
  const std::vector<DestinationEval> dests{sat_dest(10.0, 120.0, 0),
                                           sat_dest(100.0, 600.0, 1)};
  EXPECT_DOUBLE_EQ(cost_c5(dests), -10.0 / 120.0 - 100.0 / 600.0);
  EXPECT_DOUBLE_EQ(cost_c5(dests), cost_c3(dests));
}

TEST(CostC5Test, UnsatContributesNothingAndIsEUIndependent) {
  const std::vector<DestinationEval> dests{unsat_dest(100.0), sat_dest(10.0, 120.0)};
  EXPECT_DOUBLE_EQ(cost_c5(dests), -10.0 / 120.0);
  EXPECT_DOUBLE_EQ(evaluate_cost(CostCriterion::kC5, EUWeights{9.0, 0.1}, dests),
                   evaluate_cost(CostCriterion::kC5, EUWeights{0.1, 9.0}, dests));
}

TEST(CostDispatchTest, NamesAndPerDestination) {
  EXPECT_STREQ(cost_name(CostCriterion::kC1), "C1");
  EXPECT_STREQ(cost_name(CostCriterion::kC4), "C4");
  EXPECT_STREQ(cost_name(CostCriterion::kPriorityOnly), "priority_only");
  EXPECT_TRUE(is_per_destination(CostCriterion::kC1));
  EXPECT_TRUE(is_per_destination(CostCriterion::kPriorityOnly));
  EXPECT_FALSE(is_per_destination(CostCriterion::kC2));
  EXPECT_FALSE(is_per_destination(CostCriterion::kC3));
  EXPECT_FALSE(is_per_destination(CostCriterion::kC4));
}

TEST(CostDispatchTest, EvaluateMatchesDirectCalls) {
  const EUWeights eu{2.0, 3.0};
  const std::vector<DestinationEval> one{sat_dest(10.0, 5.0)};
  const std::vector<DestinationEval> many{sat_dest(10.0, 5.0, 0),
                                          sat_dest(1.0, 50.0, 1)};
  EXPECT_DOUBLE_EQ(evaluate_cost(CostCriterion::kC1, eu, one), cost_c1(eu, one[0]));
  EXPECT_DOUBLE_EQ(evaluate_cost(CostCriterion::kC2, eu, many), cost_c2(eu, many));
  EXPECT_DOUBLE_EQ(evaluate_cost(CostCriterion::kC3, eu, many), cost_c3(many));
  EXPECT_DOUBLE_EQ(evaluate_cost(CostCriterion::kC4, eu, many), cost_c4(eu, many));
}

}  // namespace
}  // namespace datastage
