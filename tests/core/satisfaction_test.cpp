#include "core/satisfaction.hpp"

#include <gtest/gtest.h>

#include "testing/builders.hpp"

namespace datastage {
namespace {

using testing::at_min;
using testing::ScenarioBuilder;

constexpr std::int64_t kGB = 1 << 30;
const Interval kAlways{SimTime::zero(), at_min(120)};

Scenario two_item_scenario() {
  return ScenarioBuilder()
      .machine(kGB).machine(kGB).machine(kGB)
      .link(0, 1, 8'000'000, kAlways)
      .link(0, 2, 8'000'000, kAlways)
      .item(1'000)
      .source(0, SimTime::zero())
      .request(1, at_min(10), kPriorityHigh)
      .request(2, at_min(20), kPriorityLow)
      .item(1'000)
      .source(0, SimTime::zero())
      .request(2, at_min(30), kPriorityMedium)
      .build();
}

TEST(OutcomeTrackerTest, StartsAllPending) {
  const Scenario s = two_item_scenario();
  const OutcomeTracker tracker(s);
  EXPECT_EQ(tracker.pending_count(), 3u);
  EXPECT_TRUE(tracker.any_pending(ItemId(0)));
  EXPECT_EQ(tracker.pending_of(ItemId(0)).size(), 2u);
  EXPECT_EQ(tracker.latest_pending_deadline(ItemId(0)), at_min(20));
  EXPECT_EQ(tracker.latest_pending_deadline(ItemId(1)), at_min(30));
}

TEST(OutcomeTrackerTest, OnTimeArrivalSatisfies) {
  const Scenario s = two_item_scenario();
  OutcomeTracker tracker(s);
  tracker.note_arrival(ItemId(0), MachineId(1), at_min(5));
  EXPECT_EQ(tracker.pending_count(), 2u);
  EXPECT_TRUE(tracker.outcomes()[0][0].satisfied);
  EXPECT_EQ(tracker.outcomes()[0][0].arrival, at_min(5));
  // The other request of the same item stays pending; the deadline bound
  // shrinks to its own.
  EXPECT_EQ(tracker.latest_pending_deadline(ItemId(0)), at_min(20));
}

TEST(OutcomeTrackerTest, LateArrivalRecordsButStaysPending) {
  const Scenario s = two_item_scenario();
  OutcomeTracker tracker(s);
  tracker.note_arrival(ItemId(0), MachineId(1), at_min(15));  // deadline 10
  EXPECT_FALSE(tracker.outcomes()[0][0].satisfied);
  EXPECT_EQ(tracker.outcomes()[0][0].arrival, at_min(15));
  EXPECT_EQ(tracker.pending_count(), 3u);  // still pending (could improve)
  // A later, earlier-in-time arrival can still satisfy it.
  tracker.note_arrival(ItemId(0), MachineId(1), at_min(9));
  EXPECT_TRUE(tracker.outcomes()[0][0].satisfied);
  EXPECT_EQ(tracker.outcomes()[0][0].arrival, at_min(9));
}

TEST(OutcomeTrackerTest, ArrivalAtNonRequestingMachineIgnored) {
  const Scenario s = two_item_scenario();
  OutcomeTracker tracker(s);
  tracker.note_arrival(ItemId(1), MachineId(1), at_min(1));  // M1 never asked for d1
  EXPECT_EQ(tracker.pending_count(), 3u);
  EXPECT_FALSE(tracker.outcomes()[1][0].satisfied);
}

TEST(OutcomeTrackerTest, ArrivalExactlyAtDeadlineSatisfies) {
  const Scenario s = two_item_scenario();
  OutcomeTracker tracker(s);
  tracker.note_arrival(ItemId(0), MachineId(1), at_min(10));
  EXPECT_TRUE(tracker.outcomes()[0][0].satisfied);
}

TEST(OutcomeTrackerTest, ArrivalOneMicrosecondPastDeadlineStaysPending) {
  const Scenario s = two_item_scenario();
  OutcomeTracker tracker(s);
  tracker.note_arrival(ItemId(0), MachineId(1),
                       at_min(10) + SimDuration::from_usec(1));
  EXPECT_FALSE(tracker.outcomes()[0][0].satisfied);
  // The late arrival is still recorded (for arrival statistics).
  EXPECT_EQ(tracker.outcomes()[0][0].arrival,
            at_min(10) + SimDuration::from_usec(1));
  EXPECT_EQ(tracker.pending_count(), 3u);
}

TEST(OutcomeTrackerTest, DuplicateDestinationRequestsAllResolved) {
  // Unchecked scenarios (the dynamic stager's effective replay) may carry an
  // original and an ad-hoc request sharing one destination. A single arrival
  // must resolve every pending request it serves, not just the first.
  const Scenario s = ScenarioBuilder()
                         .machine(kGB).machine(kGB)
                         .link(0, 1, 8'000'000, kAlways)
                         .item(1'000)
                         .source(0, SimTime::zero())
                         .request(1, at_min(10), kPriorityHigh)
                         .request(1, at_min(20), kPriorityLow)
                         .build_unchecked();
  OutcomeTracker tracker(s);
  tracker.note_arrival(ItemId(0), MachineId(1), at_min(5));
  EXPECT_EQ(tracker.pending_count(), 0u);
  EXPECT_TRUE(tracker.outcomes()[0][0].satisfied);
  EXPECT_TRUE(tracker.outcomes()[0][1].satisfied);
}

TEST(OutcomeTrackerTest, LatestPendingDeadlineZeroWhenDrained) {
  const Scenario s = two_item_scenario();
  OutcomeTracker tracker(s);
  tracker.note_arrival(ItemId(1), MachineId(2), at_min(1));
  EXPECT_FALSE(tracker.any_pending(ItemId(1)));
  EXPECT_EQ(tracker.latest_pending_deadline(ItemId(1)), SimTime::zero());
}

TEST(MetricsTest, WeightedValueUsesWeighting) {
  const Scenario s = two_item_scenario();
  OutcomeTracker tracker(s);
  tracker.note_arrival(ItemId(0), MachineId(1), at_min(5));   // high
  tracker.note_arrival(ItemId(1), MachineId(2), at_min(5));   // medium
  const OutcomeMatrix outcomes = tracker.outcomes();
  EXPECT_DOUBLE_EQ(
      weighted_value(s, PriorityWeighting::w_1_10_100(), outcomes), 110.0);
  EXPECT_DOUBLE_EQ(weighted_value(s, PriorityWeighting::w_1_5_10(), outcomes),
                   15.0);
}

TEST(MetricsTest, SatisfiedByClassAndCount) {
  const Scenario s = two_item_scenario();
  OutcomeTracker tracker(s);
  tracker.note_arrival(ItemId(0), MachineId(1), at_min(5));   // high
  tracker.note_arrival(ItemId(0), MachineId(2), at_min(5));   // low
  const auto counts = satisfied_by_class(s, 3, tracker.outcomes());
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(satisfied_count(tracker.outcomes()), 2u);
}

TEST(MetricsTest, EmptyOutcomesAreZero) {
  const Scenario s = two_item_scenario();
  const OutcomeTracker tracker(s);
  EXPECT_DOUBLE_EQ(
      weighted_value(s, PriorityWeighting::w_1_10_100(), tracker.outcomes()), 0.0);
  EXPECT_EQ(satisfied_count(tracker.outcomes()), 0u);
}

}  // namespace
}  // namespace datastage
