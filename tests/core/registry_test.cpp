#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "testing/builders.hpp"

namespace datastage {
namespace {

TEST(RegistryTest, PaperPairsAreTheElevenCombinations) {
  const auto pairs = paper_pairs();
  ASSERT_EQ(pairs.size(), 11u);
  std::set<std::string> names;
  for (const auto& spec : pairs) {
    EXPECT_TRUE(is_valid_pair(spec)) << spec.name();
    names.insert(spec.name());
  }
  EXPECT_EQ(names.size(), 11u);  // all distinct
  EXPECT_TRUE(names.count("partial/C1"));
  EXPECT_TRUE(names.count("full_one/C4"));
  EXPECT_TRUE(names.count("full_all/C2"));
  EXPECT_FALSE(names.count("full_all/C1"));  // the excluded twelfth pair
}

TEST(RegistryTest, PairsForEachHeuristic) {
  EXPECT_EQ(pairs_for(HeuristicKind::kPartial).size(), 4u);
  EXPECT_EQ(pairs_for(HeuristicKind::kFullOne).size(), 4u);
  EXPECT_EQ(pairs_for(HeuristicKind::kFullAll).size(), 3u);
}

TEST(RegistryTest, InvalidPairs) {
  EXPECT_FALSE(is_valid_pair({HeuristicKind::kFullAll, CostCriterion::kC1}));
  EXPECT_FALSE(is_valid_pair({HeuristicKind::kPartial, CostCriterion::kPriorityOnly}));
  EXPECT_TRUE(is_valid_pair({HeuristicKind::kFullAll, CostCriterion::kC3}));
}

TEST(RegistryTest, NamesRoundTripThroughParse) {
  for (const auto& spec : paper_pairs()) {
    const auto parsed = parse_spec(spec.name());
    ASSERT_TRUE(parsed.has_value()) << spec.name();
    EXPECT_EQ(*parsed, spec);
  }
  EXPECT_FALSE(parse_spec("full_all/C1").has_value());
  EXPECT_FALSE(parse_spec("bogus").has_value());
  EXPECT_FALSE(parse_spec("").has_value());
}

TEST(RegistryTest, ExtendedPairsAddC5) {
  const auto extended = extended_pairs();
  ASSERT_EQ(extended.size(), 14u);
  std::set<std::string> names;
  for (const auto& spec : extended) names.insert(spec.name());
  EXPECT_TRUE(names.count("partial/C5"));
  EXPECT_TRUE(names.count("full_one/C5"));
  EXPECT_TRUE(names.count("full_all/C5"));
  // C5 is aggregate: legal with full_all.
  EXPECT_TRUE(is_valid_pair({HeuristicKind::kFullAll, CostCriterion::kC5}));
  // parse_spec resolves the extension names too.
  const auto parsed = parse_spec("full_all/C5");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->criterion, CostCriterion::kC5);
}

TEST(RegistryTest, RunSpecDispatchesC5) {
  const Scenario s = testing::chain_scenario();
  EngineOptions options;
  for (const HeuristicKind kind :
       {HeuristicKind::kPartial, HeuristicKind::kFullOne, HeuristicKind::kFullAll}) {
    options.criterion = CostCriterion::kC5;
    const StagingResult result = run_spec({kind, CostCriterion::kC5}, s, options);
    EXPECT_TRUE(result.outcomes[0][0].satisfied) << heuristic_name(kind);
  }
}

TEST(RegistryTest, HeuristicNames) {
  EXPECT_STREQ(heuristic_name(HeuristicKind::kPartial), "partial");
  EXPECT_STREQ(heuristic_name(HeuristicKind::kFullOne), "full_one");
  EXPECT_STREQ(heuristic_name(HeuristicKind::kFullAll), "full_all");
}

TEST(RegistryTest, RunSpecDispatchesEveryPair) {
  const Scenario s = testing::chain_scenario();
  EngineOptions options;
  options.eu = EUWeights{1.0, 1.0};
  for (const auto& spec : paper_pairs()) {
    options.criterion = spec.criterion;
    const StagingResult result = run_spec(spec, s, options);
    EXPECT_TRUE(result.outcomes[0][0].satisfied) << spec.name();
  }
}

TEST(RegistryTest, RunCaseMatchesRunSpecDerivedStats) {
  const Scenario s = testing::chain_scenario();
  EngineOptions options;
  options.weighting = PriorityWeighting::w_1_10_100();
  options.eu = EUWeights::from_log10_ratio(1.0);
  for (const auto& spec : paper_pairs()) {
    options.criterion = spec.criterion;
    const CaseResult result = run_case(spec, s, options);
    const StagingResult direct = run_spec(spec, s, options);
    EXPECT_EQ(result.weighted_value,
              weighted_value(s, options.weighting, direct.outcomes))
        << spec.name();
    EXPECT_EQ(result.satisfied, satisfied_count(direct.outcomes)) << spec.name();
    ASSERT_EQ(result.by_class.size(), options.weighting.num_classes());
    std::size_t by_class_total = 0;
    for (const std::size_t n : result.by_class) by_class_total += n;
    EXPECT_EQ(by_class_total, result.satisfied) << spec.name();
    EXPECT_EQ(result.staging.schedule.size(), direct.schedule.size()) << spec.name();
  }
}

TEST(RegistryDeathTest, RunSpecRejectsInvalidPair) {
  const Scenario s = testing::chain_scenario();
  EXPECT_DEATH(
      run_spec({HeuristicKind::kFullAll, CostCriterion::kC1}, s, EngineOptions{}),
      "not admitted");
}

}  // namespace
}  // namespace datastage
