#include "gen/generator.hpp"

#include <gtest/gtest.h>

#include <set>

#include "model/scenario_io.hpp"
#include "net/topology.hpp"

namespace datastage {
namespace {

GeneratorConfig default_config() { return GeneratorConfig{}; }

Scenario generate(std::uint64_t seed, GeneratorConfig config = default_config()) {
  Rng rng(seed);
  return generate_scenario(config, rng);
}

TEST(GeneratorTest, ProducesValidScenario) {
  const Scenario s = generate(1);
  EXPECT_TRUE(s.validate().empty());
}

TEST(GeneratorTest, MachineCountWithinPaperRange) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Scenario s = generate(seed);
    EXPECT_GE(s.machine_count(), 10u);
    EXPECT_LE(s.machine_count(), 12u);
  }
}

TEST(GeneratorTest, CapacitiesWithinPaperRange) {
  const Scenario s = generate(2);
  for (const Machine& m : s.machines) {
    EXPECT_GE(m.capacity_bytes, std::int64_t{10} * 1024 * 1024);
    EXPECT_LE(m.capacity_bytes, std::int64_t{20} * 1024 * 1024 * 1024);
  }
}

TEST(GeneratorTest, StronglyConnected) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Scenario s = generate(seed);
    EXPECT_TRUE(Topology(s).strongly_connected()) << "seed " << seed;
  }
}

TEST(GeneratorTest, RequestVolumeWithinPaperRange) {
  const Scenario s = generate(3);
  const std::size_t m = s.machine_count();
  EXPECT_GE(s.request_count(), 20 * m);
  EXPECT_LE(s.request_count(), 40 * m);
}

TEST(GeneratorTest, SourceAndDestinationCountsBounded) {
  const Scenario s = generate(4);
  for (const DataItem& item : s.items) {
    EXPECT_GE(item.sources.size(), 1u);
    EXPECT_LE(item.sources.size(), 5u);
    EXPECT_GE(item.requests.size(), 1u);
    EXPECT_LE(item.requests.size(), 5u);
    // Destinations are never sources of the same item (§5.3).
    std::set<std::int32_t> sources;
    for (const SourceLocation& src : item.sources) sources.insert(src.machine.value());
    for (const Request& r : item.requests) {
      EXPECT_EQ(sources.count(r.destination.value()), 0u);
    }
  }
}

TEST(GeneratorTest, ItemSizesAndBandwidthsWithinPaperRange) {
  const Scenario s = generate(5);
  for (const DataItem& item : s.items) {
    EXPECT_GE(item.size_bytes, 10 * 1024);
    EXPECT_LE(item.size_bytes, 100 * 1024 * 1024);
  }
  for (const PhysicalLink& pl : s.phys_links) {
    EXPECT_GE(pl.bandwidth_bps, 10'000);
    EXPECT_LE(pl.bandwidth_bps, 1'500'000);
  }
}

TEST(GeneratorTest, TimingParametersWithinPaperRange) {
  const Scenario s = generate(6);
  EXPECT_EQ(s.horizon, SimTime::zero() + SimDuration::hours(2));
  EXPECT_EQ(s.gc_gamma, SimDuration::minutes(6));
  for (const DataItem& item : s.items) {
    const SimTime start = item.sources.front().available_at;
    EXPECT_GE(start, SimTime::zero());
    EXPECT_LE(start, SimTime::zero() + SimDuration::minutes(60));
    // All sources of one item share the item's start time (§5.3).
    for (const SourceLocation& src : item.sources) {
      EXPECT_EQ(src.available_at, start);
    }
    for (const Request& r : item.requests) {
      EXPECT_GE(r.deadline - start, SimDuration::minutes(15));
      EXPECT_LE(r.deadline - start, SimDuration::minutes(60));
      EXPECT_GE(r.priority, 0);
      EXPECT_LE(r.priority, 2);
    }
  }
}

TEST(GeneratorTest, VirtualLinksRespectSiblingStructure) {
  const Scenario s = generate(7);
  // Windows of one physical link share its duration choice, never overlap,
  // and only windows starting before the keep-cutoff are retained.
  const GeneratorConfig config;
  for (const VirtualLink& vl : s.virt_links) {
    EXPECT_LT(vl.window.begin, config.keep_links_before);
    EXPECT_FALSE(vl.window.empty());
  }
}

TEST(GeneratorTest, DeterministicForSeed) {
  const Scenario a = generate(42);
  const Scenario b = generate(42);
  EXPECT_EQ(scenario_to_string(a), scenario_to_string(b));
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const Scenario a = generate(42);
  const Scenario b = generate(43);
  EXPECT_NE(scenario_to_string(a), scenario_to_string(b));
}

TEST(GeneratorTest, CasesAreStableUnderCountChanges) {
  GeneratorConfig config;
  config.min_requests_per_machine = 4;
  config.max_requests_per_machine = 6;
  const auto two = generate_cases(config, 99, 2);
  const auto five = generate_cases(config, 99, 5);
  ASSERT_EQ(two.size(), 2u);
  ASSERT_EQ(five.size(), 5u);
  EXPECT_EQ(scenario_to_string(two[0]), scenario_to_string(five[0]));
  EXPECT_EQ(scenario_to_string(two[1]), scenario_to_string(five[1]));
}

TEST(GeneratorTest, LoadMultiplierScalesRequests) {
  GeneratorConfig config;
  config.min_requests_per_machine = 20;
  config.max_requests_per_machine = 20;
  config.min_machines = 10;
  config.max_machines = 10;

  Rng rng1(11);
  const Scenario base = generate_scenario(config, rng1);
  config.load_multiplier = 2.0;
  Rng rng2(11);
  const Scenario heavy = generate_scenario(config, rng2);
  EXPECT_EQ(base.request_count(), 200u);
  EXPECT_EQ(heavy.request_count(), 400u);
}

TEST(GeneratorTest, InitialSourceCopiesFitTheirMachines) {
  // Implicitly checked by NetworkState's constructor assertion, but verify
  // the bookkeeping directly over several seeds.
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    const Scenario s = generate(seed);
    std::vector<std::int64_t> used(s.machine_count(), 0);
    for (const DataItem& item : s.items) {
      for (const SourceLocation& src : item.sources) {
        used[src.machine.index()] += item.size_bytes;
      }
    }
    for (std::size_t m = 0; m < s.machine_count(); ++m) {
      EXPECT_LE(used[m], s.machines[m].capacity_bytes) << "machine " << m;
    }
  }
}

TEST(GeneratorTest, OutDegreeAtLeastPaperMinimum) {
  const Scenario s = generate(8);
  const Topology topo(s);
  for (std::size_t m = 0; m < s.machine_count(); ++m) {
    // The repair pass may add links, so only the lower bound is guaranteed.
    EXPECT_GE(topo.out_degree(MachineId(static_cast<std::int32_t>(m))), 4);
  }
}

}  // namespace
}  // namespace datastage
