#include "gen/fault_gen.hpp"

#include <gtest/gtest.h>

#include "model/fault_io.hpp"
#include "testing/builders.hpp"

namespace datastage {
namespace {

using testing::at_min;
using testing::ScenarioBuilder;

constexpr std::int64_t kGB = 1 << 30;
const Interval kAlways{SimTime::zero(), at_min(120)};

// Several links and a mix of single- and dual-source items, so every fault
// kind has somewhere to land.
Scenario fault_target() {
  return ScenarioBuilder()
      .machine(kGB).machine(kGB).machine(kGB).machine(kGB)
      .link(0, 1, 8'000'000, kAlways)
      .link(1, 2, 8'000'000, kAlways)
      .link(3, 2, 4'000'000, kAlways)
      .item(1'000'000)
      .source(0, SimTime::zero())
      .source(3, SimTime::zero())
      .request(2, at_min(30), kPriorityHigh)
      .item(2'000'000)
      .source(0, at_min(1))
      .request(2, at_min(40))
      .build();
}

TEST(FaultGenTest, DeterministicInSeed) {
  const Scenario s = fault_target();
  FaultGenConfig config;
  config.intensity = 0.6;
  Rng a(1234);
  Rng b(1234);
  const FaultSpec fa = generate_faults(s, config, a);
  const FaultSpec fb = generate_faults(s, config, b);
  EXPECT_EQ(faults_to_string(fa), faults_to_string(fb));
}

TEST(FaultGenTest, ZeroIntensityIsEmpty) {
  const Scenario s = fault_target();
  FaultGenConfig config;
  config.intensity = 0.0;
  Rng rng(42);
  EXPECT_TRUE(generate_faults(s, config, rng).empty());
}

TEST(FaultGenTest, GeneratedSpecValidates) {
  const Scenario s = fault_target();
  FaultGenConfig config;
  config.intensity = 1.0;
  Rng rng(7);
  const FaultSpec faults = generate_faults(s, config, rng);
  EXPECT_FALSE(faults.empty());
  EXPECT_TRUE(faults.validate(s).empty());
}

TEST(FaultGenTest, FullIntensityOutagesEveryLink) {
  // outage probability = min(1, intensity * scale) saturates at 1.
  const Scenario s = fault_target();
  FaultGenConfig config;
  config.intensity = 1.0;
  config.outage_prob_scale = 1.0;
  Rng rng(99);
  const FaultSpec faults = generate_faults(s, config, rng);
  EXPECT_EQ(faults.outages.size(), s.phys_links.size());
}

TEST(FaultGenTest, FactorsArePreQuantized) {
  const Scenario s = fault_target();
  FaultGenConfig config;
  config.intensity = 1.0;
  config.degrade_prob_scale = 2.0;  // saturate: every link gets a brownout
  Rng rng(5);
  const FaultSpec faults = generate_faults(s, config, rng);
  ASSERT_EQ(faults.degradations.size(), s.phys_links.size());
  for (const LinkDegradation& d : faults.degradations) {
    EXPECT_EQ(d.factor, quantize_factor(d.factor));
    EXPECT_GT(d.factor, 0.0);
    EXPECT_LT(d.factor, 1.0);
  }
}

TEST(FaultGenTest, LossesOnlyHitMultiSourceItems) {
  const Scenario s = fault_target();
  FaultGenConfig config;
  config.intensity = 1.0;
  config.loss_prob_scale = 2.0;  // saturate the per-item loss probability
  Rng rng(11);
  const FaultSpec faults = generate_faults(s, config, rng);
  // d1 has a single source and must keep it; d0 (two sources) loses one, and
  // the loss lands while the copy exists.
  ASSERT_EQ(faults.copy_losses.size(), 1u);
  EXPECT_EQ(faults.copy_losses[0].item_name, "d0");
  EXPECT_GE(faults.copy_losses[0].at, SimTime::zero());
  EXPECT_LT(faults.copy_losses[0].at, s.horizon);
}

}  // namespace
}  // namespace datastage
