// Generator configuration coverage: presets, non-default parameter ranges,
// the at-most-two-parallel-links rule, latency, and many priority classes.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "core/heuristics.hpp"
#include "gen/generator.hpp"
#include "model/describe.hpp"
#include "net/topology.hpp"

namespace datastage {
namespace {

TEST(GeneratorConfigTest, PaperPresetIsTheDefault) {
  const GeneratorConfig paper = GeneratorConfig::paper();
  const GeneratorConfig defaults;
  EXPECT_EQ(paper.min_machines, defaults.min_machines);
  EXPECT_EQ(paper.max_requests_per_machine, defaults.max_requests_per_machine);
  EXPECT_EQ(paper.gc_gamma, SimDuration::minutes(6));
  EXPECT_EQ(paper.horizon, SimTime::zero() + SimDuration::hours(2));
}

TEST(GeneratorConfigTest, LightPresetIsSmaller) {
  const GeneratorConfig light = GeneratorConfig::light();
  Rng rng(4);
  const Scenario s = generate_scenario(light, rng);
  EXPECT_LE(s.machine_count(), 10u);
  EXPECT_LE(s.request_count(), 8u * s.machine_count());
  EXPECT_TRUE(Topology(s).strongly_connected());
}

TEST(GeneratorConfigTest, CongestedPresetIsOversubscribed) {
  Rng rng1(4);
  Rng rng2(4);
  const Scenario base = generate_scenario(GeneratorConfig::paper(), rng1);
  const Scenario heavy = generate_scenario(GeneratorConfig::congested(), rng2);
  // Identical seed, doubled load multiplier: about twice the demand.
  EXPECT_GT(describe(heavy).demand_supply_ratio,
            1.5 * describe(base).demand_supply_ratio);
}

TEST(GeneratorConfigTest, AtMostTwoParallelLinksByDefault) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const Scenario s = generate_scenario(GeneratorConfig::paper(), rng);
    std::map<std::pair<std::int32_t, std::int32_t>, int> parallel;
    for (const PhysicalLink& pl : s.phys_links) {
      ++parallel[{pl.from.value(), pl.to.value()}];
    }
    for (const auto& [pair, count] : parallel) {
      // The strong-connectivity repair pass may add a third in pathological
      // graphs; with degree >= 4 it never fires, so the paper's bound holds.
      EXPECT_LE(count, 2) << pair.first << "->" << pair.second;
    }
  }
}

TEST(GeneratorConfigTest, NoSecondLinksWhenProbabilityZero) {
  GeneratorConfig config = GeneratorConfig::light();
  config.second_link_probability = 0.0;
  Rng rng(6);
  const Scenario s = generate_scenario(config, rng);
  std::map<std::pair<std::int32_t, std::int32_t>, int> parallel;
  for (const PhysicalLink& pl : s.phys_links) {
    ++parallel[{pl.from.value(), pl.to.value()}];
  }
  for (const auto& [pair, count] : parallel) {
    EXPECT_EQ(count, 1) << pair.first << "->" << pair.second;
  }
}

TEST(GeneratorConfigTest, LatencyRangeIsHonored) {
  GeneratorConfig config = GeneratorConfig::light();
  config.min_latency = SimDuration::milliseconds(100);
  config.max_latency = SimDuration::milliseconds(400);
  Rng rng(8);
  const Scenario s = generate_scenario(config, rng);
  for (const PhysicalLink& pl : s.phys_links) {
    EXPECT_GE(pl.latency, SimDuration::milliseconds(100));
    EXPECT_LE(pl.latency, SimDuration::milliseconds(400));
  }
  for (const VirtualLink& vl : s.virt_links) {
    EXPECT_EQ(vl.latency, s.plink(vl.phys).latency);
  }
}

TEST(GeneratorConfigTest, FivePriorityClasses) {
  GeneratorConfig config = GeneratorConfig::light();
  config.priority_classes = 5;
  Rng rng(9);
  const Scenario s = generate_scenario(config, rng);
  Priority max_seen = 0;
  for (const DataItem& item : s.items) {
    for (const Request& r : item.requests) {
      EXPECT_GE(r.priority, 0);
      EXPECT_LT(r.priority, 5);
      max_seen = std::max(max_seen, r.priority);
    }
  }
  EXPECT_GT(max_seen, 2);  // classes beyond the paper's three are exercised

  // The full pipeline handles 5 classes with a matching weighting.
  const PriorityWeighting weighting({1.0, 3.0, 9.0, 27.0, 81.0});
  EngineOptions options;
  options.weighting = weighting;
  options.criterion = CostCriterion::kC4;
  options.eu = EUWeights::from_log10_ratio(1.0);
  const StagingResult result = run_full_path_one(s, options);
  EXPECT_GT(weighted_value(s, weighting, result.outcomes), 0.0);
}

TEST(GeneratorConfigTest, HugePresetIsValidAndScalable) {
  const GeneratorConfig huge = GeneratorConfig::huge();
  EXPECT_TRUE(huge.validation_errors().empty());
  EXPECT_TRUE(huge.scalable_sampling);
  EXPECT_GE(huge.min_machines, 5000);
  EXPECT_GE(static_cast<std::int64_t>(huge.min_machines) *
                huge.min_requests_per_machine,
            500'000);
}

// The scalable sampling path must produce valid, strongly connected
// scenarios with the same structural guarantees as the paper path.
TEST(GeneratorConfigTest, ScalableSamplingProducesValidScenarios) {
  GeneratorConfig config = GeneratorConfig::light();
  config.scalable_sampling = true;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    const Scenario s = generate_scenario(config, rng);  // check_valid inside
    EXPECT_TRUE(Topology(s).strongly_connected());
    EXPECT_GE(s.machine_count(), 8u);
    for (const DataItem& item : s.items) {
      ASSERT_FALSE(item.sources.empty());
      ASSERT_FALSE(item.requests.empty());
      for (const Request& r : item.requests) {
        for (const SourceLocation& src : item.sources) {
          EXPECT_NE(r.destination, src.machine);
        }
      }
    }
  }
}

// --- parameter validation (exit-2 diagnostics) ----------------------------

TEST(GeneratorConfigDeathTest, ReversedMachineRangeDies) {
  GeneratorConfig config = GeneratorConfig::light();
  config.min_machines = 20;
  config.max_machines = 10;
  EXPECT_FALSE(config.validation_errors().empty());
  EXPECT_EXIT(config.validate_or_die(), testing::ExitedWithCode(2),
              "min_machines > max_machines");
}

TEST(GeneratorConfigDeathTest, ReversedItemBytesRangeDies) {
  GeneratorConfig config = GeneratorConfig::light();
  config.min_item_bytes = 1024;
  config.max_item_bytes = 512;
  EXPECT_EXIT(config.validate_or_die(), testing::ExitedWithCode(2),
              "min_item_bytes > max_item_bytes");
}

TEST(GeneratorConfigDeathTest, ReversedOutDegreeRangeDiesThroughGenerate) {
  GeneratorConfig config = GeneratorConfig::light();
  config.min_out_degree = 9;
  config.max_out_degree = 3;
  Rng rng(1);
  // generate_scenario validates before drawing anything.
  EXPECT_EXIT(generate_scenario(config, rng), testing::ExitedWithCode(2),
              "min_out_degree > max_out_degree");
}

TEST(GeneratorConfigDeathTest, RequestIdOverflowDies) {
  GeneratorConfig config = GeneratorConfig::light();
  // 100k machines x 50k requests/machine = 5e9 > INT32_MAX: the old code
  // wrapped the 32-bit request ids silently inside the generator loop.
  config.min_machines = 100'000;
  config.max_machines = 100'000;
  config.min_requests_per_machine = 50'000;
  config.max_requests_per_machine = 50'000;
  EXPECT_EXIT(config.validate_or_die(), testing::ExitedWithCode(2),
              "overflows 32-bit request ids");
}

TEST(GeneratorConfigDeathTest, LoadMultiplierOverflowDies) {
  GeneratorConfig config = GeneratorConfig::light();
  config.min_machines = 10'000;
  config.max_machines = 10'000;
  config.min_requests_per_machine = 10'000;
  config.max_requests_per_machine = 10'000;
  config.load_multiplier = 1e6;  // 1e8 requests x 1e6 -> far past INT32_MAX
  EXPECT_EXIT(config.validate_or_die(), testing::ExitedWithCode(2),
              "overflows 32-bit request ids");
}

TEST(GeneratorConfigDeathTest, ZeroLoadMultiplierDies) {
  GeneratorConfig config = GeneratorConfig::light();
  config.load_multiplier = 0.0;
  EXPECT_EXIT(config.validate_or_die(), testing::ExitedWithCode(2),
              "load_multiplier must be > 0");
}

TEST(GeneratorConfigDeathTest, TooFewMachinesDies) {
  GeneratorConfig config = GeneratorConfig::light();
  config.min_machines = 1;
  config.max_machines = 1;
  EXPECT_EXIT(config.validate_or_die(), testing::ExitedWithCode(2),
              "min_machines must be >= 2");
}

TEST(GeneratorConfigTest, ValidationReportsEveryProblemAtOnce) {
  GeneratorConfig config = GeneratorConfig::light();
  config.min_machines = 20;
  config.max_machines = 10;
  config.min_bandwidth_bps = 100;
  config.max_bandwidth_bps = 10;
  config.priority_classes = 0;
  const std::vector<std::string> errors = config.validation_errors();
  EXPECT_GE(errors.size(), 3u);
}

TEST(GeneratorConfigTest, AllPresetsAreValid) {
  EXPECT_TRUE(GeneratorConfig::paper().validation_errors().empty());
  EXPECT_TRUE(GeneratorConfig::light().validation_errors().empty());
  EXPECT_TRUE(GeneratorConfig::congested().validation_errors().empty());
  EXPECT_TRUE(GeneratorConfig::huge().validation_errors().empty());
}

TEST(GeneratorConfigTest, KeepLinksBeforeZeroKeepsAllWindows) {
  GeneratorConfig clipped = GeneratorConfig::light();
  GeneratorConfig full = GeneratorConfig::light();
  full.keep_links_before = SimTime::zero();
  Rng rng1(12);
  Rng rng2(12);
  const Scenario a = generate_scenario(clipped, rng1);
  const Scenario b = generate_scenario(full, rng2);
  // Unclipped generation keeps the late windows the default drops.
  EXPECT_GT(b.virt_links.size(), a.virt_links.size());
}

}  // namespace
}  // namespace datastage
